//! `archdse` command-line interface.
//!
//! Small utility front end over the library:
//!
//! ```text
//! archdse space                         # design-space summary (Table 1)
//! archdse benchmarks                    # list workload profiles
//! archdse simulate <bench> [key=value]  # run one benchmark on one config
//! archdse predict <bench> [r=32]        # demo: predict <bench> from the
//!                                       # other SPEC programs' knowledge
//! archdse train --out <dir>             # train + persist model artifacts
//! archdse serve --models <dir>          # serve predictions over HTTP
//! archdse client <addr> <verb> [...]    # query a running server
//! ```
//!
//! Configuration overrides use the paper-vector field names:
//! `width rob iq lsq rf rf_read rf_write bpred btb branches icache dcache l2`
//! (caches in KB, predictor/BTB in K-entries), e.g.
//! `archdse simulate gzip width=8 l2=4096`.

use archdse::explore::{Constraints, ExploreBudget, Explorer, Objective, SimOracle};
use archdse::prelude::*;
use archdse::serve::{
    protocol, save_artifacts, Client, ModelRegistry, RegistryPredictor, Server, ServerConfig,
};
use dse_space::raw_space_size;
use dse_util::json::{FromJson, Json, ToJson};

const USAGE: &str = "usage: archdse <command> [args]

commands:
  space                                   design-space summary
  benchmarks                              list workload profiles
  simulate <bench> [--sanitize] [--profile] [--profile-stages] [--corun <bench2>] [--workloads <dir>] [k=v...]
                                          run one benchmark on one config
                                          (--profile: stall attribution;
                                           --profile-stages: host-time per stage;
                                           --corun: share the L2 with <bench2>)
  workload list [--workloads <dir>]       catalog: built-ins + imported workloads
  workload export <name> [--workloads <dir>]
                                          print a profile as an interchange document
  workload import <file> [--workloads <dir>]
                                          import a profile document or raw
                                          #archdse-trace into the store
  workload synth --seed N --count K [--workloads <dir>]
                                          generate fuzzer profiles (stored, or
                                          printed without --workloads)
  predict <bench> [r=32] [--workloads <dir>]
                                          leave-one-out prediction demo
  explore <bench> --models <dir> [--objective cycles,energy] [--constraints \"rob<=96,..\"]
          [--rounds N] [--candidates N] [--sims N] [--archive N] [--seed N]
          [--r N] [--out <dir>]           predictor-guided Pareto frontier search;
                                          writes <out>/frontier-<slug>.json (default results/)
  train --out <dir> [--benchmarks N] [--configs N] [--t N] [--metrics m,..|all]
        [--workloads <dir>] [--obs json|pretty|off]
                                          train + persist serving artifacts
                                          (--workloads: include imported suite;
                                           --obs json: span JSONL on stdout;
                                           --obs pretty: self-time flame table)
  obs report <spans.jsonl>                flame table from a span log
  serve --models <dir> [--addr host:port] [--workers N] [--reactors N]
        [--workloads <dir>]               serve predictions over HTTP
  client <addr> health                    check a running server
  client <addr> workloads                 list the server-side workload catalog
  client <addr> import <file>             POST a profile document to the server
  client <addr> fit <bench> [metric] [r=N] [workloads=<dir>]
                                          simulate R responses and fit
  client <addr> predict <program> [metric] [k=v...]
                                          predict one configuration
  client <addr> shutdown                  drain and stop the server";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("space") => cmd_space(),
        Some("benchmarks") => cmd_benchmarks(),
        Some("workload") => cmd_workload(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("predict") => cmd_predict(&args[1..]),
        Some("explore") => cmd_explore(&args[1..]),
        Some("train") => cmd_train(&args[1..]),
        Some("obs") => cmd_obs(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("client") => cmd_client(&args[1..]),
        Some("help") | Some("--help") | Some("-h") => {
            println!("{USAGE}");
            0
        }
        Some(other) => {
            eprintln!("unknown command '{other}'\n{USAGE}");
            2
        }
        None => {
            eprintln!("{USAGE}");
            2
        }
    };
    std::process::exit(code);
}

// The simulation protocol shared by `train`, `client fit`, `explore`, and
// the server's explore jobs lives in `dse_serve::protocol`: responses must
// be simulated the same way the training dataset was, or the fitted
// combiner would mix scales.

/// Parses `--flag value` pairs. Every flag must be in `allowed`.
fn parse_flags(
    args: &[String],
    allowed: &[&str],
) -> Result<std::collections::BTreeMap<String, String>, String> {
    let mut flags = std::collections::BTreeMap::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let Some(name) = arg.strip_prefix("--") else {
            return Err(format!("expected --flag, got '{arg}'"));
        };
        if !allowed.contains(&name) {
            return Err(format!("unknown flag '--{name}' (allowed: {allowed:?})"));
        }
        let Some(value) = it.next() else {
            return Err(format!("flag '--{name}' needs a value"));
        };
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn parse_metric(text: &str) -> Result<Metric, String> {
    Metric::ALL
        .iter()
        .copied()
        .find(|m| {
            m.to_string().eq_ignore_ascii_case(text) || format!("{m:?}").eq_ignore_ascii_case(text)
        })
        .ok_or_else(|| format!("unknown metric '{text}' (cycles, energy, ed, edd)"))
}

fn cmd_space() -> i32 {
    println!("design space: {} raw points", raw_space_size());
    for def in dse_space::PARAMS.iter() {
        println!(
            "  {:10} {:12} {:>4} values: {:?}",
            def.name,
            def.unit,
            def.len(),
            def.values
        );
    }
    println!("baseline: {}", Config::baseline());
    0
}

fn cmd_benchmarks() -> i32 {
    for p in archdse::workload::suites::all_benchmarks() {
        println!(
            "{:14} {:14} code {:4} KB  data {:6} KB  branch rate {:.2}",
            p.name,
            p.suite.to_string(),
            p.code_kb,
            p.data_kb,
            p.branch_fraction()
        );
    }
    0
}

/// Parses `key=value` overrides onto the baseline configuration.
fn parse_config(args: &[String]) -> Result<Config, String> {
    let mut cfg = Config::baseline();
    for arg in args {
        let Some((key, value)) = arg.split_once('=') else {
            return Err(format!("expected key=value, got '{arg}'"));
        };
        let v: u32 = value
            .parse()
            .map_err(|_| format!("'{value}' is not a number in '{arg}'"))?;
        match key {
            "width" => cfg.width = v,
            "rob" => cfg.rob = v,
            "iq" => cfg.iq = v,
            "lsq" => cfg.lsq = v,
            "rf" => cfg.rf = v,
            "rf_read" => cfg.rf_read = v,
            "rf_write" => cfg.rf_write = v,
            "bpred" => cfg.bpred_k = v,
            "btb" => cfg.btb_k = v,
            "branches" => cfg.max_branches = v,
            "icache" => cfg.icache_kb = v,
            "dcache" => cfg.dcache_kb = v,
            "l2" => cfg.l2_kb = v,
            other => return Err(format!("unknown parameter '{other}'")),
        }
    }
    if !cfg.is_legal() {
        return Err(format!("configuration fails the legality filter: {cfg}"));
    }
    Ok(cfg)
}

fn find_profile(name: &str) -> Result<Profile, String> {
    find_profile_in(name, None)
}

/// Resolves a program name against the built-in benchmarks and, when a
/// store directory is given, the imported workloads.
fn find_profile_in(name: &str, workloads: Option<&str>) -> Result<Profile, String> {
    if let Some(p) = archdse::workload::suites::all_benchmarks()
        .into_iter()
        .find(|p| p.name == name)
    {
        return Ok(p);
    }
    if let Some(dir) = workloads {
        let store = archdse::ingest::WorkloadStore::open(dir).map_err(|e| e.to_string())?;
        if let Some(p) = store.find(name) {
            return Ok(p);
        }
    }
    Err(format!(
        "unknown benchmark '{name}' (try `archdse benchmarks` or `archdse workload list`)"
    ))
}

fn cmd_simulate(args: &[String]) -> i32 {
    const SIM_USAGE: &str = "usage: archdse simulate <benchmark> [--sanitize] [--profile] \
[--profile-stages] [--corun <bench2>] [--workloads <dir>] [key=value ...]";
    let Some(bench) = args.first() else {
        eprintln!("{SIM_USAGE}");
        return 2;
    };
    let mut sanitize = false;
    let mut profile_run = false;
    let mut profile_stages = false;
    let mut corun: Option<String> = None;
    let mut workloads: Option<String> = None;
    let mut overrides = Vec::new();
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--sanitize" => sanitize = true,
            "--profile" => profile_run = true,
            "--profile-stages" => profile_stages = true,
            "--corun" | "--workloads" => {
                let Some(value) = it.next() else {
                    eprintln!("flag '{arg}' needs a value\n{SIM_USAGE}");
                    return 2;
                };
                if arg == "--corun" {
                    corun = Some(value.clone());
                } else {
                    workloads = Some(value.clone());
                }
            }
            _ => overrides.push(arg.clone()),
        }
    }
    let profile = match find_profile_in(bench, workloads.as_deref()) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let cfg = match parse_config(&overrides) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    if let Some(other) = corun {
        if profile_run || profile_stages {
            eprintln!("--profile/--profile-stages are not supported together with --corun");
            return 2;
        }
        return simulate_corun_cli(&cfg, &profile, &other, workloads.as_deref(), sanitize);
    }
    if profile_stages {
        if profile_run {
            eprintln!("--profile and --profile-stages are separate runs; pick one");
            return 2;
        }
        return simulate_stages_cli(&cfg, bench, &profile, sanitize);
    }
    let trace = TraceGenerator::new(&profile).generate(60_000);
    let options = SimOptions {
        sanitize,
        ..SimOptions::with_warmup(15_000)
    };
    let pipeline = archdse::sim::Pipeline::new(
        &cfg,
        &dse_space::ConstantParams::standard(),
        &trace,
        options,
    );
    let mut stall = archdse::sim::StallProfile::default();
    let rec = if profile_run {
        pipeline.try_run_full_obs(&mut stall)
    } else {
        pipeline.try_run_full()
    };
    let rec = match rec {
        Ok(rec) => rec,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    let r = rec.result;
    let m = archdse::sim::Metrics::from_result(&r);
    println!("benchmark : {bench}");
    println!("config    : {cfg}");
    println!("IPC       : {:.3}", r.ipc);
    println!(
        "L1I/L1D/L2 miss: {:.2}% / {:.2}% / {:.2}%",
        100.0 * r.l1i_miss_rate,
        100.0 * r.l1d_miss_rate,
        100.0 * r.l2_miss_rate
    );
    println!("bpred miss: {:.2}%", 100.0 * r.bpred_miss_rate);
    println!("cycles    : {:.4e} /10M-instr phase", m.cycles);
    println!("energy    : {:.4e} nJ", m.energy);
    println!("ED / EDD  : {:.4e} / {:.4e}", m.ed, m.edd);
    if profile_run {
        let report = archdse::sim::StallReport {
            profile: stall,
            record: rec,
        };
        println!();
        println!("{}", report.pretty());
    }
    0
}

/// `simulate <bench> --profile-stages`: attributes stepped-cycle host
/// time to the five pipeline stages. Honors `ARCHDSE_BATCH`: width 1
/// times the scalar live path, width > 1 runs that many identical
/// lockstep lanes through [`archdse::sim::SweepEngine`] and merges the
/// per-lane profiles, so the batched stepping cost is what is measured.
fn simulate_stages_cli(
    cfg: &dse_space::Config,
    bench: &str,
    profile: &dse_workload::Profile,
    sanitize: bool,
) -> i32 {
    use archdse::sim::{Metrics, StageProf, SweepEngine};
    let trace = TraceGenerator::new(profile).generate(60_000);
    let options = archdse::sim::SimOptions {
        sanitize,
        ..archdse::sim::SimOptions::with_warmup(15_000)
    };
    let width = archdse::sim::batch_width();
    let mut merged = StageProf::default();
    let record = if width <= 1 {
        let pipeline = archdse::sim::Pipeline::new(
            cfg,
            &dse_space::ConstantParams::standard(),
            &trace,
            options,
        );
        match pipeline.try_run_full_obs(&mut merged) {
            Ok(rec) => rec,
            Err(e) => {
                eprintln!("{e}");
                return 1;
            }
        }
    } else {
        let cfgs = vec![*cfg; width];
        let engine = SweepEngine::new(
            &cfgs,
            &dse_space::ConstantParams::standard(),
            &trace,
            options,
            width,
        );
        let mut profs = vec![StageProf::default(); width];
        let mut recs = engine.run_range_obs(0..width, &mut profs);
        for p in &profs {
            merged.merge(p);
        }
        match recs.swap_remove(0) {
            Ok(rec) => rec,
            Err(e) => {
                eprintln!("{e}");
                return 1;
            }
        }
    };
    let m = Metrics::from_result(&record.result);
    println!("benchmark : {bench}");
    println!("config    : {cfg}");
    println!(
        "mode      : {}",
        if width <= 1 {
            "scalar".to_string()
        } else {
            format!("lockstep width {width}")
        }
    );
    println!("IPC       : {:.3}", record.result.ipc);
    println!("cycles    : {:.4e} /10M-instr phase", m.cycles);
    println!();
    println!("{}", merged.pretty());
    println!();
    println!("stageprof-json: {}", merged.to_json());
    0
}

/// `simulate A --corun B`: runs the two-pass shared-L2 interference
/// scenario and reports each lane's solo vs contended story.
fn simulate_corun_cli(
    cfg: &Config,
    a: &Profile,
    b_name: &str,
    workloads: Option<&str>,
    sanitize: bool,
) -> i32 {
    let b = match find_profile_in(b_name, workloads) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let trace_a = TraceGenerator::new(a).generate(60_000);
    let trace_b = TraceGenerator::new(&b).generate(60_000);
    let options = SimOptions {
        sanitize,
        ..SimOptions::with_warmup(15_000)
    };
    let result = match archdse::sim::simulate_corun(cfg, &trace_a, &trace_b, options) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    println!("co-run    : {} + {} (shared L2)", a.name, b.name);
    println!("config    : {cfg}");
    let lane = |name: &str, l: &archdse::sim::CorunLane| {
        println!(
            "{name:14} cycles {:.4e} -> {:.4e}  slowdown {:.3}x  L2 miss {:.2}% -> {:.2}%",
            l.solo.cycles,
            l.contended.cycles,
            l.slowdown(),
            100.0 * l.solo_l2_miss,
            100.0 * l.contended_l2_miss
        );
    };
    lane(a.name, &result.a);
    lane(b.name, &result.b);
    0
}

/// `archdse workload <list|export|import|synth>`: the ingestion surface.
fn cmd_workload(args: &[String]) -> i32 {
    const W_USAGE: &str = "usage: archdse workload <verb> [args]
  workload list [--workloads <dir>]              catalog (built-ins + imports)
  workload export <name> [--workloads <dir>]     print an interchange document
  workload import <file> [--workloads <dir>]     import a document or raw trace
                                                 (default store: workloads/)
  workload synth --seed N --count K [--workloads <dir>]
                                                 fuzz profiles (stored, or printed
                                                 as NDJSON without --workloads)";
    let Some(verb) = args.first() else {
        eprintln!("{W_USAGE}");
        return 2;
    };
    match verb.as_str() {
        "list" => workload_list(&args[1..], W_USAGE),
        "export" => workload_export(&args[1..], W_USAGE),
        "import" => workload_import(&args[1..], W_USAGE),
        "synth" => workload_synth(&args[1..], W_USAGE),
        other => {
            eprintln!("unknown workload verb '{other}'\n{W_USAGE}");
            2
        }
    }
}

fn workload_list(args: &[String], usage: &str) -> i32 {
    let flags = match parse_flags(args, &["workloads"]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}\n{usage}");
            return 2;
        }
    };
    let extra = match flags.get("workloads") {
        Some(dir) => match archdse::ingest::WorkloadStore::open(dir) {
            Ok(store) => store.profiles(),
            Err(e) => {
                eprintln!("{e}");
                return 1;
            }
        },
        None => Vec::new(),
    };
    // The same canonical enumeration `GET /v1/workloads` serves.
    for entry in archdse::workload::catalog(&extra) {
        println!(
            "{:16} {:14} seed {:18} data {:7} KB",
            entry.name,
            entry.suite.to_string(),
            entry.seed,
            entry.data_kb
        );
    }
    0
}

fn workload_export(args: &[String], usage: &str) -> i32 {
    let Some(name) = args.first() else {
        eprintln!("workload export needs a program name\n{usage}");
        return 2;
    };
    let flags = match parse_flags(&args[1..], &["workloads"]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}\n{usage}");
            return 2;
        }
    };
    let profile = match find_profile_in(name, flags.get("workloads").map(String::as_str)) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    print!("{}", archdse::ingest::export_profile(&profile));
    0
}

/// Reads a workload file — an interchange document or a raw
/// `#archdse-trace` — into a validated profile. Sniffs the format from
/// the first non-whitespace byte; both paths enforce their size caps.
fn read_workload_file(path: &str) -> Result<Profile, String> {
    use std::io::{BufRead, Read};
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open '{path}': {e}"))?;
    let mut reader = std::io::BufReader::new(file);
    let first = reader
        .fill_buf()
        .map_err(|e| format!("cannot read '{path}': {e}"))?
        .iter()
        .copied()
        .find(|b| !b.is_ascii_whitespace());
    let result = if first == Some(b'#') {
        archdse::ingest::profile_from_trace(reader)
    } else {
        let mut text = String::new();
        reader
            .take(archdse::ingest::format::MAX_PROFILE_BYTES as u64 + 1)
            .read_to_string(&mut text)
            .map_err(|e| format!("cannot read '{path}': {e}"))?;
        archdse::ingest::import_profile(&text)
    };
    result.map_err(|e| format!("{path}: {e}"))
}

fn workload_import(args: &[String], usage: &str) -> i32 {
    let Some(path) = args.first() else {
        eprintln!("workload import needs a file\n{usage}");
        return 2;
    };
    let flags = match parse_flags(&args[1..], &["workloads"]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}\n{usage}");
            return 2;
        }
    };
    let dir = flags
        .get("workloads")
        .cloned()
        .unwrap_or_else(|| "workloads".to_string());
    let profile = match read_workload_file(path) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    let store = match archdse::ingest::WorkloadStore::open(&dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    match store.add(&profile) {
        Ok(()) => {
            println!(
                "imported '{}' ({}) into {dir}/ ({} workloads)",
                profile.name,
                profile.suite,
                store.len()
            );
            0
        }
        Err(e) => {
            eprintln!("{e}");
            1
        }
    }
}

fn workload_synth(args: &[String], usage: &str) -> i32 {
    let flags = match parse_flags(args, &["seed", "count", "workloads"]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}\n{usage}");
            return 2;
        }
    };
    let parse_num = |key: &str, default: u64| -> Result<u64, String> {
        match flags.get(key) {
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} '{v}' is not a number")),
            None => Ok(default),
        }
    };
    let (seed, count) = match (parse_num("seed", 1), parse_num("count", 8)) {
        (Ok(s), Ok(c)) if c > 0 => (s, c as usize),
        (Ok(_), Ok(_)) => {
            eprintln!("--count must be positive");
            return 2;
        }
        (s, c) => {
            for e in [s.err(), c.err()].into_iter().flatten() {
                eprintln!("{e}");
            }
            return 2;
        }
    };
    let profiles = archdse::ingest::synth_profiles(seed, count);
    match flags.get("workloads") {
        Some(dir) => {
            let store = match archdse::ingest::WorkloadStore::open(dir) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{e}");
                    return 1;
                }
            };
            for p in &profiles {
                if let Err(e) = store.add(p) {
                    eprintln!("{e}");
                    return 1;
                }
                println!("stored '{}'", p.name);
            }
            println!("{} synthetic workloads in {dir}/", profiles.len());
        }
        None => {
            for p in &profiles {
                print!("{}", archdse::ingest::export_profile(p));
            }
        }
    }
    0
}

fn cmd_predict(args: &[String]) -> i32 {
    let Some(bench) = args.first() else {
        eprintln!("usage: archdse predict <benchmark> [r=32] [--workloads <dir>]");
        return 2;
    };
    let mut r = 32usize;
    let mut workloads: Option<String> = None;
    let mut rest = args[1..].iter();
    while let Some(arg) = rest.next() {
        if let Some(v) = arg.strip_prefix("r=") {
            match v.parse() {
                Ok(n) => r = n,
                Err(_) => {
                    eprintln!("bad response count '{v}'");
                    return 2;
                }
            }
        } else if arg == "--workloads" {
            match rest.next() {
                Some(dir) => workloads = Some(dir.clone()),
                None => {
                    eprintln!("--workloads needs a directory");
                    return 2;
                }
            }
        }
    }
    let target_profile = match find_profile_in(bench, workloads.as_deref()) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };

    // Demo-scale protocol so the command finishes in ~a minute on one core.
    let mut profiles: Vec<Profile> = archdse::workload::suites::spec2000()
        .into_iter()
        .filter(|p| p.name != bench)
        .take(8)
        .collect();
    profiles.push(target_profile);
    let spec = DatasetSpec {
        n_configs: 200,
        trace_len: 30_000,
        warmup: 6_000,
        seed: 21,
    };
    eprintln!(
        "simulating {} training programs + target ...",
        profiles.len() - 1
    );
    let ds = SuiteDataset::generate(&profiles, &spec);
    let target = ds.benchmarks.len() - 1;
    let train_rows: Vec<usize> = (0..target).collect();
    let offline = OfflineModel::train(
        &ds,
        &train_rows,
        Metric::Cycles,
        150,
        &MlpConfig::default(),
        2,
    );
    let idxs: Vec<usize> = (0..r.min(ds.n_configs() / 2)).collect();
    let vals: Vec<f64> = idxs
        .iter()
        .map(|&i| ds.benchmarks[target].metrics[i].cycles)
        .collect();
    let predictor = offline.fit_responses(&ds, &idxs, &vals);
    let features = ds.features();
    let preds: Vec<f64> = (idxs.len()..ds.n_configs())
        .map(|i| predictor.predict(&features[i]))
        .collect();
    let actual: Vec<f64> = (idxs.len()..ds.n_configs())
        .map(|i| ds.benchmarks[target].metrics[i].cycles)
        .collect();
    println!(
        "predicted {} unseen configurations of '{bench}' from {} responses:",
        preds.len(),
        idxs.len()
    );
    println!(
        "  rmae        : {:.1}%",
        dse_ml::stats::rmae(&preds, &actual)
    );
    println!(
        "  correlation : {:.3}",
        dse_ml::stats::correlation(&preds, &actual)
    );
    0
}

/// `archdse explore <bench> --models <dir> ...`: predictor-guided Pareto
/// frontier search. The trained registry is the cheap oracle; metrics the
/// registry has not yet fitted for `<bench>` are fitted here first
/// (simulating `--r` responses, the paper's §5.3 protocol), then the
/// explorer spends its simulation budget ground-truthing the predictor's
/// picks.
fn cmd_explore(args: &[String]) -> i32 {
    const EXPLORE_USAGE: &str = "usage: archdse explore <bench> --models <dir> \
[--objective cycles,energy] [--constraints \"rob<=96,..\"] [--rounds N] [--candidates N] \
[--sims N] [--archive N] [--seed N] [--r N] [--out <dir>]";
    let Some(bench) = args.first() else {
        eprintln!("{EXPLORE_USAGE}");
        return 2;
    };
    let flags = match parse_flags(
        &args[1..],
        &[
            "models",
            "objective",
            "constraints",
            "rounds",
            "candidates",
            "sims",
            "archive",
            "seed",
            "r",
            "out",
        ],
    ) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}\n{EXPLORE_USAGE}");
            return 2;
        }
    };
    let Some(models) = flags.get("models") else {
        eprintln!("explore needs --models <dir> (create one with `archdse train`)");
        return 2;
    };
    let profile = match find_profile(bench) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let objective = match Objective::parse(
        flags
            .get("objective")
            .map_or("cycles,energy", String::as_str),
    ) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("bad --objective: {e}");
            return 2;
        }
    };
    let constraints = match flags.get("constraints") {
        Some(s) => match Constraints::parse(s) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("bad --constraints: {e}");
                return 2;
            }
        },
        None => Constraints::none(),
    };
    let mut budget = ExploreBudget::default();
    let parse_num = |key: &str, default: usize| -> Result<usize, String> {
        match flags.get(key) {
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} '{v}' is not a number")),
            None => Ok(default),
        }
    };
    let parsed = (
        parse_num("rounds", budget.rounds),
        parse_num("candidates", budget.candidates_per_round),
        parse_num("sims", budget.sims_per_round),
        parse_num("archive", budget.archive_cap),
        parse_num("seed", budget.seed as usize),
        parse_num("r", 32),
    );
    let r = match parsed {
        (Ok(ro), Ok(c), Ok(s), Ok(a), Ok(seed), Ok(r)) => {
            budget.rounds = ro;
            budget.candidates_per_round = c;
            budget.sims_per_round = s;
            budget.archive_cap = a;
            budget.seed = seed as u64;
            r
        }
        (a, b, c, d, e, f) => {
            for err in [a.err(), b.err(), c.err(), d.err(), e.err(), f.err()]
                .into_iter()
                .flatten()
            {
                eprintln!("{err}");
            }
            return 2;
        }
    };
    if let Err(e) = budget.validate() {
        eprintln!("bad budget: {e}");
        return 2;
    }
    let registry = match ModelRegistry::open(models) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("failed to load models from '{models}': {e}");
            return 1;
        }
    };
    let metrics = objective.metrics();
    let trace = protocol::trace(&profile);
    let options = protocol::options();
    // Fit any objective metric the registry has no combiner for yet.
    for &metric in &metrics {
        if registry.predictor(bench, metric).is_ok() {
            continue;
        }
        let Some(artifact) = registry.artifact(metric) else {
            eprintln!("registry has no {metric} model (retrain with --metrics all)");
            return 1;
        };
        let take = r.min(artifact.configs.len());
        eprintln!("fitting '{bench}' {metric}: simulating {take} responses ...");
        let responses: Vec<(usize, f64)> = artifact.configs[..take]
            .iter()
            .enumerate()
            .map(|(i, c)| (i, simulate(c, &trace, options).get(metric)))
            .collect();
        if let Err(e) = registry.fit(bench, metric, &responses) {
            eprintln!("fit failed: {e}");
            return 1;
        }
    }
    let predictor = match RegistryPredictor::resolve(&registry, bench, &metrics) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    let oracle = SimOracle::new(trace, options);
    let explorer = Explorer {
        predictor: &predictor,
        oracle: &oracle,
        program: bench.clone(),
        objective,
        constraints,
        budget,
        pool: None,
    };
    eprintln!(
        "exploring '{bench}': {} rounds x {} sims ...",
        explorer.budget.rounds, explorer.budget.sims_per_round
    );
    let frontier = match explorer.run() {
        Ok(f) => f,
        Err(e) => {
            eprintln!("explore failed: {e}");
            return 1;
        }
    };
    println!("{}", frontier.table());
    let out_dir = std::path::Path::new(flags.get("out").map_or("results", String::as_str));
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("cannot create '{}': {e}", out_dir.display());
        return 1;
    }
    let path = out_dir.join(format!(
        "frontier-{bench}-{}.json",
        frontier.objective.slug()
    ));
    let text = dse_util::json::to_string(&frontier.to_json());
    if let Err(e) = std::fs::write(&path, text) {
        eprintln!("cannot write '{}': {e}", path.display());
        return 1;
    }
    println!("wrote {}", path.display());
    0
}

fn cmd_train(args: &[String]) -> i32 {
    let flags = match parse_flags(
        args,
        &[
            "out",
            "benchmarks",
            "configs",
            "t",
            "metrics",
            "seed",
            "obs",
            "workloads",
        ],
    ) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}\nusage: archdse train --out <dir> [--benchmarks N] [--configs N] [--t N] [--metrics m,..|all] [--seed N] [--workloads <dir>] [--obs json|pretty|off]");
            return 2;
        }
    };
    let obs_mode = match flags.get("obs").map(String::as_str) {
        None | Some("off") => "off",
        Some(m @ ("json" | "pretty")) => m,
        Some(other) => {
            eprintln!("--obs '{other}' must be one of: json, pretty, off");
            return 2;
        }
    };
    let Some(out) = flags.get("out") else {
        eprintln!("train needs --out <dir>");
        return 2;
    };
    let parse_num = |key: &str, default: usize| -> Result<usize, String> {
        match flags.get(key) {
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} '{v}' is not a number")),
            None => Ok(default),
        }
    };
    let (n_benchmarks, n_configs, t, seed) = match (
        parse_num("benchmarks", 5),
        parse_num("configs", 120),
        parse_num("t", 90),
        parse_num("seed", 1),
    ) {
        (Ok(b), Ok(c), Ok(t), Ok(s)) => (b, c, t, s as u64),
        (b, c, t, s) => {
            for e in [b.err(), c.err(), t.err(), s.err()].into_iter().flatten() {
                eprintln!("{e}");
            }
            return 2;
        }
    };
    let metrics: Vec<Metric> = match flags.get("metrics").map(String::as_str) {
        None => vec![Metric::Cycles],
        Some("all") => Metric::ALL.to_vec(),
        Some(list) => {
            let mut out = Vec::new();
            for item in list.split(',') {
                match parse_metric(item.trim()) {
                    Ok(m) => out.push(m),
                    Err(e) => {
                        eprintln!("{e}");
                        return 2;
                    }
                }
            }
            out
        }
    };
    let mut profiles: Vec<Profile> = archdse::workload::suites::spec2000()
        .into_iter()
        .take(n_benchmarks)
        .collect();
    if let Some(dir) = flags.get("workloads") {
        // Imported workloads join the training population, so the
        // resulting artifacts can predict (and be fitted for) them.
        match archdse::ingest::WorkloadStore::open(dir) {
            Ok(store) => {
                let imported = store.profiles();
                if imported.is_empty() {
                    eprintln!("warning: workload store '{dir}' is empty");
                }
                eprintln!(
                    "including {} imported workload(s) from {dir}/",
                    imported.len()
                );
                profiles.extend(imported);
            }
            Err(e) => {
                eprintln!("{e}");
                return 1;
            }
        }
    }
    if profiles.len() < 2 {
        eprintln!("need at least 2 benchmarks to train");
        return 2;
    }
    let spec = DatasetSpec {
        n_configs,
        trace_len: protocol::TRACE_LEN,
        warmup: protocol::WARMUP,
        seed: protocol::SEED,
    };
    if obs_mode != "off" {
        archdse::obs::set_enabled(true);
    }
    // With `--obs json`, stdout carries nothing but span JSONL so the log
    // can be piped straight into `archdse obs report`; status lines move
    // to stderr.
    let status = {
        let _root = archdse::obs::span!(
            "train",
            benchmarks = profiles.len(),
            configs = n_configs,
            metrics = metrics.len()
        );
        eprintln!(
            "simulating {} benchmarks x {} configurations ...",
            profiles.len(),
            n_configs
        );
        let ds = SuiteDataset::generate(&profiles, &spec);
        eprintln!("training {} metric model(s) ...", metrics.len());
        match save_artifacts(
            std::path::Path::new(out),
            &ds,
            &metrics,
            t.min(n_configs),
            &MlpConfig::default(),
            seed,
        ) {
            Ok(manifest) => {
                let mut lines = vec![format!("wrote {}", manifest.display())];
                for m in &metrics {
                    lines.push(format!("  model-{}.json", m.to_string().to_lowercase()));
                }
                for line in lines {
                    if obs_mode == "json" {
                        eprintln!("{line}");
                    } else {
                        println!("{line}");
                    }
                }
                0
            }
            Err(e) => {
                eprintln!("{e}");
                1
            }
        }
    };
    match obs_mode {
        "json" => {
            let spans = archdse::obs::span::take_spans();
            print!("{}", archdse::obs::span::to_jsonl(&spans));
        }
        "pretty" => {
            let spans = archdse::obs::span::take_spans();
            let rows = archdse::obs::span::flame_table(&spans);
            println!("{}", archdse::obs::span::render_flame(&rows));
        }
        _ => {}
    }
    status
}

/// `archdse obs report <spans.jsonl> [--top N]`: aggregates a span log
/// written by `train --obs json` into a self-time flame table.
///
/// Robust against partial logs: unparsable lines (a process killed
/// mid-write truncates the last line) are counted and skipped with a
/// warning, and an empty log reports cleanly instead of erroring —
/// a crashed run's log is exactly the one worth reading. `--top N`
/// limits the table to the N hottest spans.
///
/// Reimplements the flame aggregation over parsed (owned-name) records,
/// since [`archdse::obs::span::flame_table`] works on live in-process
/// spans with `&'static str` names.
fn cmd_obs(args: &[String]) -> i32 {
    const OBS_USAGE: &str = "usage: archdse obs report <spans.jsonl> [--top N]";
    let (Some(verb), Some(path)) = (args.first(), args.get(1)) else {
        eprintln!("{OBS_USAGE}");
        return 2;
    };
    if verb != "report" {
        eprintln!("unknown obs verb '{verb}'\n{OBS_USAGE}");
        return 2;
    }
    let mut top: Option<usize> = None;
    let mut it = args[2..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--top" => {
                let parsed = it.next().and_then(|v| v.parse::<usize>().ok());
                let Some(n) = parsed else {
                    eprintln!("--top needs a positive integer\n{OBS_USAGE}");
                    return 2;
                };
                top = Some(n);
            }
            other => {
                eprintln!("unknown flag '{other}'\n{OBS_USAGE}");
                return 2;
            }
        }
    }
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read '{path}': {e}");
            return 1;
        }
    };
    struct Rec {
        id: u64,
        parent: Option<u64>,
        name: String,
        dur_us: u64,
    }
    let mut recs: Vec<Rec> = Vec::new();
    let mut skipped = 0usize;
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let parse = |line: &str| -> Result<Rec, dse_util::json::JsonError> {
            let v = Json::parse(line)?;
            let parent = match v.field("parent")? {
                Json::Null => None,
                j => Some(j.as_u64()?),
            };
            Ok(Rec {
                id: v.field("id")?.as_u64()?,
                parent,
                name: v.field("name")?.as_str()?.to_string(),
                dur_us: v.field("dur_us")?.as_u64()?,
            })
        };
        match parse(line) {
            Ok(rec) => recs.push(rec),
            Err(e) => {
                eprintln!("{path}:{}: skipping unparsable line: {e}", i + 1);
                skipped += 1;
            }
        }
    }
    if recs.is_empty() {
        println!(
            "no spans in '{path}'{}",
            if skipped > 0 {
                format!(" ({skipped} unparsable lines skipped)")
            } else {
                String::new()
            }
        );
        return 0;
    }
    // Self time per span: duration minus direct children's durations,
    // clamped at zero (parallel children can overlap their parent).
    let mut child_us: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    for r in &recs {
        if let Some(p) = r.parent {
            *child_us.entry(p).or_insert(0) += r.dur_us;
        }
    }
    #[derive(Default)]
    struct Row {
        count: u64,
        total_us: u64,
        self_us: u64,
    }
    let mut rows: std::collections::BTreeMap<&str, Row> = std::collections::BTreeMap::new();
    for r in &recs {
        let self_us = r
            .dur_us
            .saturating_sub(child_us.get(&r.id).copied().unwrap_or(0));
        let e = rows.entry(r.name.as_str()).or_default();
        e.count += 1;
        e.total_us += r.dur_us;
        e.self_us += self_us;
    }
    let wall_us: u64 = recs
        .iter()
        .filter(|r| r.parent.is_none())
        .map(|r| r.dur_us)
        .sum();
    let self_total: u64 = rows.values().map(|r| r.self_us).sum();
    let mut sorted: Vec<(&str, &Row)> = rows.iter().map(|(k, v)| (*k, v)).collect();
    sorted.sort_by(|a, b| b.1.self_us.cmp(&a.1.self_us).then(a.0.cmp(b.0)));
    let shown = top.unwrap_or(sorted.len()).min(sorted.len());
    let pct_of_wall = |us: u64| {
        if wall_us > 0 {
            100.0 * us as f64 / wall_us as f64
        } else {
            0.0
        }
    };
    println!(
        "{:<28} {:>8} {:>12} {:>7} {:>12} {:>7}",
        "span", "count", "total_ms", "total%", "self_ms", "self%"
    );
    for (name, row) in &sorted[..shown] {
        println!(
            "{:<28} {:>8} {:>12.3} {:>6.1}% {:>12.3} {:>6.1}%",
            name,
            row.count,
            row.total_us as f64 / 1000.0,
            pct_of_wall(row.total_us),
            row.self_us as f64 / 1000.0,
            pct_of_wall(row.self_us)
        );
    }
    if shown < sorted.len() {
        println!(
            "... {} more spans (raise --top to see them)",
            sorted.len() - shown
        );
    }
    println!();
    println!(
        "{} spans, wall {:.3} ms, self-time coverage {:.1}%{}",
        recs.len(),
        wall_us as f64 / 1000.0,
        pct_of_wall(self_total),
        if skipped > 0 {
            format!(" ({skipped} unparsable lines skipped)")
        } else {
            String::new()
        }
    );
    0
}

fn cmd_serve(args: &[String]) -> i32 {
    let flags = match parse_flags(
        args,
        &["models", "addr", "workers", "reactors", "workloads"],
    ) {
        Ok(f) => f,
        Err(e) => {
            eprintln!(
                "{e}\nusage: archdse serve --models <dir> [--addr host:port] [--workers N] [--reactors N] [--workloads <dir>]"
            );
            return 2;
        }
    };
    let Some(models) = flags.get("models") else {
        eprintln!("serve needs --models <dir> (create one with `archdse train`)");
        return 2;
    };
    let mut cfg = ServerConfig {
        addr: flags
            .get("addr")
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:8080".to_string()),
        workloads_dir: flags.get("workloads").cloned(),
        ..ServerConfig::default()
    };
    if let Some(w) = flags.get("workers") {
        match w.parse::<usize>() {
            Ok(n) if n > 0 => cfg.workers = n,
            _ => {
                eprintln!("--workers '{w}' is not a positive number");
                return 2;
            }
        }
    }
    if let Some(r) = flags.get("reactors") {
        match r.parse::<usize>() {
            Ok(n) if n > 0 => cfg.reactors = n,
            _ => {
                eprintln!("--reactors '{r}' is not a positive number");
                return 2;
            }
        }
    }
    let registry = match ModelRegistry::open(models) {
        Ok(r) => std::sync::Arc::new(r),
        Err(e) => {
            eprintln!("failed to load models from '{models}': {e}");
            return 1;
        }
    };
    let metrics: Vec<String> = registry.metrics().iter().map(|m| m.to_string()).collect();
    let server = match Server::start(registry, &cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to bind {}: {e}", cfg.addr);
            return 1;
        }
    };
    println!(
        "dse-serve listening on {} ({} workers, {} reactors, metrics: {})",
        server.local_addr(),
        cfg.workers,
        cfg.reactors,
        metrics.join(", ")
    );
    if let Some(n) = server.workload_count() {
        println!("workload store: {n} imported workload(s)");
    }
    println!("stop with: archdse client {} shutdown", server.local_addr());
    server.wait();
    println!("drained, bye");
    0
}

fn cmd_client(args: &[String]) -> i32 {
    let (Some(addr), Some(verb)) = (args.first(), args.get(1)) else {
        eprintln!("usage: archdse client <addr> <health|fit|predict|flight|shutdown> [args]");
        return 2;
    };
    let mut client = Client::new(addr.clone());
    let rest = &args[2..];
    let result = match verb.as_str() {
        "health" => client.healthz().map(|v| dse_util::json::to_string(&v)),
        "shutdown" => client.shutdown().map(|v| dse_util::json::to_string(&v)),
        "fit" => return client_fit(&mut client, rest),
        "predict" => return client_predict(&mut client, rest),
        "flight" => return client_flight(&mut client, rest),
        "workloads" => return client_workloads(&mut client),
        "import" => return client_import(&mut client, rest),
        other => {
            eprintln!("unknown client verb '{other}'");
            return 2;
        }
    };
    match result {
        Ok(text) => {
            println!("{text}");
            0
        }
        Err(e) => {
            eprintln!("{e}");
            1
        }
    }
}

/// `client <addr> flight [request-id]`: the server's flight-recorder
/// ring as JSONL, optionally filtered to one request's event chain.
fn client_flight(client: &mut Client, args: &[String]) -> i32 {
    let path = match args.first() {
        Some(id) => {
            if id.parse::<u64>().is_err() {
                eprintln!("bad request id '{id}'");
                return 2;
            }
            format!("/v1/obs/flight?request={id}")
        }
        None => "/v1/obs/flight".to_string(),
    };
    match client.get(&path) {
        Ok(resp) if resp.status == 200 => {
            print!("{}", resp.text().unwrap_or("<binary>"));
            0
        }
        Ok(resp) => {
            eprintln!(
                "server answered {}: {}",
                resp.status,
                resp.text().unwrap_or("<binary>")
            );
            1
        }
        Err(e) => {
            eprintln!("{e}");
            1
        }
    }
}

/// `client <addr> workloads`: the server-side workload catalog.
fn client_workloads(client: &mut Client) -> i32 {
    match client.get("/v1/workloads") {
        Ok(resp) if resp.status == 200 => {
            println!("{}", resp.text().unwrap_or("<binary>"));
            0
        }
        Ok(resp) => {
            eprintln!(
                "server answered {}: {}",
                resp.status,
                resp.text().unwrap_or("<binary>")
            );
            1
        }
        Err(e) => {
            eprintln!("{e}");
            1
        }
    }
}

/// `client <addr> import <file>`: POSTs a profile document to the
/// server's workload store.
fn client_import(client: &mut Client, args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        eprintln!("usage: archdse client <addr> import <file>");
        return 2;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read '{path}': {e}");
            return 1;
        }
    };
    match client.post("/v1/workloads", &text) {
        Ok(resp) if resp.status == 201 => {
            println!("{}", resp.text().unwrap_or("<binary>"));
            0
        }
        Ok(resp) => {
            eprintln!(
                "server answered {}: {}",
                resp.status,
                resp.text().unwrap_or("<binary>")
            );
            1
        }
        Err(e) => {
            eprintln!("{e}");
            1
        }
    }
}

/// Simulates `r` responses of a benchmark at the server's shared sample
/// configurations and fits it online — the paper's §5.3 protocol spoken
/// over HTTP.
fn client_fit(client: &mut Client, args: &[String]) -> i32 {
    let Some(bench) = args.first() else {
        eprintln!("usage: archdse client <addr> fit <benchmark> [metric] [r=N] [workloads=<dir>]");
        return 2;
    };
    let mut metric = Metric::Cycles;
    let mut r = 32usize;
    let mut workloads: Option<String> = None;
    for arg in &args[1..] {
        if let Some(v) = arg.strip_prefix("r=") {
            match v.parse() {
                Ok(n) if n > 0 => r = n,
                _ => {
                    eprintln!("bad response count '{v}'");
                    return 2;
                }
            }
        } else if let Some(v) = arg.strip_prefix("workloads=") {
            workloads = Some(v.to_string());
        } else {
            match parse_metric(arg) {
                Ok(m) => metric = m,
                Err(e) => {
                    eprintln!("{e}");
                    return 2;
                }
            }
        }
    }
    let profile = match find_profile_in(bench, workloads.as_deref()) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    // Ask the server which configurations its sample holds, then simulate
    // the new program on the first R of them.
    let resp = match client.get(&format!("/v1/configs?limit={r}&metric={metric:?}")) {
        Ok(resp) if resp.status == 200 => resp,
        Ok(resp) => {
            eprintln!(
                "server answered {}: {}",
                resp.status,
                resp.text().unwrap_or("<binary>")
            );
            return 1;
        }
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    let parsed = match resp.json() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    let entries = match parsed.field("configs").and_then(|v| v.as_array()) {
        Ok(a) => a.to_vec(),
        Err(e) => {
            eprintln!("bad /v1/configs response: {e}");
            return 1;
        }
    };
    let trace = protocol::trace(&profile);
    let options = protocol::options();
    let mut responses = Vec::with_capacity(entries.len());
    eprintln!("simulating {} responses of '{bench}' ...", entries.len());
    for entry in &entries {
        let (index, config) = match (
            entry.field("index").and_then(usize::from_json),
            entry.field("config").and_then(Config::from_json),
        ) {
            (Ok(i), Ok(c)) => (i, c),
            (i, c) => {
                for e in [
                    i.err().map(|e| e.to_string()),
                    c.err().map(|e| e.to_string()),
                ]
                .into_iter()
                .flatten()
                {
                    eprintln!("bad /v1/configs entry: {e}");
                }
                return 1;
            }
        };
        let metrics = simulate(&config, &trace, options);
        responses.push((index, metrics.get(metric)));
    }
    match client.fit(bench, metric, &responses) {
        Ok(summary) => {
            println!("{}", dse_util::json::to_string(&summary));
            0
        }
        Err(e) => {
            eprintln!("{e}");
            1
        }
    }
}

fn client_predict(client: &mut Client, args: &[String]) -> i32 {
    let Some(program) = args.first() else {
        eprintln!("usage: archdse client <addr> predict <program> [metric] [key=value ...]");
        return 2;
    };
    let mut metric = Metric::Cycles;
    let mut overrides = Vec::new();
    for arg in &args[1..] {
        if arg.contains('=') {
            overrides.push(arg.clone());
        } else {
            match parse_metric(arg) {
                Ok(m) => metric = m,
                Err(e) => {
                    eprintln!("{e}");
                    return 2;
                }
            }
        }
    }
    let config = match parse_config(&overrides) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    // Speak /v1/predict directly (rather than through `Client::predict`)
    // so the response's `x-archdse-request-id` header can ride along in
    // the output — it is the key into `client <addr> flight <id>`.
    let body = Json::obj([
        ("program", program.as_str().to_json()),
        ("metric", metric.to_json()),
        ("config", config.to_json()),
    ]);
    let resp = match client.post("/v1/predict", &dse_util::json::to_string(&body)) {
        Ok(resp) if resp.status == 200 => resp,
        Ok(resp) => {
            eprintln!(
                "server answered {}: {}",
                resp.status,
                resp.text().unwrap_or("<binary>")
            );
            return 1;
        }
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    let request_id = resp
        .header("x-archdse-request-id")
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0);
    let parsed = match resp.json() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    let (value, cached) = match (
        parsed.field("value").and_then(f64::from_json),
        parsed.field("cached").and_then(bool::from_json),
    ) {
        (Ok(v), Ok(c)) => (v, c),
        (v, c) => {
            for e in [v.err(), c.err()].into_iter().flatten() {
                eprintln!("bad /v1/predict response: {e}");
            }
            return 1;
        }
    };
    let out = Json::obj([
        ("program", program.as_str().to_json()),
        ("metric", metric.to_json()),
        ("value", value.to_json()),
        ("cached", cached.to_json()),
        ("request_id", request_id.to_json()),
    ]);
    println!("{}", dse_util::json::to_string(&out));
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_config_applies_overrides() {
        let args: Vec<String> = vec!["width=8".into(), "rf_read=16".into(), "rf_write=8".into()];
        let cfg = parse_config(&args).unwrap();
        assert_eq!(cfg.width, 8);
        assert_eq!(cfg.rf_read, 16);
        assert_eq!(cfg.rob, Config::baseline().rob);
    }

    #[test]
    fn parse_config_rejects_unknown_key() {
        let err = parse_config(&["potato=4".to_string()]).unwrap_err();
        assert!(err.contains("unknown parameter"));
    }

    #[test]
    fn parse_config_rejects_illegal_combination() {
        // width 2 with baseline's 8 read ports violates the filter.
        let err = parse_config(&["width=2".to_string()]).unwrap_err();
        assert!(err.contains("legality"));
    }

    #[test]
    fn parse_config_rejects_non_numeric() {
        let err = parse_config(&["width=four".to_string()]).unwrap_err();
        assert!(err.contains("not a number"));
    }

    #[test]
    fn find_profile_knows_the_suites() {
        assert!(find_profile("gzip").is_ok());
        assert!(find_profile("tiff2rgba").is_ok());
        assert!(find_profile("doom").is_err());
    }

    #[test]
    fn parse_flags_requires_known_flags_with_values() {
        let ok = parse_flags(
            &["--out".to_string(), "models".to_string()],
            &["out", "addr"],
        )
        .unwrap();
        assert_eq!(ok.get("out").map(String::as_str), Some("models"));
        assert!(parse_flags(&["--nope".to_string(), "x".to_string()], &["out"]).is_err());
        assert!(parse_flags(&["--out".to_string()], &["out"]).is_err());
        assert!(parse_flags(&["out".to_string()], &["out"]).is_err());
    }

    #[test]
    fn parse_metric_accepts_both_spellings() {
        assert_eq!(parse_metric("cycles").unwrap(), Metric::Cycles);
        assert_eq!(parse_metric("Cycles").unwrap(), Metric::Cycles);
        assert_eq!(parse_metric("ED").unwrap(), Metric::Ed);
        assert_eq!(parse_metric("edd").unwrap(), Metric::Edd);
        assert!(parse_metric("watts").is_err());
    }
}
