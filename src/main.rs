//! `archdse` command-line interface.
//!
//! Small utility front end over the library:
//!
//! ```text
//! archdse space                         # design-space summary (Table 1)
//! archdse benchmarks                    # list workload profiles
//! archdse simulate <bench> [key=value]  # run one benchmark on one config
//! archdse predict <bench> [r=32]        # demo: predict <bench> from the
//!                                       # other SPEC programs' knowledge
//! ```
//!
//! Configuration overrides use the paper-vector field names:
//! `width rob iq lsq rf rf_read rf_write bpred btb branches icache dcache l2`
//! (caches in KB, predictor/BTB in K-entries), e.g.
//! `archdse simulate gzip width=8 l2=4096`.

use archdse::prelude::*;
use dse_space::raw_space_size;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("space") => cmd_space(),
        Some("benchmarks") => cmd_benchmarks(),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("predict") => cmd_predict(&args[1..]),
        _ => {
            eprintln!(
                "usage: archdse <space|benchmarks|simulate|predict> [args]\n\
                 see crate docs for details"
            );
            2
        }
    };
    std::process::exit(code);
}

fn cmd_space() -> i32 {
    println!("design space: {} raw points", raw_space_size());
    for def in dse_space::PARAMS.iter() {
        println!(
            "  {:10} {:12} {:>4} values: {:?}",
            def.name,
            def.unit,
            def.len(),
            def.values
        );
    }
    println!("baseline: {}", Config::baseline());
    0
}

fn cmd_benchmarks() -> i32 {
    for p in archdse::workload::suites::all_benchmarks() {
        println!(
            "{:14} {:14} code {:4} KB  data {:6} KB  branch rate {:.2}",
            p.name,
            p.suite.to_string(),
            p.code_kb,
            p.data_kb,
            p.branch_fraction()
        );
    }
    0
}

/// Parses `key=value` overrides onto the baseline configuration.
fn parse_config(args: &[String]) -> Result<Config, String> {
    let mut cfg = Config::baseline();
    for arg in args {
        let Some((key, value)) = arg.split_once('=') else {
            return Err(format!("expected key=value, got '{arg}'"));
        };
        let v: u32 = value
            .parse()
            .map_err(|_| format!("'{value}' is not a number in '{arg}'"))?;
        match key {
            "width" => cfg.width = v,
            "rob" => cfg.rob = v,
            "iq" => cfg.iq = v,
            "lsq" => cfg.lsq = v,
            "rf" => cfg.rf = v,
            "rf_read" => cfg.rf_read = v,
            "rf_write" => cfg.rf_write = v,
            "bpred" => cfg.bpred_k = v,
            "btb" => cfg.btb_k = v,
            "branches" => cfg.max_branches = v,
            "icache" => cfg.icache_kb = v,
            "dcache" => cfg.dcache_kb = v,
            "l2" => cfg.l2_kb = v,
            other => return Err(format!("unknown parameter '{other}'")),
        }
    }
    if !cfg.is_legal() {
        return Err(format!("configuration fails the legality filter: {cfg}"));
    }
    Ok(cfg)
}

fn find_profile(name: &str) -> Result<Profile, String> {
    archdse::workload::suites::all_benchmarks()
        .into_iter()
        .find(|p| p.name == name)
        .ok_or_else(|| format!("unknown benchmark '{name}' (try `archdse benchmarks`)"))
}

fn cmd_simulate(args: &[String]) -> i32 {
    let Some(bench) = args.first() else {
        eprintln!("usage: archdse simulate <benchmark> [--sanitize] [key=value ...]");
        return 2;
    };
    let profile = match find_profile(bench) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let sanitize = args[1..].iter().any(|a| a == "--sanitize");
    let overrides: Vec<String> = args[1..]
        .iter()
        .filter(|a| *a != "--sanitize")
        .cloned()
        .collect();
    let cfg = match parse_config(&overrides) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let trace = TraceGenerator::new(&profile).generate(60_000);
    let options = SimOptions {
        sanitize,
        ..SimOptions::with_warmup(15_000)
    };
    let pipeline = archdse::sim::Pipeline::new(
        &cfg,
        &dse_space::ConstantParams::standard(),
        &trace,
        options,
    );
    let r = match pipeline.try_run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    let m = archdse::sim::Metrics::from_result(&r);
    println!("benchmark : {bench}");
    println!("config    : {cfg}");
    println!("IPC       : {:.3}", r.ipc);
    println!(
        "L1I/L1D/L2 miss: {:.2}% / {:.2}% / {:.2}%",
        100.0 * r.l1i_miss_rate,
        100.0 * r.l1d_miss_rate,
        100.0 * r.l2_miss_rate
    );
    println!("bpred miss: {:.2}%", 100.0 * r.bpred_miss_rate);
    println!("cycles    : {:.4e} /10M-instr phase", m.cycles);
    println!("energy    : {:.4e} nJ", m.energy);
    println!("ED / EDD  : {:.4e} / {:.4e}", m.ed, m.edd);
    0
}

fn cmd_predict(args: &[String]) -> i32 {
    let Some(bench) = args.first() else {
        eprintln!("usage: archdse predict <benchmark> [r=32]");
        return 2;
    };
    let mut r = 32usize;
    for arg in &args[1..] {
        if let Some(v) = arg.strip_prefix("r=") {
            match v.parse() {
                Ok(n) => r = n,
                Err(_) => {
                    eprintln!("bad response count '{v}'");
                    return 2;
                }
            }
        }
    }
    if find_profile(bench).is_err() {
        eprintln!("unknown benchmark '{bench}' (try `archdse benchmarks`)");
        return 2;
    }

    // Demo-scale protocol so the command finishes in ~a minute on one core.
    let mut profiles: Vec<Profile> = archdse::workload::suites::spec2000()
        .into_iter()
        .filter(|p| p.name != bench)
        .take(8)
        .collect();
    profiles.push(find_profile(bench).expect("checked above"));
    let spec = DatasetSpec {
        n_configs: 200,
        trace_len: 30_000,
        warmup: 6_000,
        seed: 21,
    };
    eprintln!(
        "simulating {} training programs + target ...",
        profiles.len() - 1
    );
    let ds = SuiteDataset::generate(&profiles, &spec);
    let target = ds.benchmarks.len() - 1;
    let train_rows: Vec<usize> = (0..target).collect();
    let offline = OfflineModel::train(
        &ds,
        &train_rows,
        Metric::Cycles,
        150,
        &MlpConfig::default(),
        2,
    );
    let idxs: Vec<usize> = (0..r.min(ds.n_configs() / 2)).collect();
    let vals: Vec<f64> = idxs
        .iter()
        .map(|&i| ds.benchmarks[target].metrics[i].cycles)
        .collect();
    let predictor = offline.fit_responses(&ds, &idxs, &vals);
    let features = ds.features();
    let preds: Vec<f64> = (idxs.len()..ds.n_configs())
        .map(|i| predictor.predict(&features[i]))
        .collect();
    let actual: Vec<f64> = (idxs.len()..ds.n_configs())
        .map(|i| ds.benchmarks[target].metrics[i].cycles)
        .collect();
    println!(
        "predicted {} unseen configurations of '{bench}' from {} responses:",
        preds.len(),
        idxs.len()
    );
    println!(
        "  rmae        : {:.1}%",
        dse_ml::stats::rmae(&preds, &actual)
    );
    println!(
        "  correlation : {:.3}",
        dse_ml::stats::correlation(&preds, &actual)
    );
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_config_applies_overrides() {
        let args: Vec<String> = vec!["width=8".into(), "rf_read=16".into(), "rf_write=8".into()];
        let cfg = parse_config(&args).unwrap();
        assert_eq!(cfg.width, 8);
        assert_eq!(cfg.rf_read, 16);
        assert_eq!(cfg.rob, Config::baseline().rob);
    }

    #[test]
    fn parse_config_rejects_unknown_key() {
        let err = parse_config(&["potato=4".to_string()]).unwrap_err();
        assert!(err.contains("unknown parameter"));
    }

    #[test]
    fn parse_config_rejects_illegal_combination() {
        // width 2 with baseline's 8 read ports violates the filter.
        let err = parse_config(&["width=2".to_string()]).unwrap_err();
        assert!(err.contains("legality"));
    }

    #[test]
    fn parse_config_rejects_non_numeric() {
        let err = parse_config(&["width=four".to_string()]).unwrap_err();
        assert!(err.contains("not a number"));
    }

    #[test]
    fn find_profile_knows_the_suites() {
        assert!(find_profile("gzip").is_ok());
        assert!(find_profile("tiff2rgba").is_ok());
        assert!(find_profile("doom").is_err());
    }
}
