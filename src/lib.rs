//! # archdse
//!
//! A from-scratch Rust reproduction of *"Microarchitectural Design Space
//! Exploration Using an Architecture-Centric Approach"* (Dubach, Jones,
//! O'Boyle — MICRO 2007; journal version IEEE TC 2011).
//!
//! The paper's idea: instead of training a fresh predictor for every new
//! program (hundreds of simulations each), train program-specific neural
//! networks **once, offline**, on a set of training benchmarks — then
//! characterise any *new* program with just **32 simulations**
//! ("responses") by fitting a linear combination of the training programs'
//! design spaces. The combined model predicts cycles, energy, ED or ED²
//! anywhere in an 18-billion-point microarchitectural design space.
//!
//! This crate is a facade over the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`rng`] | `dse-rng` | deterministic PRNG + distributions |
//! | [`space`] | `dse-space` | the 13-parameter design space (Table 1/2) |
//! | [`workload`] | `dse-workload` | synthetic SPEC CPU 2000 / MiBench stand-ins |
//! | [`sim`] | `dse-sim` | cycle-level out-of-order simulator + Wattch-style energy |
//! | [`ingest`] | `dse-ingest` | workload interchange format, trace importer, profile fuzzer, store |
//! | [`ml`] | `dse-ml` | MLP, linear regression, stats, clustering |
//! | [`core`] | `dse-core` | the architecture-centric predictor + evaluation harness |
//! | [`explore`] | `dse-explore` | Pareto-frontier explorer: predictor-guided acquisition |
//! | [`serve`] | `dse-serve` | HTTP prediction server, model artifact store, client |
//! | [`obs`] | `dse-obs` | metrics registry, tracing spans, structured logging |
//!
//! # Quick start
//!
//! ```
//! use archdse::prelude::*;
//!
//! // Simulate one benchmark on one configuration.
//! let profile = archdse::workload::suites::spec2000()
//!     .into_iter()
//!     .find(|p| p.name == "gzip")
//!     .unwrap();
//! let trace = TraceGenerator::new(&profile).generate(12_000);
//! let metrics = simulate(&Config::baseline(), &trace, SimOptions::with_warmup(2_000));
//! assert!(metrics.cycles > 0.0);
//! ```
//!
//! See `examples/` for end-to-end design-space exploration and
//! `crates/bench/src/bin/` for the binaries that regenerate every table
//! and figure of the paper.

pub use dse_core as core;
pub use dse_explore as explore;
pub use dse_ingest as ingest;
pub use dse_ml as ml;
pub use dse_obs as obs;
pub use dse_rng as rng;
pub use dse_serve as serve;
pub use dse_sim as sim;
pub use dse_space as space;
pub use dse_workload as workload;

/// The most common imports in one place.
pub mod prelude {
    pub use dse_core::arch_centric::{ArchCentricPredictor, OfflineModel};
    pub use dse_core::dataset::{DatasetSpec, SuiteDataset};
    pub use dse_core::program_specific::ProgramSpecificPredictor;
    pub use dse_ml::{LinearRegression, Mlp, MlpConfig};
    pub use dse_sim::{simulate, Metric, Metrics, SimOptions};
    pub use dse_space::{Config, Param};
    pub use dse_workload::{Profile, Suite, Trace, TraceGenerator};
}
