//! Simulator sanitizer: microarchitectural invariant checking.
//!
//! Every `(config → metric)` point the ML layer learns from is produced by
//! this simulator, so a silent accounting bug poisons the whole
//! reproduction. The [`InvariantChecker`] is the trust anchor: wired into
//! the pipeline, cache, branch and energy layers, it re-derives structural
//! invariants every cycle and reconciles all cross-layer statistics at the
//! end of a run.
//!
//! Enablement policy (see [`sanitize_default`]):
//!
//! * `ARCHDSE_SANITIZE=1` forces the checker on (including release builds);
//! * `ARCHDSE_SANITIZE=0` forces it off;
//! * otherwise it is on in debug builds (so `cargo test` always runs
//!   sanitized) and off in release builds — zero-cost for benchmarks and
//!   dataset generation unless explicitly requested.
//!
//! Checked invariants:
//!
//! * **Commit order** — the ROB retires trace indices in strictly
//!   sequential order and only after their completion cycle has passed;
//! * **Occupancy** — ROB / IQ / LSQ / physical-register occupancy never
//!   exceeds the configured capacity, and every in-flight instruction is
//!   accounted for (fetched = committed + ROB + fetch queue);
//! * **Port grants** — register-file read and write port grants per cycle
//!   never exceed the configured port counts, and memory issues never
//!   exceed the cache ports;
//! * **Cache accounting** — per level, misses ≤ accesses, the pipeline's
//!   event counters agree with the caches' own counters, L1 misses equal
//!   L2 accesses, and L2 misses equal memory accesses;
//! * **Branch accounting** — mispredictions ≤ predictions and predictor
//!   lookups equal the branch count seen by fetch;
//! * **Energy reconciliation** — the per-structure energy breakdown sums
//!   to the reported total, and every component is finite and
//!   non-negative;
//! * **Completion** — the run retires exactly the trace length.

use std::sync::OnceLock;

/// A violated invariant: which check failed, when, and the evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckError {
    /// Cycle at which the violation was detected (0 for end-of-run checks).
    pub cycle: u64,
    /// Short stable name of the violated invariant.
    pub invariant: &'static str,
    /// Human-readable evidence (observed vs expected values).
    pub message: String,
}

impl CheckError {
    /// Builds an error for `invariant` at `cycle`.
    pub fn new(cycle: u64, invariant: &'static str, message: impl Into<String>) -> Self {
        Self {
            cycle,
            invariant,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sanitizer: invariant `{}` violated at cycle {}: {}",
            self.invariant, self.cycle, self.message
        )
    }
}

impl std::error::Error for CheckError {}

/// Whether the sanitizer should be enabled by default for this process:
/// `ARCHDSE_SANITIZE=1` forces on, `=0` forces off, otherwise debug builds
/// (and therefore `cargo test`) sanitize and release builds do not.
pub fn sanitize_default() -> bool {
    static DEFAULT: OnceLock<bool> = OnceLock::new();
    *DEFAULT.get_or_init(|| match std::env::var("ARCHDSE_SANITIZE") {
        Ok(v) if v == "1" || v.eq_ignore_ascii_case("true") => true,
        Ok(v) if v == "0" || v.eq_ignore_ascii_case("false") => false,
        _ => cfg!(debug_assertions),
    })
}

/// Occupancy snapshot of the pipeline's windowed structures for one cycle.
#[derive(Debug, Clone, Copy)]
pub struct Occupancy {
    /// Reorder-buffer entries in use.
    pub rob: usize,
    /// Issue-queue entries in use.
    pub iq: usize,
    /// Load/store-queue entries in use.
    pub lsq: u32,
    /// Physical (rename) registers in use.
    pub phys: u32,
    /// Fetch-queue entries in use.
    pub fetch_q: usize,
    /// Unresolved in-flight branches.
    pub branches: usize,
    /// Instructions fetched from the trace so far.
    pub fetched: usize,
    /// Instructions committed so far.
    pub committed: usize,
}

/// Capacity bounds the occupancy must respect (derived from the `Config`).
#[derive(Debug, Clone, Copy)]
pub struct Bounds {
    /// ROB capacity.
    pub rob: usize,
    /// IQ capacity.
    pub iq: usize,
    /// LSQ capacity.
    pub lsq: u32,
    /// Rename (non-architectural) register count.
    pub phys: u32,
    /// Fetch-queue capacity.
    pub fetch_q: usize,
    /// In-flight branch limit.
    pub branches: usize,
}

/// Cycle-by-cycle invariant checker. One instance lives for one pipeline
/// run; the pipeline only calls it when sanitizing is enabled, so the cost
/// when disabled is a skipped `Option` branch per hook.
#[derive(Debug, Default)]
pub struct InvariantChecker {
    next_commit: usize,
}

impl InvariantChecker {
    /// Fresh checker for a new run.
    pub fn new() -> Self {
        Self::default()
    }

    /// Called for every retired instruction with its trace index and
    /// completion cycle. Enforces strictly sequential, post-completion
    /// commit.
    pub fn on_commit(&mut self, idx: usize, complete: u64, cycle: u64) -> Result<(), CheckError> {
        if idx != self.next_commit {
            return Err(CheckError::new(
                cycle,
                "commit-order",
                format!(
                    "retired trace index {idx} but expected {} (out-of-order or skipped commit)",
                    self.next_commit
                ),
            ));
        }
        if complete > cycle {
            return Err(CheckError::new(
                cycle,
                "commit-before-complete",
                format!("retired index {idx} completing at cycle {complete} > commit cycle"),
            ));
        }
        self.next_commit += 1;
        Ok(())
    }

    /// Called once per cycle with the current occupancy snapshot.
    pub fn on_cycle(&self, occ: &Occupancy, bounds: &Bounds, cycle: u64) -> Result<(), CheckError> {
        let fail = |invariant, msg: String| Err(CheckError::new(cycle, invariant, msg));
        if occ.rob > bounds.rob {
            return fail("rob-occupancy", format!("{} > {}", occ.rob, bounds.rob));
        }
        if occ.iq > bounds.iq {
            return fail("iq-occupancy", format!("{} > {}", occ.iq, bounds.iq));
        }
        if occ.lsq > bounds.lsq {
            return fail("lsq-occupancy", format!("{} > {}", occ.lsq, bounds.lsq));
        }
        if occ.phys > bounds.phys {
            return fail("rf-occupancy", format!("{} > {}", occ.phys, bounds.phys));
        }
        if occ.fetch_q > bounds.fetch_q {
            return fail(
                "fetchq-occupancy",
                format!("{} > {}", occ.fetch_q, bounds.fetch_q),
            );
        }
        if occ.branches > bounds.branches {
            return fail(
                "branch-limit",
                format!("{} > {}", occ.branches, bounds.branches),
            );
        }
        // Conservation: every fetched instruction is either committed,
        // waiting in the fetch queue, or live in the ROB.
        let accounted = occ.committed + occ.rob + occ.fetch_q;
        if occ.fetched != accounted {
            return fail(
                "inflight-conservation",
                format!(
                    "fetched {} != committed {} + rob {} + fetch_q {}",
                    occ.fetched, occ.committed, occ.rob, occ.fetch_q
                ),
            );
        }
        Ok(())
    }

    /// Called at the end of each issue scan with the port grants used.
    pub fn on_issue(
        &self,
        rf_reads: u32,
        rf_read_ports: u32,
        mem_issues: u32,
        mem_ports: u32,
        cycle: u64,
    ) -> Result<(), CheckError> {
        if rf_reads > rf_read_ports {
            return Err(CheckError::new(
                cycle,
                "rf-read-ports",
                format!("granted {rf_reads} reads with {rf_read_ports} ports"),
            ));
        }
        if mem_issues > mem_ports {
            return Err(CheckError::new(
                cycle,
                "cache-ports",
                format!("issued {mem_issues} memory ops with {mem_ports} cache ports"),
            ));
        }
        Ok(())
    }

    /// Called when a write-back port slot is granted: the slot's grant
    /// count after reservation must not exceed the write-port count.
    pub fn on_writeback_grant(
        &self,
        grants: u32,
        rf_write_ports: u32,
        cycle: u64,
    ) -> Result<(), CheckError> {
        if grants > rf_write_ports {
            return Err(CheckError::new(
                cycle,
                "rf-write-ports",
                format!("granted {grants} writes with {rf_write_ports} ports"),
            ));
        }
        Ok(())
    }

    /// Number of instructions the checker has seen retire.
    pub fn committed(&self) -> usize {
        self.next_commit
    }

    /// End-of-run check: the run must have retired exactly `trace_len`
    /// instructions.
    pub fn on_finish(&self, trace_len: usize) -> Result<(), CheckError> {
        if self.next_commit != trace_len {
            return Err(CheckError::new(
                0,
                "commit-count",
                format!(
                    "retired {} of {} trace instructions",
                    self.next_commit, trace_len
                ),
            ));
        }
        Ok(())
    }
}

/// Reconciles two counts that must be exactly equal, as an end-of-run
/// cross-layer check (e.g. the pipeline's L2 event counter against the L2
/// cache's own access counter).
pub fn reconcile(invariant: &'static str, observed: u64, expected: u64) -> Result<(), CheckError> {
    if observed != expected {
        return Err(CheckError::new(
            0,
            invariant,
            format!("observed {observed}, expected {expected}"),
        ));
    }
    Ok(())
}

/// End-of-run energy reconciliation: every per-structure component must be
/// finite and non-negative, and the breakdown must sum to the reported
/// total within floating-point tolerance.
pub fn check_energy(
    counters: &crate::energy::EnergyCounters,
    model: &crate::energy::EnergyModel,
) -> Result<(), CheckError> {
    let mut sum = 0.0;
    for (name, e) in counters.components_nj(model) {
        if !e.is_finite() || e < 0.0 {
            return Err(CheckError::new(
                0,
                "energy-component",
                format!("component `{name}` is {e} nJ (must be finite and non-negative)"),
            ));
        }
        sum += e;
    }
    let total = counters.total_nj(model);
    let tol = 1e-9 * total.abs().max(1.0);
    if (sum - total).abs() > tol {
        return Err(CheckError::new(
            0,
            "energy-total",
            format!("breakdown sums to {sum} nJ but total is {total} nJ"),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounds() -> Bounds {
        Bounds {
            rob: 96,
            iq: 32,
            lsq: 48,
            phys: 64,
            fetch_q: 16,
            branches: 16,
        }
    }

    fn occ() -> Occupancy {
        Occupancy {
            rob: 10,
            iq: 5,
            lsq: 3,
            phys: 8,
            fetch_q: 4,
            branches: 2,
            fetched: 34,
            committed: 20,
        }
    }

    #[test]
    fn sequential_commit_passes() {
        let mut c = InvariantChecker::new();
        for i in 0..10 {
            c.on_commit(i, i as u64, 100).unwrap();
        }
        assert_eq!(c.committed(), 10);
        c.on_finish(10).unwrap();
    }

    #[test]
    fn skipped_commit_is_caught() {
        let mut c = InvariantChecker::new();
        c.on_commit(0, 1, 10).unwrap();
        let e = c.on_commit(2, 1, 10).unwrap_err();
        assert_eq!(e.invariant, "commit-order");
        assert!(e.message.contains("expected 1"));
    }

    #[test]
    fn commit_before_completion_is_caught() {
        let mut c = InvariantChecker::new();
        let e = c.on_commit(0, 50, 10).unwrap_err();
        assert_eq!(e.invariant, "commit-before-complete");
    }

    #[test]
    fn occupancy_within_bounds_passes() {
        InvariantChecker::new()
            .on_cycle(&occ(), &bounds(), 7)
            .unwrap();
    }

    #[test]
    fn rob_overflow_is_caught() {
        let mut o = occ();
        o.rob = 97;
        // Keep conservation satisfied so the capacity check is what fires.
        o.fetched = o.committed + o.rob + o.fetch_q;
        let e = InvariantChecker::new()
            .on_cycle(&o, &bounds(), 7)
            .unwrap_err();
        assert_eq!(e.invariant, "rob-occupancy");
    }

    #[test]
    fn leaked_instruction_is_caught() {
        let mut o = occ();
        o.fetched += 1; // one fetched instruction is in no structure
        let e = InvariantChecker::new()
            .on_cycle(&o, &bounds(), 9)
            .unwrap_err();
        assert_eq!(e.invariant, "inflight-conservation");
    }

    #[test]
    fn port_overgrant_is_caught() {
        let c = InvariantChecker::new();
        assert!(c.on_issue(8, 8, 2, 2, 1).is_ok());
        assert_eq!(
            c.on_issue(9, 8, 0, 2, 1).unwrap_err().invariant,
            "rf-read-ports"
        );
        assert_eq!(
            c.on_issue(0, 8, 3, 2, 1).unwrap_err().invariant,
            "cache-ports"
        );
        assert_eq!(
            c.on_writeback_grant(5, 4, 1).unwrap_err().invariant,
            "rf-write-ports"
        );
    }

    #[test]
    fn short_retirement_is_caught() {
        let mut c = InvariantChecker::new();
        c.on_commit(0, 0, 1).unwrap();
        let e = c.on_finish(2).unwrap_err();
        assert_eq!(e.invariant, "commit-count");
        assert!(e.message.contains("1 of 2"));
    }

    #[test]
    fn reconcile_reports_both_values() {
        assert!(reconcile("x", 5, 5).is_ok());
        let e = reconcile("l2-accesses", 7, 9).unwrap_err();
        assert!(e.message.contains('7') && e.message.contains('9'));
    }

    #[test]
    fn error_display_names_the_invariant() {
        let e = CheckError::new(42, "rob-occupancy", "97 > 96");
        let s = e.to_string();
        assert!(s.contains("rob-occupancy") && s.contains("42") && s.contains("97 > 96"));
    }

    #[test]
    fn energy_check_accepts_a_healthy_model() {
        let cfg = dse_space::Config::baseline();
        let model = crate::energy::EnergyModel::new(&cfg, &dse_space::ConstantParams::standard());
        let counters = crate::energy::EnergyCounters {
            fetched: 100,
            cycles: 80,
            rf_reads: 150,
            fu_ops: [90, 4, 4, 2],
            ..Default::default()
        };
        check_energy(&counters, &model).unwrap();
    }

    /// In-repo mutation evidence: corrupting the energy model the way an
    /// accounting bug would (a NaN creeping into a per-event energy, or a
    /// negative leakage) is caught by the reconciliation pass.
    #[test]
    fn corrupted_energy_model_is_caught() {
        let cfg = dse_space::Config::baseline();
        let cons = dse_space::ConstantParams::standard();
        let counters = crate::energy::EnergyCounters {
            fetched: 100,
            cycles: 80,
            ..Default::default()
        };

        let mut nan_model = crate::energy::EnergyModel::new(&cfg, &cons);
        nan_model.fetch_decode = f64::NAN;
        let e = check_energy(&counters, &nan_model).unwrap_err();
        assert_eq!(e.invariant, "energy-component");
        assert!(e.message.contains("fetch-decode"));

        let mut neg_model = crate::energy::EnergyModel::new(&cfg, &cons);
        neg_model.leakage_per_cycle = -0.5;
        let e = check_energy(&counters, &neg_model).unwrap_err();
        assert_eq!(e.invariant, "energy-component");
        assert!(e.message.contains("leakage"));
    }
}
