//! Lockstep batched simulation: run N configurations per trace pass.
//!
//! A sweep simulates the *same* trace under many configurations, so the
//! per-instruction front-end work — I-cache tag probes, gshare lookups,
//! BTB target checks — is repeated per configuration even though its
//! outcome stream is **timing-independent**: branches are predicted in
//! program order no matter when fetch reaches them, and the I-cache access
//! pattern is a deterministic automaton over the trace and the
//! flow-correct bits (see [`FrontendPlans`]). This module exploits that in
//! two layers:
//!
//! 1. **Batched front-end kernels** — [`FrontendPlans::build`] runs one
//!    flat, fixed-stride kernel per *distinct* predictor / BTB / I-cache
//!    geometry in the batch, over shared structure-of-arrays branch
//!    columns, producing per-geometry outcome bitsets. B lanes sharing a
//!    geometry pay for it once instead of B times, and each kernel is a
//!    tight table-walk loop the compiler can optimise in isolation.
//! 2. **Lockstep stepping** — [`try_simulate_batch_records`] advances the
//!    lanes round-robin in [`LOCKSTEP_CHUNK`]-instruction turns over the
//!    *shared* borrowed trace, so all lanes stream the same trace window
//!    through the host cache together. Finished (or failed) lanes retire
//!    from the rotation; per-lane event-driven idle skipping keeps
//!    working unchanged inside each turn.
//!
//! The back end (issue timing, D-cache, L2, energy) is config- and
//! timing-dependent, so it stays fully live per lane; every lane is a
//! complete [`Pipeline`] and produces results **bit-identical** to the
//! scalar path (pinned by `tests/golden_sim.rs` and `tests/batch_sim.rs`).
//!
//! The sweep batch width is controlled by `ARCHDSE_BATCH`
//! ([`batch_width`]): unset or `0`/garbage means the default, `1` forces
//! the legacy scalar path.

use crate::branch::{Btb, Gshare};
use crate::cache::{Cache, CacheOutcome};
use crate::check::{self, CheckError};
use crate::obs::{NoObs, SimObs};
use crate::pipeline::{Pipeline, RunRecord, SimOptions};
use crate::Metrics;
use dse_space::{Config, ConstantParams};
use dse_workload::{meta, Trace};

/// Environment variable overriding the sweep batch width.
pub const BATCH_ENV: &str = "ARCHDSE_BATCH";

/// Default lockstep batch width: large enough to amortise the shared
/// front-end kernels and keep the shared trace window hot across lanes,
/// small enough that B sets of per-lane state stay cache-resident.
pub const DEFAULT_BATCH_WIDTH: usize = 8;

/// Instructions each lane commits per lockstep turn. Bounds how far lanes
/// drift apart on the shared trace (trace locality) while keeping the
/// turn overhead negligible against thousands of simulated cycles.
const LOCKSTEP_CHUNK: usize = 4096;

/// Sweep batch width: `ARCHDSE_BATCH` if set to a positive integer,
/// otherwise [`DEFAULT_BATCH_WIDTH`]. A width of 1 is the legacy scalar
/// path. Unparsable or zero values fall back to the default rather than
/// aborting a long run (mirroring `ARCHDSE_THREADS`). Read per call so
/// tests can vary it.
pub fn batch_width() -> usize {
    if let Ok(v) = std::env::var(BATCH_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    DEFAULT_BATCH_WIDTH
}

/// A packed bit vector; one bit per precomputed front-end outcome.
#[derive(Debug, Default, Clone)]
pub(crate) struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    fn with_capacity(bits: usize) -> Self {
        Self {
            words: Vec::with_capacity(bits / 64 + 1),
            len: 0,
        }
    }

    #[inline]
    fn push(&mut self, bit: bool) {
        if self.len & 63 == 0 {
            self.words.push(0);
        }
        self.words[self.len >> 6] |= (bit as u64) << (self.len & 63);
        self.len += 1;
    }

    #[inline]
    fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit {i} out of {}", self.len);
        (self.words[i >> 6] >> (i & 63)) & 1 != 0
    }

    fn len(&self) -> usize {
        self.len
    }
}

/// Precomputed direction predictions for one gshare geometry.
#[derive(Debug)]
struct BpPlan {
    /// Predicted direction per branch, in program order.
    pred: BitVec,
    /// The trained predictor, kept for end-of-run sanitizer checks.
    gshare: Gshare,
}

/// Precomputed target-correctness bits for one BTB geometry.
#[derive(Debug)]
struct BtbPlan {
    /// Whether the BTB held the branch's actual target at lookup time,
    /// per branch in program order.
    ok: BitVec,
    /// The trained BTB, kept for end-of-run sanitizer checks.
    btb: Btb,
}

/// Precomputed I-cache outcomes for one (I-cache geometry, predictor,
/// BTB) combination — the access *sequence* depends on the flow-correct
/// bits, so the cache alone does not determine it.
#[derive(Debug)]
struct IcPlan {
    /// Hit/miss per I-cache access, in access order.
    miss: BitVec,
    /// The warmed cache, kept for end-of-run sanitizer checks.
    cache: Cache,
}

/// Shared per-batch front-end outcome plans.
///
/// The front end of [`Pipeline`] is timing-independent, which makes its
/// outcome streams precomputable:
///
/// * **branches** are fetched in program order and each is predicted and
///   trained exactly once, so the gshare/BTB input sequence `(pc, taken,
///   target)` is the trace's branch substream regardless of timing;
/// * **I-cache accesses** follow a deterministic automaton: fetch
///   accesses the cache when the line of the next PC differs from the
///   last fetched line, and the line register resets (forcing a re-access
///   even within a line) only after a *correctly-predicted taken* branch
///   — a function of the plan's own prediction bits. Stall replays
///   (I-cache miss, mispredict block, branch-limit retry) re-enter fetch
///   at the same position with the line register unchanged, so they never
///   re-access.
///
/// [`FrontendPlans::build`] therefore runs one kernel per *distinct*
/// geometry over shared structure-of-arrays branch columns and hands each
/// lane a cursor ([`PlanLane`]) over the matching outcome bitsets.
#[derive(Debug)]
pub struct FrontendPlans {
    bp: Vec<BpPlan>,
    btbs: Vec<BtbPlan>,
    ics: Vec<IcPlan>,
    /// Per-config plan indices `(bp, btb, ic)`.
    lanes: Vec<(usize, usize, usize)>,
}

impl FrontendPlans {
    /// Precomputes front-end outcome plans for `cfgs` over `trace`.
    pub fn build(cfgs: &[Config], cons: &ConstantParams, trace: &Trace) -> Self {
        let metas = trace.metas();
        let pcs = trace.pcs();
        let takens = trace.takens();
        let targets = trace.targets();
        let n = trace.len();

        // Shared SoA branch substream: every predictor/BTB kernel walks
        // these columns, so they are extracted once per batch.
        let n_branches = metas.iter().filter(|&&m| m & meta::IS_BRANCH != 0).count();
        let mut bpc: Vec<u64> = Vec::with_capacity(n_branches);
        let mut btk: Vec<bool> = Vec::with_capacity(n_branches);
        let mut btg: Vec<u32> = Vec::with_capacity(n_branches);
        for i in 0..n {
            if metas[i] & meta::IS_BRANCH != 0 {
                bpc.push(pcs[i] as u64);
                btk.push(takens[i]);
                btg.push(targets[i]);
            }
        }

        // Dedupe geometries: lanes sharing a predictor size (etc.) share
        // one plan. The I-cache plan is keyed by the (cache, predictor,
        // BTB) triple because the access sequence depends on the
        // flow-correct bits.
        let mut bp_keys: Vec<u64> = Vec::new();
        let mut btb_keys: Vec<u64> = Vec::new();
        let mut ic_keys: Vec<(u64, usize, usize)> = Vec::new();
        let mut lanes = Vec::with_capacity(cfgs.len());
        let intern = |keys: &mut Vec<u64>, k: u64| match keys.iter().position(|&x| x == k) {
            Some(i) => i,
            None => {
                keys.push(k);
                keys.len() - 1
            }
        };
        for cfg in cfgs {
            let bi = intern(&mut bp_keys, cfg.bpred_k as u64);
            let ti = intern(&mut btb_keys, cfg.btb_k as u64);
            let key = (cfg.icache_kb as u64, bi, ti);
            let ii = match ic_keys.iter().position(|&k| k == key) {
                Some(i) => i,
                None => {
                    ic_keys.push(key);
                    ic_keys.len() - 1
                }
            };
            lanes.push((bi, ti, ii));
        }

        // Direction kernel: one flat pass over the branch columns per
        // predictor geometry.
        let bp: Vec<BpPlan> = bp_keys
            .iter()
            .map(|&k| {
                let mut gshare = Gshare::new(k * 1024);
                let mut pred = BitVec::with_capacity(n_branches);
                for j in 0..n_branches {
                    pred.push(gshare.predict(bpc[j]));
                    gshare.update(bpc[j], btk[j]);
                }
                BpPlan { pred, gshare }
            })
            .collect();

        // Target kernel: one flat pass per BTB geometry.
        let btbs: Vec<BtbPlan> = btb_keys
            .iter()
            .map(|&k| {
                let mut btb = Btb::new(k * 1024);
                let mut ok = BitVec::with_capacity(n_branches);
                for j in 0..n_branches {
                    ok.push(btb.lookup(bpc[j]) == Some(btg[j]));
                    if btk[j] {
                        btb.update(bpc[j], btg[j]);
                    }
                }
                BtbPlan { ok, btb }
            })
            .collect();

        // I-cache kernel: replay the fetch-line automaton per combination,
        // consuming the direction/target bits just produced.
        let line_shift = cons.l1_line_bytes.trailing_zeros();
        let ics: Vec<IcPlan> = ic_keys
            .iter()
            .map(|&(kb, bi, ti)| {
                let mut cache = Cache::new(kb * 1024, cons.l1_line_bytes, cons.l1i_assoc);
                let mut miss = BitVec::with_capacity(n / 8);
                let pred = &bp[bi].pred;
                let ok = &btbs[ti].ok;
                let mut last = u64::MAX;
                let mut j = 0usize;
                for i in 0..n {
                    let pc = pcs[i] as u64;
                    let line = pc >> line_shift;
                    if line != last {
                        last = line;
                        miss.push(cache.access(pc) == CacheOutcome::Miss);
                    }
                    if metas[i] & meta::IS_BRANCH != 0 {
                        if takens[i] && pred.get(j) && ok.get(j) {
                            // Correctly-predicted taken branch: the fetch
                            // group ends and the line register resets.
                            last = u64::MAX;
                        }
                        j += 1;
                    }
                }
                IcPlan { miss, cache }
            })
            .collect();

        Self {
            bp,
            btbs,
            ics,
            lanes,
        }
    }

    /// A fresh replay cursor for lane `i` (the i-th config passed to
    /// [`FrontendPlans::build`]).
    pub(crate) fn lane(&self, i: usize) -> PlanLane<'_> {
        let (bi, ti, ii) = self.lanes[i];
        PlanLane {
            pred: &self.bp[bi].pred,
            ok: &self.btbs[ti].ok,
            miss: &self.ics[ii].miss,
            chk_gshare: &self.bp[bi].gshare,
            chk_btb: &self.btbs[ti].btb,
            chk_icache: &self.ics[ii].cache,
            branch_pos: 0,
            ic_pos: 0,
            bp_preds: 0,
            bp_mispreds: 0,
            ic_accs: 0,
            ic_misses: 0,
        }
    }
}

/// One lane's replay cursor over a [`FrontendPlans`]: yields the same
/// outcome stream the live structures would produce, plus the statistics
/// the result assembly and sanitizer need.
#[derive(Debug)]
pub(crate) struct PlanLane<'p> {
    pred: &'p BitVec,
    ok: &'p BitVec,
    miss: &'p BitVec,
    chk_gshare: &'p Gshare,
    chk_btb: &'p Btb,
    chk_icache: &'p Cache,
    branch_pos: usize,
    ic_pos: usize,
    bp_preds: u64,
    bp_mispreds: u64,
    ic_accs: u64,
    ic_misses: u64,
}

impl PlanLane<'_> {
    /// Next branch outcome: returns the flow-correct bit (direction
    /// right, and for taken branches the BTB target too), mirroring the
    /// live predict/lookup/update sequence.
    #[inline]
    pub(crate) fn next_branch(&mut self, taken: bool) -> bool {
        let j = self.branch_pos;
        self.branch_pos = j + 1;
        let pred = self.pred.get(j);
        self.bp_preds += 1;
        if pred != taken {
            self.bp_mispreds += 1;
        }
        if taken {
            pred && self.ok.get(j)
        } else {
            !pred
        }
    }

    /// Next I-cache access outcome.
    #[inline]
    pub(crate) fn next_icache(&mut self) -> CacheOutcome {
        let m = self.miss.get(self.ic_pos);
        self.ic_pos += 1;
        self.ic_accs += 1;
        if m {
            self.ic_misses += 1;
            CacheOutcome::Miss
        } else {
            CacheOutcome::Hit
        }
    }

    /// (predictions, direction mispredictions) so far.
    pub(crate) fn bpred_stats(&self) -> (u64, u64) {
        (self.bp_preds, self.bp_mispreds)
    }

    /// (accesses, misses) of the planned I-cache so far.
    pub(crate) fn icache_stats(&self) -> (u64, u64) {
        (self.ic_accs, self.ic_misses)
    }

    /// End-of-run sanitizer checks: the shared plan structures are
    /// self-consistent, the lane consumed the plan *exactly* (every
    /// outcome used once, none left over), and its replayed statistics
    /// reconcile with the plan structures' own counts.
    pub(crate) fn check_final(&self) -> Result<(), CheckError> {
        self.chk_icache.check_invariants("l1i")?;
        self.chk_gshare.check_invariants()?;
        self.chk_btb.check_invariants()?;
        check::reconcile(
            "plan-branches-consumed",
            self.branch_pos as u64,
            self.pred.len() as u64,
        )?;
        check::reconcile(
            "plan-icache-consumed",
            self.ic_pos as u64,
            self.miss.len() as u64,
        )?;
        check::reconcile(
            "plan-bpred-mispredicts",
            self.bp_mispreds,
            self.chk_gshare.mispredictions(),
        )?;
        check::reconcile(
            "plan-icache-misses",
            self.ic_misses,
            self.chk_icache.misses(),
        )?;
        Ok(())
    }
}

/// A whole sweep's batched execution engine: the front-end plans for
/// *every* configuration in the sweep are built once and shared across
/// all batch ranges, so a 300-config sweep chunked into width-8 batches
/// pays for each distinct predictor/BTB/I-cache geometry once, not once
/// per chunk.
///
/// The engine is `Sync` over read-only shared state, so `par_map` workers
/// can run disjoint ranges concurrently against one engine.
#[derive(Debug)]
pub struct SweepEngine<'a> {
    cfgs: &'a [Config],
    cons: ConstantParams,
    trace: &'a Trace,
    options: SimOptions,
    width: usize,
    /// Built lazily so a width-1 (legacy scalar) schedule never pays for
    /// plans; pre-built in [`SweepEngine::new`] for wider schedules.
    plans: std::sync::OnceLock<FrontendPlans>,
}

impl<'a> SweepEngine<'a> {
    /// Prepares a sweep over `cfgs` at the given lockstep `width`
    /// (clamped to at least 1). Front-end plans for all configurations
    /// are precomputed here — one kernel per distinct geometry — unless
    /// `width` is 1, in which case every range takes the scalar path and
    /// no plans are needed.
    pub fn new(
        cfgs: &'a [Config],
        cons: &ConstantParams,
        trace: &'a Trace,
        options: SimOptions,
        width: usize,
    ) -> Self {
        let engine = Self {
            cfgs,
            cons: *cons,
            trace,
            options,
            width: width.max(1),
            plans: std::sync::OnceLock::new(),
        };
        if engine.width > 1 && cfgs.len() > 1 {
            engine.plans();
        }
        engine
    }

    /// The lockstep batch width this engine was scheduled for.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The number of configurations in the sweep.
    pub fn len(&self) -> usize {
        self.cfgs.len()
    }

    /// Whether the sweep holds no configurations.
    pub fn is_empty(&self) -> bool {
        self.cfgs.is_empty()
    }

    fn plans(&self) -> &FrontendPlans {
        self.plans
            .get_or_init(|| FrontendPlans::build(self.cfgs, &self.cons, self.trace))
    }

    /// Runs the configurations in `range` as one lockstep batch,
    /// returning a [`RunRecord`] (or sanitizer violation) per lane in
    /// range order. Results are bit-identical to running each
    /// configuration through [`Pipeline::new`] alone. A range of one
    /// takes the scalar live path; an empty range returns no lanes.
    ///
    /// # Panics
    ///
    /// Panics where the scalar path would (illegal configuration, trace
    /// not longer than the warm-up, simulator deadlock) and on a range
    /// out of bounds of the sweep's configurations.
    pub fn run_range(&self, range: std::ops::Range<usize>) -> Vec<Result<RunRecord, CheckError>> {
        let mut obs: Vec<NoObs> = (0..range.len()).map(|_| NoObs).collect();
        self.run_range_obs(range, &mut obs)
    }

    /// [`SweepEngine::run_range`] with one observer per lane, fed in range
    /// order. The observers see exactly the cycles the lockstep scheduler
    /// steps for their lane (chunk-interleaved, but per-lane complete), so
    /// a [`crate::StageProf`] per lane attributes batched stepping cost
    /// stage by stage. With [`NoObs`] this *is* `run_range` — the observer
    /// calls monomorphise away.
    ///
    /// # Panics
    ///
    /// Panics where [`SweepEngine::run_range`] would, and when `obs` has a
    /// different length than `range`.
    pub fn run_range_obs<O: SimObs>(
        &self,
        range: std::ops::Range<usize>,
        obs: &mut [O],
    ) -> Vec<Result<RunRecord, CheckError>> {
        let cfgs = &self.cfgs[range.clone()];
        assert_eq!(
            cfgs.len(),
            obs.len(),
            "one observer per lane in range ({} lanes, {} observers)",
            cfgs.len(),
            obs.len()
        );
        if cfgs.is_empty() {
            return Vec::new();
        }
        if cfgs.len() == 1 {
            return vec![
                Pipeline::new(&cfgs[0], &self.cons, self.trace, self.options)
                    .try_run_full_obs(&mut obs[0]),
            ];
        }

        let plans = self.plans();
        let mut lanes: Vec<Option<Pipeline>> = cfgs
            .iter()
            .enumerate()
            .map(|(k, cfg)| {
                Some(Pipeline::new_planned(
                    cfg,
                    &self.cons,
                    self.trace,
                    self.options,
                    plans.lane(range.start + k),
                ))
            })
            .collect();
        let mut results: Vec<Option<Result<RunRecord, CheckError>>> =
            (0..cfgs.len()).map(|_| None).collect();

        // Round-robin lockstep: each live lane advances one chunk of
        // committed instructions per turn, so all lanes stream the same
        // trace window together. Failed or finished lanes retire.
        let mut live = lanes.len();
        while live > 0 {
            for i in 0..lanes.len() {
                let Some(lane) = lanes[i].as_mut() else {
                    continue;
                };
                let target = lane.progress() + LOCKSTEP_CHUNK;
                match lane.step_until(&mut obs[i], target) {
                    Err(e) => {
                        results[i] = Some(Err(e));
                        lanes[i] = None;
                        live -= 1;
                    }
                    Ok(()) => {
                        if lane.finished() {
                            let lane = lanes[i].take().expect("lane is live");
                            results[i] = Some(lane.into_record());
                            live -= 1;
                        }
                    }
                }
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every lane retired with a result"))
            .collect()
    }
}

/// Simulates `trace` under every configuration in `cfgs` in lockstep,
/// returning one full [`RunRecord`] (or sanitizer violation) per lane, in
/// input order. Results are bit-identical to running each configuration
/// through [`Pipeline::new`] alone.
///
/// A batch of one falls back to the scalar live path (the `ARCHDSE_BATCH=1`
/// legacy semantics); an empty batch returns an empty vector. Sweeps that
/// chunk one config list into many batches should build one
/// [`SweepEngine`] instead, so front-end plans are shared across chunks.
///
/// # Panics
///
/// Panics where the scalar path would: illegal configuration, trace not
/// longer than the warm-up, or simulator deadlock.
pub fn try_simulate_batch_records(
    cfgs: &[Config],
    cons: &ConstantParams,
    trace: &Trace,
    options: SimOptions,
) -> Vec<Result<RunRecord, CheckError>> {
    SweepEngine::new(cfgs, cons, trace, options, cfgs.len().max(1)).run_range(0..cfgs.len())
}

/// Batched counterpart of [`crate::try_simulate`]: one phase-normalised
/// [`Metrics`] (or sanitizer violation) per configuration, in input
/// order, computed in one lockstep trace pass. Bumps the workspace-wide
/// simulation counters once per *lane*, exactly like scalar runs.
pub fn try_simulate_batch(
    cfgs: &[Config],
    trace: &Trace,
    options: SimOptions,
) -> Vec<Result<Metrics, CheckError>> {
    try_simulate_batch_records(cfgs, &ConstantParams::standard(), trace, options)
        .into_iter()
        .map(|r| r.map(|rec| crate::record_metrics(&rec.result)))
        .collect()
}

/// Batched counterpart of [`crate::simulate`].
///
/// # Panics
///
/// Panics on the first sanitizer violation in any lane.
pub fn simulate_batch(cfgs: &[Config], trace: &Trace, options: SimOptions) -> Vec<Metrics> {
    try_simulate_batch(cfgs, trace, options)
        .into_iter()
        .map(|r| match r {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dse_workload::{Profile, Suite, TraceGenerator};

    #[test]
    fn bitvec_round_trips() {
        let mut v = BitVec::default();
        let bits: Vec<bool> = (0..200).map(|i| i % 3 == 0 || i % 7 == 0).collect();
        for &b in &bits {
            v.push(b);
        }
        assert_eq!(v.len(), bits.len());
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(v.get(i), b, "bit {i}");
        }
    }

    #[test]
    fn batch_matches_scalar_bit_for_bit() {
        let profile = Profile::template("batch", Suite::SpecCpu2000, 21);
        let trace = TraceGenerator::new(&profile).generate(9_000);
        let mut rng = dse_rng::Xoshiro256::seed_from(0xBA7C_0001);
        let cfgs = dse_space::sample_legal(&mut rng, 5);
        let options = SimOptions {
            warmup: 1_500,
            sanitize: true,
        };
        let cons = ConstantParams::standard();
        let batched = try_simulate_batch_records(&cfgs, &cons, &trace, options);
        for (cfg, b) in cfgs.iter().zip(&batched) {
            let scalar = Pipeline::new(cfg, &cons, &trace, options)
                .try_run_full()
                .expect("scalar run is clean");
            let b = b.as_ref().expect("batched run is clean");
            assert_eq!(b.result, scalar.result, "lane differs on {cfg}");
            assert_eq!(b.counters, scalar.counters, "counters differ on {cfg}");
        }
    }

    #[test]
    fn empty_and_singleton_batches() {
        let profile = Profile::template("batch1", Suite::SpecCpu2000, 22);
        let trace = TraceGenerator::new(&profile).generate(6_000);
        let options = SimOptions {
            warmup: 1_000,
            sanitize: true,
        };
        let cons = ConstantParams::standard();
        assert!(try_simulate_batch_records(&[], &cons, &trace, options).is_empty());
        let cfg = dse_space::Config::baseline();
        let one = try_simulate_batch_records(&[cfg], &cons, &trace, options);
        let scalar = Pipeline::new(&cfg, &cons, &trace, options)
            .try_run_full()
            .unwrap();
        assert_eq!(one[0].as_ref().unwrap().result, scalar.result);
    }

    #[test]
    fn batch_width_parses_env() {
        // The only test in this binary touching ARCHDSE_BATCH, so no
        // cross-test interference despite process-global env state.
        std::env::remove_var(BATCH_ENV);
        assert_eq!(batch_width(), DEFAULT_BATCH_WIDTH);
        std::env::set_var(BATCH_ENV, "4");
        assert_eq!(batch_width(), 4);
        std::env::set_var(BATCH_ENV, "0");
        assert_eq!(batch_width(), DEFAULT_BATCH_WIDTH);
        std::env::set_var(BATCH_ENV, "nope");
        assert_eq!(batch_width(), DEFAULT_BATCH_WIDTH);
        std::env::remove_var(BATCH_ENV);
    }
}
