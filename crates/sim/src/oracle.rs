//! In-order reference oracle for differential testing.
//!
//! An independent, deliberately simple model of the same machine: a
//! single-issue, in-order core with perfect branch prediction, analysed in
//! one pass over the trace. It cannot reproduce the out-of-order
//! simulator's exact cycle count, but it brackets it from both sides and
//! predicts many of its event counts *exactly*, because those counts are
//! properties of the trace, not of scheduling:
//!
//! * **Exact event counts** — fetch, rename, dispatch, issue and commit
//!   each touch every trace instruction exactly once, so `fetched`,
//!   `renamed`, `iq_inserts`, `iq_wakeups` and `rob_reads` all equal the
//!   trace length; `rf_reads` is the number of register source operands;
//!   `rf_writes` the number of result-producing instructions;
//!   `dcache_accesses`/`lsq_searches` the number of memory operations;
//!   `bpred_accesses`/`btb_accesses` the number of branches; and `fu_ops`
//!   the instruction-kind histogram. The differential test asserts strict
//!   equality on all of these.
//! * **Cycle lower bound** — the best the out-of-order machine can do is
//!   limited by (a) fetch/commit bandwidth, `⌈N / width⌉` cycles, and
//!   (b) the dataflow critical path under the most optimistic latencies
//!   (every load an L1 hit, no structural hazards): results forward the
//!   cycle they complete, so `finish[i] = max(finish[deps]) + lat(i)`.
//! * **Cycle upper bound** — a machine that fully serialises every
//!   instruction and always takes the worst-case path (every fetch an
//!   I-cache miss to DRAM, every memory operation missing both cache
//!   levels, every branch paying a full front-end refill) is slower than
//!   any schedule the pipeline can produce; the bound sums those
//!   per-instruction worst cases plus a fill/drain allowance.
//! * **Energy bounds** — every per-event energy is non-negative, so the
//!   total is monotone in the counts: pricing the exact counts plus the
//!   minimum (maximum) possible timing-dependent counts and the cycle
//!   lower (upper) bound brackets the simulator's energy.

use crate::energy::{EnergyCounters, EnergyModel};
use crate::timing::{MemorySpec, SramSpec};
use dse_space::{Config, ConstantParams};
use dse_workload::{InstrKind, Trace};

/// Event counts that are properties of the trace alone (independent of
/// scheduling and cache state), which the out-of-order simulator must
/// reproduce exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExactCounts {
    /// Instructions fetched, renamed, issued and committed: trace length.
    pub instructions: u64,
    /// Register source operands read across the trace.
    pub rf_reads: u64,
    /// Result-producing instructions (register-file writes).
    pub rf_writes: u64,
    /// Memory operations (D-cache accesses and LSQ searches).
    pub mem_ops: u64,
    /// Branches (predictor and BTB lookups).
    pub branches: u64,
    /// Functional-unit operations by class (int ALU/branch/mem, int
    /// mul-div, FP ALU, FP mul-div) — the instruction-kind histogram.
    pub fu_ops: [u64; 4],
}

/// The oracle's verdict on one (config, trace) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleReport {
    /// Scheduling-independent event counts (must match exactly).
    pub counts: ExactCounts,
    /// No schedule can finish in fewer cycles than this.
    pub cycles_lo: u64,
    /// No schedule can take more cycles than this.
    pub cycles_hi: u64,
    /// Lower bound on total energy in nanojoules.
    pub energy_lo_nj: f64,
    /// Upper bound on total energy in nanojoules.
    pub energy_hi_nj: f64,
}

impl OracleReport {
    /// Checks the simulator's measured counters against the exact counts,
    /// returning the first mismatch as `(name, observed, expected)`.
    pub fn count_mismatch(&self, c: &EnergyCounters) -> Option<(&'static str, u64, u64)> {
        let n = self.counts.instructions;
        let pairs = [
            ("fetched", c.fetched, n),
            ("renamed", c.renamed, n),
            ("iq_inserts", c.iq_inserts, n),
            ("iq_wakeups", c.iq_wakeups, n),
            ("rob_reads", c.rob_reads, n),
            ("rob_writes", c.rob_writes, n + self.counts.rf_writes),
            ("rf_reads", c.rf_reads, self.counts.rf_reads),
            ("rf_writes", c.rf_writes, self.counts.rf_writes),
            ("dcache_accesses", c.dcache_accesses, self.counts.mem_ops),
            ("lsq_searches", c.lsq_searches, self.counts.mem_ops),
            ("bpred_accesses", c.bpred_accesses, self.counts.branches),
            ("btb_accesses", c.btb_accesses, self.counts.branches),
            ("fu_int", c.fu_ops[0], self.counts.fu_ops[0]),
            ("fu_int_muldiv", c.fu_ops[1], self.counts.fu_ops[1]),
            ("fu_fp_alu", c.fu_ops[2], self.counts.fu_ops[2]),
            ("fu_fp_muldiv", c.fu_ops[3], self.counts.fu_ops[3]),
        ];
        pairs
            .into_iter()
            .find(|&(_, obs, exp)| obs != exp)
            .map(|(name, obs, exp)| (name, obs, exp))
    }
}

/// Optimistic (all-hit, no-hazard) result latency of one instruction.
fn min_latency(kind: InstrKind, cons: &ConstantParams, l1d_lat: u64) -> u64 {
    match kind {
        InstrKind::IntAlu | InstrKind::Branch | InstrKind::Store => cons.int_alu_latency as u64,
        InstrKind::IntMul => cons.int_mul_latency as u64,
        InstrKind::IntDiv => cons.int_div_latency as u64,
        InstrKind::FpAlu => cons.fp_alu_latency as u64,
        InstrKind::FpMul => cons.fp_mul_latency as u64,
        InstrKind::FpDiv => cons.fp_div_latency as u64,
        InstrKind::Load => l1d_lat,
    }
}

/// Analyses `trace` under `cfg`, producing exact event counts and
/// cycle/energy bounds for any run of the out-of-order simulator with
/// **zero warm-up** (so the measured portion is the whole trace).
pub fn analyze(cfg: &Config, cons: &ConstantParams, trace: &Trace) -> OracleReport {
    let n = trace.len();
    let l1d_lat = SramSpec::ram(cfg.dcache_kb as u64 * 1024).latency_cycles() as u64;
    let l2_lat = SramSpec::ram(cfg.l2_kb as u64 * 1024).latency_cycles() as u64;
    let mem = MemorySpec::standard();

    let mut counts = ExactCounts {
        instructions: n as u64,
        rf_reads: 0,
        rf_writes: 0,
        mem_ops: 0,
        branches: 0,
        fu_ops: [0; 4],
    };

    // Dataflow critical path under optimistic latencies. `finish[i]` is
    // the earliest cycle instruction i's result can exist; dependents of
    // instruction i - d read `finish[i - d]` directly.
    let mut finish: Vec<u64> = vec![0; n];
    let mut critical_path = 0u64;

    // Minimum I-cache accesses: the pipeline accesses once per fetched
    // line *transition*, and only ever re-accesses (never skips) a line
    // after redirects — so counting transitions bounds it from below.
    let mut icache_lo = 0u64;
    let mut last_line = u64::MAX;
    let line_bytes = cons.l1_line_bytes as u64;

    for (i, ins) in trace.iter().enumerate() {
        counts.rf_reads += (ins.src1 > 0) as u64 + (ins.src2 > 0) as u64;
        counts.rf_writes += ins.kind.has_dest() as u64;
        counts.mem_ops += ins.kind.is_mem() as u64;
        counts.branches += (ins.kind == InstrKind::Branch) as u64;
        counts.fu_ops[ins.kind.fu_class()] += 1;

        let dep = |d: u32| {
            if d == 0 || (d as usize) > i {
                0
            } else {
                finish[i - d as usize]
            }
        };
        let start = dep(ins.src1).max(dep(ins.src2));
        finish[i] = start + min_latency(ins.kind, cons, l1d_lat);
        critical_path = critical_path.max(finish[i]);

        let line = ins.pc as u64 / line_bytes;
        if line != last_line {
            icache_lo += 1;
            last_line = line;
        }
    }

    // Lower bound: bandwidth (`width` commits per cycle) or the dataflow
    // critical path, whichever binds.
    let bandwidth = (n as u64).div_ceil(cfg.width as u64);
    let cycles_lo = bandwidth.max(critical_path);

    // Upper bound: fully serialised execution with every access taking its
    // worst-case path. Per instruction: an I-cache miss serviced by DRAM
    // (L2 latency + L2 occupancy + memory latency + bus occupancy), the
    // front-end depth, the worst execute latency (for memory operations an
    // L1 miss + L2 miss to DRAM), one commit cycle — and for branches a
    // full refill after resolution. No schedule the pipeline produces is
    // slower than this instruction-at-a-time machine.
    let worst_fetch = l2_lat + 2 + mem.latency as u64 + mem.occupancy as u64;
    let worst_mem = l1d_lat + worst_fetch;
    let frontend = cons.frontend_depth as u64;
    let mut cycles_hi = 64u64; // fill/drain allowance
    for &kind in trace.kinds() {
        let exec = match kind {
            InstrKind::Load | InstrKind::Store => worst_mem,
            k => min_latency(k, cons, l1d_lat),
        };
        cycles_hi += worst_fetch + frontend + exec + 1;
        if kind == InstrKind::Branch {
            cycles_hi += frontend; // mispredict refill
        }
    }

    // Energy bounds: price the exact counts plus the extreme values of
    // every timing-dependent count. All per-event energies are
    // non-negative, so the total is monotone in each count.
    let model = EnergyModel::new(cfg, cons);
    let base = EnergyCounters {
        fetched: counts.instructions,
        renamed: counts.instructions,
        iq_inserts: counts.instructions,
        iq_wakeups: counts.instructions,
        rob_reads: counts.instructions,
        rob_writes: counts.instructions + counts.rf_writes,
        rf_reads: counts.rf_reads,
        rf_writes: counts.rf_writes,
        dcache_accesses: counts.mem_ops,
        lsq_searches: counts.mem_ops,
        bpred_accesses: counts.branches,
        btb_accesses: counts.branches,
        fu_ops: counts.fu_ops,
        icache_accesses: 0,
        l2_accesses: 0,
        memory_accesses: 0,
        cycles: 0,
    };
    let lo = EnergyCounters {
        icache_accesses: icache_lo,
        cycles: cycles_lo,
        ..base
    };
    // Worst case: every instruction is its own fetch line, every L1 access
    // (I and D) misses into the L2, and every L2 access misses to memory.
    let l2_hi = counts.instructions + counts.mem_ops;
    let hi = EnergyCounters {
        icache_accesses: counts.instructions,
        l2_accesses: l2_hi,
        memory_accesses: l2_hi,
        cycles: cycles_hi,
        ..base
    };

    OracleReport {
        counts,
        cycles_lo,
        cycles_hi,
        energy_lo_nj: lo.total_nj(&model),
        energy_hi_nj: hi.total_nj(&model),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dse_workload::{Instr, Profile, Suite, TraceGenerator};

    fn demo_trace(len: usize, seed: u64) -> Trace {
        let p = Profile::template("oracle", Suite::SpecCpu2000, seed);
        TraceGenerator::new(&p).generate(len)
    }

    #[test]
    fn bounds_are_ordered_and_positive() {
        let t = demo_trace(3_000, 1);
        let r = analyze(&Config::baseline(), &ConstantParams::standard(), &t);
        assert!(r.cycles_lo >= 1);
        assert!(r.cycles_lo < r.cycles_hi);
        assert!(r.energy_lo_nj > 0.0);
        assert!(r.energy_lo_nj < r.energy_hi_nj);
    }

    #[test]
    fn counts_partition_the_trace() {
        let t = demo_trace(5_000, 2);
        let r = analyze(&Config::baseline(), &ConstantParams::standard(), &t);
        assert_eq!(r.counts.instructions, 5_000);
        assert_eq!(r.counts.fu_ops.iter().sum::<u64>(), 5_000);
        assert!(r.counts.branches > 0 && r.counts.mem_ops > 0);
    }

    #[test]
    fn serial_chain_drives_the_lower_bound() {
        // A 100-long chain of dependent ALU ops has a critical path of
        // 100 × 1 cycle, far above the bandwidth bound of 100/4.
        let instrs: Vec<Instr> = (0..100)
            .map(|i| Instr {
                kind: InstrKind::IntAlu,
                src1: if i == 0 { 0 } else { 1 },
                src2: 0,
                pc: 0x40_0000 + i * 4,
                addr: 0,
                taken: false,
                target: 0,
            })
            .collect();
        let t = Trace::new("chain", instrs);
        let r = analyze(&Config::baseline(), &ConstantParams::standard(), &t);
        assert_eq!(r.cycles_lo, 100);
    }

    #[test]
    fn independent_ops_are_bandwidth_bound() {
        let instrs: Vec<Instr> = (0..100)
            .map(|i| Instr {
                kind: InstrKind::IntAlu,
                src1: 0,
                src2: 0,
                pc: 0x40_0000 + i * 4,
                addr: 0,
                taken: false,
                target: 0,
            })
            .collect();
        let t = Trace::new("par", instrs);
        let cfg = Config {
            width: 8,
            rf_read: 16,
            rf_write: 8,
            ..Config::baseline()
        };
        let r = analyze(&cfg, &ConstantParams::standard(), &t);
        // 100 independent 1-cycle ops on an 8-wide machine: ⌈100/8⌉ = 13,
        // but the critical path (1 cycle) never binds.
        assert_eq!(r.cycles_lo, 13);
    }
}
