//! Gshare branch direction predictor and branch target buffer.

use crate::check::CheckError;

/// Gshare predictor: a table of 2-bit saturating counters indexed by
/// `PC ⊕ global history`.
///
/// # Examples
///
/// ```
/// use dse_sim::branch::Gshare;
/// let mut g = Gshare::new(1024);
/// let pc = 0x400_0040;
/// // After the global history saturates, the branch becomes predictable.
/// for _ in 0..20 { g.update(pc, true); }
/// assert!(g.predict(pc));
/// ```
#[derive(Debug, Clone)]
pub struct Gshare {
    table: Vec<u8>,
    index_mask: u64,
    history: u64,
    history_mask: u64,
    /// History is folded into the *high* index bits so that larger tables
    /// separate static branches by PC (capacity helps biased branches)
    /// while history still disambiguates patterned ones.
    history_shift: u64,
    predictions: u64,
    mispredictions: u64,
}

/// Global-history length in bits. Kept short so that table capacity is
/// spent separating static branches (the dominant effect across the
/// paper's 1K–32K predictor range) while still capturing short repeating
/// patterns.
const HISTORY_BITS: u64 = 3;

impl Gshare {
    /// Creates a predictor with `entries` 2-bit counters.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a positive power of two.
    pub fn new(entries: u64) -> Self {
        assert!(
            entries > 0 && entries.is_power_of_two(),
            "gshare table must be a positive power of two"
        );
        let bits = entries.trailing_zeros() as u64;
        let hist_bits = HISTORY_BITS.min(bits);
        Self {
            table: vec![1; entries as usize], // weakly not-taken
            index_mask: entries - 1,
            history: 0,
            history_mask: (1 << hist_bits) - 1,
            history_shift: bits - hist_bits,
            predictions: 0,
            mispredictions: 0,
        }
    }

    fn index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ (self.history << self.history_shift)) & self.index_mask) as usize
    }

    /// Predicted direction for the branch at `pc` (true = taken).
    pub fn predict(&self, pc: u64) -> bool {
        self.table[self.index(pc)] >= 2
    }

    /// Records the actual outcome, updating the counter, the global
    /// history and the misprediction statistics.
    ///
    /// Returns whether the prediction made *before* the update was correct.
    pub fn update(&mut self, pc: u64, taken: bool) -> bool {
        let idx = self.index(pc);
        let predicted = self.table[idx] >= 2;
        let correct = predicted == taken;
        self.predictions += 1;
        if !correct {
            self.mispredictions += 1;
        }
        let c = &mut self.table[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.history = ((self.history << 1) | taken as u64) & self.history_mask;
        correct
    }

    /// Number of direction predictions made.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Number of mispredicted directions.
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// Misprediction rate (0 when no predictions were made).
    pub fn miss_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }

    /// Resets statistics (table and history are kept) — used at the end of
    /// simulator warm-up.
    pub fn reset_stats(&mut self) {
        self.predictions = 0;
        self.mispredictions = 0;
    }

    /// Sanitizer hook: statistics and table self-consistency — counters
    /// must be 2-bit saturating values, the history must fit its mask and
    /// mispredictions can never exceed predictions.
    pub fn check_invariants(&self) -> Result<(), CheckError> {
        if self.mispredictions > self.predictions {
            return Err(CheckError::new(
                0,
                "bpred-accounting",
                format!(
                    "mispredictions {} exceed predictions {}",
                    self.mispredictions, self.predictions
                ),
            ));
        }
        if self.history & !self.history_mask != 0 {
            return Err(CheckError::new(
                0,
                "bpred-history",
                format!(
                    "history {:#x} overflows mask {:#x}",
                    self.history, self.history_mask
                ),
            ));
        }
        if let Some(&c) = self.table.iter().find(|&&c| c > 3) {
            return Err(CheckError::new(
                0,
                "bpred-counter-range",
                format!("saturating counter holds {c}, must be 0..=3"),
            ));
        }
        Ok(())
    }
}

/// Direct-mapped branch target buffer with tags.
#[derive(Debug, Clone)]
pub struct Btb {
    /// Stores `pc + 1` so that `0` marks an empty slot and the array
    /// starts life on zero pages (no `u64::MAX` memset per construction).
    tags: Vec<u64>,
    targets: Vec<u32>,
    mask: u64,
}

impl Btb {
    /// Creates a BTB with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a positive power of two.
    pub fn new(entries: u64) -> Self {
        assert!(
            entries > 0 && entries.is_power_of_two(),
            "BTB must be a positive power of two"
        );
        Self {
            tags: vec![0; entries as usize],
            targets: vec![0; entries as usize],
            mask: entries - 1,
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) & self.mask) as usize
    }

    /// Looks up the predicted target for the branch at `pc`.
    pub fn lookup(&self, pc: u64) -> Option<u32> {
        let idx = self.index(pc);
        if self.tags[idx] == pc + 1 {
            Some(self.targets[idx])
        } else {
            None
        }
    }

    /// Installs or refreshes the target of a taken branch.
    pub fn update(&mut self, pc: u64, target: u32) {
        let idx = self.index(pc);
        self.tags[idx] = pc + 1;
        self.targets[idx] = target;
    }

    /// Sanitizer hook: every valid tag must live in the slot its PC
    /// indexes to, otherwise lookups would silently fail or alias.
    pub fn check_invariants(&self) -> Result<(), CheckError> {
        for (i, &stored) in self.tags.iter().enumerate() {
            if stored != 0 && self.index(stored - 1) != i {
                let pc = stored - 1;
                return Err(CheckError::new(
                    0,
                    "btb-tag-placement",
                    format!(
                        "pc {pc:#x} stored in slot {i}, indexes to {}",
                        self.index(pc)
                    ),
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_biased_branch() {
        let mut g = Gshare::new(4096);
        let pc = 0x40_0000;
        let mut correct = 0;
        for i in 0..1000 {
            if g.update(pc, true) && i >= 10 {
                correct += 1;
            }
        }
        assert!(correct >= 980, "correct {correct}");
    }

    #[test]
    fn random_branch_near_chance() {
        let mut g = Gshare::new(4096);
        let mut rng = dse_rng::Xoshiro256::seed_from(3);
        for _ in 0..20_000 {
            g.update(0x40_0000, rng.next_bool(0.5));
        }
        let rate = g.miss_rate();
        assert!((0.35..0.65).contains(&rate), "miss rate {rate}");
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        // T N T N ... is perfectly predictable with 1 bit of history.
        let mut g = Gshare::new(4096);
        let pc = 0x40_0100;
        let mut last_miss = 0;
        for i in 0..2000u64 {
            if !g.update(pc, i % 2 == 0) {
                last_miss = i;
            }
        }
        assert!(last_miss < 200, "still missing at {last_miss}");
    }

    #[test]
    fn small_table_aliases_more_than_large() {
        // Many static branches with different biases: the small table must
        // mispredict more due to destructive aliasing.
        let run = |entries: u64| {
            let mut g = Gshare::new(entries);
            let mut seeder = dse_rng::Xoshiro256::seed_from(9);
            // Scattered PCs and random biases so collisions are destructive.
            let branches: Vec<(u64, f64)> = (0..512)
                .map(|_| {
                    let pc = 0x40_0000 + (seeder.next_range(1 << 20)) * 4;
                    let bias = if seeder.next_bool(0.5) { 0.95 } else { 0.05 };
                    (pc, bias)
                })
                .collect();
            let mut rng = dse_rng::Xoshiro256::seed_from(10);
            for _ in 0..100_000 {
                let (pc, bias) = branches[rng.next_index(branches.len())];
                g.update(pc, rng.next_bool(bias));
            }
            g.miss_rate()
        };
        let small = run(64);
        let large = run(32 * 1024);
        assert!(
            small > large + 0.02,
            "small {small} should alias more than large {large}"
        );
    }

    #[test]
    fn btb_round_trips() {
        let mut b = Btb::new(1024);
        assert_eq!(b.lookup(0x400_0000), None);
        b.update(0x400_0000, 0x400_0400);
        assert_eq!(b.lookup(0x400_0000), Some(0x400_0400));
    }

    #[test]
    fn btb_conflicts_evict() {
        let mut b = Btb::new(16);
        b.update(0x400_0000, 1);
        // Same index (pc + 16*4), different tag.
        b.update(0x400_0040, 2);
        assert_eq!(b.lookup(0x400_0000), None);
        assert_eq!(b.lookup(0x400_0040), Some(2));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn gshare_rejects_non_power_of_two() {
        Gshare::new(1000);
    }

    #[test]
    fn invariants_hold_after_heavy_use() {
        let mut g = Gshare::new(256);
        let mut b = Btb::new(64);
        let mut rng = dse_rng::Xoshiro256::seed_from(5);
        for _ in 0..5_000 {
            let pc = 0x40_0000 + rng.next_range(1 << 12) * 4;
            let taken = rng.next_bool(0.6);
            g.update(pc, taken);
            if taken {
                b.update(pc, (pc + 8) as u32);
            }
        }
        g.check_invariants().unwrap();
        b.check_invariants().unwrap();
    }

    #[test]
    fn corrupted_predictor_state_is_caught() {
        let mut g = Gshare::new(64);
        g.update(0x40, true);
        g.table[3] = 7; // not a 2-bit value
        assert_eq!(
            g.check_invariants().unwrap_err().invariant,
            "bpred-counter-range"
        );

        let mut b = Btb::new(16);
        b.update(0x400_0000, 1);
        b.tags.swap(0, 1); // displace the entry from its indexed slot
        assert_eq!(
            b.check_invariants().unwrap_err().invariant,
            "btb-tag-placement"
        );
    }

    #[test]
    fn reset_stats_clears_counts_only() {
        let mut g = Gshare::new(64);
        for _ in 0..10 {
            g.update(0x40, true);
        }
        g.reset_stats();
        assert_eq!(g.predictions(), 0);
        assert!(g.predict(0x40)); // learned state survives
    }
}
