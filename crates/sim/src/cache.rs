//! Set-associative cache with true LRU replacement.

use crate::check::CheckError;

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Tag matched.
    Hit,
    /// Tag missed; the line has been filled (write-allocate).
    Miss,
}

/// A set-associative, write-allocate cache modelling tags only.
///
/// Data values are irrelevant to timing/energy, so only the tag array is
/// kept. Replacement is true LRU via per-line timestamps (associativities
/// in this design space are ≤ 8, so linear scans are fastest).
///
/// # Examples
///
/// ```
/// use dse_sim::cache::{Cache, CacheOutcome};
/// let mut c = Cache::new(8 * 1024, 32, 2);
/// assert_eq!(c.access(0x1000), CacheOutcome::Miss);
/// assert_eq!(c.access(0x1000), CacheOutcome::Hit);
/// assert_eq!(c.access(0x1004), CacheOutcome::Hit); // same line
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    line_shift: u32,
    set_mask: u64,
    assoc: usize,
    /// `tags[set * assoc + way]`, storing `line + 1` so that `0` marks an
    /// invalid way and the array starts life on zero pages instead of
    /// paying a `u64::MAX` memset per construction.
    tags: Vec<u64>,
    /// LRU timestamps parallel to `tags`.
    stamps: Vec<u64>,
    tick: u64,
    accesses: u64,
    misses: u64,
}

impl Cache {
    /// Creates a cache of `size_bytes` with `line_bytes` lines and
    /// associativity `assoc`.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero, `line_bytes` or the set count is not
    /// a power of two, or the geometry is inconsistent (size not divisible
    /// by `line_bytes * assoc`).
    pub fn new(size_bytes: u64, line_bytes: u32, assoc: u32) -> Self {
        assert!(size_bytes > 0 && line_bytes > 0 && assoc > 0);
        assert!(line_bytes.is_power_of_two(), "line size must be 2^k");
        let lines = size_bytes / line_bytes as u64;
        assert_eq!(
            lines * line_bytes as u64,
            size_bytes,
            "size must be a multiple of the line size"
        );
        let sets = lines / assoc as u64;
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "set count {sets} must be a positive power of two"
        );
        let total = (sets * assoc as u64) as usize;
        Self {
            line_shift: line_bytes.trailing_zeros(),
            set_mask: sets - 1,
            assoc: assoc as usize,
            tags: vec![0; total],
            stamps: vec![0; total],
            tick: 0,
            accesses: 0,
            misses: 0,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.set_mask + 1
    }

    /// Accesses `addr`, updating LRU state and filling on a miss.
    pub fn access(&mut self, addr: u64) -> CacheOutcome {
        self.accesses += 1;
        self.tick += 1;
        let line = addr >> self.line_shift;
        let stored = line + 1;
        let set = (line & self.set_mask) as usize;
        let base = set * self.assoc;
        let ways = &mut self.tags[base..base + self.assoc];
        if let Some(w) = ways.iter().position(|&t| t == stored) {
            self.stamps[base + w] = self.tick;
            return CacheOutcome::Hit;
        }
        self.misses += 1;
        // Victim: invalid way first, else least recently used.
        let victim = match ways.iter().position(|&t| t == 0) {
            Some(w) => w,
            None => {
                let mut lru = 0;
                for w in 1..self.assoc {
                    if self.stamps[base + w] < self.stamps[base + lru] {
                        lru = w;
                    }
                }
                lru
            }
        };
        self.tags[base + victim] = stored;
        self.stamps[base + victim] = self.tick;
        CacheOutcome::Miss
    }

    /// Checks whether `addr` is resident without touching any state.
    pub fn probe(&self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let base = set * self.assoc;
        self.tags[base..base + self.assoc].contains(&(line + 1))
    }

    /// Total accesses so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total hits so far (`accesses - misses`).
    pub fn hits(&self) -> u64 {
        self.accesses - self.misses
    }

    /// Sanitizer hook: statistics and tag-array self-consistency.
    ///
    /// Checks that hits + misses equals accesses (i.e. misses never exceed
    /// accesses) and that every valid tag is stored in the set its line
    /// index maps to — a misplaced tag would silently convert misses into
    /// hits. `level` names the cache in the error (e.g. `"l1d"`).
    pub fn check_invariants(&self, level: &'static str) -> Result<(), CheckError> {
        if self.misses > self.accesses {
            return Err(CheckError::new(
                0,
                "cache-accounting",
                format!(
                    "{level}: misses {} exceed accesses {}",
                    self.misses, self.accesses
                ),
            ));
        }
        for (i, &stored) in self.tags.iter().enumerate() {
            if stored == 0 {
                continue;
            }
            let tag = stored - 1;
            let set = (i / self.assoc) as u64;
            if tag & self.set_mask != set {
                return Err(CheckError::new(
                    0,
                    "cache-tag-placement",
                    format!(
                        "{level}: line {tag:#x} stored in set {set}, maps to {}",
                        tag & self.set_mask
                    ),
                ));
            }
        }
        Ok(())
    }

    /// Miss rate (0 when no accesses have happened).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Resets the statistics counters (contents are kept) — used at the
    /// end of simulator warm-up.
    pub fn reset_stats(&mut self) {
        self.accesses = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = Cache::new(1024, 32, 2);
        assert_eq!(c.access(0), CacheOutcome::Miss);
        assert_eq!(c.access(0), CacheOutcome::Hit);
        assert_eq!(c.access(31), CacheOutcome::Hit);
        assert_eq!(c.access(32), CacheOutcome::Miss);
    }

    #[test]
    fn geometry_is_computed_correctly() {
        let c = Cache::new(8 * 1024, 32, 4);
        assert_eq!(c.sets(), 64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_panics() {
        Cache::new(3 * 1024, 32, 2); // 48 sets
    }

    #[test]
    fn lru_evicts_least_recent() {
        // Direct associativity-2, one set exercised with 3 conflicting lines.
        let mut c = Cache::new(64, 32, 2); // 1 set, 2 ways
        c.access(0); // line 0
        c.access(32); // line 1
        c.access(0); // touch line 0 (line 1 now LRU)
        assert_eq!(c.access(64), CacheOutcome::Miss); // evicts line 1
        assert_eq!(c.access(0), CacheOutcome::Hit); // line 0 survived
        assert_eq!(c.access(32), CacheOutcome::Miss); // line 1 was evicted
    }

    #[test]
    fn working_set_within_capacity_stops_missing() {
        let mut c = Cache::new(4096, 32, 4);
        // Touch 64 lines (2 KB), twice. Second pass must be all hits.
        for round in 0..2 {
            let mut misses = 0;
            for i in 0..64u64 {
                if c.access(i * 32) == CacheOutcome::Miss {
                    misses += 1;
                }
            }
            if round == 1 {
                assert_eq!(misses, 0);
            }
        }
    }

    #[test]
    fn working_set_beyond_capacity_thrashes() {
        let mut c = Cache::new(1024, 32, 2);
        // 128 lines (4 KB) streamed repeatedly through a 1 KB cache: LRU
        // guarantees zero hits on a cyclic scan larger than capacity.
        for _ in 0..3 {
            for i in 0..128u64 {
                c.access(i * 32);
            }
        }
        assert!(c.miss_rate() > 0.99, "miss rate {}", c.miss_rate());
    }

    #[test]
    fn bigger_cache_lower_miss_rate() {
        let run = |kb: u64| {
            let mut c = Cache::new(kb * 1024, 32, 4);
            let mut rng = dse_rng::Xoshiro256::seed_from(1);
            for _ in 0..20_000 {
                c.access(rng.next_range(64 * 1024));
            }
            c.miss_rate()
        };
        assert!(run(8) > run(32));
        assert!(run(32) > run(128));
    }

    #[test]
    fn probe_does_not_mutate() {
        let mut c = Cache::new(1024, 32, 2);
        c.access(0);
        let before = c.accesses();
        assert!(c.probe(0));
        assert!(!c.probe(4096));
        assert_eq!(c.accesses(), before);
    }

    #[test]
    fn hits_complement_misses_and_invariants_hold() {
        let mut c = Cache::new(1024, 32, 2);
        for i in 0..100u64 {
            c.access((i % 8) * 32);
        }
        assert_eq!(c.hits() + c.misses(), c.accesses());
        c.check_invariants("test").unwrap();
    }

    #[test]
    fn misplaced_tag_is_caught() {
        let mut c = Cache::new(1024, 32, 2); // 16 sets
        c.access(0);
        // Corrupt the tag array: plant a line that belongs to set 5 in
        // set 0.
        c.tags[0] = 5;
        let e = c.check_invariants("l1d").unwrap_err();
        assert_eq!(e.invariant, "cache-tag-placement");
        assert!(e.message.contains("l1d"));
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = Cache::new(1024, 32, 2);
        c.access(0);
        c.reset_stats();
        assert_eq!(c.accesses(), 0);
        assert_eq!(c.access(0), CacheOutcome::Hit);
    }
}
