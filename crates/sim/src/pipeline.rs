//! Cycle-level out-of-order superscalar pipeline.
//!
//! Trace-driven: the simulator executes the committed (correct-path)
//! instruction stream and models wrong-path work as front-end bubbles —
//! a mispredicted branch blocks fetch until it resolves and then pays the
//! front-end refill depth, the standard trace-driven approximation used by
//! SimpleScalar's `sim-outorder` in trace mode.
//!
//! Modelled resources, each tied to a design-space parameter:
//!
//! * fetch of `width` instructions per cycle, stopping at taken branches,
//!   I-cache misses and the in-flight branch limit;
//! * rename/dispatch gated by ROB, IQ, LSQ and physical-register
//!   availability (32 architectural registers are reserved out of `rf`);
//! * oldest-first issue gated by operand readiness, issue width,
//!   functional units (width-scaled per Table 2b, divides non-pipelined),
//!   register-file read ports, and cache ports for memory operations;
//! * writeback gated by register-file write ports;
//! * in-order commit of `width` instructions per cycle;
//! * a two-level cache hierarchy with latencies from the Cacti-like model
//!   and bandwidth-limited L2/memory (overlapping misses serialise).
//!
//! # Hot-loop memory layout
//!
//! The steady-state cycle loop performs **zero heap allocation**; every
//! structure is a fixed-capacity buffer sized from the [`Config`] at
//! construction:
//!
//! * the trace is borrowed as structure-of-arrays columns (shared by all
//!   sweep simulations of a benchmark), including a precomputed decode
//!   byte per instruction ([`dse_workload::meta`]);
//! * the ROB and fetch queue hold *consecutive* trace positions by
//!   construction (fetch, dispatch and commit are all in program order),
//!   so both are plain counters: ROB = `[committed, dispatched)`,
//!   fetch queue = `[dispatched, next_fetch)`;
//! * completion times live in a power-of-two ring indexed by trace
//!   position, sized to cover the in-flight window (ROB + fetch queue);
//!   positions below the commit watermark are complete by definition;
//! * the issue queue is a fixed array compacted in program order during
//!   the issue scan: entries stay dense and age-sorted for free, and a
//!   cached per-entry ready bound rules most of them out on one compare.
//!   (A fixed-slot layout with a vectorized SSE2 ready sweep was
//!   prototyped and measured: parity on large queues — the scan is
//!   latency-bound on its completion-ring probes, not compare
//!   throughput — and ~1.4× *slower* on small stall-heavy queues, where
//!   the per-scan sweep/sort constant dwarfs the handful of entries the
//!   compaction touches. The compacting scan won on evidence.);
//! * the wakeup heap is a tagged wheel indexed by completion cycle: slot
//!   `t & (WHEEL-1)` holds `t` while a completion is scheduled there, and
//!   the issue stage probes exactly one slot per cycle.
//!
//! On top of the layout, the cycle loop fast-forwards over provably idle
//! cycles ([`Pipeline::idle_skip`]): the issue scan publishes
//! conservative [`PENDING`]-flagged completion lower bounds for unissued
//! entries, caches a per-entry ready bound (`iq_ready`) with a
//! queue-wide minimum (`iq_min_ready`) that elides fruitless scans, and
//! a monotone `wake_floor` frontier bounds the wheel scan. All bounds
//! are conservative — they move *when* work is examined, never what it
//! computes — so metrics are bit-identical to stepping every cycle
//! (pinned by `tests/golden_sim.rs`).

use crate::batch::PlanLane;
use crate::branch::{Btb, Gshare};
use crate::cache::{Cache, CacheOutcome};
use crate::check::{self, Bounds, CheckError, InvariantChecker, Occupancy};
use crate::energy::{EnergyCounters, EnergyModel};
use crate::obs::{CycleObs, NoObs, SimObs};
use crate::timing::{MemorySpec, SramSpec};
use dse_space::{Config, ConstantParams};
use dse_workload::{meta, InstrKind, Trace};
/// Architectural registers reserved out of the physical register file.
const ARCH_REGS: u32 = 32;
/// Fetch-queue capacity in multiples of the width.
const FETCH_QUEUE_WIDTHS: usize = 4;
/// Size of the writeback-port reservation ring. Must exceed the span of
/// *live* (still-future) reservations: every reservation lies within
/// `(cycle, cycle + max completion latency]`, where the worst case is a
/// memory access behind an LSQ-bounded L2 bandwidth queue — a few
/// thousand cycles, comfortably below this. Stale (past) slot values can
/// never equal a future probe cycle, so they need no clearing. Kept small
/// on purpose: the ring is probed at random offsets per issued result,
/// and at 8 Ki entries it stays resident in the host cache.
const WB_RING: usize = 1 << 13;
/// Size of the wakeup wheel. Unlike the writeback ring, the wheel need
/// not cover the worst-case completion horizon: each slot stores its
/// exact target cycle, so beyond-horizon events simply spill to
/// `wheel_overflow` and migrate in lazily. 8 Ki slots (64 KiB of tags +
/// 1 KiB of summary bits) covers all but deep memory-backlog
/// completions while staying host-cache resident (a 2 Ki wheel was
/// tried and measured at parity — kept at the writeback ring's size so
/// [`MAX_IDLE_SKIP`] has headroom). Must be ≥ [`MAX_IDLE_SKIP`] so the
/// idle scan's staleness-clearing argument holds (see
/// [`Pipeline::idle_skip`]).
const WAKE_WHEEL: usize = 1 << 13;
/// Largest per-class functional-unit pool (`int_alu` = width ≤ 8).
const MAX_FU: usize = 8;
/// High bit of a completion-ring slot: the value is a *lower bound* on an
/// unissued instruction's completion (published by the issue scan for its
/// dependants), not a scheduled completion. Flagged values exceed every
/// reachable cycle, so commit, fetch-unblock, branch-retire and idle-skip
/// treat them exactly like the `u64::MAX` "unscheduled" sentinel; only
/// the issue scan strips the flag to chain readiness bounds.
const PENDING: u64 = 1 << 63;
/// Upper bound on one idle fast-forward step ([`Pipeline::idle_skip`]):
/// small enough that lazily-migrated beyond-horizon completions are never
/// overrun and a fruitless wheel scan stays cheap, large enough to clear
/// any realistic memory-stall gap in one step (longer stalls take a few
/// steps — skipped cycles mutate nothing, so the split is invisible).
/// Must not exceed [`WAKE_WHEEL`]: one idle scan then never wraps the
/// wheel, which is what lets it clear summary bits for slots it proves
/// empty.
const MAX_IDLE_SKIP: u64 = 4096;
const _: () = assert!(MAX_IDLE_SKIP as usize <= WAKE_WHEEL);

/// Options controlling a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOptions {
    /// Instructions at the head of the trace used to warm caches and
    /// predictors; they are simulated but excluded from the reported
    /// metrics (the paper warms for 10 M instructions before each
    /// SimPoint interval).
    pub warmup: usize,
    /// Force the invariant sanitizer on for this run, regardless of build
    /// type. When `false` the process-wide default applies
    /// ([`check::sanitize_default`]: `ARCHDSE_SANITIZE=1`/`=0` override,
    /// otherwise on in debug builds and off in release builds).
    pub sanitize: bool,
}

impl SimOptions {
    /// Options with the given warm-up and the default sanitizer policy.
    pub const fn with_warmup(warmup: usize) -> Self {
        Self {
            warmup,
            sanitize: false,
        }
    }
}

impl Default for SimOptions {
    fn default() -> Self {
        Self::with_warmup(5_000)
    }
}

/// Raw outcome of simulating a trace on a configuration (measured portion
/// only, i.e. after warm-up).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimResult {
    /// Measured (post-warm-up) instructions.
    pub instructions: u64,
    /// Cycles taken by the measured instructions.
    pub cycles: u64,
    /// Energy in nanojoules consumed by the measured instructions.
    pub energy_nj: f64,
    /// Instructions per cycle.
    pub ipc: f64,
    /// L1 I-cache miss rate over the measured portion.
    pub l1i_miss_rate: f64,
    /// L1 D-cache miss rate.
    pub l1d_miss_rate: f64,
    /// L2 miss rate (of L2 accesses).
    pub l2_miss_rate: f64,
    /// Branch direction misprediction rate.
    pub bpred_miss_rate: f64,
}

/// A [`SimResult`] together with the measured event counters and the
/// energy model that priced them — everything a differential test needs to
/// reconcile the run against an independent reference.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// The measured-phase result.
    pub result: SimResult,
    /// Event counters for the measured (post-warm-up) portion.
    pub counters: EnergyCounters,
    /// The per-event energy model used to price the counters.
    pub model: EnergyModel,
}

#[derive(Debug, Clone, Copy)]
struct MissRateSnapshot {
    l1i: (u64, u64),
    l1d: (u64, u64),
    l2: (u64, u64),
    bp: (u64, u64),
}

/// A co-runner's L1-filtered L2 address stream, injected one access per
/// own L2 access (round-robin arbitration with wrap-around) to model a
/// second program sharing this lane's L2. Intruder accesses pollute the
/// shared L2 contents and occupy L2/memory slots, but are tracked
/// separately so the lane's own counters, miss rates, and energy stay
/// own-only (see [`Pipeline::set_intruder`]).
#[derive(Debug)]
struct IntruderLane {
    addrs: Vec<u64>,
    pos: usize,
    accesses: u64,
    misses: u64,
}

/// Source of front-end outcomes: I-cache hit/miss, branch direction, and
/// BTB target correctness.
///
/// Both variants produce bit-identical outcome *sequences*, because the
/// front end is timing-independent: branches are predicted in program
/// order no matter when fetch reaches them (stalls replay the same
/// position without re-accessing), and fetch touches the I-cache exactly
/// when the line changes, with the line register reset only after a
/// correctly-predicted taken branch — a deterministic automaton over the
/// trace and the flow-correct bits. `Live` owns the structures and
/// computes outcomes as it goes (the scalar path); `Planned` replays
/// per-geometry outcome bitsets precomputed once per batch by
/// [`crate::batch::FrontendPlans`], so B lockstep lanes pay for each
/// distinct predictor/BTB/I-cache geometry once instead of B times.
/// Equality of the two paths is pinned by `tests/golden_sim.rs` and
/// `tests/batch_sim.rs`.
#[derive(Debug)]
enum Frontend<'p> {
    Live {
        icache: Cache,
        gshare: Gshare,
        btb: Btb,
    },
    Planned(PlanLane<'p>),
}

impl Frontend<'_> {
    /// One I-cache access for the line holding `pc`.
    #[inline]
    fn icache_access(&mut self, pc: u64) -> CacheOutcome {
        match self {
            Frontend::Live { icache, .. } => icache.access(pc),
            Frontend::Planned(lane) => lane.next_icache(),
        }
    }

    /// Predict + train on the branch at `pc`; returns whether the fetch
    /// flow was correct (direction right, and for taken branches the BTB
    /// also supplied the right target).
    #[inline]
    fn branch_access(&mut self, pc: u64, taken: bool, target: u32) -> bool {
        match self {
            Frontend::Live { gshare, btb, .. } => {
                let pred_taken = gshare.predict(pc);
                let btb_target = btb.lookup(pc);
                // A taken prediction is only useful with a correct target.
                let correct = if taken {
                    pred_taken && btb_target == Some(target)
                } else {
                    !pred_taken
                };
                gshare.update(pc, taken);
                if taken {
                    btb.update(pc, target);
                }
                correct
            }
            Frontend::Planned(lane) => lane.next_branch(taken),
        }
    }

    /// (predictions, direction mispredictions) so far.
    fn bpred_stats(&self) -> (u64, u64) {
        match self {
            Frontend::Live { gshare, .. } => (gshare.predictions(), gshare.mispredictions()),
            Frontend::Planned(lane) => lane.bpred_stats(),
        }
    }

    /// (accesses, misses) of the I-cache so far.
    fn icache_stats(&self) -> (u64, u64) {
        match self {
            Frontend::Live { icache, .. } => (icache.accesses(), icache.misses()),
            Frontend::Planned(lane) => lane.icache_stats(),
        }
    }

    /// End-of-run structure checks. A planned lane validates the shared
    /// plan structures and that it consumed the plan exactly — the
    /// sanitizer stays fully armed per lane under batching.
    fn check_invariants(&self) -> Result<(), CheckError> {
        match self {
            Frontend::Live {
                icache,
                gshare,
                btb,
            } => {
                icache.check_invariants("l1i")?;
                gshare.check_invariants()?;
                btb.check_invariants()
            }
            Frontend::Planned(lane) => lane.check_final(),
        }
    }
}

/// The machine state for one run. Construct via [`Pipeline::new`] and call
/// [`Pipeline::run`].
#[derive(Debug)]
pub struct Pipeline<'t> {
    cfg: Config,
    cons: ConstantParams,
    options: SimOptions,

    // Borrowed structure-of-arrays trace columns.
    kinds: &'t [InstrKind],
    src1: &'t [u32],
    src2: &'t [u32],
    pcs: &'t [u32],
    addrs: &'t [u64],
    takens: &'t [bool],
    targets: &'t [u32],
    metas: &'t [u8],

    /// Front-end outcome source: live structures (scalar path) or a
    /// precomputed per-batch plan replay (lockstep path). The D-cache and
    /// L2 stay live per lane — their access order is issue order, which is
    /// timing- (hence config-) dependent.
    frontend: Frontend<'t>,
    dcache: Cache,
    l2: Cache,
    energy_model: EnergyModel,
    counters: EnergyCounters,

    l1d_lat: u64,
    l2_lat: u64,
    mem: MemorySpec,
    /// `log2(l1_line_bytes)`: fetch derives the I-cache line by shift.
    l1_line_shift: u32,

    cycle: u64,
    /// Completion (result-available) cycle per in-flight trace position,
    /// a power-of-two ring indexed by `idx & cmask`; `u64::MAX` from fetch
    /// until scheduled. Positions below `committed` are complete by
    /// definition (commit requires completion), so the window
    /// `[committed, next_fetch)` — which the ring is sized to cover — is
    /// the only range ever consulted.
    complete: Box<[u64]>,
    cmask: usize,

    /// In-order stage cursors over trace positions. The ROB is
    /// `[committed, dispatched)` and the fetch queue `[dispatched,
    /// next_fetch)`; both hold consecutive positions by construction, so
    /// the counters replace the queues outright.
    committed: usize,
    dispatched: usize,
    next_fetch: usize,

    /// Issue-queue entries (trace positions), dense and in program order:
    /// the issue scan compacts survivors in place, so age priority falls
    /// out of array order and removal costs nothing extra.
    iq: Box<[u32]>,
    /// Cached earliest-ready lower bound per `iq` entry (parallel array).
    /// `0` = not yet known. An unexpired bound rules an entry out on one
    /// compare; an expired one forces a re-probe of the completion ring
    /// (bounds under [`PENDING`] are conservative).
    iq_ready: Box<[u64]>,
    /// Live entries in `iq`/`iq_ready`.
    iq_len: usize,
    /// Minimum completion latency per [`InstrKind`] (indexed by the
    /// kind's discriminant): issuing at cycle `c` completes no earlier
    /// than `c + min_lat[kind]`. Tightens the [`PENDING`] chain bounds
    /// the issue scan publishes for unissued entries — a dependant is
    /// then not re-probed during the producer's execute window. Loads use
    /// the L1-hit latency (every slower outcome is later); stores
    /// complete in one cycle; everything else uses its fixed unit
    /// latency, which non-pipelined units and writeback-port queueing can
    /// only exceed.
    min_lat: [u64; 9],
    lsq_occ: u32,
    phys_used: u32,
    rename_regs: u32,

    fetch_stall_until: u64,
    fetch_blocked_on: Option<usize>,
    last_fetch_line: u64,
    /// In-flight (unresolved) branch positions; fixed capacity
    /// `cfg.max_branches`.
    unresolved: Box<[u32]>,
    unresolved_len: usize,

    /// Per-FU-class `busy_until` times: int ALU, int mul/div, FP ALU,
    /// FP mul/div. Fixed arrays; `fu_len` holds the pool sizes.
    fu_busy: [[u64; MAX_FU]; 4],
    fu_len: [u8; 4],

    /// Writeback-port reservations, a ring indexed by cycle: a slot is
    /// live while `wb_tag` holds its cycle (0 = free: reservations are
    /// strictly positive cycles), with `wb_used` ports taken. Zeroed
    /// arrays keep construction on the allocator's zero-page fast path.
    wb_tag: Box<[u64]>,
    /// Ports taken per live `wb_tag` slot; `rf_write <= width <= 8` fits
    /// a byte, keeping the ring's random probes to a quarter the lines.
    wb_used: Box<[u8]>,

    l2_free_at: u64,
    mem_free_at: u64,

    /// When `Some`, every L2-reaching address (the L1-filtered stream)
    /// is recorded in issue order — the co-run driver's capture pass.
    /// `None` (the default) leaves the hot path untouched.
    l2_capture: Option<Vec<u64>>,
    /// When `Some`, a co-runner's address stream is interleaved into the
    /// L2 round-robin (one intruder access per own access). `None` (the
    /// default) is bit-identical to a solo run.
    intruder: Option<IntruderLane>,
    /// True when either `l2_capture` or `intruder` is armed; the one
    /// flag the solo L2 hot path checks before taking the hooked route.
    corun_hooks: bool,

    /// Stage-timing scratch: ticks spent in writeback-port reservation
    /// this cycle. Written only under `SimObs::STAGE_TIMING` (the issue
    /// stage accumulates, `step_until` drains); dead otherwise.
    wb_ticks: u64,

    /// Set when an issue attempt failed on a structural hazard (ports,
    /// units, width); forces a rescan next cycle.
    structural_block: bool,
    /// Set by dispatch when entries have landed since the last issue
    /// scan. Fresh entries carry bound `0`, so the next scan picks them
    /// up regardless of `iq_min_ready`; this flag is what forces that
    /// scan (and pins the idle fast-forward) until it runs.
    scan_dirty: bool,
    /// Wakeup wheel: slot `t & (WAKE_WHEEL-1)` holds `t` while a
    /// completion is scheduled at cycle `t`. Stale tags are simply never
    /// equal to the probing cycle, so no clearing pass is needed.
    wheel: Box<[u64]>,
    /// One bit per wheel slot, set when the slot *may* hold a live future
    /// completion (a pure cache over `wheel`: bits go stale when a tag is
    /// overwritten or expires, and are lazily cleared by the idle scan).
    /// Lets [`Pipeline::idle_skip`] sweep 64 slots per word read.
    wheel_bits: Box<[u64]>,
    /// Completions scheduled beyond the wheel horizon (unreachable for
    /// legal configurations; kept so the wheel cannot silently alias).
    wheel_overflow: Vec<u64>,
    /// Scan frontier for [`Pipeline::idle_skip`]: no wheel slot holds a
    /// value `v` with `cycle < v < wake_floor`. Lowered whenever a wake is
    /// scheduled below it, raised as idle scans prove ranges empty — so
    /// consecutive skips never re-read slots already known to be clear.
    wake_floor: u64,
    /// Minimum of `iq_ready` over the current queue (`u64::MAX` when
    /// empty): a lower bound on the earliest cycle *any* queued entry can
    /// become ready. A wakeup below it provably issues nothing, so both
    /// the issue scan and the idle fast-forward ignore such events.
    iq_min_ready: u64,

    /// Invariant sanitizer; `None` when disabled, so the per-hook cost of
    /// a non-sanitized run is one skipped `Option` branch.
    checker: Option<InvariantChecker>,
    /// First invariant violation raised from a hook that cannot return a
    /// `Result` directly; drained once per cycle by the run loop.
    check_fail: Option<CheckError>,

    // Resumable-run state ([`Pipeline::step_until`] suspends and resumes
    // mid-run, so what were locals of the run loop live here).
    /// Counter snapshot at the end of warm-up (`None` until taken).
    warm_counters: Option<EnergyCounters>,
    /// Cycle at which the warm-up snapshot was taken.
    warm_cycle: u64,
    /// Cache/predictor statistics at the end of warm-up.
    warm_rates: Option<MissRateSnapshot>,
    /// Last cycle that committed anything (deadlock watchdog).
    last_commit_cycle: u64,
}

impl<'t> Pipeline<'t> {
    /// Builds a pipeline for `trace` under `cfg` with live front-end
    /// structures (the scalar path).
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty or shorter than the warm-up, or the
    /// configuration is illegal.
    pub fn new(cfg: &Config, cons: &ConstantParams, trace: &'t Trace, options: SimOptions) -> Self {
        let frontend = Frontend::Live {
            icache: Cache::new(
                cfg.icache_kb as u64 * 1024,
                cons.l1_line_bytes,
                cons.l1i_assoc,
            ),
            gshare: Gshare::new(cfg.bpred_k as u64 * 1024),
            btb: Btb::new(cfg.btb_k as u64 * 1024),
        };
        Self::with_frontend(cfg, cons, trace, options, frontend)
    }

    /// Builds a lockstep-batch lane replaying a precomputed front-end
    /// plan. The plan must have been built for this exact (trace, config)
    /// pair; `lane.check_final()` re-validates consumption at the end of
    /// the run when the sanitizer is armed.
    pub(crate) fn new_planned(
        cfg: &Config,
        cons: &ConstantParams,
        trace: &'t Trace,
        options: SimOptions,
        lane: PlanLane<'t>,
    ) -> Self {
        Self::with_frontend(cfg, cons, trace, options, Frontend::Planned(lane))
    }

    fn with_frontend(
        cfg: &Config,
        cons: &ConstantParams,
        trace: &'t Trace,
        options: SimOptions,
        frontend: Frontend<'t>,
    ) -> Self {
        assert!(cfg.is_legal(), "configuration fails the legality filter");
        assert!(!trace.is_empty(), "trace must not be empty");
        assert!(
            trace.len() > options.warmup,
            "trace ({}) must be longer than the warm-up ({})",
            trace.len(),
            options.warmup
        );
        assert!(trace.len() < u32::MAX as usize, "trace positions fit u32");
        let fu_cfg = cfg.functional_units();
        let fu_len = [
            fu_cfg.int_alu as u8,
            fu_cfg.int_mul as u8,
            fu_cfg.fp_alu as u8,
            fu_cfg.fp_mul as u8,
        ];
        assert!(
            fu_len.iter().all(|&c| c as usize <= MAX_FU),
            "functional-unit pool exceeds MAX_FU"
        );
        assert!(
            cons.l1_line_bytes.is_power_of_two(),
            "l1 line bytes must be a power of two"
        );
        let l1d_spec = SramSpec::ram(cfg.dcache_kb as u64 * 1024);
        let l2_spec = SramSpec::ram(cfg.l2_kb as u64 * 1024);
        let sanitize = options.sanitize || check::sanitize_default();
        // Validate the derived timing/energy specs up front; a failure is
        // reported from the first simulated cycle.
        let check_fail = if sanitize {
            [
                ("l1d", l1d_spec.validate()),
                ("l2", l2_spec.validate()),
                ("memory", MemorySpec::standard().validate()),
            ]
            .into_iter()
            .find_map(|(name, r)| {
                r.err()
                    .map(|m| CheckError::new(0, "timing-spec", format!("{name}: {m}")))
            })
        } else {
            None
        };
        let fetch_cap = FETCH_QUEUE_WIDTHS * cfg.width as usize;
        // The completion ring must cover every position in
        // `[committed, next_fetch)` plus slack for same-cycle transitions.
        let window = cfg.rob as usize + fetch_cap + 2 * cfg.width as usize;
        let csize = window.next_power_of_two();
        // Indexed by `InstrKind` discriminant order: IntAlu, IntMul,
        // IntDiv, FpAlu, FpMul, FpDiv, Load, Store, Branch.
        let min_lat = [
            cons.int_alu_latency as u64,
            cons.int_mul_latency as u64,
            cons.int_div_latency as u64,
            cons.fp_alu_latency as u64,
            cons.fp_mul_latency as u64,
            cons.fp_div_latency as u64,
            l1d_spec.latency_cycles() as u64,
            1,
            cons.int_alu_latency as u64,
        ];
        Self {
            cfg: *cfg,
            cons: *cons,
            options,
            kinds: trace.kinds(),
            src1: trace.src1s(),
            src2: trace.src2s(),
            pcs: trace.pcs(),
            addrs: trace.addrs(),
            takens: trace.takens(),
            targets: trace.targets(),
            metas: trace.metas(),
            frontend,
            dcache: Cache::new(
                cfg.dcache_kb as u64 * 1024,
                cons.l1_line_bytes,
                cons.l1d_assoc,
            ),
            l2: Cache::new(cfg.l2_kb as u64 * 1024, cons.l2_line_bytes, cons.l2_assoc),
            energy_model: EnergyModel::new(cfg, cons),
            counters: EnergyCounters::default(),
            l1d_lat: l1d_spec.latency_cycles() as u64,
            l2_lat: l2_spec.latency_cycles() as u64,
            mem: MemorySpec::standard(),
            l1_line_shift: cons.l1_line_bytes.trailing_zeros(),
            cycle: 0,
            complete: vec![u64::MAX; csize].into_boxed_slice(),
            cmask: csize - 1,
            committed: 0,
            dispatched: 0,
            next_fetch: 0,
            iq: vec![0; cfg.iq as usize].into_boxed_slice(),
            iq_ready: vec![0; cfg.iq as usize].into_boxed_slice(),
            iq_len: 0,
            min_lat,
            lsq_occ: 0,
            phys_used: 0,
            rename_regs: cfg.rf.saturating_sub(ARCH_REGS).max(4),
            fetch_stall_until: 0,
            fetch_blocked_on: None,
            last_fetch_line: u64::MAX,
            unresolved: vec![0; cfg.max_branches as usize].into_boxed_slice(),
            unresolved_len: 0,
            fu_busy: [[0; MAX_FU]; 4],
            fu_len,
            wb_tag: vec![0; WB_RING].into_boxed_slice(),
            wb_used: vec![0; WB_RING].into_boxed_slice(),
            l2_free_at: 0,
            mem_free_at: 0,
            l2_capture: None,
            intruder: None,
            corun_hooks: false,
            wb_ticks: 0,
            structural_block: false,
            scan_dirty: true,
            wheel: vec![0; WAKE_WHEEL].into_boxed_slice(),
            wheel_bits: vec![0; WAKE_WHEEL / 64].into_boxed_slice(),
            wake_floor: 1,
            iq_min_ready: u64::MAX,
            wheel_overflow: Vec::with_capacity(16),
            checker: sanitize.then(InvariantChecker::new),
            check_fail,
            warm_counters: None,
            warm_cycle: 0,
            warm_rates: None,
            last_commit_cycle: 0,
        }
    }

    /// Capacity bounds the occupancy checks enforce.
    fn bounds(&self) -> Bounds {
        Bounds {
            rob: self.cfg.rob as usize,
            iq: self.cfg.iq as usize,
            lsq: self.cfg.lsq,
            phys: self.rename_regs,
            fetch_q: FETCH_QUEUE_WIDTHS * self.cfg.width as usize,
            branches: self.cfg.max_branches as usize,
        }
    }

    /// Current occupancy snapshot for the sanitizer.
    fn occupancy(&self) -> Occupancy {
        Occupancy {
            rob: self.dispatched - self.committed,
            iq: self.iq_len,
            lsq: self.lsq_occ,
            phys: self.phys_used,
            fetch_q: self.next_fetch - self.dispatched,
            branches: self.unresolved_len,
            fetched: self.next_fetch,
            committed: self.committed,
        }
    }

    /// Completion cycle of in-flight position `idx` (ring lookup).
    #[inline]
    fn completion(&self, idx: usize) -> u64 {
        self.complete[idx & self.cmask]
    }

    /// Earliest cycle at which the operand `d` instructions back from
    /// `idx` can become available: 0 when absent or already committed
    /// (ready now), the scheduled completion once the producer has issued,
    /// a [`PENDING`]-published lower bound while it sits in the IQ, and
    /// `cycle + 1` when nothing is known. The operand is ready exactly
    /// when the bound is `<= self.cycle` (unknown/pending bounds are
    /// always in the future).
    #[inline]
    fn op_bound(&self, idx: usize, d: u32) -> u64 {
        if d == 0 {
            return 0;
        }
        let p = idx - d as usize;
        if p < self.committed {
            return 0;
        }
        let v = self.complete[p & self.cmask];
        if v == u64::MAX {
            self.cycle + 1
        } else if v & PENDING != 0 {
            // An expired lower bound proves nothing: the producer is still
            // unissued, so the operand is at least a cycle away.
            (v & !PENDING).max(self.cycle + 1)
        } else {
            v
        }
    }

    /// Writes wheel slot for cycle `t` (tag + summary bit + floor).
    #[inline]
    fn set_wheel(&mut self, t: u64) {
        let slot = (t as usize) & (WAKE_WHEEL - 1);
        self.wheel[slot] = t;
        self.wheel_bits[slot >> 6] |= 1 << (slot & 63);
        if t < self.wake_floor {
            self.wake_floor = t;
        }
    }

    /// Schedules a wakeup probe for completion cycle `t` (strictly in the
    /// future: every latency is ≥ 1 cycle).
    #[inline]
    fn wake_at(&mut self, t: u64) {
        if t - self.cycle < WAKE_WHEEL as u64 {
            self.set_wheel(t);
        } else {
            self.wheel_overflow.push(t);
        }
    }

    /// Runs the trace to completion and returns the measured-phase result.
    ///
    /// # Panics
    ///
    /// Panics if the machine stops making progress (a simulator bug, not a
    /// reachable state for legal configurations), or — when the sanitizer
    /// is enabled — if an invariant is violated. Use [`Pipeline::try_run`]
    /// to handle violations as errors instead.
    pub fn run(self) -> SimResult {
        match self.try_run() {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs the trace to completion, returning the first invariant
    /// violation as an error instead of panicking.
    ///
    /// # Panics
    ///
    /// Still panics on deadlock (no forward progress for 2 M cycles).
    pub fn try_run(self) -> Result<SimResult, CheckError> {
        self.try_run_full().map(|rec| rec.result)
    }

    /// Like [`Pipeline::try_run`], but additionally returns the measured
    /// event counters and the energy model so callers can reconcile the
    /// run against an independent reference (see [`crate::oracle`]).
    pub fn try_run_full(self) -> Result<RunRecord, CheckError> {
        self.try_run_full_obs(&mut NoObs)
    }

    /// Like [`Pipeline::try_run_full`], with an observer receiving
    /// per-cycle stage activity (see [`crate::obs`]).
    ///
    /// The hooks are gated on the monomorphised constant
    /// [`SimObs::ENABLED`]: with [`NoObs`] this compiles to exactly the
    /// un-instrumented loop, so results are bit-identical whether or not
    /// a run is observed (pinned by `tests/golden_sim.rs`).
    pub fn try_run_full_obs<O: SimObs>(mut self, obs: &mut O) -> Result<RunRecord, CheckError> {
        self.step_until(obs, usize::MAX)?;
        self.into_record()
    }

    /// Arms L2 stream capture: the run records every L2-reaching address
    /// (the L1-filtered stream, in issue order). Capture changes no
    /// timing or accounting — the run stays bit-identical to an unarmed
    /// one. Retrieve the stream with [`Pipeline::try_run_full_captured`].
    pub fn capture_l2_stream(&mut self) {
        self.l2_capture = Some(Vec::new());
        self.corun_hooks = true;
    }

    /// Injects `addrs` as a co-running intruder sharing this lane's L2:
    /// after each own L2 access, the next intruder address (round-robin
    /// over `addrs`, wrapping) takes an L2 slot — and, when it misses, a
    /// memory slot — so the own lane queues behind it, and the shared L2
    /// contents reflect both programs. Intruder events are accounted
    /// separately: the lane's counters, miss rates and energy remain
    /// own-only. An empty stream is ignored (no co-runner).
    pub fn set_intruder(&mut self, addrs: Vec<u64>) {
        if !addrs.is_empty() {
            self.intruder = Some(IntruderLane {
                addrs,
                pos: 0,
                accesses: 0,
                misses: 0,
            });
            self.corun_hooks = true;
        }
    }

    /// Like [`Pipeline::try_run_full`], additionally returning the L2
    /// address stream recorded by [`Pipeline::capture_l2_stream`]
    /// (empty if capture was never armed).
    pub fn try_run_full_captured(mut self) -> Result<(RunRecord, Vec<u64>), CheckError> {
        self.step_until(&mut NoObs, usize::MAX)?;
        let stream = self.l2_capture.take().unwrap_or_default();
        let record = self.into_record()?;
        Ok((record, stream))
    }

    /// Whether the whole trace has committed.
    pub(crate) fn finished(&self) -> bool {
        self.committed >= self.kinds.len()
    }

    /// Instructions committed so far (the lockstep driver's progress
    /// cursor).
    pub(crate) fn progress(&self) -> usize {
        self.committed
    }

    /// Advances the machine until at least `target` instructions have
    /// committed (or the trace ends). The loop body never reads `target`
    /// beyond the continuation condition, and all loop-carried state lives
    /// in fields, so chunked stepping is bit-identical to one
    /// uninterrupted run — the property the lockstep batch driver relies
    /// on (pinned by `tests/batch_sim.rs`).
    pub(crate) fn step_until<O: SimObs>(
        &mut self,
        obs: &mut O,
        target: usize,
    ) -> Result<(), CheckError> {
        let warmup = self.options.warmup;
        let n = self.kinds.len();
        let target = target.min(n);

        while self.committed < target {
            self.cycle += 1;
            self.counters.cycles += 1;

            // Stage-entry facts the observer needs but later stages
            // overwrite; `O::ENABLED` is a monomorphised constant, so the
            // whole block vanishes for the default `NoObs` run.
            let pre = if O::ENABLED {
                Some((
                    self.committed >= self.dispatched,
                    self.dispatched >= self.next_fetch,
                    self.counters,
                ))
            } else {
                None
            };

            // Stage brackets: one clock read per stage boundary, gated
            // on the monomorphised `STAGE_TIMING` constant so the
            // default (and stall-profiled) loops compile unchanged.
            let t0 = if O::STAGE_TIMING {
                crate::obs::stage_clock()
            } else {
                0
            };
            let committed_now = self.commit();
            let t1 = if O::STAGE_TIMING {
                crate::obs::stage_clock()
            } else {
                0
            };
            if committed_now > 0 {
                self.last_commit_cycle = self.cycle;
            }
            assert!(
                self.cycle - self.last_commit_cycle < 2_000_000,
                "pipeline deadlock at cycle {} (committed {}/{}, cfg {})",
                self.cycle,
                self.committed,
                n,
                self.cfg
            );

            self.issue::<O>();
            let t2 = if O::STAGE_TIMING {
                crate::obs::stage_clock()
            } else {
                0
            };
            self.dispatch();
            let t3 = if O::STAGE_TIMING {
                crate::obs::stage_clock()
            } else {
                0
            };
            self.fetch();

            if O::STAGE_TIMING {
                let t4 = crate::obs::stage_clock();
                let wb = std::mem::take(&mut self.wb_ticks);
                obs.on_stage_times(&crate::obs::StageTimes {
                    commit: t1.wrapping_sub(t0),
                    issue: t2.wrapping_sub(t1).saturating_sub(wb),
                    writeback: wb,
                    dispatch: t3.wrapping_sub(t2),
                    fetch: t4.wrapping_sub(t3),
                });
            }

            if O::ENABLED {
                let (rob_was_empty, fetch_q_was_empty, prev) =
                    pre.expect("pre-stage snapshot is taken whenever O::ENABLED");
                obs.on_cycle(&CycleObs {
                    committed: committed_now,
                    issued: (self.counters.iq_wakeups - prev.iq_wakeups) as u32,
                    dispatched: (self.counters.renamed - prev.renamed) as u32,
                    fetched: (self.counters.fetched - prev.fetched) as u32,
                    rob_was_empty,
                    fetch_q_was_empty,
                    fetch_blocked_mispredict: self.fetch_blocked_on.is_some(),
                    fetch_icache_stall: self.cycle < self.fetch_stall_until,
                    trace_exhausted: self.next_fetch >= n,
                    occ: self.occupancy(),
                    bounds: self.bounds(),
                });
            }

            if self.checker.is_some() {
                if let Some(e) = self.check_fail.take() {
                    return Err(e);
                }
                if let Some(chk) = self.checker.as_ref() {
                    chk.on_cycle(&self.occupancy(), &self.bounds(), self.cycle)?;
                }
            }

            if self.warm_counters.is_none() && self.committed >= warmup {
                self.warm_counters = Some(self.counters);
                self.warm_cycle = self.cycle;
                self.warm_rates = Some(self.rates_snapshot());
            }

            // Event-driven fast-forward: jump the clock over cycles in
            // which no stage can act. Skipped cycles mutate no state, so
            // results are bit-identical to stepping through them.
            if self.committed < n {
                let skip = self.idle_skip();
                if (O::ENABLED || O::STAGE_TIMING) && skip > 0 {
                    obs.on_idle(skip);
                }
                self.cycle += skip;
                self.counters.cycles += skip;
            }
        }
        Ok(())
    }

    /// Final checks and measured-phase result assembly, after the trace
    /// has fully committed.
    pub(crate) fn into_record(mut self) -> Result<RunRecord, CheckError> {
        debug_assert!(self.finished());
        let warmup = self.options.warmup;
        let n = self.kinds.len();

        if let Some(chk) = self.checker.take() {
            self.final_checks(&chk)?;
        }

        let warm_counters = self.warm_counters.unwrap_or_default();
        let measured = self.counters.since(&warm_counters);
        let instructions = (n - warmup.min(n)) as u64;
        let cycles = self.cycle - self.warm_cycle;
        let energy_nj = measured.total_nj(&self.energy_model);
        let zero = MissRateSnapshot {
            l1i: (0, 0),
            l1d: (0, 0),
            l2: (0, 0),
            bp: (0, 0),
        };
        let w = self.warm_rates.unwrap_or(zero);
        let rate = |acc: u64, miss: u64, w_acc: u64, w_miss: u64| {
            let a = acc - w_acc;
            if a == 0 {
                0.0
            } else {
                (miss - w_miss) as f64 / a as f64
            }
        };
        let (ic_acc, ic_miss) = self.frontend.icache_stats();
        let (bp_pred, bp_miss) = self.frontend.bpred_stats();
        let result = SimResult {
            instructions,
            cycles,
            energy_nj,
            ipc: instructions as f64 / cycles.max(1) as f64,
            l1i_miss_rate: rate(ic_acc, ic_miss, w.l1i.0, w.l1i.1),
            l1d_miss_rate: rate(
                self.dcache.accesses(),
                self.dcache.misses(),
                w.l1d.0,
                w.l1d.1,
            ),
            l2_miss_rate: {
                let (own_acc, own_miss) = self.own_l2_stats();
                rate(own_acc, own_miss, w.l2.0, w.l2.1)
            },
            bpred_miss_rate: rate(bp_pred, bp_miss, w.bp.0, w.bp.1),
        };
        Ok(RunRecord {
            result,
            counters: measured,
            model: self.energy_model,
        })
    }

    /// End-of-run reconciliation: the pipeline's event counters, the
    /// caches'/predictor's own statistics, and the energy breakdown must
    /// all agree. Uses the *full-run* counters, before any warm-up
    /// subtraction, so the comparison is exact.
    fn final_checks(&self, chk: &InvariantChecker) -> Result<(), CheckError> {
        let n = self.kinds.len() as u64;
        chk.on_finish(self.kinds.len())?;

        // Per-structure self-consistency (a planned front end validates
        // the shared plan structures plus exact plan consumption).
        self.frontend.check_invariants()?;
        self.dcache.check_invariants("l1d")?;
        self.l2.check_invariants("l2")?;

        // Pipeline event counters vs the structures' own statistics.
        let c = &self.counters;
        let (ic_acc, ic_miss) = self.frontend.icache_stats();
        let (bp_pred, _) = self.frontend.bpred_stats();
        check::reconcile("icache-accesses", c.icache_accesses, ic_acc)?;
        check::reconcile("dcache-accesses", c.dcache_accesses, self.dcache.accesses())?;
        // The L2 totals include any co-running intruder's accesses; the
        // lane's own counters must match the own share exactly.
        let (own_l2_acc, own_l2_miss) = self.own_l2_stats();
        check::reconcile("l2-accesses", c.l2_accesses, own_l2_acc)?;
        check::reconcile(
            "l1-misses-feed-l2",
            own_l2_acc,
            ic_miss + self.dcache.misses(),
        )?;
        check::reconcile("l2-misses-feed-memory", c.memory_accesses, own_l2_miss)?;
        check::reconcile("bpred-accesses", c.bpred_accesses, bp_pred)?;

        // Every trace instruction flows through each stage exactly once.
        check::reconcile("fetched-count", c.fetched, n)?;
        check::reconcile("renamed-count", c.renamed, n)?;
        check::reconcile("issued-count", c.iq_wakeups, n)?;
        check::reconcile("iq-insert-count", c.iq_inserts, n)?;
        check::reconcile("commit-count", c.rob_reads, n)?;
        check::reconcile("fu-op-count", c.fu_ops.iter().sum(), n)?;
        // ROB is written at dispatch and again at writeback of every
        // result-producing instruction.
        check::reconcile("rob-writes", c.rob_writes, c.renamed + c.rf_writes)?;

        // Energy: the per-structure breakdown must sum to the total and
        // every component must be finite and non-negative.
        check::check_energy(c, &self.energy_model)?;
        Ok(())
    }

    fn rates_snapshot(&self) -> MissRateSnapshot {
        MissRateSnapshot {
            l1i: self.frontend.icache_stats(),
            l1d: (self.dcache.accesses(), self.dcache.misses()),
            l2: self.own_l2_stats(),
            bp: self.frontend.bpred_stats(),
        }
    }

    /// Length of an exact idle fast-forward from the current end-of-cycle
    /// state: how many upcoming cycles provably pass with *no* stage able
    /// to act, so the run loop may advance the clock over them in one
    /// step. Returns 0 whenever any stage might act next cycle.
    ///
    /// The per-stage obligations are local:
    ///
    /// * issue acts only on a wakeup-wheel event, a pending rescan
    ///   (a fresh dispatch, `scan_dirty`) or a structural retry
    ///   (`structural_block`);
    /// * commit acts only when the ROB head's completion cycle arrives —
    ///   known from the ring, or wake-gated for an unissued head;
    /// * dispatch acts only when the fetch queue is non-empty and its head
    ///   clears the ROB/IQ/LSQ/register caps, all of which change only
    ///   via commit, issue or fetch;
    /// * fetch acts only when unblocked (mispredict resolution is a wheel
    ///   event), unstalled (`fetch_stall_until` is known), the queue has
    ///   room (dispatch-gated) and trace instructions remain. Deferring
    ///   its per-cycle resolved-branch retire is invisible: the retained
    ///   set at the landing cycle is the same either way, and no fetch
    ///   (hence no ring reuse) happens in between.
    ///
    /// Skipped cycles therefore mutate no state — every counter, cache,
    /// predictor and queue is bit-identical to stepping one by one; only
    /// the clock advances, by the same amount either way. (The method is
    /// `&mut self` solely to advance the `wake_floor` scan frontier, a
    /// pure cache over the wheel's contents.)
    fn idle_skip(&mut self) -> u64 {
        if self.scan_dirty || self.structural_block {
            return 0;
        }
        // Dispatch must be unable to act on the current head.
        if self.dispatched < self.next_fetch {
            let m = self.metas[self.dispatched];
            let blocked = self.dispatched - self.committed >= self.cfg.rob as usize
                || self.iq_len >= self.cfg.iq as usize
                || (m & meta::IS_MEM != 0 && self.lsq_occ >= self.cfg.lsq)
                || (m & meta::HAS_DEST != 0 && self.phys_used >= self.rename_regs);
            if !blocked {
                return 0;
            }
        }
        // Fetch must be inert.
        let mut bound = self.cycle + MAX_IDLE_SKIP;
        if let Some(b) = self.fetch_blocked_on {
            let done = self.completion(b);
            if done <= self.cycle {
                return 0; // resolves on the next fetch call
            }
            // An issued mispredict resolves at its exact completion; its
            // wakeup may be filtered below as fruitless for the IQ, so
            // bound the skip here. (Unissued: gated by `iq_min_ready`.)
            if done != u64::MAX && done & PENDING == 0 {
                bound = bound.min(done);
            }
        } else if self.cycle < self.fetch_stall_until {
            bound = bound.min(self.fetch_stall_until);
        } else if self.next_fetch < self.kinds.len()
            && self.next_fetch - self.dispatched < FETCH_QUEUE_WIDTHS * self.cfg.width as usize
        {
            // Fetch can act (conservatively includes branch-limit waits).
            return 0;
        }
        // The ROB head's completion bounds the skip; an unissued head
        // commits only after a wake-driven issue. A width-limited commit
        // can leave the head already complete (`done <= cycle`), in which
        // case commit acts next cycle and the skip collapses to zero.
        if self.committed < self.dispatched {
            let done = self.completion(self.committed);
            if done != u64::MAX {
                if done <= self.cycle {
                    return 0;
                }
                bound = bound.min(done);
            }
        }
        // Beyond-horizon completions migrate lazily in issue(); never
        // skip past one (the list is almost always empty).
        for &t in &self.wheel_overflow {
            bound = bound.min(t);
        }
        // The earliest scheduled wakeup bounds everything else: scan the
        // wheel across the candidate gap using the per-slot summary
        // bitmap — 64 slots per word read, so a long empty gap costs a
        // handful of loads — with the `wake_floor` frontier making it
        // incremental: slots a previous scan already proved empty are
        // never re-read. Wakeups below `iq_min_ready` are skipped over:
        // the issue scan they would trigger is provably fruitless, and
        // every other stage's obligation is bounded explicitly above. A
        // filtered wakeup ends up behind the landing cycle
        // (`target - 1`), so advancing the frontier over it can never
        // hide a still-future event. (The scan range is < MAX_IDLE_SKIP
        // < WAKE_WHEEL, and any tag in a scanned slot that differs from
        // the probe cycle is provably stale — an equal-slot *future*
        // cycle would have been beyond the wheel horizon at scheduling
        // time — so clearing its summary bit is safe.)
        let mut target = bound;
        let mut t = (self.cycle + 1).max(self.wake_floor);
        while t < target {
            let slot = (t as usize) & (WAKE_WHEEL - 1);
            let word = slot >> 6;
            let off = slot & 63;
            let rem = self.wheel_bits[word] >> off;
            if rem == 0 {
                t += (64 - off) as u64;
                continue;
            }
            let step = rem.trailing_zeros() as u64;
            if step > 0 {
                t += step;
                continue;
            }
            if self.wheel[slot] == t && t >= self.iq_min_ready {
                target = t;
                break;
            }
            // Stale tag, or a filtered wakeup the skip passes over — the
            // slot lands behind the frontier either way.
            self.wheel_bits[word] &= !(1u64 << off);
            t += 1;
        }
        self.wake_floor = target;
        target - (self.cycle + 1)
    }

    // ------------------------------------------------------------------
    // Commit
    // ------------------------------------------------------------------
    fn commit(&mut self) -> u32 {
        let mut n = 0;
        while n < self.cfg.width {
            if self.committed >= self.dispatched {
                break; // ROB empty
            }
            let idx = self.committed;
            let done = self.completion(idx);
            if done > self.cycle {
                break;
            }
            if self.checker.is_some() {
                let cycle = self.cycle;
                if let Some(chk) = self.checker.as_mut() {
                    if let Err(e) = chk.on_commit(idx, done, cycle) {
                        self.check_fail.get_or_insert(e);
                    }
                }
            }
            let m = self.metas[idx];
            if m & meta::IS_MEM != 0 {
                self.lsq_occ -= 1;
            }
            if m & meta::HAS_DEST != 0 {
                self.phys_used -= 1;
            }
            self.counters.rob_reads += 1;
            self.committed += 1;
            n += 1;
        }
        n
    }

    // ------------------------------------------------------------------
    // Issue
    // ------------------------------------------------------------------
    fn issue<O: SimObs>(&mut self) {
        // Probe the wakeup wheel; a scan is only worthwhile when something
        // changed (a completion landed, a dispatch happened, or the last
        // scan failed on a structural hazard that time alone resolves).
        let mut woke = self.wheel[(self.cycle as usize) & (WAKE_WHEEL - 1)] == self.cycle;
        if !self.wheel_overflow.is_empty() {
            let cycle = self.cycle;
            let mut i = 0;
            while i < self.wheel_overflow.len() {
                let t = self.wheel_overflow[i];
                if t <= cycle {
                    woke = true;
                    self.wheel_overflow.swap_remove(i);
                } else if t - cycle < WAKE_WHEEL as u64 {
                    self.set_wheel(t);
                    self.wheel_overflow.swap_remove(i);
                } else {
                    i += 1;
                }
            }
        }
        if !woke && !self.scan_dirty && !self.structural_block {
            return;
        }
        // A wakeup with every cached ready bound still in the future is
        // provably fruitless: bounds are conservative (an entry is never
        // ready before its bound), so the scan would keep every entry and
        // issue nothing. Bounds affect only when work happens, never its
        // outcome, so eliding the scan is bit-exact.
        if !self.scan_dirty && !self.structural_block && self.iq_min_ready > self.cycle {
            return;
        }
        self.scan_dirty = false;
        self.structural_block = false;

        let cycle = self.cycle;
        let mut min = u64::MAX;
        let mut issued = 0u32;
        let mut reads_used = 0u32;
        let mut mem_ports_used = 0u32;
        let len = self.iq_len;
        let mut r = 0usize;
        let mut w = 0usize;
        while r < len {
            if issued >= self.cfg.width {
                break;
            }
            let idx = self.iq[r] as usize;
            let rt = self.iq_ready[r];
            r += 1;

            // Operand readiness (results forward the cycle they complete):
            // an unexpired cached lower bound rules the entry out on one
            // compare; otherwise re-derive the bound from the ring.
            if rt > cycle {
                self.iq[w] = idx as u32;
                self.iq_ready[w] = rt;
                min = min.min(rt);
                w += 1;
                continue;
            }
            let d1 = self.src1[idx];
            let d2 = self.src2[idx];
            let rt = self.op_bound(idx, d1).max(self.op_bound(idx, d2));
            if rt > cycle {
                // Not ready: cache the ready bound and publish a completion
                // lower bound (ready + the kind's minimum latency) so that
                // dependants — later in this same program-ordered scan and
                // in later scans — bound whole chains without re-probing.
                self.iq[w] = idx as u32;
                self.iq_ready[w] = rt;
                self.complete[idx & self.cmask] =
                    (rt + self.min_lat[self.kinds[idx] as usize]) | PENDING;
                min = min.min(rt);
                w += 1;
                continue;
            }

            // Register-file read ports.
            let nsrc = (d1 > 0) as u32 + (d2 > 0) as u32;
            if reads_used + nsrc > self.cfg.rf_read {
                self.structural_block = true;
                self.iq[w] = idx as u32;
                self.iq_ready[w] = rt;
                min = min.min(rt);
                w += 1;
                continue;
            }

            // Cache ports for memory operations.
            let m = self.metas[idx];
            if m & meta::IS_MEM != 0 && mem_ports_used >= self.cons.mem_ports {
                self.structural_block = true;
                self.iq[w] = idx as u32;
                self.iq_ready[w] = rt;
                min = min.min(rt);
                w += 1;
                continue;
            }

            // Functional unit.
            let class = (m & meta::FU_MASK) as usize;
            let pool = self.fu_len[class] as usize;
            let Some(unit) = self.fu_busy[class][..pool].iter().position(|&b| b <= cycle) else {
                self.structural_block = true;
                self.iq[w] = idx as u32;
                self.iq_ready[w] = rt;
                min = min.min(rt);
                w += 1;
                continue;
            };

            // --- the instruction issues ---
            let (exec_done, unit_busy_until) = self.execute_latency(self.kinds[idx], idx);
            self.fu_busy[class][unit] = unit_busy_until;
            reads_used += nsrc;
            self.counters.rf_reads += nsrc as u64;
            self.counters.iq_wakeups += 1;
            self.counters.fu_ops[class] += 1;
            if m & meta::IS_MEM != 0 {
                mem_ports_used += 1;
                self.counters.lsq_searches += 1;
            }

            // Writeback port reservation for result-producing instructions.
            let done = if m & meta::HAS_DEST != 0 {
                let slot = if O::STAGE_TIMING {
                    let w0 = crate::obs::stage_clock();
                    let slot = self.reserve_wb(exec_done);
                    self.wb_ticks += crate::obs::stage_clock().wrapping_sub(w0);
                    slot
                } else {
                    self.reserve_wb(exec_done)
                };
                self.counters.rf_writes += 1;
                self.counters.rob_writes += 1;
                slot
            } else {
                exec_done
            };
            self.complete[idx & self.cmask] = done;
            self.wake_at(done);
            issued += 1;
            if issued == self.cfg.width {
                self.structural_block = true; // width-limited: retry next cycle
            }
        }
        // Compact the unexamined tail (the scan stopped at the width limit).
        while r < len {
            self.iq[w] = self.iq[r];
            self.iq_ready[w] = self.iq_ready[r];
            min = min.min(self.iq_ready[w]);
            r += 1;
            w += 1;
        }
        self.iq_len = w;
        self.iq_min_ready = min;

        if let Some(chk) = self.checker.as_ref() {
            if let Err(e) = chk.on_issue(
                reads_used,
                self.cfg.rf_read,
                mem_ports_used,
                self.cons.mem_ports,
                self.cycle,
            ) {
                self.check_fail.get_or_insert(e);
            }
        }
    }

    /// Returns `(result_ready_cycle, fu_busy_until)` for the instruction
    /// at trace position `idx` issuing this cycle.
    fn execute_latency(&mut self, kind: InstrKind, idx: usize) -> (u64, u64) {
        let c = self.cycle;
        match kind {
            InstrKind::IntAlu | InstrKind::Branch => (c + self.cons.int_alu_latency as u64, c + 1),
            InstrKind::IntMul => (c + self.cons.int_mul_latency as u64, c + 1),
            InstrKind::IntDiv => {
                let l = self.cons.int_div_latency as u64;
                (c + l, c + l) // non-pipelined
            }
            InstrKind::FpAlu => (c + self.cons.fp_alu_latency as u64, c + 1),
            InstrKind::FpMul => (c + self.cons.fp_mul_latency as u64, c + 1),
            InstrKind::FpDiv => {
                let l = self.cons.fp_div_latency as u64;
                (c + l, c + l) // non-pipelined
            }
            InstrKind::Load => {
                let ready = self.data_access(self.addrs[idx], c);
                (ready, c + 1)
            }
            InstrKind::Store => {
                // The store writes its buffer entry in one cycle; the cache
                // update (and any miss traffic) happens off the critical
                // path but still consumes hierarchy bandwidth and energy.
                let _ = self.data_access(self.addrs[idx], c);
                (c + 1, c + 1)
            }
        }
    }

    /// Performs a data access through D-L1 → L2 → memory, returning the
    /// absolute cycle the data is available. Bandwidth contention is
    /// modelled by single-server queues on L2 and the memory bus.
    fn data_access(&mut self, addr: u64, at: u64) -> u64 {
        self.counters.dcache_accesses += 1;
        let l1_done = at + self.l1d_lat;
        if self.dcache.access(addr) == CacheOutcome::Hit {
            return l1_done;
        }
        self.l2_access(addr, l1_done)
    }

    /// L2 access (shared by I- and D-side), returning data-ready cycle.
    fn l2_access(&mut self, addr: u64, at: u64) -> u64 {
        // Capture/co-run hooks live in the outlined variant so the solo
        // hot path pays exactly one always-false predictable branch.
        if self.corun_hooks {
            return self.l2_access_hooked(addr, at);
        }
        self.counters.l2_accesses += 1;
        let start = at.max(self.l2_free_at);
        self.l2_free_at = start + 2; // L2 accepts a new access every 2 cycles
        let l2_done = start + self.l2_lat;
        if self.l2.access(addr) == CacheOutcome::Hit {
            return l2_done;
        }
        self.counters.memory_accesses += 1;
        let mstart = l2_done.max(self.mem_free_at);
        self.mem_free_at = mstart + self.mem.occupancy as u64;
        mstart + self.mem.latency as u64
    }

    /// [`Pipeline::l2_access`] with the stream-capture and intruder
    /// hooks live — only reached when one of them is armed.
    #[cold]
    #[inline(never)]
    fn l2_access_hooked(&mut self, addr: u64, at: u64) -> u64 {
        self.counters.l2_accesses += 1;
        if let Some(cap) = self.l2_capture.as_mut() {
            cap.push(addr);
        }
        let start = at.max(self.l2_free_at);
        self.l2_free_at = start + 2; // L2 accepts a new access every 2 cycles
        let l2_done = start + self.l2_lat;
        let hit = self.l2.access(addr) == CacheOutcome::Hit;
        // Round-robin co-runner: one intruder access follows each own
        // access, taking the next L2 slot and — on a miss — a memory
        // slot ahead of any own miss below, so the own lane feels both
        // port and bus contention as well as capacity pollution.
        if let Some(intr) = self.intruder.as_mut() {
            let ia = intr.addrs[intr.pos];
            intr.pos += 1;
            if intr.pos == intr.addrs.len() {
                intr.pos = 0;
            }
            intr.accesses += 1;
            self.l2_free_at += 2;
            if self.l2.access(ia) != CacheOutcome::Hit {
                intr.misses += 1;
                self.mem_free_at = self.mem_free_at.max(l2_done) + self.mem.occupancy as u64;
            }
        }
        if hit {
            return l2_done;
        }
        self.counters.memory_accesses += 1;
        let mstart = l2_done.max(self.mem_free_at);
        self.mem_free_at = mstart + self.mem.occupancy as u64;
        mstart + self.mem.latency as u64
    }

    /// The lane's own L2 statistics — total minus intruder, so co-run
    /// miss rates and reconciliations describe only this program.
    fn own_l2_stats(&self) -> (u64, u64) {
        match &self.intruder {
            Some(i) => (self.l2.accesses() - i.accesses, self.l2.misses() - i.misses),
            None => (self.l2.accesses(), self.l2.misses()),
        }
    }

    /// Reserves a register-file write port at or after `at`.
    fn reserve_wb(&mut self, at: u64) -> u64 {
        let ports = self.cfg.rf_write;
        let mut t = at;
        loop {
            let slot = (t as usize) & (WB_RING - 1);
            if self.wb_tag[slot] != t {
                self.wb_tag[slot] = t;
                self.wb_used[slot] = 1;
                return t;
            }
            if (self.wb_used[slot] as u32) < ports {
                self.wb_used[slot] += 1;
                if let Some(chk) = self.checker.as_ref() {
                    if let Err(e) = chk.on_writeback_grant(self.wb_used[slot] as u32, ports, t) {
                        self.check_fail.get_or_insert(e);
                    }
                }
                return t;
            }
            t += 1;
            // The ring is vastly larger than any realistic backlog; give up
            // gracefully rather than wrapping onto live reservations.
            if t - at >= (WB_RING as u64) / 2 {
                return t;
            }
        }
    }

    // ------------------------------------------------------------------
    // Dispatch (rename)
    // ------------------------------------------------------------------
    fn dispatch(&mut self) {
        let rob_cap = self.cfg.rob as usize;
        let iq_cap = self.cfg.iq as usize;
        let mut n = 0;
        while n < self.cfg.width {
            if self.dispatched >= self.next_fetch {
                break; // fetch queue empty
            }
            let idx = self.dispatched;
            let m = self.metas[idx];
            let is_mem = m & meta::IS_MEM != 0;
            let has_dest = m & meta::HAS_DEST != 0;
            if self.dispatched - self.committed >= rob_cap
                || self.iq_len >= iq_cap
                || (is_mem && self.lsq_occ >= self.cfg.lsq)
                || (has_dest && self.phys_used >= self.rename_regs)
            {
                break;
            }
            self.dispatched += 1;
            // Append in program order; the zero bound marks the entry
            // unexamined, and `scan_dirty` forces the next scan to fold
            // it into `iq_min_ready`.
            self.iq[self.iq_len] = idx as u32;
            self.iq_ready[self.iq_len] = 0;
            self.iq_len += 1;
            self.scan_dirty = true;
            if is_mem {
                self.lsq_occ += 1;
            }
            if has_dest {
                self.phys_used += 1;
            }
            self.counters.renamed += 1;
            self.counters.rob_writes += 1;
            self.counters.iq_inserts += 1;
            n += 1;
        }
    }

    // ------------------------------------------------------------------
    // Fetch
    // ------------------------------------------------------------------
    fn fetch(&mut self) {
        // A mispredicted branch blocks fetch until it resolves, then the
        // front end refills.
        if let Some(b) = self.fetch_blocked_on {
            let done = self.completion(b);
            if done != u64::MAX && done <= self.cycle {
                self.fetch_stall_until = done + self.cons.frontend_depth as u64;
                self.fetch_blocked_on = None;
            } else {
                return;
            }
        }
        if self.cycle < self.fetch_stall_until {
            return;
        }
        // Retire resolved branches from the in-flight set (in place, in
        // order). Entries may already be committed; their ring slots are
        // still intact because no fetch has happened since they resolved.
        {
            let mut w = 0usize;
            for r in 0..self.unresolved_len {
                let b = self.unresolved[r];
                if self.complete[(b as usize) & self.cmask] > self.cycle {
                    self.unresolved[w] = b;
                    w += 1;
                }
            }
            self.unresolved_len = w;
        }

        let cap = FETCH_QUEUE_WIDTHS * self.cfg.width as usize;
        let n = self.kinds.len();
        let mut fetched = 0;
        while fetched < self.cfg.width
            && self.next_fetch - self.dispatched < cap
            && self.next_fetch < n
        {
            let idx = self.next_fetch;
            let pc = self.pcs[idx] as u64;

            // I-cache: one access per new line.
            let line = pc >> self.l1_line_shift;
            if line != self.last_fetch_line {
                self.counters.icache_accesses += 1;
                let outcome = self.frontend.icache_access(pc);
                self.last_fetch_line = line;
                if outcome == CacheOutcome::Miss {
                    let ready = self.l2_access(pc, self.cycle);
                    self.fetch_stall_until = ready;
                    return;
                }
            }

            if self.metas[idx] & meta::IS_BRANCH != 0 {
                if self.unresolved_len >= self.cfg.max_branches as usize {
                    return; // in-flight branch limit
                }
                self.counters.bpred_accesses += 1;
                self.counters.btb_accesses += 1;
                let taken = self.takens[idx];
                let target = self.targets[idx];
                let correct = self.frontend.branch_access(pc, taken, target);
                self.unresolved[self.unresolved_len] = idx as u32;
                self.unresolved_len += 1;
                self.complete[idx & self.cmask] = u64::MAX;
                self.counters.fetched += 1;
                self.next_fetch += 1;
                fetched += 1;
                if !correct {
                    self.fetch_blocked_on = Some(idx);
                    return;
                }
                if taken {
                    // Redirect: correctly-predicted taken branches end the
                    // fetch group.
                    self.last_fetch_line = u64::MAX;
                    return;
                }
            } else {
                self.complete[idx & self.cmask] = u64::MAX;
                self.counters.fetched += 1;
                self.next_fetch += 1;
                fetched += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dse_workload::{Instr, Trace};

    fn mk_trace(instrs: Vec<Instr>) -> Trace {
        Trace::new("unit", instrs)
    }

    fn alu(pc: u32) -> Instr {
        Instr {
            kind: InstrKind::IntAlu,
            src1: 0,
            src2: 0,
            pc,
            addr: 0,
            taken: false,
            target: 0,
        }
    }

    /// Runs with a quarter of the trace as warm-up so cold-start cache
    /// misses do not dominate these steady-state microbenchmarks.
    fn run(cfg: &Config, trace: &Trace) -> SimResult {
        Pipeline::new(
            cfg,
            &ConstantParams::standard(),
            trace,
            SimOptions::with_warmup(trace.len() / 4),
        )
        .run()
    }

    #[test]
    fn independent_alu_ops_reach_high_ipc() {
        let trace = mk_trace((0..4000).map(|i| alu(0x40_0000 + (i % 512) * 4)).collect());
        let cfg = Config {
            width: 8,
            rf_read: 16,
            rf_write: 8,
            ..Config::baseline()
        };
        let r = run(&cfg, &trace);
        assert!(r.ipc > 4.0, "ipc {}", r.ipc);
    }

    #[test]
    fn serial_dependency_chain_limits_ipc_to_one() {
        let mut instrs: Vec<Instr> = (0..4000).map(|i| alu(0x40_0000 + (i % 512) * 4)).collect();
        for ins in instrs.iter_mut().skip(1) {
            ins.src1 = 1; // each depends on its predecessor
        }
        let r = run(&Config::baseline(), &mk_trace(instrs));
        assert!(r.ipc <= 1.05, "ipc {}", r.ipc);
        assert!(r.ipc > 0.5, "ipc {}", r.ipc);
    }

    #[test]
    fn wider_machine_is_faster_on_parallel_code() {
        let trace = mk_trace((0..6000).map(|i| alu(0x40_0000 + (i % 512) * 4)).collect());
        let narrow = run(
            &Config {
                width: 2,
                rf_read: 4,
                rf_write: 2,
                ..Config::baseline()
            },
            &trace,
        );
        let wide = run(
            &Config {
                width: 8,
                rf_read: 16,
                rf_write: 8,
                ..Config::baseline()
            },
            &trace,
        );
        assert!(
            wide.cycles * 2 < narrow.cycles,
            "wide {} narrow {}",
            wide.cycles,
            narrow.cycles
        );
    }

    #[test]
    fn write_ports_throttle_completion() {
        let trace = mk_trace((0..4000).map(|i| alu(0x40_0000 + (i % 256) * 4)).collect());
        let few = run(
            &Config {
                width: 8,
                rf_read: 16,
                rf_write: 1,
                ..Config::baseline()
            },
            &trace,
        );
        let many = run(
            &Config {
                width: 8,
                rf_read: 16,
                rf_write: 8,
                ..Config::baseline()
            },
            &trace,
        );
        assert!(
            few.cycles > many.cycles * 3,
            "few {} many {}",
            few.cycles,
            many.cycles
        );
    }

    #[test]
    fn load_misses_cost_memory_latency() {
        // Strided loads over 16 MB: miss in every level.
        let instrs: Vec<Instr> = (0..2000)
            .map(|i| Instr {
                kind: InstrKind::Load,
                src1: 0,
                src2: 0,
                pc: 0x40_0000 + (i % 64) * 4,
                addr: 0x1000_0000 + i as u64 * 4096,
                taken: false,
                target: 0,
            })
            .collect();
        let r = run(&Config::baseline(), &mk_trace(instrs));
        assert!(r.l1d_miss_rate > 0.95, "l1d miss {}", r.l1d_miss_rate);
        assert!(r.l2_miss_rate > 0.95, "l2 miss {}", r.l2_miss_rate);
        // Bandwidth-bound: at least the bus occupancy per measured load.
        assert!(
            r.cycles > r.instructions * 15,
            "cycles {} too low for memory-bound",
            r.cycles
        );
    }

    #[test]
    fn cache_hits_are_fast() {
        let instrs: Vec<Instr> = (0..4000)
            .map(|i| Instr {
                kind: InstrKind::Load,
                src1: 0,
                src2: 0,
                pc: 0x40_0000 + (i % 64) * 4,
                addr: 0x1000_0000 + (i as u64 % 64) * 8,
                taken: false,
                target: 0,
            })
            .collect();
        let r = run(&Config::baseline(), &mk_trace(instrs));
        assert!(r.l1d_miss_rate < 0.01, "l1d miss {}", r.l1d_miss_rate);
        assert!(r.ipc > 1.0, "ipc {}", r.ipc);
    }

    #[test]
    fn mispredicted_branches_cost_bubbles() {
        // Alternating taken/not-taken is learnable; random is not. Compare
        // a predictable stream against a data-random one.
        let mk = |random: bool| {
            let mut rng = dse_rng::Xoshiro256::seed_from(7);
            let instrs: Vec<Instr> = (0..6000u32)
                .map(|i| {
                    if i % 4 == 3 {
                        let taken = if random { rng.next_bool(0.5) } else { true };
                        Instr {
                            kind: InstrKind::Branch,
                            src1: 1,
                            src2: 0,
                            pc: 0x40_0000 + (i % 256) * 4,
                            addr: 0,
                            taken,
                            target: 0x40_0000 + ((i + 1) % 256) * 4,
                        }
                    } else {
                        alu(0x40_0000 + (i % 256) * 4)
                    }
                })
                .collect();
            mk_trace(instrs)
        };
        let predictable = run(&Config::baseline(), &mk(false));
        let random = run(&Config::baseline(), &mk(true));
        assert!(
            random.cycles as f64 > predictable.cycles as f64 * 1.5,
            "random {} predictable {}",
            random.cycles,
            predictable.cycles
        );
        assert!(random.bpred_miss_rate > 0.3);
        assert!(predictable.bpred_miss_rate < 0.1);
    }

    #[test]
    fn energy_is_positive_and_scales_with_work() {
        // Same warm-up on both runs, so the measured (steady-state) energy
        // must scale with the measured instruction count.
        let mk = |n: u32| mk_trace((0..n).map(|i| alu(0x40_0000 + (i % 128) * 4)).collect());
        let opts = SimOptions::with_warmup(500);
        let cons = ConstantParams::standard();
        let short = Pipeline::new(&Config::baseline(), &cons, &mk(1500), opts).run();
        let long = Pipeline::new(&Config::baseline(), &cons, &mk(4000), opts).run();
        assert!(short.energy_nj > 0.0);
        let per_instr_short = short.energy_nj / short.instructions as f64;
        let per_instr_long = long.energy_nj / long.instructions as f64;
        let ratio = per_instr_long / per_instr_short;
        assert!(
            (0.8..1.2).contains(&ratio),
            "per-instruction energy not stable: {ratio}"
        );
    }

    #[test]
    fn warmup_is_excluded_from_measured_instructions() {
        let trace = mk_trace((0..3000).map(|i| alu(0x40_0000 + (i % 128) * 4)).collect());
        let r = Pipeline::new(
            &Config::baseline(),
            &ConstantParams::standard(),
            &trace,
            SimOptions::with_warmup(1000),
        )
        .run();
        assert_eq!(r.instructions, 2000);
    }

    #[test]
    #[should_panic(expected = "longer than the warm-up")]
    fn warmup_longer_than_trace_panics() {
        let trace = mk_trace(vec![alu(0x40_0000)]);
        let _ = Pipeline::new(
            &Config::baseline(),
            &ConstantParams::standard(),
            &trace,
            SimOptions::with_warmup(10),
        );
    }

    #[test]
    fn simulation_is_deterministic() {
        let p = dse_workload::Profile::template("d", dse_workload::Suite::SpecCpu2000, 5);
        let trace = dse_workload::TraceGenerator::new(&p).generate(8_000);
        let a = run(&Config::baseline(), &trace);
        let b = run(&Config::baseline(), &trace);
        assert_eq!(a, b);
    }

    #[test]
    fn small_rf_strangles_a_wide_machine() {
        let p = dse_workload::Profile::template("rf", dse_workload::Suite::SpecCpu2000, 6);
        let trace = dse_workload::TraceGenerator::new(&p).generate(8_000);
        let small = run(
            &Config {
                rf: 40,
                ..Config::baseline()
            },
            &trace,
        );
        let large = run(
            &Config {
                rf: 160,
                ..Config::baseline()
            },
            &trace,
        );
        assert!(
            small.cycles > large.cycles * 11 / 10,
            "small {} large {}",
            small.cycles,
            large.cycles
        );
    }
}
