//! Cycle-level out-of-order superscalar pipeline.
//!
//! Trace-driven: the simulator executes the committed (correct-path)
//! instruction stream and models wrong-path work as front-end bubbles —
//! a mispredicted branch blocks fetch until it resolves and then pays the
//! front-end refill depth, the standard trace-driven approximation used by
//! SimpleScalar's `sim-outorder` in trace mode.
//!
//! Modelled resources, each tied to a design-space parameter:
//!
//! * fetch of `width` instructions per cycle, stopping at taken branches,
//!   I-cache misses and the in-flight branch limit;
//! * rename/dispatch gated by ROB, IQ, LSQ and physical-register
//!   availability (32 architectural registers are reserved out of `rf`);
//! * oldest-first issue gated by operand readiness, issue width,
//!   functional units (width-scaled per Table 2b, divides non-pipelined),
//!   register-file read ports, and cache ports for memory operations;
//! * writeback gated by register-file write ports;
//! * in-order commit of `width` instructions per cycle;
//! * a two-level cache hierarchy with latencies from the Cacti-like model
//!   and bandwidth-limited L2/memory (overlapping misses serialise).

use crate::branch::{Btb, Gshare};
use crate::cache::{Cache, CacheOutcome};
use crate::check::{self, Bounds, CheckError, InvariantChecker, Occupancy};
use crate::energy::{EnergyCounters, EnergyModel};
use crate::timing::{MemorySpec, SramSpec};
use dse_space::{Config, ConstantParams};
use dse_workload::{Instr, InstrKind, Trace};
use std::collections::VecDeque;

/// Architectural registers reserved out of the physical register file.
const ARCH_REGS: u32 = 32;
/// Fetch-queue capacity in multiples of the width.
const FETCH_QUEUE_WIDTHS: usize = 4;
/// Size of the writeback-port reservation ring (must exceed the longest
/// possible completion horizon).
const WB_RING: usize = 1 << 15;

/// Options controlling a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOptions {
    /// Instructions at the head of the trace used to warm caches and
    /// predictors; they are simulated but excluded from the reported
    /// metrics (the paper warms for 10 M instructions before each
    /// SimPoint interval).
    pub warmup: usize,
    /// Force the invariant sanitizer on for this run, regardless of build
    /// type. When `false` the process-wide default applies
    /// ([`check::sanitize_default`]: `ARCHDSE_SANITIZE=1`/`=0` override,
    /// otherwise on in debug builds and off in release builds).
    pub sanitize: bool,
}

impl SimOptions {
    /// Options with the given warm-up and the default sanitizer policy.
    pub const fn with_warmup(warmup: usize) -> Self {
        Self {
            warmup,
            sanitize: false,
        }
    }
}

impl Default for SimOptions {
    fn default() -> Self {
        Self::with_warmup(5_000)
    }
}

/// Raw outcome of simulating a trace on a configuration (measured portion
/// only, i.e. after warm-up).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimResult {
    /// Measured (post-warm-up) instructions.
    pub instructions: u64,
    /// Cycles taken by the measured instructions.
    pub cycles: u64,
    /// Energy in nanojoules consumed by the measured instructions.
    pub energy_nj: f64,
    /// Instructions per cycle.
    pub ipc: f64,
    /// L1 I-cache miss rate over the measured portion.
    pub l1i_miss_rate: f64,
    /// L1 D-cache miss rate.
    pub l1d_miss_rate: f64,
    /// L2 miss rate (of L2 accesses).
    pub l2_miss_rate: f64,
    /// Branch direction misprediction rate.
    pub bpred_miss_rate: f64,
}

/// A [`SimResult`] together with the measured event counters and the
/// energy model that priced them — everything a differential test needs to
/// reconcile the run against an independent reference.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// The measured-phase result.
    pub result: SimResult,
    /// Event counters for the measured (post-warm-up) portion.
    pub counters: EnergyCounters,
    /// The per-event energy model used to price the counters.
    pub model: EnergyModel,
}

#[derive(Debug, Clone, Copy)]
struct MissRateSnapshot {
    l1i: (u64, u64),
    l1d: (u64, u64),
    l2: (u64, u64),
    bp: (u64, u64),
}

/// The machine state for one run. Construct via [`Pipeline::new`] and call
/// [`Pipeline::run`].
#[derive(Debug)]
pub struct Pipeline<'t> {
    cfg: Config,
    cons: ConstantParams,
    trace: &'t [Instr],
    options: SimOptions,

    icache: Cache,
    dcache: Cache,
    l2: Cache,
    gshare: Gshare,
    btb: Btb,
    energy_model: EnergyModel,
    counters: EnergyCounters,

    l1d_lat: u64,
    l2_lat: u64,
    mem: MemorySpec,

    cycle: u64,
    /// Completion (result-available) cycle per trace index; `u64::MAX`
    /// until scheduled.
    complete: Vec<u64>,
    rob: VecDeque<usize>,
    iq: Vec<usize>,
    lsq_occ: u32,
    phys_used: u32,
    rename_regs: u32,

    fetch_q: VecDeque<usize>,
    next_fetch: usize,
    fetch_stall_until: u64,
    fetch_blocked_on: Option<usize>,
    last_fetch_line: u64,
    unresolved: Vec<usize>,

    /// Per-FU-class `busy_until` times: int ALU, int mul/div, FP ALU,
    /// FP mul/div.
    fu_busy: [Vec<u64>; 4],

    /// Writeback-port reservations: `(cycle_tag, used_ports)` ring.
    wb_ring: Vec<(u64, u32)>,

    l2_free_at: u64,
    mem_free_at: u64,

    committed: usize,
    /// Set when an issue attempt failed on a structural hazard (ports,
    /// units, width); forces a rescan next cycle.
    structural_block: bool,
    /// Whether anything was dispatched or completed since the last scan.
    scan_dirty: bool,
    /// Sorted queue of scheduled completion times not yet reached.
    wake: std::collections::BinaryHeap<std::cmp::Reverse<u64>>,

    /// Invariant sanitizer; `None` when disabled, so the per-hook cost of
    /// a non-sanitized run is one skipped `Option` branch.
    checker: Option<InvariantChecker>,
    /// First invariant violation raised from a hook that cannot return a
    /// `Result` directly; drained once per cycle by the run loop.
    check_fail: Option<CheckError>,
}

impl<'t> Pipeline<'t> {
    /// Builds a pipeline for `trace` under `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty or shorter than the warm-up, or the
    /// configuration is illegal.
    pub fn new(cfg: &Config, cons: &ConstantParams, trace: &'t Trace, options: SimOptions) -> Self {
        assert!(cfg.is_legal(), "configuration fails the legality filter");
        assert!(!trace.is_empty(), "trace must not be empty");
        assert!(
            trace.len() > options.warmup,
            "trace ({}) must be longer than the warm-up ({})",
            trace.len(),
            options.warmup
        );
        let fu_cfg = cfg.functional_units();
        let l1d_spec = SramSpec::ram(cfg.dcache_kb as u64 * 1024);
        let l2_spec = SramSpec::ram(cfg.l2_kb as u64 * 1024);
        let sanitize = options.sanitize || check::sanitize_default();
        // Validate the derived timing/energy specs up front; a failure is
        // reported from the first simulated cycle.
        let check_fail = if sanitize {
            [
                ("l1d", l1d_spec.validate()),
                ("l2", l2_spec.validate()),
                ("memory", MemorySpec::standard().validate()),
            ]
            .into_iter()
            .find_map(|(name, r)| {
                r.err()
                    .map(|m| CheckError::new(0, "timing-spec", format!("{name}: {m}")))
            })
        } else {
            None
        };
        Self {
            cfg: *cfg,
            cons: *cons,
            trace: &trace.instrs,
            options,
            icache: Cache::new(
                cfg.icache_kb as u64 * 1024,
                cons.l1_line_bytes,
                cons.l1i_assoc,
            ),
            dcache: Cache::new(
                cfg.dcache_kb as u64 * 1024,
                cons.l1_line_bytes,
                cons.l1d_assoc,
            ),
            l2: Cache::new(cfg.l2_kb as u64 * 1024, cons.l2_line_bytes, cons.l2_assoc),
            gshare: Gshare::new(cfg.bpred_k as u64 * 1024),
            btb: Btb::new(cfg.btb_k as u64 * 1024),
            energy_model: EnergyModel::new(cfg, cons),
            counters: EnergyCounters::default(),
            l1d_lat: l1d_spec.latency_cycles() as u64,
            l2_lat: l2_spec.latency_cycles() as u64,
            mem: MemorySpec::standard(),
            cycle: 0,
            complete: vec![u64::MAX; trace.len()],
            rob: VecDeque::with_capacity(cfg.rob as usize),
            iq: Vec::with_capacity(cfg.iq as usize),
            lsq_occ: 0,
            phys_used: 0,
            rename_regs: cfg.rf.saturating_sub(ARCH_REGS).max(4),
            fetch_q: VecDeque::with_capacity(FETCH_QUEUE_WIDTHS * cfg.width as usize),
            next_fetch: 0,
            fetch_stall_until: 0,
            fetch_blocked_on: None,
            last_fetch_line: u64::MAX,
            unresolved: Vec::with_capacity(cfg.max_branches as usize),
            fu_busy: [
                vec![0; fu_cfg.int_alu as usize],
                vec![0; fu_cfg.int_mul as usize],
                vec![0; fu_cfg.fp_alu as usize],
                vec![0; fu_cfg.fp_mul as usize],
            ],
            wb_ring: vec![(u64::MAX, 0); WB_RING],
            l2_free_at: 0,
            mem_free_at: 0,
            committed: 0,
            structural_block: false,
            scan_dirty: true,
            wake: std::collections::BinaryHeap::new(),
            checker: sanitize.then(InvariantChecker::new),
            check_fail,
        }
    }

    /// Capacity bounds the occupancy checks enforce.
    fn bounds(&self) -> Bounds {
        Bounds {
            rob: self.cfg.rob as usize,
            iq: self.cfg.iq as usize,
            lsq: self.cfg.lsq,
            phys: self.rename_regs,
            fetch_q: FETCH_QUEUE_WIDTHS * self.cfg.width as usize,
            branches: self.cfg.max_branches as usize,
        }
    }

    /// Current occupancy snapshot for the sanitizer.
    fn occupancy(&self) -> Occupancy {
        Occupancy {
            rob: self.rob.len(),
            iq: self.iq.len(),
            lsq: self.lsq_occ,
            phys: self.phys_used,
            fetch_q: self.fetch_q.len(),
            branches: self.unresolved.len(),
            fetched: self.next_fetch,
            committed: self.committed,
        }
    }

    /// Runs the trace to completion and returns the measured-phase result.
    ///
    /// # Panics
    ///
    /// Panics if the machine stops making progress (a simulator bug, not a
    /// reachable state for legal configurations), or — when the sanitizer
    /// is enabled — if an invariant is violated. Use [`Pipeline::try_run`]
    /// to handle violations as errors instead.
    pub fn run(self) -> SimResult {
        match self.try_run() {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs the trace to completion, returning the first invariant
    /// violation as an error instead of panicking.
    ///
    /// # Panics
    ///
    /// Still panics on deadlock (no forward progress for 2 M cycles).
    pub fn try_run(self) -> Result<SimResult, CheckError> {
        self.try_run_full().map(|rec| rec.result)
    }

    /// Like [`Pipeline::try_run`], but additionally returns the measured
    /// event counters and the energy model so callers can reconcile the
    /// run against an independent reference (see [`crate::oracle`]).
    pub fn try_run_full(mut self) -> Result<RunRecord, CheckError> {
        let warmup = self.options.warmup;
        let mut warm_counters: Option<EnergyCounters> = None;
        let mut warm_cycle = 0u64;
        let mut warm_rates: Option<MissRateSnapshot> = None;
        let mut last_commit_cycle = 0u64;

        while self.committed < self.trace.len() {
            self.cycle += 1;
            self.counters.cycles += 1;

            let committed_now = self.commit();
            if committed_now > 0 {
                last_commit_cycle = self.cycle;
            }
            assert!(
                self.cycle - last_commit_cycle < 2_000_000,
                "pipeline deadlock at cycle {} (committed {}/{}, cfg {})",
                self.cycle,
                self.committed,
                self.trace.len(),
                self.cfg
            );

            self.issue();
            self.dispatch();
            self.fetch();

            if self.checker.is_some() {
                if let Some(e) = self.check_fail.take() {
                    return Err(e);
                }
                if let Some(chk) = self.checker.as_ref() {
                    chk.on_cycle(&self.occupancy(), &self.bounds(), self.cycle)?;
                }
            }

            if warm_counters.is_none() && self.committed >= warmup {
                warm_counters = Some(self.counters);
                warm_cycle = self.cycle;
                warm_rates = Some(self.rates_snapshot());
            }
        }

        if let Some(chk) = self.checker.take() {
            self.final_checks(&chk)?;
        }

        let warm_counters = warm_counters.unwrap_or_default();
        let measured = self.counters.since(&warm_counters);
        let instructions = (self.trace.len() - warmup.min(self.trace.len())) as u64;
        let cycles = self.cycle - warm_cycle;
        let energy_nj = measured.total_nj(&self.energy_model);
        let zero = MissRateSnapshot {
            l1i: (0, 0),
            l1d: (0, 0),
            l2: (0, 0),
            bp: (0, 0),
        };
        let w = warm_rates.unwrap_or(zero);
        let rate = |acc: u64, miss: u64, w_acc: u64, w_miss: u64| {
            let a = acc - w_acc;
            if a == 0 {
                0.0
            } else {
                (miss - w_miss) as f64 / a as f64
            }
        };
        let result = SimResult {
            instructions,
            cycles,
            energy_nj,
            ipc: instructions as f64 / cycles.max(1) as f64,
            l1i_miss_rate: rate(
                self.icache.accesses(),
                self.icache.misses(),
                w.l1i.0,
                w.l1i.1,
            ),
            l1d_miss_rate: rate(
                self.dcache.accesses(),
                self.dcache.misses(),
                w.l1d.0,
                w.l1d.1,
            ),
            l2_miss_rate: rate(self.l2.accesses(), self.l2.misses(), w.l2.0, w.l2.1),
            bpred_miss_rate: rate(
                self.gshare.predictions(),
                self.gshare.mispredictions(),
                w.bp.0,
                w.bp.1,
            ),
        };
        Ok(RunRecord {
            result,
            counters: measured,
            model: self.energy_model.clone(),
        })
    }

    /// End-of-run reconciliation: the pipeline's event counters, the
    /// caches'/predictor's own statistics, and the energy breakdown must
    /// all agree. Uses the *full-run* counters, before any warm-up
    /// subtraction, so the comparison is exact.
    fn final_checks(&self, chk: &InvariantChecker) -> Result<(), CheckError> {
        let n = self.trace.len() as u64;
        chk.on_finish(self.trace.len())?;

        // Per-structure self-consistency.
        self.icache.check_invariants("l1i")?;
        self.dcache.check_invariants("l1d")?;
        self.l2.check_invariants("l2")?;
        self.gshare.check_invariants()?;
        self.btb.check_invariants()?;

        // Pipeline event counters vs the structures' own statistics.
        let c = &self.counters;
        check::reconcile("icache-accesses", c.icache_accesses, self.icache.accesses())?;
        check::reconcile("dcache-accesses", c.dcache_accesses, self.dcache.accesses())?;
        check::reconcile("l2-accesses", c.l2_accesses, self.l2.accesses())?;
        check::reconcile(
            "l1-misses-feed-l2",
            self.l2.accesses(),
            self.icache.misses() + self.dcache.misses(),
        )?;
        check::reconcile("l2-misses-feed-memory", c.memory_accesses, self.l2.misses())?;
        check::reconcile(
            "bpred-accesses",
            c.bpred_accesses,
            self.gshare.predictions(),
        )?;

        // Every trace instruction flows through each stage exactly once.
        check::reconcile("fetched-count", c.fetched, n)?;
        check::reconcile("renamed-count", c.renamed, n)?;
        check::reconcile("issued-count", c.iq_wakeups, n)?;
        check::reconcile("iq-insert-count", c.iq_inserts, n)?;
        check::reconcile("commit-count", c.rob_reads, n)?;
        check::reconcile("fu-op-count", c.fu_ops.iter().sum(), n)?;
        // ROB is written at dispatch and again at writeback of every
        // result-producing instruction.
        check::reconcile("rob-writes", c.rob_writes, c.renamed + c.rf_writes)?;

        // Energy: the per-structure breakdown must sum to the total and
        // every component must be finite and non-negative.
        check::check_energy(c, &self.energy_model)?;
        Ok(())
    }

    fn rates_snapshot(&self) -> MissRateSnapshot {
        MissRateSnapshot {
            l1i: (self.icache.accesses(), self.icache.misses()),
            l1d: (self.dcache.accesses(), self.dcache.misses()),
            l2: (self.l2.accesses(), self.l2.misses()),
            bp: (self.gshare.predictions(), self.gshare.mispredictions()),
        }
    }

    // ------------------------------------------------------------------
    // Commit
    // ------------------------------------------------------------------
    fn commit(&mut self) -> u32 {
        let mut n = 0;
        while n < self.cfg.width {
            let Some(&idx) = self.rob.front() else { break };
            if self.complete[idx] > self.cycle {
                break;
            }
            self.rob.pop_front();
            if self.checker.is_some() {
                let (complete, cycle) = (self.complete[idx], self.cycle);
                if let Some(chk) = self.checker.as_mut() {
                    if let Err(e) = chk.on_commit(idx, complete, cycle) {
                        self.check_fail.get_or_insert(e);
                    }
                }
            }
            let ins = &self.trace[idx];
            if ins.kind.is_mem() {
                self.lsq_occ -= 1;
            }
            if ins.kind.has_dest() {
                self.phys_used -= 1;
            }
            self.counters.rob_reads += 1;
            self.committed += 1;
            n += 1;
        }
        n
    }

    // ------------------------------------------------------------------
    // Issue
    // ------------------------------------------------------------------
    fn issue(&mut self) {
        // Drain expired wakeups; a scan is only worthwhile when something
        // changed (a completion landed, a dispatch happened, or the last
        // scan failed on a structural hazard that time alone resolves).
        let mut woke = false;
        while let Some(&std::cmp::Reverse(t)) = self.wake.peek() {
            if t <= self.cycle {
                self.wake.pop();
                woke = true;
            } else {
                break;
            }
        }
        if !woke && !self.scan_dirty && !self.structural_block {
            return;
        }
        self.scan_dirty = false;
        self.structural_block = false;

        let mut issued = 0u32;
        let mut reads_used = 0u32;
        let mut mem_ports_used = 0u32;
        let mut i = 0;
        while i < self.iq.len() && issued < self.cfg.width {
            let idx = self.iq[i];
            let ins = self.trace[idx];

            // Operand readiness (results forward the cycle they complete).
            let ready = |d: u32| d == 0 || self.complete[idx - d as usize] <= self.cycle;
            if !(ready(ins.src1) && ready(ins.src2)) {
                i += 1;
                continue;
            }

            // Register-file read ports.
            let nsrc = (ins.src1 > 0) as u32 + (ins.src2 > 0) as u32;
            if reads_used + nsrc > self.cfg.rf_read {
                self.structural_block = true;
                i += 1;
                continue;
            }

            // Cache ports for memory operations.
            if ins.kind.is_mem() && mem_ports_used >= self.cons.mem_ports {
                self.structural_block = true;
                i += 1;
                continue;
            }

            // Functional unit.
            let class = fu_class(ins.kind);
            let Some(unit) = self.fu_busy[class].iter().position(|&b| b <= self.cycle) else {
                self.structural_block = true;
                i += 1;
                continue;
            };

            // --- the instruction issues ---
            let (exec_done, unit_busy_until) = self.execute_latency(&ins);
            self.fu_busy[class][unit] = unit_busy_until;
            reads_used += nsrc;
            self.counters.rf_reads += nsrc as u64;
            self.counters.iq_wakeups += 1;
            self.counters.fu_ops[class] += 1;
            if ins.kind.is_mem() {
                mem_ports_used += 1;
                self.counters.lsq_searches += 1;
            }

            // Writeback port reservation for result-producing instructions.
            let done = if ins.kind.has_dest() {
                let slot = self.reserve_wb(exec_done);
                self.counters.rf_writes += 1;
                self.counters.rob_writes += 1;
                slot
            } else {
                exec_done
            };
            self.complete[idx] = done;
            self.wake.push(std::cmp::Reverse(done));
            self.iq.remove(i);
            issued += 1;
            if issued == self.cfg.width {
                self.structural_block = true; // width-limited: retry next cycle
            }
        }

        if let Some(chk) = self.checker.as_ref() {
            if let Err(e) = chk.on_issue(
                reads_used,
                self.cfg.rf_read,
                mem_ports_used,
                self.cons.mem_ports,
                self.cycle,
            ) {
                self.check_fail.get_or_insert(e);
            }
        }
    }

    /// Returns `(result_ready_cycle, fu_busy_until)` for an instruction
    /// issuing this cycle.
    fn execute_latency(&mut self, ins: &Instr) -> (u64, u64) {
        let c = self.cycle;
        match ins.kind {
            InstrKind::IntAlu | InstrKind::Branch => (c + self.cons.int_alu_latency as u64, c + 1),
            InstrKind::IntMul => (c + self.cons.int_mul_latency as u64, c + 1),
            InstrKind::IntDiv => {
                let l = self.cons.int_div_latency as u64;
                (c + l, c + l) // non-pipelined
            }
            InstrKind::FpAlu => (c + self.cons.fp_alu_latency as u64, c + 1),
            InstrKind::FpMul => (c + self.cons.fp_mul_latency as u64, c + 1),
            InstrKind::FpDiv => {
                let l = self.cons.fp_div_latency as u64;
                (c + l, c + l) // non-pipelined
            }
            InstrKind::Load => {
                let ready = self.data_access(ins.addr, c);
                (ready, c + 1)
            }
            InstrKind::Store => {
                // The store writes its buffer entry in one cycle; the cache
                // update (and any miss traffic) happens off the critical
                // path but still consumes hierarchy bandwidth and energy.
                let _ = self.data_access(ins.addr, c);
                (c + 1, c + 1)
            }
        }
    }

    /// Performs a data access through D-L1 → L2 → memory, returning the
    /// absolute cycle the data is available. Bandwidth contention is
    /// modelled by single-server queues on L2 and the memory bus.
    fn data_access(&mut self, addr: u64, at: u64) -> u64 {
        self.counters.dcache_accesses += 1;
        let l1_done = at + self.l1d_lat;
        if self.dcache.access(addr) == CacheOutcome::Hit {
            return l1_done;
        }
        self.l2_access(addr, l1_done)
    }

    /// L2 access (shared by I- and D-side), returning data-ready cycle.
    fn l2_access(&mut self, addr: u64, at: u64) -> u64 {
        self.counters.l2_accesses += 1;
        let start = at.max(self.l2_free_at);
        self.l2_free_at = start + 2; // L2 accepts a new access every 2 cycles
        let l2_done = start + self.l2_lat;
        if self.l2.access(addr) == CacheOutcome::Hit {
            return l2_done;
        }
        self.counters.memory_accesses += 1;
        let mstart = l2_done.max(self.mem_free_at);
        self.mem_free_at = mstart + self.mem.occupancy as u64;
        mstart + self.mem.latency as u64
    }

    /// Reserves a register-file write port at or after `at`.
    fn reserve_wb(&mut self, at: u64) -> u64 {
        let ports = self.cfg.rf_write;
        let mut t = at;
        loop {
            let slot = &mut self.wb_ring[(t as usize) & (WB_RING - 1)];
            if slot.0 != t {
                *slot = (t, 1);
                return t;
            }
            if slot.1 < ports {
                slot.1 += 1;
                if let Some(chk) = self.checker.as_ref() {
                    if let Err(e) = chk.on_writeback_grant(slot.1, ports, t) {
                        self.check_fail.get_or_insert(e);
                    }
                }
                return t;
            }
            t += 1;
            // The ring is vastly larger than any realistic backlog; give up
            // gracefully rather than wrapping onto live reservations.
            if t - at >= (WB_RING as u64) / 2 {
                return t;
            }
        }
    }

    // ------------------------------------------------------------------
    // Dispatch (rename)
    // ------------------------------------------------------------------
    fn dispatch(&mut self) {
        let mut n = 0;
        while n < self.cfg.width {
            let Some(&idx) = self.fetch_q.front() else {
                break;
            };
            let ins = self.trace[idx];
            if self.rob.len() >= self.cfg.rob as usize
                || self.iq.len() >= self.cfg.iq as usize
                || (ins.kind.is_mem() && self.lsq_occ >= self.cfg.lsq)
                || (ins.kind.has_dest() && self.phys_used >= self.rename_regs)
            {
                break;
            }
            self.fetch_q.pop_front();
            self.rob.push_back(idx);
            self.iq.push(idx);
            if ins.kind.is_mem() {
                self.lsq_occ += 1;
            }
            if ins.kind.has_dest() {
                self.phys_used += 1;
            }
            self.counters.renamed += 1;
            self.counters.rob_writes += 1;
            self.counters.iq_inserts += 1;
            self.scan_dirty = true;
            n += 1;
        }
    }

    // ------------------------------------------------------------------
    // Fetch
    // ------------------------------------------------------------------
    fn fetch(&mut self) {
        // A mispredicted branch blocks fetch until it resolves, then the
        // front end refills.
        if let Some(b) = self.fetch_blocked_on {
            if self.complete[b] != u64::MAX && self.complete[b] <= self.cycle {
                self.fetch_stall_until = self.complete[b] + self.cons.frontend_depth as u64;
                self.fetch_blocked_on = None;
            } else {
                return;
            }
        }
        if self.cycle < self.fetch_stall_until {
            return;
        }
        self.unresolved.retain(|&b| self.complete[b] > self.cycle);

        let cap = FETCH_QUEUE_WIDTHS * self.cfg.width as usize;
        let mut fetched = 0;
        while fetched < self.cfg.width
            && self.fetch_q.len() < cap
            && self.next_fetch < self.trace.len()
        {
            let idx = self.next_fetch;
            let ins = self.trace[idx];

            // I-cache: one access per new line.
            let line = (ins.pc as u64) / self.cons.l1_line_bytes as u64;
            if line != self.last_fetch_line {
                self.counters.icache_accesses += 1;
                let outcome = self.icache.access(ins.pc as u64);
                self.last_fetch_line = line;
                if outcome == CacheOutcome::Miss {
                    let ready = self.l2_access(ins.pc as u64, self.cycle);
                    self.fetch_stall_until = ready;
                    return;
                }
            }

            if ins.kind == InstrKind::Branch {
                if self.unresolved.len() >= self.cfg.max_branches as usize {
                    return; // in-flight branch limit
                }
                self.counters.bpred_accesses += 1;
                self.counters.btb_accesses += 1;
                let pred_taken = self.gshare.predict(ins.pc as u64);
                let btb_target = self.btb.lookup(ins.pc as u64);
                // A taken prediction is only useful with a correct target.
                let correct = if ins.taken {
                    pred_taken && btb_target == Some(ins.target)
                } else {
                    !pred_taken
                };
                self.gshare.update(ins.pc as u64, ins.taken);
                if ins.taken {
                    self.btb.update(ins.pc as u64, ins.target);
                }
                self.unresolved.push(idx);
                self.fetch_q.push_back(idx);
                self.counters.fetched += 1;
                self.next_fetch += 1;
                fetched += 1;
                if !correct {
                    self.fetch_blocked_on = Some(idx);
                    return;
                }
                if ins.taken {
                    // Redirect: correctly-predicted taken branches end the
                    // fetch group.
                    self.last_fetch_line = u64::MAX;
                    return;
                }
            } else {
                self.fetch_q.push_back(idx);
                self.counters.fetched += 1;
                self.next_fetch += 1;
                fetched += 1;
            }
        }
    }
}

fn fu_class(kind: InstrKind) -> usize {
    match kind {
        InstrKind::IntAlu | InstrKind::Branch | InstrKind::Load | InstrKind::Store => 0,
        InstrKind::IntMul | InstrKind::IntDiv => 1,
        InstrKind::FpAlu => 2,
        InstrKind::FpMul | InstrKind::FpDiv => 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dse_workload::Trace;

    fn mk_trace(instrs: Vec<Instr>) -> Trace {
        Trace {
            name: "unit".to_string(),
            instrs,
        }
    }

    fn alu(pc: u32) -> Instr {
        Instr {
            kind: InstrKind::IntAlu,
            src1: 0,
            src2: 0,
            pc,
            addr: 0,
            taken: false,
            target: 0,
        }
    }

    /// Runs with a quarter of the trace as warm-up so cold-start cache
    /// misses do not dominate these steady-state microbenchmarks.
    fn run(cfg: &Config, trace: &Trace) -> SimResult {
        Pipeline::new(
            cfg,
            &ConstantParams::standard(),
            trace,
            SimOptions::with_warmup(trace.len() / 4),
        )
        .run()
    }

    #[test]
    fn independent_alu_ops_reach_high_ipc() {
        let trace = mk_trace((0..4000).map(|i| alu(0x40_0000 + (i % 512) * 4)).collect());
        let cfg = Config {
            width: 8,
            rf_read: 16,
            rf_write: 8,
            ..Config::baseline()
        };
        let r = run(&cfg, &trace);
        assert!(r.ipc > 4.0, "ipc {}", r.ipc);
    }

    #[test]
    fn serial_dependency_chain_limits_ipc_to_one() {
        let mut instrs: Vec<Instr> = (0..4000).map(|i| alu(0x40_0000 + (i % 512) * 4)).collect();
        for ins in instrs.iter_mut().skip(1) {
            ins.src1 = 1; // each depends on its predecessor
        }
        let r = run(&Config::baseline(), &mk_trace(instrs));
        assert!(r.ipc <= 1.05, "ipc {}", r.ipc);
        assert!(r.ipc > 0.5, "ipc {}", r.ipc);
    }

    #[test]
    fn wider_machine_is_faster_on_parallel_code() {
        let trace = mk_trace((0..6000).map(|i| alu(0x40_0000 + (i % 512) * 4)).collect());
        let narrow = run(
            &Config {
                width: 2,
                rf_read: 4,
                rf_write: 2,
                ..Config::baseline()
            },
            &trace,
        );
        let wide = run(
            &Config {
                width: 8,
                rf_read: 16,
                rf_write: 8,
                ..Config::baseline()
            },
            &trace,
        );
        assert!(
            wide.cycles * 2 < narrow.cycles,
            "wide {} narrow {}",
            wide.cycles,
            narrow.cycles
        );
    }

    #[test]
    fn write_ports_throttle_completion() {
        let trace = mk_trace((0..4000).map(|i| alu(0x40_0000 + (i % 256) * 4)).collect());
        let few = run(
            &Config {
                width: 8,
                rf_read: 16,
                rf_write: 1,
                ..Config::baseline()
            },
            &trace,
        );
        let many = run(
            &Config {
                width: 8,
                rf_read: 16,
                rf_write: 8,
                ..Config::baseline()
            },
            &trace,
        );
        assert!(
            few.cycles > many.cycles * 3,
            "few {} many {}",
            few.cycles,
            many.cycles
        );
    }

    #[test]
    fn load_misses_cost_memory_latency() {
        // Strided loads over 16 MB: miss in every level.
        let instrs: Vec<Instr> = (0..2000)
            .map(|i| Instr {
                kind: InstrKind::Load,
                src1: 0,
                src2: 0,
                pc: 0x40_0000 + (i % 64) * 4,
                addr: 0x1000_0000 + i as u64 * 4096,
                taken: false,
                target: 0,
            })
            .collect();
        let r = run(&Config::baseline(), &mk_trace(instrs));
        assert!(r.l1d_miss_rate > 0.95, "l1d miss {}", r.l1d_miss_rate);
        assert!(r.l2_miss_rate > 0.95, "l2 miss {}", r.l2_miss_rate);
        // Bandwidth-bound: at least the bus occupancy per measured load.
        assert!(
            r.cycles > r.instructions * 15,
            "cycles {} too low for memory-bound",
            r.cycles
        );
    }

    #[test]
    fn cache_hits_are_fast() {
        let instrs: Vec<Instr> = (0..4000)
            .map(|i| Instr {
                kind: InstrKind::Load,
                src1: 0,
                src2: 0,
                pc: 0x40_0000 + (i % 64) * 4,
                addr: 0x1000_0000 + (i as u64 % 64) * 8,
                taken: false,
                target: 0,
            })
            .collect();
        let r = run(&Config::baseline(), &mk_trace(instrs));
        assert!(r.l1d_miss_rate < 0.01, "l1d miss {}", r.l1d_miss_rate);
        assert!(r.ipc > 1.0, "ipc {}", r.ipc);
    }

    #[test]
    fn mispredicted_branches_cost_bubbles() {
        // Alternating taken/not-taken is learnable; random is not. Compare
        // a predictable stream against a data-random one.
        let mk = |random: bool| {
            let mut rng = dse_rng::Xoshiro256::seed_from(7);
            let instrs: Vec<Instr> = (0..6000u32)
                .map(|i| {
                    if i % 4 == 3 {
                        let taken = if random { rng.next_bool(0.5) } else { true };
                        Instr {
                            kind: InstrKind::Branch,
                            src1: 1,
                            src2: 0,
                            pc: 0x40_0000 + (i % 256) * 4,
                            addr: 0,
                            taken,
                            target: 0x40_0000 + ((i + 1) % 256) * 4,
                        }
                    } else {
                        alu(0x40_0000 + (i % 256) * 4)
                    }
                })
                .collect();
            mk_trace(instrs)
        };
        let predictable = run(&Config::baseline(), &mk(false));
        let random = run(&Config::baseline(), &mk(true));
        assert!(
            random.cycles as f64 > predictable.cycles as f64 * 1.5,
            "random {} predictable {}",
            random.cycles,
            predictable.cycles
        );
        assert!(random.bpred_miss_rate > 0.3);
        assert!(predictable.bpred_miss_rate < 0.1);
    }

    #[test]
    fn energy_is_positive_and_scales_with_work() {
        // Same warm-up on both runs, so the measured (steady-state) energy
        // must scale with the measured instruction count.
        let mk = |n: u32| mk_trace((0..n).map(|i| alu(0x40_0000 + (i % 128) * 4)).collect());
        let opts = SimOptions::with_warmup(500);
        let cons = ConstantParams::standard();
        let short = Pipeline::new(&Config::baseline(), &cons, &mk(1500), opts).run();
        let long = Pipeline::new(&Config::baseline(), &cons, &mk(4000), opts).run();
        assert!(short.energy_nj > 0.0);
        let per_instr_short = short.energy_nj / short.instructions as f64;
        let per_instr_long = long.energy_nj / long.instructions as f64;
        let ratio = per_instr_long / per_instr_short;
        assert!(
            (0.8..1.2).contains(&ratio),
            "per-instruction energy not stable: {ratio}"
        );
    }

    #[test]
    fn warmup_is_excluded_from_measured_instructions() {
        let trace = mk_trace((0..3000).map(|i| alu(0x40_0000 + (i % 128) * 4)).collect());
        let r = Pipeline::new(
            &Config::baseline(),
            &ConstantParams::standard(),
            &trace,
            SimOptions::with_warmup(1000),
        )
        .run();
        assert_eq!(r.instructions, 2000);
    }

    #[test]
    #[should_panic(expected = "longer than the warm-up")]
    fn warmup_longer_than_trace_panics() {
        let trace = mk_trace(vec![alu(0x40_0000)]);
        let _ = Pipeline::new(
            &Config::baseline(),
            &ConstantParams::standard(),
            &trace,
            SimOptions::with_warmup(10),
        );
    }

    #[test]
    fn simulation_is_deterministic() {
        let p = dse_workload::Profile::template("d", dse_workload::Suite::SpecCpu2000, 5);
        let trace = dse_workload::TraceGenerator::new(&p).generate(8_000);
        let a = run(&Config::baseline(), &trace);
        let b = run(&Config::baseline(), &trace);
        assert_eq!(a, b);
    }

    #[test]
    fn small_rf_strangles_a_wide_machine() {
        let p = dse_workload::Profile::template("rf", dse_workload::Suite::SpecCpu2000, 6);
        let trace = dse_workload::TraceGenerator::new(&p).generate(8_000);
        let small = run(
            &Config {
                rf: 40,
                ..Config::baseline()
            },
            &trace,
        );
        let large = run(
            &Config {
                rf: 160,
                ..Config::baseline()
            },
            &trace,
        );
        assert!(
            small.cycles > large.cycles * 11 / 10,
            "small {} large {}",
            small.cycles,
            large.cycles
        );
    }
}
