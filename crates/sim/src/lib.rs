//! Cycle-level out-of-order superscalar simulator with a Wattch-style
//! energy model — the evaluation substrate of the reproduction.
//!
//! The paper's substrate is SimpleScalar + Wattch + Cacti. This crate
//! rebuilds the same stack from scratch:
//!
//! * [`pipeline`] — a trace-driven, cycle-level out-of-order core whose
//!   resources map one-to-one onto the 13 design-space parameters;
//! * [`cache`] / [`branch`] — set-associative caches, gshare + BTB;
//! * [`timing`] — Cacti-like structure latency/energy scaling;
//! * [`energy`] — Wattch-style event-based energy accounting;
//! * [`check`] — invariant sanitizer (`ARCHDSE_SANITIZE=1`, always on in
//!   debug builds) that validates occupancy, port, accounting and energy
//!   invariants during and after every run;
//! * [`oracle`] — an independent in-order reference model producing exact
//!   event counts and cycle/energy bounds for differential testing.
//!
//! The entry point is [`simulate`], which runs one benchmark trace on one
//! configuration and returns the paper's four target metrics normalised to
//! a 10 M-instruction phase (the paper's SimPoint interval length).
//!
//! # Examples
//!
//! ```
//! use dse_sim::{simulate, SimOptions};
//! use dse_space::Config;
//! use dse_workload::{Profile, Suite, TraceGenerator};
//!
//! let profile = Profile::template("demo", Suite::SpecCpu2000, 1);
//! let trace = TraceGenerator::new(&profile).generate(12_000);
//! let m = simulate(&Config::baseline(), &trace, SimOptions::with_warmup(2_000));
//! assert!(m.cycles > 0.0 && m.energy > 0.0);
//! assert!((m.ed - m.cycles * m.energy).abs() < 1e-3 * m.ed);
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod branch;
pub mod cache;
pub mod check;
pub mod corun;
pub mod energy;
pub mod obs;
pub mod oracle;
pub mod pipeline;
pub mod timing;

pub use batch::{
    batch_width, simulate_batch, try_simulate_batch, try_simulate_batch_records, SweepEngine,
    BATCH_ENV,
};
pub use check::CheckError;
pub use corun::{simulate_corun, CorunLane, CorunResult};
pub use obs::{NoObs, SimObs, StageProf, StageTimes, StallProfile, StallReport};
pub use pipeline::{Pipeline, RunRecord, SimOptions, SimResult};

use dse_space::{Config, ConstantParams};
use dse_util::json::{FromJson, Json, JsonError, ToJson};
use dse_workload::Trace;

/// Number of instructions in the paper's reporting phase (one SimPoint
/// interval): all metrics are normalised to this length so that different
/// trace lengths and benchmarks are comparable, exactly as in Fig 4.
pub const PHASE_INSTRUCTIONS: f64 = 10_000_000.0;

/// The paper's four target metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Execution time in cycles (per 10 M-instruction phase).
    Cycles,
    /// Energy in nanojoules (per phase).
    Energy,
    /// Energy-delay product.
    Ed,
    /// Energy-delay-squared product (written "EDD" in the paper).
    Edd,
}

impl Metric {
    /// All four metrics in the paper's order.
    pub const ALL: [Metric; 4] = [Metric::Cycles, Metric::Energy, Metric::Ed, Metric::Edd];
}

impl std::fmt::Display for Metric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Metric::Cycles => write!(f, "cycles"),
            Metric::Energy => write!(f, "energy"),
            Metric::Ed => write!(f, "ED"),
            Metric::Edd => write!(f, "EDD"),
        }
    }
}

/// The four target metrics of one simulation, normalised to a
/// 10 M-instruction phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// Cycles per phase.
    pub cycles: f64,
    /// Energy per phase in nanojoules.
    pub energy: f64,
    /// Energy × delay.
    pub ed: f64,
    /// Energy × delay².
    pub edd: f64,
}

impl Metrics {
    /// Normalises a raw [`SimResult`] to the 10 M-instruction phase.
    ///
    /// # Panics
    ///
    /// Panics if the result measured zero instructions.
    pub fn from_result(r: &SimResult) -> Self {
        assert!(r.instructions > 0, "result has no measured instructions");
        let scale = PHASE_INSTRUCTIONS / r.instructions as f64;
        let cycles = r.cycles as f64 * scale;
        let energy = r.energy_nj * scale;
        Self {
            cycles,
            energy,
            ed: energy * cycles,
            edd: energy * cycles * cycles,
        }
    }

    /// Reads one metric by name.
    pub fn get(&self, metric: Metric) -> f64 {
        match metric {
            Metric::Cycles => self.cycles,
            Metric::Energy => self.energy,
            Metric::Ed => self.ed,
            Metric::Edd => self.edd,
        }
    }
}

impl ToJson for Metric {
    fn to_json(&self) -> Json {
        // Bare variant-name strings, matching serde's external tagging so
        // pre-existing cache files stay readable.
        let name = match self {
            Metric::Cycles => "Cycles",
            Metric::Energy => "Energy",
            Metric::Ed => "Ed",
            Metric::Edd => "Edd",
        };
        Json::Str(name.to_string())
    }
}

impl FromJson for Metric {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_str()? {
            "Cycles" => Ok(Metric::Cycles),
            "Energy" => Ok(Metric::Energy),
            "Ed" => Ok(Metric::Ed),
            "Edd" => Ok(Metric::Edd),
            other => Err(JsonError::msg(format!("unknown metric `{other}`"))),
        }
    }
}

impl ToJson for Metrics {
    fn to_json(&self) -> Json {
        Json::obj([
            ("cycles", self.cycles.to_json()),
            ("energy", self.energy.to_json()),
            ("ed", self.ed.to_json()),
            ("edd", self.edd.to_json()),
        ])
    }
}

impl FromJson for Metrics {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let m = Self {
            cycles: f64::from_json(v.field("cycles")?)?,
            energy: f64::from_json(v.field("energy")?)?,
            ed: f64::from_json(v.field("ed")?)?,
            edd: f64::from_json(v.field("edd")?)?,
        };
        if !(m.cycles.is_finite() && m.energy.is_finite() && m.ed.is_finite() && m.edd.is_finite())
        {
            return Err(JsonError::msg("metrics must be finite"));
        }
        Ok(m)
    }
}

impl ToJson for SimResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("instructions", self.instructions.to_json()),
            ("cycles", self.cycles.to_json()),
            ("energy_nj", self.energy_nj.to_json()),
            ("ipc", self.ipc.to_json()),
            ("l1i_miss_rate", self.l1i_miss_rate.to_json()),
            ("l1d_miss_rate", self.l1d_miss_rate.to_json()),
            ("l2_miss_rate", self.l2_miss_rate.to_json()),
            ("bpred_miss_rate", self.bpred_miss_rate.to_json()),
        ])
    }
}

impl FromJson for SimResult {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            instructions: u64::from_json(v.field("instructions")?)?,
            cycles: u64::from_json(v.field("cycles")?)?,
            energy_nj: f64::from_json(v.field("energy_nj")?)?,
            ipc: f64::from_json(v.field("ipc")?)?,
            l1i_miss_rate: f64::from_json(v.field("l1i_miss_rate")?)?,
            l1d_miss_rate: f64::from_json(v.field("l1d_miss_rate")?)?,
            l2_miss_rate: f64::from_json(v.field("l2_miss_rate")?)?,
            bpred_miss_rate: f64::from_json(v.field("bpred_miss_rate")?)?,
        })
    }
}

/// Simulates `trace` on `cfg` with the standard constant parameters and
/// returns phase-normalised metrics.
///
/// # Panics
///
/// Panics if `cfg` is illegal or the trace is not longer than the warm-up
/// (see [`Pipeline::new`]).
pub fn simulate(cfg: &Config, trace: &Trace, options: SimOptions) -> Metrics {
    let result = Pipeline::new(cfg, &ConstantParams::standard(), trace, options).run();
    record_run(&result);
    Metrics::from_result(&result)
}

/// Bumps the workspace-wide simulation counters for one finished run.
/// Handles are resolved once and cached; the per-run cost is three
/// sharded atomic adds.
pub(crate) fn record_run(result: &SimResult) {
    use dse_obs::registry::Counter;
    use std::sync::{Arc, OnceLock};
    static RUNS: OnceLock<Arc<Counter>> = OnceLock::new();
    static CYCLES: OnceLock<Arc<Counter>> = OnceLock::new();
    static INSTRS: OnceLock<Arc<Counter>> = OnceLock::new();
    RUNS.get_or_init(|| dse_obs::counter("dse_sim_runs_total"))
        .inc();
    CYCLES
        .get_or_init(|| dse_obs::counter("dse_sim_cycles_total"))
        .add(result.cycles);
    INSTRS
        .get_or_init(|| dse_obs::counter("dse_sim_instructions_total"))
        .add(result.instructions);
}

/// Bumps the workspace-wide simulation counters for one finished run and
/// converts its result to phase-normalised [`Metrics`] — the per-lane
/// accounting step shared by the scalar and batched sweep paths, so
/// sims/cycles/instructions totals count lanes, never batch passes.
pub fn record_metrics(result: &SimResult) -> Metrics {
    record_run(result);
    Metrics::from_result(result)
}

/// Like [`simulate`], but returns a sanitizer violation as an error
/// instead of panicking — the form dataset generation uses so a violation
/// inside a parallel sweep surfaces as a proper error.
pub fn try_simulate(
    cfg: &Config,
    trace: &Trace,
    options: SimOptions,
) -> Result<Metrics, CheckError> {
    let result = Pipeline::new(cfg, &ConstantParams::standard(), trace, options).try_run()?;
    record_run(&result);
    Ok(Metrics::from_result(&result))
}

/// Simulates and returns both the raw result and the normalised metrics.
pub fn simulate_detailed(cfg: &Config, trace: &Trace, options: SimOptions) -> (SimResult, Metrics) {
    let result = Pipeline::new(cfg, &ConstantParams::standard(), trace, options).run();
    record_run(&result);
    let metrics = Metrics::from_result(&result);
    (result, metrics)
}

/// Simulates with stall attribution enabled and returns the metrics plus
/// a [`StallReport`] saying where the cycles went (see [`obs`]).
///
/// The instrumented run produces metrics bit-identical to [`simulate`];
/// only the attribution is extra.
///
/// # Panics
///
/// Panics on an invariant violation, like [`simulate`].
pub fn simulate_profiled(
    cfg: &Config,
    trace: &Trace,
    options: SimOptions,
) -> (Metrics, StallReport) {
    let mut profile = StallProfile::default();
    let record = Pipeline::new(cfg, &ConstantParams::standard(), trace, options)
        .try_run_full_obs(&mut profile)
        .unwrap_or_else(|e| panic!("{e}"));
    record_run(&record.result);
    let metrics = Metrics::from_result(&record.result);
    (metrics, StallReport { profile, record })
}

/// Simulates with host-cycle stage timing enabled and returns the metrics
/// plus a [`StageProf`] attributing stepped-cycle wall time to the five
/// pipeline stages (see [`obs`]).
///
/// Metrics are bit-identical to [`simulate`]; the stage brackets read the
/// host clock around unmodified stage code. Shares are meaningful, raw
/// ticks vary with the host.
///
/// # Panics
///
/// Panics on an invariant violation, like [`simulate`].
pub fn simulate_stage_profiled(
    cfg: &Config,
    trace: &Trace,
    options: SimOptions,
) -> (Metrics, StageProf) {
    let mut prof = StageProf::default();
    let record = Pipeline::new(cfg, &ConstantParams::standard(), trace, options)
        .try_run_full_obs(&mut prof)
        .unwrap_or_else(|e| panic!("{e}"));
    record_run(&record.result);
    (Metrics::from_result(&record.result), prof)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dse_workload::{Profile, Suite, TraceGenerator};

    fn demo_trace(len: usize) -> Trace {
        let p = Profile::template("demo", Suite::SpecCpu2000, 11);
        TraceGenerator::new(&p).generate(len)
    }

    #[test]
    fn metrics_are_consistent_products() {
        let t = demo_trace(10_000);
        let m = simulate(&Config::baseline(), &t, SimOptions::with_warmup(2_000));
        assert!((m.ed - m.cycles * m.energy).abs() <= 1e-9 * m.ed);
        assert!((m.edd - m.ed * m.cycles).abs() <= 1e-9 * m.edd);
    }

    #[test]
    fn phase_normalisation_scales_to_ten_million() {
        let t = demo_trace(10_000);
        let (r, m) = simulate_detailed(&Config::baseline(), &t, SimOptions::with_warmup(2_000));
        let expect = r.cycles as f64 * PHASE_INSTRUCTIONS / r.instructions as f64;
        assert!((m.cycles - expect).abs() < 1e-6);
        // A plausible CPI leaves phase cycles within [2e6, 1e10].
        assert!(m.cycles > 2e6 && m.cycles < 1e10, "cycles {}", m.cycles);
    }

    #[test]
    fn stage_profiled_metrics_are_bit_identical() {
        let t = demo_trace(10_000);
        let opts = SimOptions::with_warmup(2_000);
        let plain = simulate(&Config::baseline(), &t, opts);
        let (m, prof) = simulate_stage_profiled(&Config::baseline(), &t, opts);
        assert_eq!(plain, m, "stage brackets must not perturb results");
        assert!(prof.cycles_stepped > 0);
        assert!(prof.total_ticks() > 0, "clock reads accumulated nothing");
        // Stepped + skipped covers every simulated cycle after warm-up
        // completes; sanity-bound rather than pin exact idle split.
        assert!(prof.cycles_idle > 0, "demo trace should idle-skip");
    }

    #[test]
    fn batched_stage_profile_matches_scalar_records() {
        let t = demo_trace(10_000);
        let opts = SimOptions::with_warmup(2_000);
        let cfgs = vec![Config::baseline(); 3];
        let engine = SweepEngine::new(&cfgs, &ConstantParams::standard(), &t, opts, 3);
        let mut profs = vec![StageProf::default(); 3];
        let recs = engine.run_range_obs(0..3, &mut profs);
        let scalar = simulate(&Config::baseline(), &t, opts);
        for (rec, prof) in recs.iter().zip(&profs) {
            let rec = rec.as_ref().expect("lane ran clean");
            assert_eq!(Metrics::from_result(&rec.result), scalar);
            assert!(prof.cycles_stepped > 0 && prof.total_ticks() > 0);
        }
    }

    #[test]
    fn metric_get_round_trips() {
        let m = Metrics {
            cycles: 1.0,
            energy: 2.0,
            ed: 2.0,
            edd: 2.0,
        };
        assert_eq!(m.get(Metric::Cycles), 1.0);
        assert_eq!(m.get(Metric::Energy), 2.0);
        assert_eq!(m.get(Metric::Ed), 2.0);
        assert_eq!(m.get(Metric::Edd), 2.0);
    }

    #[test]
    fn metric_display_names() {
        let names: Vec<String> = Metric::ALL.iter().map(|m| m.to_string()).collect();
        assert_eq!(names, vec!["cycles", "energy", "ED", "EDD"]);
    }

    #[test]
    fn different_configs_give_different_metrics() {
        let t = demo_trace(10_000);
        let base = simulate(&Config::baseline(), &t, SimOptions::with_warmup(2_000));
        let tiny = Config {
            width: 2,
            rob: 32,
            iq: 8,
            lsq: 8,
            rf: 40,
            rf_read: 4,
            rf_write: 2,
            bpred_k: 1,
            btb_k: 1,
            max_branches: 8,
            icache_kb: 8,
            dcache_kb: 8,
            l2_kb: 256,
        };
        assert!(tiny.is_legal());
        let small = simulate(&tiny, &t, SimOptions::with_warmup(2_000));
        assert!(small.cycles > base.cycles, "small machine must be slower");
    }
}
