//! Shared-L2 co-run scenarios: two programs contending for one L2.
//!
//! The paper's response surfaces are all single-program. This module
//! opens a surface the architecture-centric method has never been tested
//! on: two programs co-scheduled on separate cores that share the L2
//! (and the memory bus behind it) — the classic multi-tenant
//! interference setup.
//!
//! # Model
//!
//! A true lockstep two-core simulation would couple the cores' clocks;
//! instead we use a deterministic two-pass *stream-injection* scheme
//! that keeps each lane's cycle-accurate model intact:
//!
//! 1. **Capture pass.** Each program runs solo with L2 stream capture
//!    armed ([`Pipeline::capture_l2_stream`]), recording its L1-filtered
//!    L2 address stream in issue order. Capture changes nothing: the
//!    solo metrics are bit-identical to a plain [`crate::simulate`].
//! 2. **Contention pass.** Each program re-runs with the *other*
//!    program's captured stream injected as an intruder
//!    ([`Pipeline::set_intruder`]): after every own L2 access the next
//!    intruder address (round-robin, wrapping) takes an L2 port slot and
//!    — on a miss — a memory-bus slot, and evicts into the shared L2.
//!    Intruder addresses are rebased into a disjoint region (bit 44 set)
//!    so the co-runner can only *pollute*, never prefetch for its
//!    neighbour — the two programs model separate address spaces.
//!
//! The 1:1 interleave approximates two cores with equal L2 demand rates;
//! honoring each lane's own L1 filtering means a cache-resident program
//! injects few intruder accesses and a streaming one injects many, which
//! is the first-order effect that matters. Everything is deterministic
//! and sanitizer-clean: own counters, miss rates and energy stay
//! own-only (intruder events are accounted separately), so every
//! invariant reconciliation still holds per lane.

use crate::pipeline::{Pipeline, SimOptions};
use crate::{record_metrics, CheckError, Metrics};
use dse_space::{Config, ConstantParams};
use dse_util::json::{Json, ToJson};
use dse_workload::Trace;

/// Disjoint-region rebase for intruder addresses: own traces address
/// well below 2^44, so setting bit 44 guarantees an intruder line never
/// matches an own line (pure pollution, no accidental sharing).
const INTRUDER_REGION: u64 = 1 << 44;

/// One program's view of a co-run: solo vs contended.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorunLane {
    /// Phase-normalised metrics of the solo run.
    pub solo: Metrics,
    /// Phase-normalised metrics under L2 contention.
    pub contended: Metrics,
    /// Own L2 miss rate, solo.
    pub solo_l2_miss: f64,
    /// Own L2 miss rate under contention (pollution can only raise it).
    pub contended_l2_miss: f64,
}

impl CorunLane {
    /// Slowdown factor under contention (`contended.cycles /
    /// solo.cycles`; ≥ 1 up to rounding, since contention only delays).
    pub fn slowdown(&self) -> f64 {
        self.contended.cycles / self.solo.cycles
    }
}

impl ToJson for CorunLane {
    fn to_json(&self) -> Json {
        Json::obj([
            ("solo", self.solo.to_json()),
            ("contended", self.contended.to_json()),
            ("solo_l2_miss", self.solo_l2_miss.to_json()),
            ("contended_l2_miss", self.contended_l2_miss.to_json()),
            ("slowdown", self.slowdown().to_json()),
        ])
    }
}

/// Outcome of co-scheduling two programs through a shared L2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorunResult {
    /// First program's solo/contended view.
    pub a: CorunLane,
    /// Second program's solo/contended view.
    pub b: CorunLane,
}

impl ToJson for CorunResult {
    fn to_json(&self) -> Json {
        Json::obj([("a", self.a.to_json()), ("b", self.b.to_json())])
    }
}

/// Co-schedules `trace_a` and `trace_b` on `cfg` with a shared L2 and
/// returns each program's solo and contended metrics.
///
/// Runs four simulations (two capture, two contention passes); fully
/// deterministic for fixed inputs and independent of `ARCHDSE_THREADS`
/// / `ARCHDSE_BATCH` (the passes are scalar by construction).
///
/// # Errors
///
/// Returns the first sanitizer violation when the checker is armed.
///
/// # Panics
///
/// Panics if either trace is empty, not longer than the warm-up, or the
/// configuration is illegal (see [`Pipeline::new`]).
pub fn simulate_corun(
    cfg: &Config,
    trace_a: &Trace,
    trace_b: &Trace,
    options: SimOptions,
) -> Result<CorunResult, CheckError> {
    let cons = ConstantParams::standard();
    let capture = |trace: &Trace| -> Result<_, CheckError> {
        let mut p = Pipeline::new(cfg, &cons, trace, options);
        p.capture_l2_stream();
        let (rec, stream) = p.try_run_full_captured()?;
        let metrics = record_metrics(&rec.result);
        Ok((metrics, rec.result.l2_miss_rate, stream))
    };
    let (solo_a, solo_a_l2, stream_a) = capture(trace_a)?;
    let (solo_b, solo_b_l2, stream_b) = capture(trace_b)?;

    let rebase = |stream: Vec<u64>| -> Vec<u64> {
        stream.into_iter().map(|a| a | INTRUDER_REGION).collect()
    };
    let contend = |trace: &Trace, intruder: Vec<u64>| -> Result<_, CheckError> {
        let mut p = Pipeline::new(cfg, &cons, trace, options);
        p.set_intruder(intruder);
        let rec = p.try_run_full()?;
        let metrics = record_metrics(&rec.result);
        Ok((metrics, rec.result.l2_miss_rate))
    };
    let (cont_a, cont_a_l2) = contend(trace_a, rebase(stream_b))?;
    let (cont_b, cont_b_l2) = contend(trace_b, rebase(stream_a))?;

    Ok(CorunResult {
        a: CorunLane {
            solo: solo_a,
            contended: cont_a,
            solo_l2_miss: solo_a_l2,
            contended_l2_miss: cont_a_l2,
        },
        b: CorunLane {
            solo: solo_b,
            contended: cont_b,
            solo_l2_miss: solo_b_l2,
            contended_l2_miss: cont_b_l2,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;
    use dse_workload::{Profile, Suite, TraceGenerator};

    fn trace_of(name: &str) -> Trace {
        let p = dse_workload::suites::all_benchmarks()
            .into_iter()
            .find(|p| p.name == name)
            .unwrap();
        TraceGenerator::new(&p).generate(12_000)
    }

    fn opts() -> SimOptions {
        SimOptions::with_warmup(2_000)
    }

    #[test]
    fn solo_lanes_match_plain_simulate_bit_exactly() {
        let (ta, tb) = (trace_of("gzip"), trace_of("mcf"));
        let r = simulate_corun(&Config::baseline(), &ta, &tb, opts()).unwrap();
        let plain_a = simulate(&Config::baseline(), &ta, opts());
        let plain_b = simulate(&Config::baseline(), &tb, opts());
        assert_eq!(r.a.solo, plain_a, "capture pass must not perturb A");
        assert_eq!(r.b.solo, plain_b, "capture pass must not perturb B");
    }

    #[test]
    fn contention_never_speeds_a_program_up() {
        let (ta, tb) = (trace_of("gzip"), trace_of("mcf"));
        let r = simulate_corun(&Config::baseline(), &ta, &tb, opts()).unwrap();
        assert!(r.a.slowdown() >= 1.0 - 1e-12, "a: {}", r.a.slowdown());
        assert!(r.b.slowdown() >= 1.0 - 1e-12, "b: {}", r.b.slowdown());
        // A memory-bound intruder (mcf) must visibly slow a cache-
        // friendly program's L2 story: pollution cannot lower misses.
        assert!(r.a.contended_l2_miss >= r.a.solo_l2_miss - 1e-12);
        assert!(r.b.contended_l2_miss >= r.b.solo_l2_miss - 1e-12);
    }

    #[test]
    fn corun_is_deterministic_and_sanitizer_clean() {
        let (ta, tb) = (trace_of("parser"), trace_of("art"));
        let sanitized = SimOptions {
            warmup: 2_000,
            sanitize: true,
        };
        let r1 = simulate_corun(&Config::baseline(), &ta, &tb, sanitized).unwrap();
        let r2 = simulate_corun(&Config::baseline(), &ta, &tb, sanitized).unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn corun_with_self_is_symmetric() {
        let t = trace_of("gzip");
        let r = simulate_corun(&Config::baseline(), &t, &t, opts()).unwrap();
        assert_eq!(r.a, r.b);
    }

    #[test]
    fn memory_bound_pair_interferes_harder_than_cache_resident_pair() {
        let cold = simulate_corun(
            &Config::baseline(),
            &trace_of("mcf"),
            &trace_of("art"),
            opts(),
        )
        .unwrap();
        let warm = simulate_corun(
            &Config::baseline(),
            &trace_of("parser"),
            &trace_of("bitcount"),
            opts(),
        )
        .unwrap();
        let worst_cold = cold.a.slowdown().max(cold.b.slowdown());
        let worst_warm = warm.a.slowdown().max(warm.b.slowdown());
        assert!(
            worst_cold > worst_warm,
            "memory-bound pair {worst_cold} should exceed cache-resident pair {worst_warm}"
        );
    }

    #[test]
    fn profile_template_traces_generate_small_intruder_streams() {
        // A cache-resident program injects few L2 accesses: its stream
        // must be far shorter than the trace itself (L1 filtering).
        let p = Profile::template("t", Suite::SpecCpu2000, 7);
        let t = TraceGenerator::new(&p).generate(12_000);
        let mut pl = Pipeline::new(&Config::baseline(), &ConstantParams::standard(), &t, opts());
        pl.capture_l2_stream();
        let (_, stream) = pl.try_run_full_captured().unwrap();
        assert!(!stream.is_empty());
        assert!(
            stream.len() < t.len() / 2,
            "stream {} too big",
            stream.len()
        );
    }
}
