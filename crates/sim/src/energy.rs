//! Wattch-style event-based energy accounting.
//!
//! Following Wattch, each microarchitectural structure is assigned a
//! per-access dynamic energy (derived from the Cacti-like circuit model in
//! [`crate::timing`]) and a per-cycle leakage; the pipeline counts events
//! and the final energy is the dot product of event counts and per-event
//! energies plus `cycles × leakage`. This produces the paper's two key
//! energy behaviours: dynamic energy grows with structure sizes, port
//! counts and width, while slow configurations pay leakage for every extra
//! cycle — so over-provisioned *and* under-provisioned machines are both
//! energy-inefficient.

use crate::timing::{MemorySpec, SramSpec};
use dse_space::{Config, ConstantParams};

/// Per-event energies (nanojoules) and per-cycle leakage for one
/// configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// Per-instruction fetch/decode energy (scales with width).
    pub fetch_decode: f64,
    /// I-cache access.
    pub icache: f64,
    /// D-cache access.
    pub dcache: f64,
    /// L2 access.
    pub l2: f64,
    /// Main-memory line transfer.
    pub memory: f64,
    /// Branch-predictor access.
    pub bpred: f64,
    /// BTB access.
    pub btb: f64,
    /// Rename (map-table read/write) per instruction.
    pub rename: f64,
    /// ROB write at dispatch / update at writeback.
    pub rob_write: f64,
    /// ROB read at commit.
    pub rob_read: f64,
    /// IQ insert at dispatch.
    pub iq_insert: f64,
    /// IQ wakeup/select per issued instruction (CAM broadcast over the
    /// whole queue — grows linearly with queue size).
    pub iq_wakeup: f64,
    /// LSQ associative search per memory operation.
    pub lsq_search: f64,
    /// Register-file read per operand.
    pub rf_read: f64,
    /// Register-file write per result.
    pub rf_write: f64,
    /// Functional-unit energies: int ALU, int mul/div, FP ALU, FP mul/div.
    pub fu: [f64; 4],
    /// Total leakage per cycle over all structures plus clock tree.
    pub leakage_per_cycle: f64,
}

impl EnergyModel {
    /// Builds the model for a configuration.
    pub fn new(cfg: &Config, cons: &ConstantParams) -> Self {
        let mem = MemorySpec::standard();

        let icache = SramSpec {
            bytes: cfg.icache_kb as u64 * 1024,
            read_ports: 1,
            write_ports: 1,
            cam: false,
        };
        let dcache = SramSpec {
            bytes: cfg.dcache_kb as u64 * 1024,
            read_ports: 2,
            write_ports: 1,
            cam: false,
        };
        let l2 = SramSpec {
            bytes: cfg.l2_kb as u64 * 1024,
            read_ports: 1,
            write_ports: 1,
            cam: false,
        };
        // 2-bit counters: entries / 4 bytes.
        let bpred = SramSpec::ram((cfg.bpred_k as u64 * 1024) / 4);
        let btb = SramSpec::ram(cfg.btb_k as u64 * 1024 * 8);
        let rob = SramSpec {
            bytes: cfg.rob as u64 * 16,
            read_ports: cfg.width,
            write_ports: cfg.width,
            cam: false,
        };
        let iq = SramSpec {
            bytes: cfg.iq as u64 * 8,
            read_ports: cfg.width,
            write_ports: cfg.width,
            cam: true,
        };
        let lsq = SramSpec {
            bytes: cfg.lsq as u64 * 16,
            read_ports: 2,
            write_ports: 2,
            cam: true,
        };
        let rf = SramSpec {
            bytes: cfg.rf as u64 * 8,
            read_ports: cfg.rf_read,
            write_ports: cfg.rf_write,
            cam: false,
        };

        let w = cfg.width as f64;
        let _ = cons; // latencies live in the pipeline; energy needs no constants

        let leakage_per_cycle = icache.leakage_nj_per_cycle()
            + dcache.leakage_nj_per_cycle()
            + l2.leakage_nj_per_cycle()
            + bpred.leakage_nj_per_cycle()
            + btb.leakage_nj_per_cycle()
            + rob.leakage_nj_per_cycle()
            + iq.leakage_nj_per_cycle()
            + lsq.leakage_nj_per_cycle()
            + rf.leakage_nj_per_cycle()
            // Clock tree + core logic: grows super-linearly with width
            // (wider machines have more latches and longer wires).
            + 0.02 * w.powf(1.3);

        Self {
            fetch_decode: 0.03 * w.powf(0.5),
            icache: icache.access_energy_nj(),
            dcache: dcache.access_energy_nj(),
            l2: l2.access_energy_nj(),
            memory: mem.energy_nj,
            bpred: bpred.access_energy_nj(),
            btb: btb.access_energy_nj(),
            rename: 0.015 * w.powf(0.5),
            rob_write: rob.access_energy_nj() / 4.0,
            rob_read: rob.access_energy_nj() / 4.0,
            iq_insert: iq.access_energy_nj() / 2.0,
            iq_wakeup: iq.access_energy_nj(),
            lsq_search: lsq.access_energy_nj(),
            rf_read: rf.access_energy_nj() / 2.0,
            rf_write: rf.access_energy_nj() / 2.0,
            fu: [0.04, 0.12, 0.15, 0.3],
            leakage_per_cycle,
        }
    }
}

/// Event counters accumulated by the pipeline; multiplied by an
/// [`EnergyModel`] to obtain nanojoules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnergyCounters {
    /// Instructions fetched.
    pub fetched: u64,
    /// I-cache accesses (per fetched line).
    pub icache_accesses: u64,
    /// D-cache accesses.
    pub dcache_accesses: u64,
    /// L2 accesses (from either L1).
    pub l2_accesses: u64,
    /// Main-memory line transfers.
    pub memory_accesses: u64,
    /// Branch-predictor lookups/updates.
    pub bpred_accesses: u64,
    /// BTB lookups/updates.
    pub btb_accesses: u64,
    /// Instructions renamed (dispatched).
    pub renamed: u64,
    /// ROB writes (dispatch + writeback).
    pub rob_writes: u64,
    /// ROB reads (commit).
    pub rob_reads: u64,
    /// IQ inserts (dispatch).
    pub iq_inserts: u64,
    /// Issued instructions (each pays a full-queue wakeup broadcast).
    pub iq_wakeups: u64,
    /// LSQ associative searches (memory-op issue).
    pub lsq_searches: u64,
    /// Register-file operand reads.
    pub rf_reads: u64,
    /// Register-file result writes.
    pub rf_writes: u64,
    /// Functional-unit operations by class (int ALU, int mul/div, FP ALU,
    /// FP mul/div).
    pub fu_ops: [u64; 4],
    /// Elapsed cycles (pays leakage + clock).
    pub cycles: u64,
}

impl EnergyCounters {
    /// Total energy in nanojoules under `model`.
    pub fn total_nj(&self, model: &EnergyModel) -> f64 {
        let f = |count: u64, e: f64| count as f64 * e;
        f(self.fetched, model.fetch_decode)
            + f(self.icache_accesses, model.icache)
            + f(self.dcache_accesses, model.dcache)
            + f(self.l2_accesses, model.l2)
            + f(self.memory_accesses, model.memory)
            + f(self.bpred_accesses, model.bpred)
            + f(self.btb_accesses, model.btb)
            + f(self.renamed, model.rename)
            + f(self.rob_writes, model.rob_write)
            + f(self.rob_reads, model.rob_read)
            + f(self.iq_inserts, model.iq_insert)
            + f(self.iq_wakeups, model.iq_wakeup)
            + f(self.lsq_searches, model.lsq_search)
            + f(self.rf_reads, model.rf_read)
            + f(self.rf_writes, model.rf_write)
            + self
                .fu_ops
                .iter()
                .zip(model.fu.iter())
                .map(|(&c, &e)| c as f64 * e)
                .sum::<f64>()
            + f(self.cycles, model.leakage_per_cycle)
    }

    /// Per-structure energy breakdown in nanojoules: `(name, nJ)` for
    /// every dynamic component plus leakage. The sanitizer reconciles the
    /// sum of this breakdown against [`EnergyCounters::total_nj`], so the
    /// two must enumerate exactly the same terms.
    pub fn components_nj(&self, model: &EnergyModel) -> Vec<(&'static str, f64)> {
        let f = |count: u64, e: f64| count as f64 * e;
        vec![
            ("fetch-decode", f(self.fetched, model.fetch_decode)),
            ("icache", f(self.icache_accesses, model.icache)),
            ("dcache", f(self.dcache_accesses, model.dcache)),
            ("l2", f(self.l2_accesses, model.l2)),
            ("memory", f(self.memory_accesses, model.memory)),
            ("bpred", f(self.bpred_accesses, model.bpred)),
            ("btb", f(self.btb_accesses, model.btb)),
            ("rename", f(self.renamed, model.rename)),
            ("rob-write", f(self.rob_writes, model.rob_write)),
            ("rob-read", f(self.rob_reads, model.rob_read)),
            ("iq-insert", f(self.iq_inserts, model.iq_insert)),
            ("iq-wakeup", f(self.iq_wakeups, model.iq_wakeup)),
            ("lsq-search", f(self.lsq_searches, model.lsq_search)),
            ("rf-read", f(self.rf_reads, model.rf_read)),
            ("rf-write", f(self.rf_writes, model.rf_write)),
            ("fu-int-alu", f(self.fu_ops[0], model.fu[0])),
            ("fu-int-muldiv", f(self.fu_ops[1], model.fu[1])),
            ("fu-fp-alu", f(self.fu_ops[2], model.fu[2])),
            ("fu-fp-muldiv", f(self.fu_ops[3], model.fu[3])),
            ("leakage", f(self.cycles, model.leakage_per_cycle)),
        ]
    }

    /// Element-wise difference (`self - earlier`), used to subtract the
    /// warm-up phase.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `earlier` has any counter larger than
    /// `self`.
    pub fn since(&self, earlier: &EnergyCounters) -> EnergyCounters {
        let mut fu_ops = [0u64; 4];
        for i in 0..4 {
            fu_ops[i] = self.fu_ops[i] - earlier.fu_ops[i];
        }
        EnergyCounters {
            fetched: self.fetched - earlier.fetched,
            icache_accesses: self.icache_accesses - earlier.icache_accesses,
            dcache_accesses: self.dcache_accesses - earlier.dcache_accesses,
            l2_accesses: self.l2_accesses - earlier.l2_accesses,
            memory_accesses: self.memory_accesses - earlier.memory_accesses,
            bpred_accesses: self.bpred_accesses - earlier.bpred_accesses,
            btb_accesses: self.btb_accesses - earlier.btb_accesses,
            renamed: self.renamed - earlier.renamed,
            rob_writes: self.rob_writes - earlier.rob_writes,
            rob_reads: self.rob_reads - earlier.rob_reads,
            iq_inserts: self.iq_inserts - earlier.iq_inserts,
            iq_wakeups: self.iq_wakeups - earlier.iq_wakeups,
            lsq_searches: self.lsq_searches - earlier.lsq_searches,
            rf_reads: self.rf_reads - earlier.rf_reads,
            rf_writes: self.rf_writes - earlier.rf_writes,
            fu_ops,
            cycles: self.cycles - earlier.cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(cfg: &Config) -> EnergyModel {
        EnergyModel::new(cfg, &ConstantParams::standard())
    }

    #[test]
    fn wider_machine_costs_more_per_cycle_and_instr() {
        let narrow = model(&Config {
            width: 2,
            rf_read: 4,
            rf_write: 2,
            ..Config::baseline()
        });
        let wide = model(&Config {
            width: 8,
            rf_read: 16,
            rf_write: 8,
            ..Config::baseline()
        });
        assert!(wide.fetch_decode > narrow.fetch_decode);
        assert!(wide.leakage_per_cycle > narrow.leakage_per_cycle);
        assert!(wide.rf_read > narrow.rf_read);
    }

    #[test]
    fn bigger_l2_leaks_more() {
        let small = model(&Config {
            l2_kb: 512,
            ..Config::baseline()
        });
        let big = model(&Config {
            l2_kb: 4096,
            ..Config::baseline()
        });
        assert!(big.leakage_per_cycle > small.leakage_per_cycle + 0.1);
        assert!(big.l2 > small.l2);
    }

    #[test]
    fn bigger_iq_costs_more_wakeup() {
        let small = model(&Config {
            iq: 8,
            ..Config::baseline()
        });
        let big = model(&Config {
            iq: 80,
            ..Config::baseline()
        });
        assert!(big.iq_wakeup > 2.0 * small.iq_wakeup);
    }

    #[test]
    fn memory_is_the_most_expensive_event() {
        let m = model(&Config::baseline());
        for e in [
            m.icache,
            m.dcache,
            m.l2,
            m.bpred,
            m.btb,
            m.rf_read,
            m.rf_write,
            m.iq_wakeup,
        ] {
            assert!(m.memory > e, "memory {} vs {e}", m.memory);
        }
    }

    #[test]
    fn counters_accumulate_linearly() {
        let m = model(&Config::baseline());
        let mut c = EnergyCounters::default();
        c.fetched = 100;
        c.cycles = 50;
        let e1 = c.total_nj(&m);
        c.fetched = 200;
        c.cycles = 100;
        let e2 = c.total_nj(&m);
        assert!((e2 - 2.0 * e1).abs() < 1e-9);
    }

    #[test]
    fn since_subtracts() {
        let mut a = EnergyCounters::default();
        a.fetched = 10;
        a.fu_ops = [1, 2, 3, 4];
        let mut b = a;
        b.fetched = 25;
        b.fu_ops = [2, 4, 6, 8];
        let d = b.since(&a);
        assert_eq!(d.fetched, 15);
        assert_eq!(d.fu_ops, [1, 2, 3, 4]);
    }

    #[test]
    fn empty_counters_cost_nothing() {
        let m = model(&Config::baseline());
        assert_eq!(EnergyCounters::default().total_nj(&m), 0.0);
    }

    #[test]
    fn components_sum_to_total() {
        let m = model(&Config::baseline());
        let c = EnergyCounters {
            fetched: 1000,
            icache_accesses: 400,
            dcache_accesses: 300,
            l2_accesses: 50,
            memory_accesses: 10,
            bpred_accesses: 150,
            btb_accesses: 150,
            renamed: 1000,
            rob_writes: 1800,
            rob_reads: 1000,
            iq_inserts: 1000,
            iq_wakeups: 1000,
            lsq_searches: 300,
            rf_reads: 1500,
            rf_writes: 800,
            fu_ops: [700, 50, 150, 100],
            cycles: 900,
        };
        let sum: f64 = c.components_nj(&m).iter().map(|&(_, e)| e).sum();
        let total = c.total_nj(&m);
        assert!(
            (sum - total).abs() <= 1e-9 * total,
            "sum {sum} total {total}"
        );
    }
}
