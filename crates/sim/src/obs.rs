//! Per-stage stall and occupancy attribution for [`crate::Pipeline`].
//!
//! The run loop is generic over a [`SimObs`] observer. The default
//! observer, [`NoObs`], has `ENABLED = false`: every hook sits behind an
//! `if O::ENABLED` that the compiler resolves at monomorphisation time,
//! so the un-instrumented hot loop compiles to exactly the code it was
//! before this module existed — bit-identical results, zero cost
//! (pinned by `tests/golden_sim.rs`).
//!
//! [`StallProfile`] is the real observer: it classifies every stepped
//! cycle by what kept each stage from making progress and tracks
//! high-water occupancies. The taxonomy leans on the stage order inside
//! one cycle (commit → issue → dispatch → fetch): when a stage moved
//! nothing, the end-of-cycle occupancies *are* the occupancies it saw,
//! because no later stage mutates the structures it was blocked on.
//!
//! A finished profile pairs with the run's [`crate::RunRecord`] as a
//! [`StallReport`] — the answer to "where did config X's cycles go".

use crate::check::{Bounds, Occupancy};
use crate::pipeline::RunRecord;
use dse_util::json::{Json, ToJson};

/// What the pipeline did in one stepped (non-skipped) cycle.
#[derive(Debug, Clone)]
pub struct CycleObs {
    /// Instructions committed this cycle.
    pub committed: u32,
    /// Instructions issued this cycle.
    pub issued: u32,
    /// Instructions dispatched (renamed) this cycle.
    pub dispatched: u32,
    /// Instructions fetched this cycle.
    pub fetched: u32,
    /// The ROB was empty when commit ran.
    pub rob_was_empty: bool,
    /// The fetch queue was empty when dispatch ran.
    pub fetch_q_was_empty: bool,
    /// Fetch is redirect-blocked on an unresolved mispredicted branch.
    pub fetch_blocked_mispredict: bool,
    /// Fetch is serving an I-cache miss (`fetch_stall_until` in the
    /// future).
    pub fetch_icache_stall: bool,
    /// The whole trace has been fetched.
    pub trace_exhausted: bool,
    /// End-of-cycle structure occupancies.
    pub occ: Occupancy,
    /// Capacity bounds of this configuration.
    pub bounds: Bounds,
}

/// Host-time cost of each pipeline stage over one stepped cycle, in
/// [`stage_clock`] ticks (TSC reference cycles on x86-64, nanoseconds on
/// the portable fallback). `issue` excludes the writeback-port
/// reservation, which is reported separately as `writeback`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StageTimes {
    /// Ticks spent in the commit stage.
    pub commit: u64,
    /// Ticks spent in the issue stage (wakeup scan, operand checks,
    /// structural hazards, execute-latency bookkeeping), minus the
    /// writeback portion.
    pub issue: u64,
    /// Ticks spent reserving register-file write ports (the writeback
    /// sub-stage that runs inside issue).
    pub writeback: u64,
    /// Ticks spent in the dispatch (rename) stage.
    pub dispatch: u64,
    /// Ticks spent in the fetch stage.
    pub fetch: u64,
}

/// Reads the stage-timing clock: the TSC on x86-64 (one `rdtsc`, ~20
/// host cycles), monotonic nanoseconds elsewhere. Only meaningful as
/// differences between two reads on the same thread.
#[inline(always)]
pub fn stage_clock() -> u64 {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        core::arch::x86_64::_rdtsc()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        use std::sync::OnceLock;
        use std::time::Instant;
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }
}

/// Observer of pipeline execution. The run loop calls the hooks only
/// when `ENABLED` is true, and the check is a monomorphised constant —
/// an observer with `ENABLED = false` costs nothing at all.
pub trait SimObs {
    /// Compile-time switch; hooks are never called when false.
    const ENABLED: bool = true;

    /// Compile-time switch for per-stage host-time attribution: when
    /// true the run loop brackets every stage call with
    /// [`stage_clock`] reads and reports the deltas through
    /// [`SimObs::on_stage_times`]. Off by default — like `ENABLED`,
    /// the brackets are monomorphised away entirely when false, so the
    /// default and stall-profiled paths compile unchanged.
    const STAGE_TIMING: bool = false;

    /// One stepped cycle finished with this outcome.
    fn on_cycle(&mut self, c: &CycleObs);

    /// The idle fast-forward skipped `skipped` provably-inert cycles.
    fn on_idle(&mut self, skipped: u64);

    /// Host-time attribution for one stepped cycle (only called when
    /// [`SimObs::STAGE_TIMING`] is true).
    #[inline]
    fn on_stage_times(&mut self, _t: &StageTimes) {}
}

/// The do-nothing observer ([`crate::Pipeline::try_run_full`] uses it).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoObs;

impl SimObs for NoObs {
    const ENABLED: bool = false;

    #[inline]
    fn on_cycle(&mut self, _c: &CycleObs) {}

    #[inline]
    fn on_idle(&mut self, _skipped: u64) {}
}

/// Cycle-by-cycle stall attribution over a whole run (warm-up included).
///
/// Every stepped cycle lands in exactly one commit-outcome bucket:
/// `cycles_with_commit`, `commit_stall_rob_empty`, or
/// `commit_stall_head_wait` — so
/// `cycles_stepped == cycles_with_commit + commit_stall_rob_empty +
/// commit_stall_head_wait` always holds, and
/// `cycles_stepped + cycles_idle` is the run's total cycle count.
/// Dispatch and fetch stalls are attributed first-match in the order the
/// hardware would hit them.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct StallProfile {
    /// Cycles the pipeline actually stepped.
    pub cycles_stepped: u64,
    /// Cycles proven inert and skipped by the event-driven fast-forward.
    pub cycles_idle: u64,
    /// Instructions committed.
    pub instructions: u64,
    /// Stepped cycles in which at least one instruction committed.
    pub cycles_with_commit: u64,
    /// Commit stalled because the ROB was empty (front-end starvation).
    pub commit_stall_rob_empty: u64,
    /// Commit stalled waiting on the ROB head's completion.
    pub commit_stall_head_wait: u64,
    /// Dispatch idled because the fetch queue was empty.
    pub dispatch_stall_upstream: u64,
    /// Dispatch blocked on a full ROB.
    pub dispatch_stall_rob_full: u64,
    /// Dispatch blocked on a full issue queue.
    pub dispatch_stall_iq_full: u64,
    /// Dispatch blocked on a full load/store queue.
    pub dispatch_stall_lsq_full: u64,
    /// Dispatch blocked on rename-register exhaustion.
    pub dispatch_stall_regs_full: u64,
    /// Fetch blocked on an unresolved mispredicted branch.
    pub fetch_stall_mispredict: u64,
    /// Fetch serving an I-cache miss.
    pub fetch_stall_icache: u64,
    /// Fetch blocked on a full fetch queue.
    pub fetch_stall_queue_full: u64,
    /// Fetch idle because the trace is fully fetched (drain phase).
    pub fetch_drained: u64,
    /// High-water ROB occupancy.
    pub hw_rob: usize,
    /// High-water issue-queue occupancy.
    pub hw_iq: usize,
    /// High-water load/store-queue occupancy.
    pub hw_lsq: u32,
    /// High-water rename-register usage.
    pub hw_phys: u32,
    /// High-water fetch-queue occupancy.
    pub hw_fetch_q: usize,
    /// High-water unresolved-branch count.
    pub hw_branches: usize,
}

impl StallProfile {
    /// Total run cycles: stepped plus idle-skipped.
    pub fn total_cycles(&self) -> u64 {
        self.cycles_stepped + self.cycles_idle
    }
}

impl SimObs for StallProfile {
    fn on_cycle(&mut self, c: &CycleObs) {
        self.cycles_stepped += 1;
        self.instructions += c.committed as u64;

        if c.committed > 0 {
            self.cycles_with_commit += 1;
        } else if c.rob_was_empty {
            self.commit_stall_rob_empty += 1;
        } else {
            self.commit_stall_head_wait += 1;
        }

        // Dispatch moved nothing: the structures it checks (ROB, IQ,
        // LSQ, registers) are untouched by the later fetch stage, so the
        // end-of-cycle occupancies are the ones that blocked it.
        if c.dispatched == 0 {
            if c.fetch_q_was_empty {
                self.dispatch_stall_upstream += 1;
            } else if c.occ.rob >= c.bounds.rob {
                self.dispatch_stall_rob_full += 1;
            } else if c.occ.iq >= c.bounds.iq {
                self.dispatch_stall_iq_full += 1;
            } else if c.occ.lsq >= c.bounds.lsq {
                self.dispatch_stall_lsq_full += 1;
            } else if c.occ.phys >= c.bounds.phys {
                self.dispatch_stall_regs_full += 1;
            }
        }

        if c.fetched == 0 {
            if c.fetch_blocked_mispredict {
                self.fetch_stall_mispredict += 1;
            } else if c.fetch_icache_stall {
                self.fetch_stall_icache += 1;
            } else if c.trace_exhausted {
                self.fetch_drained += 1;
            } else if c.occ.fetch_q >= c.bounds.fetch_q {
                self.fetch_stall_queue_full += 1;
            }
        }

        self.hw_rob = self.hw_rob.max(c.occ.rob);
        self.hw_iq = self.hw_iq.max(c.occ.iq);
        self.hw_lsq = self.hw_lsq.max(c.occ.lsq);
        self.hw_phys = self.hw_phys.max(c.occ.phys);
        self.hw_fetch_q = self.hw_fetch_q.max(c.occ.fetch_q);
        self.hw_branches = self.hw_branches.max(c.occ.branches);
    }

    fn on_idle(&mut self, skipped: u64) {
        self.cycles_idle += skipped;
    }
}

/// Per-stage host-cycle-time attribution over a run: where the
/// *simulator's* wall time goes, stage by stage — the measurement behind
/// the cross-lane SoA back-end decision (ROADMAP Open item 1).
///
/// `ENABLED` is false so the per-cycle [`CycleObs`] snapshot is never
/// built: the stage brackets time exactly the un-instrumented stage
/// code, perturbed only by one [`stage_clock`] read per stage boundary
/// (plus one pair around each writeback-port reservation).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StageProf {
    /// Cycles the pipeline actually stepped (timed cycles).
    pub cycles_stepped: u64,
    /// Cycles proven inert and skipped by the fast-forward (not timed).
    pub cycles_idle: u64,
    /// Accumulated per-stage ticks.
    pub ticks: StageTimes,
}

impl StageProf {
    /// Total ticks attributed across all five stages.
    pub fn total_ticks(&self) -> u64 {
        let t = &self.ticks;
        t.commit + t.issue + t.writeback + t.dispatch + t.fetch
    }

    /// One stage's share of the total attributed stage time, in [0, 1].
    pub fn share(&self, ticks: u64) -> f64 {
        ticks as f64 / self.total_ticks().max(1) as f64
    }

    /// Folds another lane's (or another run's) profile into this one —
    /// how batched sweeps and repeated-sim drivers aggregate.
    pub fn merge(&mut self, other: &StageProf) {
        self.cycles_stepped += other.cycles_stepped;
        self.cycles_idle += other.cycles_idle;
        self.ticks.commit += other.ticks.commit;
        self.ticks.issue += other.ticks.issue;
        self.ticks.writeback += other.ticks.writeback;
        self.ticks.dispatch += other.ticks.dispatch;
        self.ticks.fetch += other.ticks.fetch;
    }

    /// Renders the profile as aligned human-readable text.
    pub fn pretty(&self) -> String {
        let t = &self.ticks;
        let rows = [
            ("issue", t.issue),
            ("fetch", t.fetch),
            ("dispatch", t.dispatch),
            ("commit", t.commit),
            ("writeback", t.writeback),
        ];
        let mut out = format!(
            "stage time over {} stepped cycles ({} idle-skipped):\n",
            self.cycles_stepped, self.cycles_idle
        );
        for (name, ticks) in rows {
            out.push_str(&format!(
                "  {name:<9} {:>6.1}%  ({ticks} ticks)\n",
                100.0 * self.share(ticks)
            ));
        }
        out
    }
}

impl SimObs for StageProf {
    const ENABLED: bool = false;
    const STAGE_TIMING: bool = true;

    #[inline]
    fn on_cycle(&mut self, _c: &CycleObs) {}

    #[inline]
    fn on_idle(&mut self, skipped: u64) {
        self.cycles_idle += skipped;
    }

    #[inline]
    fn on_stage_times(&mut self, t: &StageTimes) {
        self.cycles_stepped += 1;
        self.ticks.commit += t.commit;
        self.ticks.issue += t.issue;
        self.ticks.writeback += t.writeback;
        self.ticks.dispatch += t.dispatch;
        self.ticks.fetch += t.fetch;
    }
}

impl ToJson for StageProf {
    fn to_json(&self) -> Json {
        let t = &self.ticks;
        let stage = |ticks: u64| {
            Json::obj([
                ("ticks", ticks.to_json()),
                ("share", self.share(ticks).to_json()),
            ])
        };
        Json::obj([
            ("cycles_stepped", self.cycles_stepped.to_json()),
            ("cycles_idle", self.cycles_idle.to_json()),
            ("total_ticks", self.total_ticks().to_json()),
            ("commit", stage(t.commit)),
            ("issue", stage(t.issue)),
            ("writeback", stage(t.writeback)),
            ("dispatch", stage(t.dispatch)),
            ("fetch", stage(t.fetch)),
        ])
    }
}

/// A [`StallProfile`] paired with the run it profiled.
#[derive(Debug, Clone)]
pub struct StallReport {
    /// Cycle-level attribution (full run, warm-up included).
    pub profile: StallProfile,
    /// The run's result, measured counters, and energy model.
    pub record: RunRecord,
}

impl StallReport {
    /// Renders the report as aligned human-readable text.
    pub fn pretty(&self) -> String {
        let p = &self.profile;
        let total = p.total_cycles().max(1) as f64;
        let pct = |v: u64| 100.0 * v as f64 / total;
        let r = &self.record.result;
        let c = &self.record.counters;
        let mut out = String::new();
        out.push_str(&format!(
            "cycles {} (stepped {} = {:.1}%, idle-skipped {} = {:.1}%)\n",
            p.total_cycles(),
            p.cycles_stepped,
            pct(p.cycles_stepped),
            p.cycles_idle,
            pct(p.cycles_idle),
        ));
        out.push_str(&format!(
            "instructions {}  ipc {:.3}  energy {:.1} nJ\n",
            p.instructions, r.ipc, r.energy_nj
        ));
        out.push_str("commit:   ");
        out.push_str(&format!(
            "progress {:.1}%  rob-empty {:.1}%  head-wait {:.1}%\n",
            pct(p.cycles_with_commit),
            pct(p.commit_stall_rob_empty),
            pct(p.commit_stall_head_wait),
        ));
        out.push_str("dispatch: ");
        out.push_str(&format!(
            "upstream {:.1}%  rob-full {:.1}%  iq-full {:.1}%  lsq-full {:.1}%  regs-full {:.1}%\n",
            pct(p.dispatch_stall_upstream),
            pct(p.dispatch_stall_rob_full),
            pct(p.dispatch_stall_iq_full),
            pct(p.dispatch_stall_lsq_full),
            pct(p.dispatch_stall_regs_full),
        ));
        out.push_str("fetch:    ");
        out.push_str(&format!(
            "mispredict {:.1}%  icache {:.1}%  queue-full {:.1}%  drained {:.1}%\n",
            pct(p.fetch_stall_mispredict),
            pct(p.fetch_stall_icache),
            pct(p.fetch_stall_queue_full),
            pct(p.fetch_drained),
        ));
        out.push_str(&format!(
            "high-water: rob {}  iq {}  lsq {}  regs {}  fetch-q {}  branches {}\n",
            p.hw_rob, p.hw_iq, p.hw_lsq, p.hw_phys, p.hw_fetch_q, p.hw_branches
        ));
        out.push_str(&format!(
            "events: l1i-miss {:.4}  l1d-miss {:.4}  l2-miss {:.4}  bpred-miss {:.4}  mem-accesses {}\n",
            r.l1i_miss_rate, r.l1d_miss_rate, r.l2_miss_rate, r.bpred_miss_rate, c.memory_accesses
        ));
        out
    }
}

impl ToJson for StallProfile {
    fn to_json(&self) -> Json {
        Json::obj([
            ("cycles_stepped", self.cycles_stepped.to_json()),
            ("cycles_idle", self.cycles_idle.to_json()),
            ("instructions", self.instructions.to_json()),
            ("cycles_with_commit", self.cycles_with_commit.to_json()),
            (
                "commit_stall_rob_empty",
                self.commit_stall_rob_empty.to_json(),
            ),
            (
                "commit_stall_head_wait",
                self.commit_stall_head_wait.to_json(),
            ),
            (
                "dispatch_stall_upstream",
                self.dispatch_stall_upstream.to_json(),
            ),
            (
                "dispatch_stall_rob_full",
                self.dispatch_stall_rob_full.to_json(),
            ),
            (
                "dispatch_stall_iq_full",
                self.dispatch_stall_iq_full.to_json(),
            ),
            (
                "dispatch_stall_lsq_full",
                self.dispatch_stall_lsq_full.to_json(),
            ),
            (
                "dispatch_stall_regs_full",
                self.dispatch_stall_regs_full.to_json(),
            ),
            (
                "fetch_stall_mispredict",
                self.fetch_stall_mispredict.to_json(),
            ),
            ("fetch_stall_icache", self.fetch_stall_icache.to_json()),
            (
                "fetch_stall_queue_full",
                self.fetch_stall_queue_full.to_json(),
            ),
            ("fetch_drained", self.fetch_drained.to_json()),
            ("hw_rob", (self.hw_rob as u64).to_json()),
            ("hw_iq", (self.hw_iq as u64).to_json()),
            ("hw_lsq", (self.hw_lsq as u64).to_json()),
            ("hw_phys", (self.hw_phys as u64).to_json()),
            ("hw_fetch_q", (self.hw_fetch_q as u64).to_json()),
            ("hw_branches", (self.hw_branches as u64).to_json()),
        ])
    }
}

impl ToJson for StallReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("profile", self.profile.to_json()),
            ("result", self.record.result.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{Bounds, Occupancy};

    fn cycle(committed: u32, dispatched: u32, fetched: u32) -> CycleObs {
        CycleObs {
            committed,
            issued: committed,
            dispatched,
            fetched,
            rob_was_empty: false,
            fetch_q_was_empty: false,
            fetch_blocked_mispredict: false,
            fetch_icache_stall: false,
            trace_exhausted: false,
            occ: Occupancy {
                rob: 4,
                iq: 2,
                lsq: 1,
                phys: 8,
                fetch_q: 3,
                branches: 1,
                fetched: 10,
                committed: 6,
            },
            bounds: Bounds {
                rob: 32,
                iq: 8,
                lsq: 8,
                phys: 40,
                fetch_q: 12,
                branches: 8,
            },
        }
    }

    #[test]
    fn commit_buckets_partition_stepped_cycles() {
        let mut p = StallProfile::default();
        p.on_cycle(&cycle(2, 2, 2));
        let mut empty = cycle(0, 0, 0);
        empty.rob_was_empty = true;
        empty.fetch_q_was_empty = true;
        p.on_cycle(&empty);
        p.on_cycle(&cycle(0, 1, 1)); // head wait
        p.on_idle(10);
        assert_eq!(p.cycles_stepped, 3);
        assert_eq!(
            p.cycles_stepped,
            p.cycles_with_commit + p.commit_stall_rob_empty + p.commit_stall_head_wait
        );
        assert_eq!(p.total_cycles(), 13);
        assert_eq!(p.dispatch_stall_upstream, 1);
        assert_eq!(p.instructions, 2);
    }

    #[test]
    fn dispatch_stalls_attribute_first_match() {
        let mut p = StallProfile::default();
        let mut c = cycle(1, 0, 1);
        c.occ.rob = c.bounds.rob; // ROB full wins over IQ full
        c.occ.iq = c.bounds.iq;
        p.on_cycle(&c);
        assert_eq!(p.dispatch_stall_rob_full, 1);
        assert_eq!(p.dispatch_stall_iq_full, 0);

        let mut c = cycle(1, 0, 1);
        c.occ.iq = c.bounds.iq;
        p.on_cycle(&c);
        assert_eq!(p.dispatch_stall_iq_full, 1);
    }

    #[test]
    fn fetch_stalls_attribute_by_cause() {
        let mut p = StallProfile::default();
        let mut c = cycle(1, 1, 0);
        c.fetch_blocked_mispredict = true;
        p.on_cycle(&c);
        let mut c = cycle(1, 1, 0);
        c.fetch_icache_stall = true;
        p.on_cycle(&c);
        let mut c = cycle(1, 1, 0);
        c.trace_exhausted = true;
        p.on_cycle(&c);
        let mut c = cycle(1, 1, 0);
        c.occ.fetch_q = c.bounds.fetch_q;
        p.on_cycle(&c);
        assert_eq!(p.fetch_stall_mispredict, 1);
        assert_eq!(p.fetch_stall_icache, 1);
        assert_eq!(p.fetch_drained, 1);
        assert_eq!(p.fetch_stall_queue_full, 1);
    }

    #[test]
    fn high_water_marks_track_maxima() {
        let mut p = StallProfile::default();
        let mut c = cycle(1, 1, 1);
        c.occ.rob = 20;
        p.on_cycle(&c);
        let mut c = cycle(1, 1, 1);
        c.occ.rob = 7;
        c.occ.branches = 5;
        p.on_cycle(&c);
        assert_eq!(p.hw_rob, 20);
        assert_eq!(p.hw_branches, 5);
    }

    #[test]
    fn noobs_is_disabled() {
        assert!(!NoObs::ENABLED);
        assert!(StallProfile::ENABLED);
        assert!(!NoObs::STAGE_TIMING);
        assert!(!StallProfile::STAGE_TIMING);
        assert!(StageProf::STAGE_TIMING);
        assert!(!StageProf::ENABLED, "StageProf must skip CycleObs builds");
    }

    #[test]
    fn stage_prof_accumulates_and_shares() {
        let mut p = StageProf::default();
        p.on_stage_times(&StageTimes {
            commit: 10,
            issue: 60,
            writeback: 5,
            dispatch: 15,
            fetch: 10,
        });
        p.on_stage_times(&StageTimes {
            commit: 0,
            issue: 40,
            writeback: 5,
            dispatch: 5,
            fetch: 50,
        });
        p.on_idle(7);
        assert_eq!(p.cycles_stepped, 2);
        assert_eq!(p.cycles_idle, 7);
        assert_eq!(p.total_ticks(), 200);
        assert!((p.share(p.ticks.issue) - 0.5).abs() < 1e-12);
        let mut q = StageProf::default();
        q.merge(&p);
        q.merge(&p);
        assert_eq!(q.total_ticks(), 400);
        assert_eq!(q.cycles_stepped, 4);
    }

    #[test]
    fn stage_clock_is_monotonic_enough() {
        let a = stage_clock();
        let mut x = 0u64;
        for i in 0..1000u64 {
            x = x.wrapping_add(i);
        }
        std::hint::black_box(x);
        let b = stage_clock();
        assert!(b >= a, "stage clock went backwards: {a} -> {b}");
    }
}
