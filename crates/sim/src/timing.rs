//! Cacti-like analytic timing and circuit model.
//!
//! The paper derives structure access latencies and energies from Cacti 4.0
//! and feeds them into Wattch. We reproduce the *form* of those models: SRAM
//! array access latency grows with capacity (roughly with the square root of
//! the array, quantised to cycles), access energy grows sub-linearly with
//! capacity and super-linearly with port count, and leakage grows linearly
//! with capacity and port count. Absolute values are calibrated to
//! early-2000s published numbers (nanojoule-scale cache accesses, ~20 nJ
//! DRAM accesses) rather than extracted from a real Cacti run.

/// Description of an SRAM-like structure for the timing/energy model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramSpec {
    /// Total capacity in bytes (tag + data approximated together).
    pub bytes: u64,
    /// Read ports.
    pub read_ports: u32,
    /// Write ports.
    pub write_ports: u32,
    /// Whether the structure is content-addressable (CAM) — issue queues
    /// and LSQ search ports; CAMs cost roughly 2× the energy per access.
    pub cam: bool,
}

impl SramSpec {
    /// A simple single-read/single-write-port RAM of the given size.
    pub fn ram(bytes: u64) -> Self {
        Self {
            bytes,
            read_ports: 1,
            write_ports: 1,
            cam: false,
        }
    }

    /// Per-access dynamic energy in nanojoules.
    ///
    /// Scales with `sqrt(capacity)` (bitline/wordline length) and with
    /// `ports^1.4` (each port replicates wordlines and lengthens bitlines).
    pub fn access_energy_nj(&self) -> f64 {
        let ports = (self.read_ports + self.write_ports) as f64;
        let base = 0.012 * (self.bytes as f64 / 1024.0).max(0.0625).sqrt();
        let e = base * ports.powf(0.4);
        if self.cam {
            2.0 * e
        } else {
            e
        }
    }

    /// Leakage power in nanojoules per cycle.
    ///
    /// Linear in capacity, mildly super-linear in ports.
    pub fn leakage_nj_per_cycle(&self) -> f64 {
        let ports = (self.read_ports + self.write_ports) as f64;
        4.0e-5 * (self.bytes as f64 / 1024.0) * ports.powf(0.3)
    }

    /// Sanitizer hook: the derived timing/energy figures must be sane —
    /// finite, non-negative energies and a non-zero access latency.
    pub fn validate(&self) -> Result<(), String> {
        let e = self.access_energy_nj();
        let l = self.leakage_nj_per_cycle();
        if !(e.is_finite() && e > 0.0) {
            return Err(format!(
                "access energy {e} nJ is not a positive finite value"
            ));
        }
        if !(l.is_finite() && l >= 0.0) {
            return Err(format!(
                "leakage {l} nJ/cycle is not finite and non-negative"
            ));
        }
        if self.latency_cycles() == 0 {
            return Err("zero-cycle SRAM access latency".to_string());
        }
        Ok(())
    }

    /// Access latency in cycles at the fixed design frequency.
    pub fn latency_cycles(&self) -> u32 {
        let kb = self.bytes as f64 / 1024.0;
        if kb <= 16.0 {
            2
        } else if kb <= 64.0 {
            3
        } else if kb <= 256.0 {
            4
        } else if kb <= 512.0 {
            8
        } else if kb <= 1024.0 {
            10
        } else if kb <= 2048.0 {
            12
        } else {
            15
        }
    }
}

/// Main-memory (DRAM) constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemorySpec {
    /// Access latency in cycles (row activation + transfer).
    pub latency: u32,
    /// Bus occupancy per cache-line transfer in cycles (bandwidth model:
    /// overlapping misses serialise on this).
    pub occupancy: u32,
    /// Energy per line transfer in nanojoules.
    pub energy_nj: f64,
}

impl MemorySpec {
    /// Standard early-2000s DRAM: 200-cycle latency, 16-cycle occupancy,
    /// ~20 nJ per line.
    pub const fn standard() -> Self {
        Self {
            latency: 200,
            occupancy: 16,
            energy_nj: 20.0,
        }
    }
}

impl MemorySpec {
    /// Sanitizer hook: latency/occupancy/energy must be positive and
    /// finite for the bandwidth model to make sense.
    pub fn validate(&self) -> Result<(), String> {
        if self.latency == 0 || self.occupancy == 0 {
            return Err(format!(
                "memory latency {} / occupancy {} must be non-zero",
                self.latency, self.occupancy
            ));
        }
        if !(self.energy_nj.is_finite() && self.energy_nj > 0.0) {
            return Err(format!(
                "memory energy {} nJ is not a positive finite value",
                self.energy_nj
            ));
        }
        Ok(())
    }
}

impl Default for MemorySpec {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_grows_with_capacity() {
        let small = SramSpec::ram(8 * 1024).access_energy_nj();
        let big = SramSpec::ram(128 * 1024).access_energy_nj();
        assert!(big > small * 2.0, "big {big} small {small}");
        assert!(big < small * 8.0, "sub-linear scaling expected");
    }

    #[test]
    fn energy_grows_with_ports() {
        let narrow = SramSpec {
            read_ports: 2,
            write_ports: 1,
            ..SramSpec::ram(4096)
        };
        let wide = SramSpec {
            read_ports: 16,
            write_ports: 8,
            ..SramSpec::ram(4096)
        };
        assert!(wide.access_energy_nj() > 1.5 * narrow.access_energy_nj());
    }

    #[test]
    fn cam_doubles_energy() {
        let ram = SramSpec::ram(2048);
        let cam = SramSpec { cam: true, ..ram };
        assert!((cam.access_energy_nj() / ram.access_energy_nj() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn latency_is_monotone_in_size() {
        let sizes = [8u64, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096];
        let mut prev = 0;
        for kb in sizes {
            let lat = SramSpec::ram(kb * 1024).latency_cycles();
            assert!(lat >= prev, "{kb} KB latency {lat} < {prev}");
            prev = lat;
        }
    }

    #[test]
    fn l1_latencies_are_pipeline_friendly() {
        assert_eq!(SramSpec::ram(8 * 1024).latency_cycles(), 2);
        assert_eq!(SramSpec::ram(128 * 1024).latency_cycles(), 4);
    }

    #[test]
    fn l2_slower_than_l1_faster_than_memory() {
        let l2 = SramSpec::ram(2 * 1024 * 1024).latency_cycles();
        assert!(l2 > SramSpec::ram(32 * 1024).latency_cycles());
        assert!(l2 < MemorySpec::standard().latency);
    }

    #[test]
    fn leakage_linear_in_capacity() {
        let a = SramSpec::ram(64 * 1024).leakage_nj_per_cycle();
        let b = SramSpec::ram(128 * 1024).leakage_nj_per_cycle();
        assert!((b / a - 2.0).abs() < 1e-9);
    }

    #[test]
    fn memory_energy_dwarfs_sram_access() {
        let mem = MemorySpec::standard();
        let l2 = SramSpec::ram(4 * 1024 * 1024).access_energy_nj();
        assert!(mem.energy_nj > 3.0 * l2);
    }

    #[test]
    fn standard_specs_validate() {
        MemorySpec::standard().validate().unwrap();
        for kb in [8u64, 64, 512, 4096] {
            SramSpec::ram(kb * 1024).validate().unwrap();
        }
    }

    #[test]
    fn degenerate_specs_fail_validation() {
        assert!(MemorySpec {
            latency: 0,
            ..MemorySpec::standard()
        }
        .validate()
        .is_err());
        assert!(MemorySpec {
            energy_nj: f64::NAN,
            ..MemorySpec::standard()
        }
        .validate()
        .is_err());
    }
}
