//! `dse-serve`: a zero-dependency prediction server for the
//! architecture-centric model.
//!
//! The paper's model splits into an expensive offline half (one ANN per
//! training program) and a cheap online half (a linear combiner fitted on
//! `R` responses of a new program). That split is exactly a serving
//! boundary: train once, persist the artifacts, then characterise new
//! programs and answer predictions over HTTP without touching the
//! dataset again.
//!
//! * [`registry`] — the model artifact store: versioned JSON manifest,
//!   per-metric artifacts (ANNs + shared sample + design table), hot
//!   reload, online fitting ([`dse_core::fit_combiner`]);
//! * [`http`] — a hand-rolled HTTP/1.1 subset on `std::net` (no TLS, no
//!   chunking): Content-Length framing, keep-alive, strict size caps,
//!   with an incremental [`http::try_parse`] shared by both front ends;
//! * [`server`] — nonblocking reactor front end (raw `epoll`/`poll`, see
//!   `eventloop`) + fixed worker pool, routing, graceful
//!   drain-on-shutdown;
//! * [`cache`] — a sharded LRU over `(program, metric, config)` keys;
//! * [`telemetry`] — request counters and latency percentiles for
//!   `GET /metrics`;
//! * [`client`] — the blocking keep-alive client used by tests, CI and
//!   `bench_serve`.
//!
//! The server path is *bit-identical* to the library path: predictions
//! run [`dse_core::arch_centric::OfflineModel::predict_with`] on the
//! deserialised networks, and `/v1/fit` runs [`dse_core::fit_combiner`]
//! on the persisted design table — the same arithmetic
//! [`dse_core::arch_centric::OfflineModel::fit_responses`] performs.
//!
//! # Examples
//!
//! ```no_run
//! use dse_serve::registry::ModelRegistry;
//! use dse_serve::server::{Server, ServerConfig};
//! use dse_serve::client::Client;
//! use std::sync::Arc;
//!
//! let registry = Arc::new(ModelRegistry::open("models").unwrap());
//! let server = Server::start(registry, &ServerConfig::default()).unwrap();
//! let mut client = Client::new(server.local_addr().to_string());
//! let health = client.healthz().unwrap();
//! println!("{}", dse_util::json::to_string(&health));
//! server.stop();
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod client;
mod eventloop;
pub mod http;
pub mod jobs;
pub mod registry;
pub mod server;
pub mod telemetry;

pub use cache::{CacheKey, PredictionCache};
pub use client::{Client, ClientError, ClientResponse};
pub use jobs::{protocol, ExploreJob, JobManager, JobState, RegistryPredictor};
pub use registry::{save_artifacts, FitSummary, MetricArtifact, ModelRegistry, RegistryError};
pub use server::{Server, ServerConfig};
pub use telemetry::Telemetry;
