//! Request telemetry for the `/metrics` endpoint.
//!
//! Counts requests per route and per status class, and tracks request
//! latency through the workspace's shared quantile estimator
//! ([`dse_obs::registry::QuantileRing`]): recording is a push into the
//! calling thread's own shard — connection handler threads never queue
//! on one lock — and the merge + sort happens only when `/metrics` is
//! scraped.
//!
//! The exposition keeps the established `dse_serve_*` metric names and
//! adds `dse_serve_build_info` (package version plus git hash when the
//! server runs inside a checkout) and the uptime gauge.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use dse_obs::registry::QuantileRing;

/// How many recent latencies the percentile window retains (total across
/// all shards).
const RING_CAPACITY: usize = 4096;

/// Every route label [`crate::server::route`] can emit, pre-seeded into
/// the per-route table at construction so `/metrics` exposes each route
/// at 0 from the first scrape. (The table used to populate lazily on
/// first hit, which silently dropped never-yet-hit routes — the newer
/// `/v1/workloads` and `/v1/explore` surfaces most visibly — from the
/// exposition.) Dynamically observed labels still join the table, so a
/// new route missing from this list degrades to the old behaviour, not
/// to lost counts.
const KNOWN_ROUTES: &[&str] = &[
    "/healthz",
    "/metrics",
    "/v1/models",
    "/v1/configs",
    "/v1/predict",
    "/v1/predict_batch",
    "/v1/fit",
    "/v1/reload",
    "/v1/shutdown",
    "/v1/workloads",
    "/v1/explore",
    "/v1/explore/:id",
    "/v1/obs/flight",
    "method_not_allowed",
    "not_found",
    "malformed",
    "shed",
    "panic",
];

/// Server-wide request telemetry.
pub struct Telemetry {
    started: Instant,
    total: AtomicU64,
    /// Status-class counters: 2xx, 4xx, 5xx (3xx never issued).
    ok: AtomicU64,
    client_error: AtomicU64,
    server_error: AtomicU64,
    /// route → request count (BTreeMap so the exposition is sorted).
    routes: Mutex<BTreeMap<String, u64>>,
    /// Recent request latencies in microseconds, thread-sharded.
    latencies: QuantileRing,
}

/// A latency percentile snapshot in microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Number of samples in the window.
    pub samples: usize,
    /// Median latency.
    pub p50_us: u64,
    /// 95th-percentile latency.
    pub p95_us: u64,
    /// 99th-percentile latency.
    pub p99_us: u64,
}

/// The git hash of the running checkout, resolved once; `None` when the
/// server does not run inside a git work tree (e.g. a deployed binary).
fn git_hash() -> Option<&'static str> {
    static HASH: OnceLock<Option<String>> = OnceLock::new();
    HASH.get_or_init(|| {
        let out = std::process::Command::new("git")
            .args(["rev-parse", "--short", "HEAD"])
            .output()
            .ok()?;
        if !out.status.success() {
            return None;
        }
        let hash = String::from_utf8(out.stdout).ok()?.trim().to_string();
        (!hash.is_empty()).then_some(hash)
    })
    .as_deref()
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// Fresh telemetry with zeroed counters.
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            total: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            client_error: AtomicU64::new(0),
            server_error: AtomicU64::new(0),
            routes: Mutex::new(
                KNOWN_ROUTES
                    .iter()
                    .map(|&route| (route.to_string(), 0))
                    .collect(),
            ),
            latencies: QuantileRing::new(RING_CAPACITY),
        }
    }

    /// Records one completed request.
    pub fn record(&self, route: &str, status: u16, latency_us: u64) {
        self.total.fetch_add(1, Ordering::Relaxed);
        match status {
            200..=299 => &self.ok,
            400..=499 => &self.client_error,
            _ => &self.server_error,
        }
        .fetch_add(1, Ordering::Relaxed);
        *self
            .routes
            .lock()
            .unwrap()
            .entry(route.to_string())
            .or_insert(0) += 1;
        self.latencies.record(latency_us);
    }

    /// Total requests recorded since startup.
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Seconds since the server started.
    pub fn uptime_seconds(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// Latency percentiles over the current window.
    pub fn latency(&self) -> LatencySummary {
        let s = self.latencies.snapshot();
        LatencySummary {
            samples: s.samples,
            p50_us: s.p50,
            p95_us: s.p95,
            p99_us: s.p99,
        }
    }

    /// Renders the plain-text exposition served at `GET /metrics`.
    ///
    /// `cache_hits`/`cache_misses` come from the prediction cache so the
    /// hit rate appears alongside the request counters. Workspace-wide
    /// metrics from [`dse_obs::registry::global`] are appended by the
    /// route handler, not here.
    pub fn exposition(&self, cache_hits: u64, cache_misses: u64, cache_len: usize) -> String {
        let lat = self.latency();
        let lookups = cache_hits + cache_misses;
        let hit_rate = if lookups == 0 {
            0.0
        } else {
            cache_hits as f64 / lookups as f64
        };
        let mut out = String::with_capacity(768);
        out.push_str(&format!(
            "dse_serve_build_info{{version=\"{}\",git=\"{}\"}} 1\n",
            env!("CARGO_PKG_VERSION"),
            git_hash().unwrap_or("unknown"),
        ));
        out.push_str(&format!(
            "dse_serve_uptime_seconds {}\n",
            self.uptime_seconds()
        ));
        out.push_str(&format!("dse_serve_requests_total {}\n", self.total()));
        out.push_str(&format!(
            "dse_serve_responses_total{{class=\"2xx\"}} {}\n",
            self.ok.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "dse_serve_responses_total{{class=\"4xx\"}} {}\n",
            self.client_error.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "dse_serve_responses_total{{class=\"5xx\"}} {}\n",
            self.server_error.load(Ordering::Relaxed)
        ));
        for (route, count) in self.routes.lock().unwrap().iter() {
            out.push_str(&format!(
                "dse_serve_route_requests_total{{route=\"{route}\"}} {count}\n"
            ));
        }
        out.push_str(&format!(
            "dse_serve_latency_microseconds{{quantile=\"0.5\"}} {}\n",
            lat.p50_us
        ));
        out.push_str(&format!(
            "dse_serve_latency_microseconds{{quantile=\"0.95\"}} {}\n",
            lat.p95_us
        ));
        out.push_str(&format!(
            "dse_serve_latency_microseconds{{quantile=\"0.99\"}} {}\n",
            lat.p99_us
        ));
        out.push_str(&format!("dse_serve_cache_hits_total {cache_hits}\n"));
        out.push_str(&format!("dse_serve_cache_misses_total {cache_misses}\n"));
        out.push_str(&format!("dse_serve_cache_entries {cache_len}\n"));
        out.push_str(&format!("dse_serve_cache_hit_rate {hit_rate:.4}\n"));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_by_route_and_class() {
        let t = Telemetry::new();
        t.record("/v1/predict", 200, 100);
        t.record("/v1/predict", 200, 200);
        t.record("/healthz", 200, 10);
        t.record("/nope", 404, 5);
        t.record("/v1/predict", 500, 50);
        assert_eq!(t.total(), 5);
        let text = t.exposition(3, 1, 2);
        assert!(text.contains("dse_serve_requests_total 5"));
        assert!(text.contains("dse_serve_responses_total{class=\"2xx\"} 3"));
        assert!(text.contains("dse_serve_responses_total{class=\"4xx\"} 1"));
        assert!(text.contains("dse_serve_responses_total{class=\"5xx\"} 1"));
        assert!(text.contains("dse_serve_route_requests_total{route=\"/v1/predict\"} 3"));
        assert!(text.contains("dse_serve_cache_hit_rate 0.7500"));
        assert!(text.contains("dse_serve_cache_entries 2"));
    }

    #[test]
    fn all_routes_present_before_any_traffic() {
        let t = Telemetry::new();
        let text = t.exposition(0, 0, 0);
        for route in KNOWN_ROUTES {
            assert!(
                text.contains(&format!(
                    "dse_serve_route_requests_total{{route=\"{route}\"}} 0"
                )),
                "route {route} missing from fresh exposition:\n{text}"
            );
        }
    }

    #[test]
    fn exposition_includes_build_info_and_uptime() {
        let t = Telemetry::new();
        let text = t.exposition(0, 0, 0);
        assert!(
            text.contains(&format!(
                "dse_serve_build_info{{version=\"{}\"",
                env!("CARGO_PKG_VERSION")
            )),
            "{text}"
        );
        assert!(text.contains("dse_serve_uptime_seconds "), "{text}");
    }

    #[test]
    fn percentiles_over_known_distribution() {
        let t = Telemetry::new();
        for us in 1..=100 {
            t.record("/v1/predict", 200, us);
        }
        let lat = t.latency();
        assert_eq!(lat.samples, 100);
        assert_eq!(lat.p50_us, 50);
        assert_eq!(lat.p95_us, 95);
        assert_eq!(lat.p99_us, 99);
    }

    #[test]
    fn empty_window_reports_zeroes() {
        let t = Telemetry::new();
        let lat = t.latency();
        assert_eq!(lat.samples, 0);
        assert_eq!(lat.p50_us, 0);
        assert_eq!(lat.p99_us, 0);
    }

    #[test]
    fn ring_bounds_memory_and_displaces_old_samples() {
        let t = Telemetry::new();
        // Fill well past capacity with large values, then small ones.
        // A single test thread writes one shard, so the retained window
        // is capacity/shards — still bounded and still displacing.
        for _ in 0..RING_CAPACITY {
            t.record("/v1/predict", 200, 1_000_000);
        }
        for _ in 0..RING_CAPACITY {
            t.record("/v1/predict", 200, 1);
        }
        let lat = t.latency();
        assert!(lat.samples > 0 && lat.samples <= RING_CAPACITY);
        assert_eq!(lat.p99_us, 1, "old samples should have been displaced");
    }
}
