//! Request telemetry for the `/metrics` endpoint.
//!
//! Counts requests per route and per status class, and keeps a bounded
//! ring of recent request latencies from which p50/p95/p99 are computed
//! on demand. The ring is deliberately small and mutex-guarded: recording
//! a latency is a push into a fixed slot, and the sort happens only when
//! `/metrics` is scraped.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// How many recent latencies the percentile window retains.
const RING_CAPACITY: usize = 4096;

#[derive(Default)]
struct Counters {
    /// route → request count (BTreeMap so the exposition is sorted).
    routes: BTreeMap<String, u64>,
    /// Bounded ring of recent latencies, in microseconds.
    latencies: Vec<u64>,
    /// Next slot to overwrite once the ring is full.
    cursor: usize,
}

/// Server-wide request telemetry.
pub struct Telemetry {
    started: Instant,
    total: AtomicU64,
    /// Status-class counters: 2xx, 4xx, 5xx (3xx never issued).
    ok: AtomicU64,
    client_error: AtomicU64,
    server_error: AtomicU64,
    counters: Mutex<Counters>,
}

/// A latency percentile snapshot in microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Number of samples in the window.
    pub samples: usize,
    /// Median latency.
    pub p50_us: u64,
    /// 95th-percentile latency.
    pub p95_us: u64,
    /// 99th-percentile latency.
    pub p99_us: u64,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// Fresh telemetry with zeroed counters.
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            total: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            client_error: AtomicU64::new(0),
            server_error: AtomicU64::new(0),
            counters: Mutex::new(Counters::default()),
        }
    }

    /// Records one completed request.
    pub fn record(&self, route: &str, status: u16, latency_us: u64) {
        self.total.fetch_add(1, Ordering::Relaxed);
        match status {
            200..=299 => &self.ok,
            400..=499 => &self.client_error,
            _ => &self.server_error,
        }
        .fetch_add(1, Ordering::Relaxed);
        let mut c = self.counters.lock().unwrap();
        *c.routes.entry(route.to_string()).or_insert(0) += 1;
        if c.latencies.len() < RING_CAPACITY {
            c.latencies.push(latency_us);
        } else {
            let cursor = c.cursor;
            c.latencies[cursor] = latency_us;
            c.cursor = (cursor + 1) % RING_CAPACITY;
        }
    }

    /// Total requests recorded since startup.
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Latency percentiles over the current window.
    pub fn latency(&self) -> LatencySummary {
        let mut sorted = self.counters.lock().unwrap().latencies.clone();
        sorted.sort_unstable();
        let pick = |p: f64| -> u64 {
            if sorted.is_empty() {
                return 0;
            }
            let rank = ((sorted.len() as f64) * p).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        LatencySummary {
            samples: sorted.len(),
            p50_us: pick(0.50),
            p95_us: pick(0.95),
            p99_us: pick(0.99),
        }
    }

    /// Renders the plain-text exposition served at `GET /metrics`.
    ///
    /// `cache_hits`/`cache_misses` come from the prediction cache so the
    /// hit rate appears alongside the request counters.
    pub fn exposition(&self, cache_hits: u64, cache_misses: u64, cache_len: usize) -> String {
        let lat = self.latency();
        let lookups = cache_hits + cache_misses;
        let hit_rate = if lookups == 0 {
            0.0
        } else {
            cache_hits as f64 / lookups as f64
        };
        let mut out = String::with_capacity(512);
        out.push_str(&format!(
            "dse_serve_uptime_seconds {}\n",
            self.started.elapsed().as_secs()
        ));
        out.push_str(&format!("dse_serve_requests_total {}\n", self.total()));
        out.push_str(&format!(
            "dse_serve_responses_total{{class=\"2xx\"}} {}\n",
            self.ok.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "dse_serve_responses_total{{class=\"4xx\"}} {}\n",
            self.client_error.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "dse_serve_responses_total{{class=\"5xx\"}} {}\n",
            self.server_error.load(Ordering::Relaxed)
        ));
        {
            let c = self.counters.lock().unwrap();
            for (route, count) in &c.routes {
                out.push_str(&format!(
                    "dse_serve_route_requests_total{{route=\"{route}\"}} {count}\n"
                ));
            }
        }
        out.push_str(&format!(
            "dse_serve_latency_microseconds{{quantile=\"0.5\"}} {}\n",
            lat.p50_us
        ));
        out.push_str(&format!(
            "dse_serve_latency_microseconds{{quantile=\"0.95\"}} {}\n",
            lat.p95_us
        ));
        out.push_str(&format!(
            "dse_serve_latency_microseconds{{quantile=\"0.99\"}} {}\n",
            lat.p99_us
        ));
        out.push_str(&format!("dse_serve_cache_hits_total {cache_hits}\n"));
        out.push_str(&format!("dse_serve_cache_misses_total {cache_misses}\n"));
        out.push_str(&format!("dse_serve_cache_entries {cache_len}\n"));
        out.push_str(&format!("dse_serve_cache_hit_rate {hit_rate:.4}\n"));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_by_route_and_class() {
        let t = Telemetry::new();
        t.record("/v1/predict", 200, 100);
        t.record("/v1/predict", 200, 200);
        t.record("/healthz", 200, 10);
        t.record("/nope", 404, 5);
        t.record("/v1/predict", 500, 50);
        assert_eq!(t.total(), 5);
        let text = t.exposition(3, 1, 2);
        assert!(text.contains("dse_serve_requests_total 5"));
        assert!(text.contains("dse_serve_responses_total{class=\"2xx\"} 3"));
        assert!(text.contains("dse_serve_responses_total{class=\"4xx\"} 1"));
        assert!(text.contains("dse_serve_responses_total{class=\"5xx\"} 1"));
        assert!(text.contains("dse_serve_route_requests_total{route=\"/v1/predict\"} 3"));
        assert!(text.contains("dse_serve_cache_hit_rate 0.7500"));
        assert!(text.contains("dse_serve_cache_entries 2"));
    }

    #[test]
    fn percentiles_over_known_distribution() {
        let t = Telemetry::new();
        for us in 1..=100 {
            t.record("/v1/predict", 200, us);
        }
        let lat = t.latency();
        assert_eq!(lat.samples, 100);
        assert_eq!(lat.p50_us, 50);
        assert_eq!(lat.p95_us, 95);
        assert_eq!(lat.p99_us, 99);
    }

    #[test]
    fn empty_window_reports_zeroes() {
        let t = Telemetry::new();
        let lat = t.latency();
        assert_eq!(lat.samples, 0);
        assert_eq!(lat.p50_us, 0);
        assert_eq!(lat.p99_us, 0);
    }

    #[test]
    fn ring_overwrites_oldest_samples() {
        let t = Telemetry::new();
        // Fill the ring with large values, then overwrite with small ones.
        for _ in 0..RING_CAPACITY {
            t.record("/v1/predict", 200, 1_000_000);
        }
        for _ in 0..RING_CAPACITY {
            t.record("/v1/predict", 200, 1);
        }
        let lat = t.latency();
        assert_eq!(lat.samples, RING_CAPACITY);
        assert_eq!(lat.p99_us, 1, "old samples should have been displaced");
    }
}
