//! Async explore jobs: submit, poll, cancel.
//!
//! A frontier run outlives any sane HTTP timeout, so `/v1/explore` is an
//! async-job surface: `POST` validates the request, registers a job, and
//! schedules the run on the server's *existing* worker pool (a running
//! job occupies one worker, exactly like a long-lived connection);
//! `GET /v1/explore/<id>` polls status and the latest partial frontier;
//! `DELETE /v1/explore/<id>` requests cancellation, honoured at the next
//! round boundary. Graceful drain falls out of the same mechanism: the
//! job's round callback watches the server shutdown flag, so a draining
//! server cancels in-flight explorations within one round instead of
//! holding the pool open for the full budget.
//!
//! Capacity is two-layered: [`JobManager`] rejects submissions beyond
//! `max_explore_jobs` active jobs (HTTP 429 — the *job* surface is
//! saturated), and the worker pool itself can still refuse the closure
//! (HTTP 503 — the *server* is saturated).

use crate::registry::{ModelRegistry, RegistryError};
use dse_explore::{Frontier, MetricPredictor, RoundStatus};
use dse_ml::LinearRegression;
use dse_sim::{Metric, SimOptions};
use dse_space::Config;
use dse_workload::{Profile, Trace, TraceGenerator};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The simulation protocol every online oracle call follows — identical
/// to the protocol `archdse train` and `archdse client fit` use, or the
/// online-fitted combiner would mix scales.
pub mod protocol {
    use super::*;

    /// Dynamic trace length per oracle simulation, in instructions.
    pub const TRACE_LEN: usize = 30_000;
    /// Warm-up instructions excluded from the metrics.
    pub const WARMUP: usize = 6_000;
    /// Trace-generation seed.
    pub const SEED: u64 = 21;

    /// The protocol trace for a benchmark profile.
    pub fn trace(profile: &Profile) -> Trace {
        TraceGenerator::new(profile).generate(TRACE_LEN)
    }

    /// The protocol simulation options.
    pub fn options() -> SimOptions {
        SimOptions::with_warmup(WARMUP)
    }
}

/// A [`MetricPredictor`] over resolved registry models: the artifact and
/// online-fitted combiner per metric are pinned at submit time, so a
/// concurrent `/v1/fit` or hot reload cannot shift a running job's cheap
/// oracle mid-flight (and prediction is infallible afterwards).
pub struct RegistryPredictor {
    models: Vec<(
        Metric,
        Arc<crate::registry::MetricArtifact>,
        Arc<LinearRegression>,
    )>,
}

impl RegistryPredictor {
    /// Resolves `program`'s predictor for every metric in `metrics`.
    ///
    /// # Errors
    ///
    /// Fails if any metric has no artifact or no fitted combiner for the
    /// program — the same errors `/v1/predict` maps to 404.
    pub fn resolve(
        registry: &ModelRegistry,
        program: &str,
        metrics: &[Metric],
    ) -> Result<Self, RegistryError> {
        let mut models = Vec::with_capacity(metrics.len());
        for &m in metrics {
            let (artifact, reg) = registry.predictor(program, m)?;
            models.push((m, artifact, reg));
        }
        Ok(Self { models })
    }
}

impl MetricPredictor for RegistryPredictor {
    fn predict(&self, cfg: &Config, metric: Metric) -> f64 {
        match self.models.iter().find(|(m, _, _)| *m == metric) {
            Some((_, artifact, reg)) => artifact.offline.predict_with(reg, &cfg.to_features()),
            // Unreachable when resolved from the objective's own metric
            // set; a NaN objective value is rejected by the archive.
            None => f64::NAN,
        }
    }

    fn predict_batch(&self, cfgs: &[Config], metric: Metric, out: &mut [f64]) {
        assert!(out.len() >= cfgs.len(), "output buffer too short");
        let Some((_, artifact, reg)) = self.models.iter().find(|(m, _, _)| *m == metric) else {
            out[..cfgs.len()].fill(f64::NAN);
            return;
        };
        if cfgs.is_empty() {
            return;
        }
        let dim = cfgs[0].to_features().len();
        let mut flat = Vec::with_capacity(cfgs.len() * dim);
        for cfg in cfgs {
            flat.extend_from_slice(&cfg.to_features());
        }
        artifact
            .offline
            .predict_with_batch_into(reg, &flat, cfgs.len(), out);
    }
}

/// Lifecycle of an explore job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a pool worker.
    Queued,
    /// The acquisition loop is running.
    Running,
    /// Finished its budget; the full frontier is available.
    Done,
    /// Cancelled (by `DELETE` or server drain); partial frontier kept.
    Cancelled,
    /// Failed (simulator violation or internal error).
    Failed,
}

impl JobState {
    /// The wire spelling used in JSON responses.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
        }
    }

    /// Whether the job still holds (or waits for) a worker.
    pub fn is_active(self) -> bool {
        matches!(self, JobState::Queued | JobState::Running)
    }
}

#[derive(Debug)]
struct JobInner {
    state: JobState,
    rounds_done: usize,
    rounds_total: usize,
    frontier: Option<Frontier>,
    error: Option<String>,
}

/// One explore job: shared between the HTTP handlers and the worker
/// running the loop.
#[derive(Debug)]
pub struct ExploreJob {
    /// Opaque job id (`explore-<n>`).
    pub id: String,
    cancel: AtomicBool,
    inner: Mutex<JobInner>,
}

/// A point-in-time copy of a job's externally visible state.
pub struct JobSnapshot {
    /// Lifecycle state.
    pub state: JobState,
    /// Rounds completed.
    pub rounds_done: usize,
    /// Rounds budgeted.
    pub rounds_total: usize,
    /// Latest frontier: partial while running, final afterwards.
    pub frontier: Option<Frontier>,
    /// Failure message, if failed.
    pub error: Option<String>,
}

impl ExploreJob {
    /// Requests cancellation (idempotent); the loop notices at the next
    /// round boundary.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation was requested.
    pub fn cancel_requested(&self) -> bool {
        self.cancel.load(Ordering::SeqCst)
    }

    /// Marks the job running (called by the worker as it picks it up).
    pub fn mark_running(&self) {
        let mut inner = self.inner.lock().unwrap();
        if inner.state == JobState::Queued {
            inner.state = JobState::Running;
        }
    }

    /// Records round progress and the latest partial frontier.
    pub fn update(&self, status: &RoundStatus<'_>) {
        let mut inner = self.inner.lock().unwrap();
        inner.rounds_done = status.rounds_done;
        inner.rounds_total = status.rounds_total;
        inner.frontier = Some(status.frontier.clone());
    }

    /// Stores the final frontier; the state follows its `cancelled` flag.
    pub fn finish(&self, frontier: Frontier) {
        let mut inner = self.inner.lock().unwrap();
        inner.rounds_done = frontier.rounds.len();
        inner.state = if frontier.cancelled {
            JobState::Cancelled
        } else {
            JobState::Done
        };
        inner.frontier = Some(frontier);
    }

    /// Marks the job failed.
    pub fn fail(&self, message: String) {
        let mut inner = self.inner.lock().unwrap();
        inner.state = JobState::Failed;
        inner.error = Some(message);
    }

    /// A copy of the current state.
    pub fn snapshot(&self) -> JobSnapshot {
        let inner = self.inner.lock().unwrap();
        JobSnapshot {
            state: inner.state,
            rounds_done: inner.rounds_done,
            rounds_total: inner.rounds_total,
            frontier: inner.frontier.clone(),
            error: inner.error.clone(),
        }
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitRejected {
    /// `max_explore_jobs` jobs are already queued or running (HTTP 429).
    TooManyJobs,
}

/// Registry of explore jobs with an active-job cap.
///
/// Finished jobs stay pollable; to bound memory the manager keeps only
/// the most recent [`FINISHED_KEPT`] finished jobs (older ones 404).
pub struct JobManager {
    max_active: usize,
    next: AtomicU64,
    jobs: Mutex<Vec<Arc<ExploreJob>>>,
}

/// Finished jobs retained for polling before being pruned.
pub const FINISHED_KEPT: usize = 32;

impl JobManager {
    /// A manager admitting at most `max_active` queued-or-running jobs.
    pub fn new(max_active: usize) -> Self {
        Self {
            max_active: max_active.max(1),
            next: AtomicU64::new(1),
            jobs: Mutex::new(Vec::new()),
        }
    }

    /// Registers a new job in `Queued` state.
    ///
    /// # Errors
    ///
    /// Rejects when the active-job cap is reached.
    pub fn submit(&self, rounds_total: usize) -> Result<Arc<ExploreJob>, SubmitRejected> {
        let mut jobs = self.jobs.lock().unwrap();
        let active = jobs
            .iter()
            .filter(|j| j.inner.lock().unwrap().state.is_active())
            .count();
        if active >= self.max_active {
            return Err(SubmitRejected::TooManyJobs);
        }
        // Prune the oldest finished jobs beyond the retention window.
        let finished = jobs.len() - active;
        if finished > FINISHED_KEPT {
            let mut to_drop = finished - FINISHED_KEPT;
            jobs.retain(|j| {
                if to_drop > 0 && !j.inner.lock().unwrap().state.is_active() {
                    to_drop -= 1;
                    false
                } else {
                    true
                }
            });
        }
        let id = format!("explore-{}", self.next.fetch_add(1, Ordering::SeqCst));
        let job = Arc::new(ExploreJob {
            id,
            cancel: AtomicBool::new(false),
            inner: Mutex::new(JobInner {
                state: JobState::Queued,
                rounds_done: 0,
                rounds_total,
                frontier: None,
                error: None,
            }),
        });
        jobs.push(job.clone());
        Ok(job)
    }

    /// Looks a job up by id.
    pub fn get(&self, id: &str) -> Option<Arc<ExploreJob>> {
        self.jobs
            .lock()
            .unwrap()
            .iter()
            .find(|j| j.id == id)
            .cloned()
    }

    /// Removes a job that never started (pool rejected its closure), so
    /// a 503'd submission does not consume the job cap.
    pub fn discard(&self, id: &str) {
        self.jobs.lock().unwrap().retain(|j| j.id != id);
    }

    /// Ids of all known jobs, newest last (for `GET /v1/explore`).
    pub fn ids(&self) -> Vec<String> {
        self.jobs
            .lock()
            .unwrap()
            .iter()
            .map(|j| j.id.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manager_caps_active_jobs_and_recovers() {
        let m = JobManager::new(2);
        let a = m.submit(4).unwrap();
        let _b = m.submit(4).unwrap();
        assert_eq!(m.submit(4).unwrap_err(), SubmitRejected::TooManyJobs);
        // Finishing a job frees a slot.
        a.fail("test".to_string());
        // The rejected submission consumed no id: the counter advances
        // only past the cap check.
        let c = m.submit(4).unwrap();
        assert_eq!(c.id, "explore-3");
        assert!(m.get(&c.id).is_some());
        assert!(m.get("explore-999").is_none());
    }

    #[test]
    fn discard_releases_the_slot() {
        let m = JobManager::new(1);
        let a = m.submit(4).unwrap();
        assert!(m.submit(4).is_err());
        m.discard(&a.id);
        assert!(m.submit(4).is_ok());
    }

    #[test]
    fn job_lifecycle_states() {
        let m = JobManager::new(1);
        let j = m.submit(3).unwrap();
        assert_eq!(j.snapshot().state, JobState::Queued);
        j.mark_running();
        assert_eq!(j.snapshot().state, JobState::Running);
        assert!(!j.cancel_requested());
        j.cancel();
        assert!(j.cancel_requested());
        j.fail("boom".to_string());
        let s = j.snapshot();
        assert_eq!(s.state, JobState::Failed);
        assert_eq!(s.error.as_deref(), Some("boom"));
    }
}
