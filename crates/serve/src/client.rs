//! A small blocking HTTP/1.1 client for the prediction server.
//!
//! Used by the integration tests, the CI smoke stage and `bench_serve`;
//! also the implementation behind `archdse client`. Keeps one keep-alive
//! connection and reconnects transparently once when the server closed it
//! (e.g. after an error response or a drain).

use dse_sim::Metric;
use dse_space::Config;
use dse_util::json::{FromJson, Json, ToJson};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, send or receive).
    Io(std::io::Error),
    /// The server's response could not be parsed.
    Protocol(String),
    /// The server answered with a non-2xx status.
    Status(u16, String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Status(code, body) => write!(f, "server answered {code}: {body}"),
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A parsed HTTP response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Headers with lower-cased names.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First value of a header (name compared case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == lower)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    pub fn text(&self) -> Result<&str, ClientError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| ClientError::Protocol("body is not valid UTF-8".to_string()))
    }

    /// The body parsed as JSON.
    pub fn json(&self) -> Result<Json, ClientError> {
        Json::parse(self.text()?).map_err(|e| ClientError::Protocol(format!("body: {e}")))
    }
}

/// A blocking keep-alive client bound to one server address.
pub struct Client {
    addr: String,
    timeout: Duration,
    stream: Option<TcpStream>,
}

impl Client {
    /// A client for `addr` (`host:port`) with a 10 s socket timeout.
    pub fn new(addr: impl Into<String>) -> Self {
        Self {
            addr: addr.into(),
            timeout: Duration::from_secs(10),
            stream: None,
        }
    }

    /// Overrides the socket timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    fn connect(&mut self) -> Result<&mut TcpStream, ClientError> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(&self.addr)?;
            stream.set_read_timeout(Some(self.timeout))?;
            stream.set_write_timeout(Some(self.timeout))?;
            // Head and body go out in separate writes; without NODELAY,
            // Nagle holds the body until the head is ACKed (~40ms/request
            // on loopback with delayed ACKs).
            stream.set_nodelay(true)?;
            self.stream = Some(stream);
        }
        Ok(self.stream.as_mut().unwrap())
    }

    /// Sends one request, reusing the kept-alive connection; retries once
    /// on a fresh connection if the reused one turned out dead.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<ClientResponse, ClientError> {
        let reused = self.stream.is_some();
        match self.request_once(method, path, body) {
            Ok(resp) => Ok(resp),
            Err(ClientError::Io(_)) if reused => {
                self.stream = None;
                self.request_once(method, path, body)
            }
            Err(e) => Err(e),
        }
    }

    fn request_once(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<ClientResponse, ClientError> {
        let addr = self.addr.clone();
        let stream = self.connect()?;
        let payload = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\n\r\n",
            payload.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(payload.as_bytes())?;
        stream.flush()?;
        let resp = read_response(stream)?;
        if resp.header("connection") == Some("close") {
            self.stream = None;
        }
        Ok(resp)
    }

    /// `GET path`, any status.
    pub fn get(&mut self, path: &str) -> Result<ClientResponse, ClientError> {
        self.request("GET", path, None)
    }

    /// `POST path` with a JSON body, any status.
    pub fn post(&mut self, path: &str, body: &str) -> Result<ClientResponse, ClientError> {
        self.request("POST", path, Some(body))
    }

    /// Like [`Client::post`] but turns non-2xx statuses into
    /// [`ClientError::Status`] and parses the body as JSON.
    pub fn post_ok(&mut self, path: &str, body: &str) -> Result<Json, ClientError> {
        let resp = self.post(path, body)?;
        if !(200..300).contains(&resp.status) {
            return Err(ClientError::Status(
                resp.status,
                resp.text().unwrap_or("<binary>").to_string(),
            ));
        }
        resp.json()
    }

    /// `GET /healthz`, parsed.
    pub fn healthz(&mut self) -> Result<Json, ClientError> {
        let resp = self.get("/healthz")?;
        if resp.status != 200 {
            return Err(ClientError::Status(
                resp.status,
                resp.text().unwrap_or("<binary>").to_string(),
            ));
        }
        resp.json()
    }

    /// `POST /v1/predict`; returns `(value, served from cache)`.
    pub fn predict(
        &mut self,
        program: &str,
        metric: Metric,
        config: &Config,
    ) -> Result<(f64, bool), ClientError> {
        let body = Json::obj([
            ("program", program.to_json()),
            ("metric", metric.to_json()),
            ("config", config.to_json()),
        ]);
        let out = self.post_ok("/v1/predict", &dse_util::json::to_string(&body))?;
        let value = out
            .field("value")
            .and_then(f64::from_json)
            .map_err(|e| ClientError::Protocol(format!("value: {e}")))?;
        let cached = out
            .field("cached")
            .and_then(bool::from_json)
            .map_err(|e| ClientError::Protocol(format!("cached: {e}")))?;
        Ok((value, cached))
    }

    /// `POST /v1/predict_batch`; returns the values in request order.
    pub fn predict_batch(
        &mut self,
        program: &str,
        metric: Metric,
        configs: &[Config],
    ) -> Result<Vec<f64>, ClientError> {
        let body = Json::obj([
            ("program", program.to_json()),
            ("metric", metric.to_json()),
            ("configs", configs.to_vec().to_json()),
        ]);
        let out = self.post_ok("/v1/predict_batch", &dse_util::json::to_string(&body))?;
        out.field("values")
            .and_then(Vec::<f64>::from_json)
            .map_err(|e| ClientError::Protocol(format!("values: {e}")))
    }

    /// `POST /v1/fit` from `(response index, simulated value)` pairs;
    /// returns the fit summary.
    pub fn fit(
        &mut self,
        program: &str,
        metric: Metric,
        responses: &[(usize, f64)],
    ) -> Result<Json, ClientError> {
        let entries: Vec<Json> = responses
            .iter()
            .map(|&(index, value)| {
                Json::obj([("index", index.to_json()), ("value", value.to_json())])
            })
            .collect();
        let body = Json::obj([
            ("program", program.to_json()),
            ("metric", metric.to_json()),
            ("responses", Json::Arr(entries)),
        ]);
        self.post_ok("/v1/fit", &dse_util::json::to_string(&body))
    }

    /// `POST /v1/shutdown` — asks the server to drain and exit.
    pub fn shutdown(&mut self) -> Result<Json, ClientError> {
        self.post_ok("/v1/shutdown", "{}")
    }
}

/// Reads one HTTP/1.1 response (Content-Length framed).
fn read_response(stream: &mut TcpStream) -> Result<ClientResponse, ClientError> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(ClientError::Protocol(
                "connection closed mid-response".to_string(),
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| ClientError::Protocol("head is not valid UTF-8".to_string()))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| ClientError::Protocol(format!("bad status line `{status_line}`")))?;
    let mut headers = Vec::new();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Err(ClientError::Protocol(format!("malformed header `{line}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
        .unwrap_or(0);
    let mut body = buf.split_off(head_end + 4);
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(ClientError::Protocol(
                "connection closed mid-body".to_string(),
            ));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}
