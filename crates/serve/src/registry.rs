//! Model artifact store and registry.
//!
//! An artifact directory persists one JSON file per metric plus a
//! versioned `manifest.json`:
//!
//! ```text
//! models/
//!   manifest.json            {"version":1,"models":[{"metric":"Cycles","file":"model-cycles.json"},...]}
//!   model-cycles.json        one MetricArtifact (see below)
//!   model-energy.json
//! ```
//!
//! Each metric artifact holds everything the online half of the
//! architecture-centric model needs — and nothing else:
//!
//! * the trained per-program ANNs (weights, scalers) of the training
//!   suite;
//! * the shared configuration sample (§3.3) so response indices have a
//!   stable meaning across save/load;
//! * the design table: the training programs' *actual* simulated metric
//!   values at every shared configuration, i.e. the columns of the
//!   paper's equation (5) design matrix.
//!
//! With that, `POST /v1/fit` is [`dse_core::fit_combiner`] over the
//! persisted rows — bit-identical to the library's
//! [`OfflineModel::fit_responses`] path, without the dataset on disk.
//!
//! [`ModelRegistry`] wraps the artifacts behind an `RwLock`: predictions
//! take a read lock, while `/v1/fit` and hot reload take the write lock
//! briefly to swap in new state.

use dse_core::{fit_combiner, OfflineModel, ProgramSpecificPredictor};
use dse_ml::LinearRegression;
use dse_sim::Metric;
use dse_space::Config;
use dse_util::json::{self, FromJson, Json, JsonError, ToJson};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, RwLock};

/// On-disk schema version of both the manifest and the artifact files.
pub const ARTIFACT_VERSION: u64 = 1;

/// Name of the manifest file inside an artifact directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// Everything needed to serve one metric.
#[derive(Debug, Clone)]
pub struct MetricArtifact {
    /// The metric this artifact serves.
    pub metric: Metric,
    /// The trained offline ensemble (one ANN per training program).
    pub offline: OfflineModel,
    /// The shared configuration sample; response indices index this list.
    pub configs: Vec<Config>,
    /// `design[i][j]` = training program `j`'s actual `metric` at
    /// `configs[i]`.
    pub design: Vec<Vec<f64>>,
}

impl MetricArtifact {
    /// Names of the training programs, in design-column order.
    pub fn programs(&self) -> Vec<String> {
        self.offline
            .models()
            .iter()
            .map(|m| m.program().to_string())
            .collect()
    }
}

impl ToJson for MetricArtifact {
    fn to_json(&self) -> Json {
        Json::obj([
            ("version", ARTIFACT_VERSION.to_json()),
            ("metric", self.metric.to_json()),
            ("predictors", self.offline.models().to_vec().to_json()),
            ("configs", self.configs.to_json()),
            ("design", self.design.to_json()),
        ])
    }
}

impl FromJson for MetricArtifact {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let version = u64::from_json(v.field("version")?)?;
        if version != ARTIFACT_VERSION {
            return Err(JsonError::msg(format!(
                "unsupported artifact version {version} (expected {ARTIFACT_VERSION})"
            )));
        }
        let metric = Metric::from_json(v.field("metric")?)?;
        let predictors = Vec::<ProgramSpecificPredictor>::from_json(v.field("predictors")?)?;
        let configs = Vec::<Config>::from_json(v.field("configs")?)?;
        let design = Vec::<Vec<f64>>::from_json(v.field("design")?)?;
        if predictors.is_empty() {
            return Err(JsonError::msg("artifact has no predictors"));
        }
        if predictors.iter().any(|p| p.metric() != metric) {
            return Err(JsonError::msg("predictor metric mismatch"));
        }
        if design.len() != configs.len() {
            return Err(JsonError::msg(format!(
                "design table has {} rows for {} configs",
                design.len(),
                configs.len()
            )));
        }
        if design.iter().any(|row| row.len() != predictors.len()) {
            return Err(JsonError::msg("design row width != number of predictors"));
        }
        let rows: Vec<usize> = (0..predictors.len()).collect();
        Ok(Self {
            metric,
            offline: OfflineModel::from_parts(metric, rows, predictors),
            configs,
            design,
        })
    }
}

/// Why a registry operation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum RegistryError {
    /// Filesystem error (path and cause).
    Io(String),
    /// A manifest or artifact file did not parse or validate.
    Parse(String),
    /// No artifact is loaded for this metric.
    UnknownMetric(Metric),
    /// The program has not been fitted yet (`POST /v1/fit` first).
    NotFitted {
        /// Requested program id.
        program: String,
        /// Requested metric.
        metric: Metric,
    },
    /// A fit request was malformed (bad index, duplicate, empty…).
    BadRequest(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "io error: {e}"),
            Self::Parse(e) => write!(f, "parse error: {e}"),
            Self::UnknownMetric(m) => write!(f, "no model loaded for metric {m}"),
            Self::NotFitted { program, metric } => {
                write!(
                    f,
                    "program {program:?} not fitted for {metric}; POST /v1/fit first"
                )
            }
            Self::BadRequest(e) => write!(f, "bad request: {e}"),
        }
    }
}

/// Result summary of an online fit.
#[derive(Debug, Clone)]
pub struct FitSummary {
    /// Program that was fitted.
    pub program: String,
    /// Metric it was fitted for.
    pub metric: Metric,
    /// Fitted per-training-program weights (β₁…β_N).
    pub weights: Vec<f64>,
    /// Fitted intercept (β₀).
    pub intercept: f64,
    /// rmae of the fitted model on the responses themselves (%).
    pub training_rmae: f64,
    /// Number of responses used.
    pub responses: usize,
}

struct Inner {
    models: HashMap<Metric, Arc<MetricArtifact>>,
    fitted: HashMap<(String, Metric), Arc<LinearRegression>>,
}

/// Thread-safe registry of loaded artifacts and online-fitted programs.
pub struct ModelRegistry {
    dir: PathBuf,
    inner: RwLock<Inner>,
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.read().unwrap();
        f.debug_struct("ModelRegistry")
            .field("dir", &self.dir)
            .field("models", &inner.models.len())
            .field("fitted", &inner.fitted.len())
            .finish()
    }
}

/// Slug used in artifact file names: `model-<slug>.json`.
fn metric_slug(metric: Metric) -> String {
    metric.to_string().to_lowercase()
}

fn read_to_string(path: &Path) -> Result<String, RegistryError> {
    std::fs::read_to_string(path).map_err(|e| RegistryError::Io(format!("{}: {e}", path.display())))
}

fn load_dir(dir: &Path) -> Result<HashMap<Metric, Arc<MetricArtifact>>, RegistryError> {
    let manifest_path = dir.join(MANIFEST_FILE);
    let manifest = Json::parse(&read_to_string(&manifest_path)?)
        .map_err(|e| RegistryError::Parse(format!("{}: {e}", manifest_path.display())))?;
    let version =
        u64::from_json(manifest.field("version").map_err(parse_err)?).map_err(parse_err)?;
    if version != ARTIFACT_VERSION {
        return Err(RegistryError::Parse(format!(
            "unsupported manifest version {version}"
        )));
    }
    let mut models = HashMap::new();
    for entry in manifest
        .field("models")
        .map_err(parse_err)?
        .as_array()
        .map_err(parse_err)?
    {
        let metric =
            Metric::from_json(entry.field("metric").map_err(parse_err)?).map_err(parse_err)?;
        let file = String::from_json(entry.field("file").map_err(parse_err)?).map_err(parse_err)?;
        if file.contains(['/', '\\']) || file.contains("..") {
            return Err(RegistryError::Parse(format!(
                "manifest file name {file:?} must be a bare file name"
            )));
        }
        let path = dir.join(&file);
        let artifact: MetricArtifact = json::from_str(&read_to_string(&path)?)
            .map_err(|e| RegistryError::Parse(format!("{}: {e}", path.display())))?;
        if artifact.metric != metric {
            return Err(RegistryError::Parse(format!(
                "{}: artifact metric {} does not match manifest entry {metric}",
                path.display(),
                artifact.metric
            )));
        }
        models.insert(metric, Arc::new(artifact));
    }
    if models.is_empty() {
        return Err(RegistryError::Parse("manifest lists no models".to_string()));
    }
    Ok(models)
}

fn parse_err(e: JsonError) -> RegistryError {
    RegistryError::Parse(e.to_string())
}

impl ModelRegistry {
    /// Loads every artifact listed in `dir`'s manifest.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, RegistryError> {
        let dir = dir.into();
        let models = load_dir(&dir)?;
        Ok(Self {
            dir,
            inner: RwLock::new(Inner {
                models,
                fitted: HashMap::new(),
            }),
        })
    }

    /// The artifact directory this registry was opened on.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Re-reads the artifact directory and swaps the loaded models in
    /// atomically. All online fits are dropped (their design columns may
    /// no longer match). Returns the number of models now loaded.
    ///
    /// On error the registry keeps serving its previous state.
    pub fn reload(&self) -> Result<usize, RegistryError> {
        let models = load_dir(&self.dir)?;
        let n = models.len();
        let mut inner = self.inner.write().unwrap();
        inner.models = models;
        inner.fitted.clear();
        Ok(n)
    }

    /// Metrics with a loaded artifact, in [`Metric::ALL`] order.
    pub fn metrics(&self) -> Vec<Metric> {
        let inner = self.inner.read().unwrap();
        Metric::ALL
            .iter()
            .copied()
            .filter(|m| inner.models.contains_key(m))
            .collect()
    }

    /// The artifact serving `metric`, if loaded.
    pub fn artifact(&self, metric: Metric) -> Option<Arc<MetricArtifact>> {
        self.inner.read().unwrap().models.get(&metric).cloned()
    }

    /// `(program, metric)` pairs that have been fitted online.
    pub fn fitted(&self) -> Vec<(String, Metric)> {
        let inner = self.inner.read().unwrap();
        let mut out: Vec<_> = inner.fitted.keys().cloned().collect();
        out.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.to_string().cmp(&b.1.to_string())));
        out
    }

    /// Fits `program` for `metric` from `(response index, simulated
    /// value)` pairs — the paper's equation (5), run on the persisted
    /// design table. Replaces any previous fit of the same pair.
    pub fn fit(
        &self,
        program: &str,
        metric: Metric,
        responses: &[(usize, f64)],
    ) -> Result<FitSummary, RegistryError> {
        if program.is_empty() {
            return Err(RegistryError::BadRequest("empty program id".to_string()));
        }
        if responses.is_empty() {
            return Err(RegistryError::BadRequest("no responses given".to_string()));
        }
        let artifact = self
            .artifact(metric)
            .ok_or(RegistryError::UnknownMetric(metric))?;
        let mut seen = std::collections::HashSet::new();
        for &(idx, value) in responses {
            if idx >= artifact.configs.len() {
                return Err(RegistryError::BadRequest(format!(
                    "response index {idx} out of range (sample has {} configurations)",
                    artifact.configs.len()
                )));
            }
            if !seen.insert(idx) {
                return Err(RegistryError::BadRequest(format!(
                    "duplicate response index {idx}"
                )));
            }
            if !value.is_finite() {
                return Err(RegistryError::BadRequest(format!(
                    "response value at index {idx} is not finite"
                )));
            }
        }
        let rows: Vec<Vec<f64>> = responses
            .iter()
            .map(|&(idx, _)| artifact.design[idx].clone())
            .collect();
        let values: Vec<f64> = responses.iter().map(|&(_, v)| v).collect();
        let reg = fit_combiner(&rows, &values);
        let preds: Vec<f64> = responses
            .iter()
            .map(|&(idx, _)| {
                artifact
                    .offline
                    .predict_with(&reg, &artifact.configs[idx].to_features())
            })
            .collect();
        let training_rmae = dse_ml::stats::rmae(&preds, &values);
        let summary = FitSummary {
            program: program.to_string(),
            metric,
            weights: reg.weights().to_vec(),
            intercept: reg.intercept(),
            training_rmae,
            responses: responses.len(),
        };
        self.inner
            .write()
            .unwrap()
            .fitted
            .insert((program.to_string(), metric), Arc::new(reg));
        Ok(summary)
    }

    /// The pieces needed to predict `program`'s `metric`: the loaded
    /// artifact and the online-fitted combiner.
    pub fn predictor(
        &self,
        program: &str,
        metric: Metric,
    ) -> Result<(Arc<MetricArtifact>, Arc<LinearRegression>), RegistryError> {
        let inner = self.inner.read().unwrap();
        let artifact = inner
            .models
            .get(&metric)
            .cloned()
            .ok_or(RegistryError::UnknownMetric(metric))?;
        let reg = inner
            .fitted
            .get(&(program.to_string(), metric))
            .cloned()
            .ok_or_else(|| RegistryError::NotFitted {
                program: program.to_string(),
                metric,
            })?;
        Ok((artifact, reg))
    }

    /// Predicts `program`'s `metric` at `config` (uncached; the server
    /// layers its LRU cache above this).
    pub fn predict(
        &self,
        program: &str,
        metric: Metric,
        config: &Config,
    ) -> Result<f64, RegistryError> {
        let (artifact, reg) = self.predictor(program, metric)?;
        Ok(artifact.offline.predict_with(&reg, &config.to_features()))
    }
}

/// Trains and persists artifacts for `metrics` into `dir`, overwriting
/// existing files: one `model-<metric>.json` per metric plus the
/// manifest. Every benchmark of `ds` becomes a training program; the
/// design table is each program's actual values over the whole shared
/// sample.
///
/// Returns the manifest path.
pub fn save_artifacts(
    dir: &Path,
    ds: &dse_core::SuiteDataset,
    metrics: &[Metric],
    t: usize,
    mlp_cfg: &dse_ml::MlpConfig,
    seed: u64,
) -> Result<PathBuf, RegistryError> {
    assert!(!metrics.is_empty(), "need at least one metric");
    std::fs::create_dir_all(dir)
        .map_err(|e| RegistryError::Io(format!("{}: {e}", dir.display())))?;
    let all_rows: Vec<usize> = (0..ds.benchmarks.len()).collect();
    let all_cfgs: Vec<usize> = (0..ds.n_configs()).collect();
    let mut entries = Vec::new();
    for &metric in metrics {
        let offline = OfflineModel::train(ds, &all_rows, metric, t, mlp_cfg, seed);
        let design = offline.design_rows(
            ds,
            &all_cfgs,
            dse_core::arch_centric::ResponseSource::Actual,
        );
        let artifact = MetricArtifact {
            metric,
            offline,
            configs: ds.configs.clone(),
            design,
        };
        let file = format!("model-{}.json", metric_slug(metric));
        let path = dir.join(&file);
        std::fs::write(&path, json::to_string(&artifact))
            .map_err(|e| RegistryError::Io(format!("{}: {e}", path.display())))?;
        entries.push(Json::obj([
            ("metric", metric.to_json()),
            ("file", file.to_json()),
        ]));
    }
    let manifest = Json::obj([
        ("version", ARTIFACT_VERSION.to_json()),
        ("models", Json::Arr(entries)),
    ]);
    let manifest_path = dir.join(MANIFEST_FILE);
    let mut text = String::new();
    manifest.write(&mut text);
    std::fs::write(&manifest_path, text)
        .map_err(|e| RegistryError::Io(format!("{}: {e}", manifest_path.display())))?;
    Ok(manifest_path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dse_core::dataset::{DatasetSpec, SuiteDataset};
    use dse_ml::MlpConfig;

    fn tiny_dataset() -> SuiteDataset {
        let profiles: Vec<_> = dse_workload::suites::spec2000()
            .into_iter()
            .take(4)
            .collect();
        let spec = DatasetSpec {
            n_configs: 30,
            ..DatasetSpec::tiny()
        };
        SuiteDataset::generate(&profiles, &spec)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dse-serve-registry-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_open_fit_predict_round_trip() {
        let ds = tiny_dataset();
        let dir = temp_dir("roundtrip");
        save_artifacts(&dir, &ds, &[Metric::Cycles], 20, &MlpConfig::default(), 1).unwrap();

        let reg = ModelRegistry::open(&dir).unwrap();
        assert_eq!(reg.metrics(), vec![Metric::Cycles]);
        let artifact = reg.artifact(Metric::Cycles).unwrap();
        assert_eq!(artifact.configs.len(), 30);
        assert_eq!(artifact.design.len(), 30);
        assert_eq!(artifact.design[0].len(), 4);

        // Fit a "new" program from its first 8 simulated responses.
        let responses: Vec<(usize, f64)> = (0..8)
            .map(|i| (i, ds.benchmarks[3].metrics[i].get(Metric::Cycles)))
            .collect();
        let summary = reg.fit("newprog", Metric::Cycles, &responses).unwrap();
        assert_eq!(summary.weights.len(), 4);
        assert!(summary.training_rmae.is_finite());

        let value = reg
            .predict("newprog", Metric::Cycles, &artifact.configs[9])
            .unwrap();
        assert!(value.is_finite());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn predict_before_fit_is_not_fitted() {
        let ds = tiny_dataset();
        let dir = temp_dir("notfitted");
        save_artifacts(&dir, &ds, &[Metric::Cycles], 20, &MlpConfig::default(), 1).unwrap();
        let reg = ModelRegistry::open(&dir).unwrap();
        let err = reg
            .predict("ghost", Metric::Cycles, &Config::baseline())
            .unwrap_err();
        assert!(matches!(err, RegistryError::NotFitted { .. }));
        let err = reg
            .predict("ghost", Metric::Energy, &Config::baseline())
            .unwrap_err();
        assert_eq!(err, RegistryError::UnknownMetric(Metric::Energy));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fit_rejects_bad_responses() {
        let ds = tiny_dataset();
        let dir = temp_dir("badfit");
        save_artifacts(&dir, &ds, &[Metric::Cycles], 20, &MlpConfig::default(), 1).unwrap();
        let reg = ModelRegistry::open(&dir).unwrap();
        assert!(matches!(
            reg.fit("p", Metric::Cycles, &[]).unwrap_err(),
            RegistryError::BadRequest(_)
        ));
        assert!(matches!(
            reg.fit("p", Metric::Cycles, &[(999, 1.0)]).unwrap_err(),
            RegistryError::BadRequest(_)
        ));
        assert!(matches!(
            reg.fit("p", Metric::Cycles, &[(0, 1.0), (0, 2.0)])
                .unwrap_err(),
            RegistryError::BadRequest(_)
        ));
        assert!(matches!(
            reg.fit("p", Metric::Cycles, &[(0, f64::NAN)]).unwrap_err(),
            RegistryError::BadRequest(_)
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reload_drops_online_fits() {
        let ds = tiny_dataset();
        let dir = temp_dir("reload");
        save_artifacts(&dir, &ds, &[Metric::Cycles], 20, &MlpConfig::default(), 1).unwrap();
        let reg = ModelRegistry::open(&dir).unwrap();
        let responses: Vec<(usize, f64)> = (0..6)
            .map(|i| (i, ds.benchmarks[0].metrics[i].get(Metric::Cycles)))
            .collect();
        reg.fit("p", Metric::Cycles, &responses).unwrap();
        assert_eq!(reg.fitted().len(), 1);
        assert_eq!(reg.reload().unwrap(), 1);
        assert!(reg.fitted().is_empty());
    }

    #[test]
    fn open_rejects_missing_and_corrupt_manifests() {
        let dir = temp_dir("corrupt");
        assert!(matches!(
            ModelRegistry::open(&dir).unwrap_err(),
            RegistryError::Io(_)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(MANIFEST_FILE), "{not json").unwrap();
        assert!(matches!(
            ModelRegistry::open(&dir).unwrap_err(),
            RegistryError::Parse(_)
        ));
        std::fs::write(
            dir.join(MANIFEST_FILE),
            "{\"version\":1,\"models\":[{\"metric\":\"Cycles\",\"file\":\"../evil.json\"}]}",
        )
        .unwrap();
        assert!(matches!(
            ModelRegistry::open(&dir).unwrap_err(),
            RegistryError::Parse(_)
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn artifact_json_rejects_inconsistent_tables() {
        let ds = tiny_dataset();
        let dir = temp_dir("inconsistent");
        save_artifacts(&dir, &ds, &[Metric::Cycles], 20, &MlpConfig::default(), 1).unwrap();
        let path = dir.join("model-cycles.json");
        let artifact: MetricArtifact =
            json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        // Drop one design row: rows must equal the config count.
        let mut broken = artifact.clone();
        broken.design.pop();
        let err = json::from_str::<MetricArtifact>(&json::to_string(&broken)).unwrap_err();
        assert!(err.to_string().contains("design table"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
