//! The prediction server: event-loop front end, worker pool, routing,
//! handlers.
//!
//! The front end is a small set of nonblocking reactor threads (see
//! [`crate::eventloop`]): reactors own sockets and incremental parsing,
//! and hand each connection's complete requests to a *session* job on a
//! fixed [`WorkerPool`](dse_util::WorkerPool). A session occupies its
//! worker for the connection's whole keep-alive lifetime, so `workers`
//! bounds concurrently served connections and the pool's queue depth
//! bounds the session backlog — when both are full the reactor sheds
//! load with `503` instead of queueing unboundedly, exactly as the old
//! thread-per-connection acceptor did.
//!
//! Shutdown is graceful: [`Server::shutdown`] raises a flag and wakes
//! every reactor through its self-pipe; reactors stop accepting, close
//! idle connections, let in-flight requests finish with
//! `Connection: close`, and drain. [`Server::wait`] joins everything.

use crate::cache::{CacheKey, PredictionCache};
use crate::eventloop::{Reactor, ReactorShared};
use crate::http::{Request, Response};
use crate::jobs::{protocol, JobManager, RegistryPredictor, SubmitRejected};
use crate::registry::{ModelRegistry, RegistryError};
use crate::telemetry::Telemetry;
use dse_explore::{Command, Constraints, ExploreBudget, Explorer, Objective, SimOracle};
use dse_ingest::{IngestError, WorkloadStore};
use dse_sim::Metric;
use dse_space::Config;
use dse_util::json::{FromJson, Json, ToJson};
use dse_util::WorkerPool;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Tunables for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`host:port`; port `0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads — the bound on concurrently served connections.
    pub workers: usize,
    /// Accept backlog: connections queued beyond the busy workers.
    pub backlog: usize,
    /// Per-request cap on body size in bytes.
    pub max_body: usize,
    /// Socket read timeout (bounds how long an idle keep-alive connection
    /// occupies a worker).
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
    /// Prediction-cache shard count.
    pub cache_shards: usize,
    /// Prediction-cache total capacity (entries).
    pub cache_capacity: usize,
    /// Cap on queued-or-running explore jobs (`POST /v1/explore` answers
    /// 429 beyond it). Keep this below `workers`: a running job occupies
    /// a worker, and polling needs at least one free.
    pub max_explore_jobs: usize,
    /// Reactor (event-loop) threads. Reactor 0 also owns the listener;
    /// connections round-robin across all of them. More than a few is
    /// pointless — reactors only shuffle bytes, workers do the thinking.
    pub reactors: usize,
    /// Directory of an imported-workload store (`dse_ingest`). When set,
    /// `GET/POST /v1/workloads` persist there and imported programs are
    /// resolvable by explore jobs; when `None`, listing still works
    /// (built-ins only) and imports answer 409.
    pub workloads_dir: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            backlog: 64,
            max_body: crate::http::DEFAULT_MAX_BODY_BYTES,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            cache_shards: 8,
            cache_capacity: 4096,
            max_explore_jobs: 2,
            reactors: 2,
            workloads_dir: None,
        }
    }
}

/// Shared server state: everything a request handler needs.
pub(crate) struct State {
    pub(crate) registry: Arc<ModelRegistry>,
    /// Imported-workload store; `None` when the server runs without one.
    pub(crate) workloads: Option<Arc<WorkloadStore>>,
    pub(crate) cache: PredictionCache,
    pub(crate) telemetry: Telemetry,
    pub(crate) jobs: JobManager,
    /// The server's own worker pool; sessions and explore jobs are
    /// scheduled onto it so one knob bounds all concurrency.
    pub(crate) pool: Arc<WorkerPool>,
    pub(crate) shutdown: AtomicBool,
    pub(crate) addr: SocketAddr,
    pub(crate) max_body: usize,
    /// Wake handles for the reactor threads, set once at startup; used
    /// by shutdown (both the method and `POST /v1/shutdown`).
    pub(crate) reactors: OnceLock<Vec<Arc<ReactorShared>>>,
}

impl State {
    /// Wakes every reactor so it observes the shutdown flag.
    pub(crate) fn wake_reactors(&self) {
        if let Some(shareds) = self.reactors.get() {
            for shared in shareds {
                shared.wake();
            }
        }
    }
}

/// A running prediction server.
pub struct Server {
    state: Arc<State>,
    pool: Arc<WorkerPool>,
    reactors: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the worker pool and reactor threads, and returns
    /// immediately; the server runs until [`Server::shutdown`] (or a
    /// `POST /v1/shutdown`).
    ///
    /// # Errors
    ///
    /// Propagates bind failures and reactor setup failures.
    pub fn start(registry: Arc<ModelRegistry>, cfg: &ServerConfig) -> io::Result<Self> {
        // `kill -USR1` dumps the flight recorder from a live server.
        crate::eventloop::install_flight_dump_signal();
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let workloads = match &cfg.workloads_dir {
            Some(dir) => Some(Arc::new(
                WorkloadStore::open(dir).map_err(io::Error::other)?,
            )),
            None => None,
        };
        let pool = Arc::new(WorkerPool::new("dse-serve", cfg.workers, cfg.backlog));
        let state = Arc::new(State {
            registry,
            workloads,
            cache: PredictionCache::new(cfg.cache_shards, cfg.cache_capacity),
            telemetry: Telemetry::new(),
            jobs: JobManager::new(cfg.max_explore_jobs),
            pool: pool.clone(),
            shutdown: AtomicBool::new(false),
            addr,
            max_body: cfg.max_body,
            reactors: OnceLock::new(),
        });
        let n_reactors = cfg.reactors.max(1);
        let mut shareds = Vec::with_capacity(n_reactors);
        for _ in 0..n_reactors {
            shareds.push(ReactorShared::new()?);
        }
        let _ = state.reactors.set(shareds.clone());
        let next_rr = Arc::new(AtomicUsize::new(0));
        let mut listener = Some(listener);
        let mut handles = Vec::with_capacity(n_reactors);
        for idx in 0..n_reactors {
            let reactor = Reactor::new(
                idx,
                state.clone(),
                shareds[idx].clone(),
                shareds.clone(),
                next_rr.clone(),
                if idx == 0 { listener.take() } else { None },
                cfg.read_timeout,
                cfg.write_timeout,
            );
            handles.push(
                std::thread::Builder::new()
                    .name(format!("dse-serve-reactor-{idx}"))
                    .spawn(move || reactor.run())?,
            );
        }
        Ok(Self {
            state,
            pool,
            reactors: handles,
        })
    }

    /// The bound address (reports the real port after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Request telemetry (exposed for tests and embedding).
    pub fn telemetry(&self) -> &Telemetry {
        &self.state.telemetry
    }

    /// The prediction cache (exposed for tests and embedding).
    pub fn cache(&self) -> &PredictionCache {
        &self.state.cache
    }

    /// Number of imported workloads, or `None` when the server runs
    /// without a workload store.
    pub fn workload_count(&self) -> Option<usize> {
        self.state.workloads.as_ref().map(|w| w.len())
    }

    /// Signals shutdown and wakes every reactor; returns without waiting.
    pub fn shutdown(&self) {
        if !self.state.shutdown.swap(true, Ordering::SeqCst) {
            self.state.wake_reactors();
        }
    }

    /// Blocks until every reactor has drained its connections and every
    /// worker has exited, then joins them. Call [`Server::shutdown`] (or
    /// hit `POST /v1/shutdown`) to make this return.
    pub fn wait(mut self) {
        self.join();
    }

    /// Shuts down and waits — the one-call stop for tests and CLI exit.
    pub fn stop(self) {
        self.shutdown();
        self.wait();
    }

    fn join(&mut self) {
        if self.reactors.is_empty() {
            return;
        }
        // Reactors first: draining tears down every connection, which
        // drops the session Senders and releases the workers blocked in
        // `recv` — only then can the pool join cleanly.
        for handle in self.reactors.drain(..) {
            let _ = handle.join();
        }
        self.pool.shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
        self.join();
    }
}

/// Dispatches one request; returns the telemetry label and the response.
/// Called from session workers (see [`crate::eventloop`]).
pub(crate) fn route(state: &Arc<State>, req: &Request) -> (&'static str, Response) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => ("/healthz", healthz(state)),
        ("GET", "/metrics") => ("/metrics", metrics(state)),
        ("GET", "/v1/models") => ("/v1/models", models(state)),
        ("GET", "/v1/configs") => ("/v1/configs", configs(state, req)),
        ("POST", "/v1/predict") => ("/v1/predict", predict(state, req)),
        ("POST", "/v1/predict_batch") => ("/v1/predict_batch", predict_batch(state, req)),
        ("POST", "/v1/fit") => ("/v1/fit", fit(state, req)),
        ("POST", "/v1/reload") => ("/v1/reload", reload(state)),
        ("POST", "/v1/shutdown") => ("/v1/shutdown", shutdown_route(state)),
        ("GET", "/v1/workloads") => ("/v1/workloads", workloads_list(state)),
        ("POST", "/v1/workloads") => ("/v1/workloads", workloads_add(state, req)),
        ("GET", "/v1/obs/flight") => ("/v1/obs/flight", obs_flight(req)),
        ("POST", "/v1/explore") => ("/v1/explore", explore_submit(state, req)),
        ("GET", "/v1/explore") => ("/v1/explore", explore_list(state)),
        (method, path) if path.starts_with("/v1/explore/") => {
            let id = &path["/v1/explore/".len()..];
            match method {
                "GET" => ("/v1/explore/:id", explore_status(state, id)),
                "DELETE" => ("/v1/explore/:id", explore_cancel(state, id)),
                _ => (
                    "method_not_allowed",
                    Response::error(405, &format!("{} not allowed here", req.method)),
                ),
            }
        }
        (
            _,
            "/healthz" | "/metrics" | "/v1/models" | "/v1/configs" | "/v1/predict"
            | "/v1/predict_batch" | "/v1/fit" | "/v1/reload" | "/v1/shutdown" | "/v1/explore"
            | "/v1/workloads" | "/v1/obs/flight",
        ) => (
            "method_not_allowed",
            Response::error(405, &format!("{} not allowed here", req.method)),
        ),
        _ => ("not_found", Response::error(404, "no such route")),
    }
}

fn ingest_error(err: &IngestError) -> Response {
    let status = match err {
        IngestError::Parse(_) => 400,
        IngestError::Invalid(_) => 422,
        IngestError::Duplicate(_) => 409,
        IngestError::TooLarge { .. } => 413,
        IngestError::Io(_) => 500,
    };
    Response::error(status, &err.to_string())
}

/// `GET /v1/workloads`: built-in benchmarks plus stored imports, through
/// the same canonical enumeration the `workload list` CLI uses
/// ([`dse_workload::catalog`]).
fn workloads_list(state: &State) -> Response {
    let extra = state
        .workloads
        .as_ref()
        .map(|w| w.profiles())
        .unwrap_or_default();
    let entries = dse_workload::catalog(&extra);
    let body = Json::obj([
        ("total", entries.len().to_json()),
        ("imported", extra.len().to_json()),
        (
            "workloads",
            Json::Arr(entries.iter().map(ToJson::to_json).collect()),
        ),
    ]);
    Response::json(200, dse_util::json::to_string(&body))
}

/// `POST /v1/workloads`: body is a raw interchange document
/// ([`dse_ingest::import_profile`]); on success the profile is persisted
/// to the store and immediately resolvable by explore jobs.
fn workloads_add(state: &State, req: &Request) -> Response {
    let Some(store) = state.workloads.as_ref() else {
        return Response::error(
            409,
            "server started without --workloads; restart with a workload store to import",
        );
    };
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return Response::error(400, "body is not valid UTF-8");
    };
    let profile = match dse_ingest::import_profile(text) {
        Ok(p) => p,
        Err(e) => return ingest_error(&e),
    };
    match store.add(&profile) {
        Ok(()) => {
            dse_obs::flight::event(
                "ingest.import",
                format!("{} ({})", profile.name, profile.suite),
            );
            let out = Json::obj([
                ("name", profile.name.to_json()),
                ("suite", profile.suite.to_json()),
                ("workloads", store.len().to_json()),
            ]);
            Response::json(201, dse_util::json::to_string(&out))
        }
        Err(e) => ingest_error(&e),
    }
}

fn registry_error(err: &RegistryError) -> Response {
    let status = match err {
        RegistryError::UnknownMetric(_) | RegistryError::NotFitted { .. } => 404,
        RegistryError::BadRequest(_) => 422,
        RegistryError::Io(_) | RegistryError::Parse(_) => 500,
    };
    Response::error(status, &err.to_string())
}

fn healthz(state: &State) -> Response {
    let body = Json::obj([
        ("status", "ok".to_json()),
        ("models", state.registry.metrics().len().to_json()),
        ("fitted", state.registry.fitted().len().to_json()),
    ]);
    Response::json(200, dse_util::json::to_string(&body))
}

/// `GET /v1/obs/flight`: the flight recorder's retained events as JSONL,
/// newest last. `?request=<id>` filters to one request's chain — the
/// usual follow-up to an `x-archdse-request-id` header from a slow or
/// failed response.
fn obs_flight(req: &Request) -> Response {
    let events = match req.query_param("request") {
        Some(text) => match text.parse::<u64>() {
            Ok(id) => dse_obs::flight::dump_for(id),
            Err(_) => return Response::error(400, &format!("request id {text:?} is not a number")),
        },
        None => dse_obs::flight::dump(),
    };
    Response::text(200, dse_obs::flight::to_jsonl(&events))
}

fn metrics(state: &State) -> Response {
    let mut body =
        state
            .telemetry
            .exposition(state.cache.hits(), state.cache.misses(), state.cache.len());
    // Workspace-wide metrics (simulator runs, dataset sweeps, MLP fits,
    // …) share the exposition: anything any crate registered in the
    // process-wide registry appears alongside the server's own series.
    body.push_str(&dse_obs::registry::global().prometheus());
    Response::text(200, body)
}

fn models(state: &State) -> Response {
    let loaded: Vec<Json> = state
        .registry
        .metrics()
        .into_iter()
        .filter_map(|m| state.registry.artifact(m))
        .map(|a| {
            Json::obj([
                ("metric", a.metric.to_json()),
                ("programs", a.programs().to_json()),
                ("configs", a.configs.len().to_json()),
            ])
        })
        .collect();
    let fitted: Vec<Json> = state
        .registry
        .fitted()
        .into_iter()
        .map(|(program, metric)| {
            Json::obj([("program", program.to_json()), ("metric", metric.to_json())])
        })
        .collect();
    let body = Json::obj([("models", Json::Arr(loaded)), ("fitted", Json::Arr(fitted))]);
    Response::json(200, dse_util::json::to_string(&body))
}

/// Accepts both the variant spelling (`Cycles`) and the display spelling
/// (`cycles`, `ED`), case-insensitively.
fn metric_from_str(text: &str) -> Option<Metric> {
    Metric::ALL.iter().copied().find(|m| {
        format!("{m:?}").eq_ignore_ascii_case(text) || m.to_string().eq_ignore_ascii_case(text)
    })
}

fn configs(state: &State, req: &Request) -> Response {
    let metric = match req.query_param("metric") {
        Some(text) => match metric_from_str(text) {
            Some(m) => m,
            None => return Response::error(422, &format!("unknown metric {text:?}")),
        },
        None => match state.registry.metrics().first() {
            Some(&m) => m,
            None => return Response::error(500, "no models loaded"),
        },
    };
    let Some(artifact) = state.registry.artifact(metric) else {
        return registry_error(&RegistryError::UnknownMetric(metric));
    };
    let limit = req
        .query_param("limit")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(32)
        .min(artifact.configs.len());
    let rows: Vec<Json> = artifact.configs[..limit]
        .iter()
        .enumerate()
        .map(|(i, cfg)| Json::obj([("index", i.to_json()), ("config", cfg.to_json())]))
        .collect();
    let body = Json::obj([
        ("metric", metric.to_json()),
        ("total", artifact.configs.len().to_json()),
        ("configs", Json::Arr(rows)),
    ]);
    Response::json(200, dse_util::json::to_string(&body))
}

/// Parses the `{program, metric}` pair shared by the prediction and fit
/// request bodies.
fn parse_target(body: &Json) -> Result<(String, Metric), Response> {
    let program = body
        .field("program")
        .and_then(String::from_json)
        .map_err(|e| Response::error(400, &format!("program: {e}")))?;
    let metric = body
        .field("metric")
        .and_then(Metric::from_json)
        .map_err(|e| Response::error(400, &format!("metric: {e}")))?;
    Ok((program, metric))
}

fn parse_body(req: &Request) -> Result<Json, Response> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| Response::error(400, "body is not valid UTF-8"))?;
    Json::parse(text).map_err(|e| Response::error(400, &format!("body: {e}")))
}

fn cache_key(program: &str, metric: Metric, config: &Config) -> CacheKey {
    let indices = config.to_indices();
    let mut encoded = [0u64; 13];
    for (slot, &idx) in encoded.iter_mut().zip(indices.iter()) {
        *slot = idx as u64;
    }
    CacheKey {
        program: program.to_string(),
        metric,
        config: encoded,
    }
}

fn predict(state: &State, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let (program, metric) = match parse_target(&body) {
        Ok(t) => t,
        Err(resp) => return resp,
    };
    let config = match body.field("config").and_then(Config::from_json) {
        Ok(c) => c,
        Err(e) => return Response::error(422, &format!("config: {e}")),
    };
    let key = cache_key(&program, metric, &config);
    let (value, cached) = match state.cache.get(&key) {
        Some(v) => {
            dse_obs::flight::event("cache.hit", format!("{program} {metric}"));
            (v, true)
        }
        None => {
            dse_obs::flight::event("cache.miss", format!("{program} {metric}"));
            match state.registry.predict(&program, metric, &config) {
                Ok(v) => {
                    dse_obs::flight::event("registry.predict", format!("{program} {metric}"));
                    state.cache.insert(key, v);
                    (v, false)
                }
                Err(e) => {
                    dse_obs::flight::event("registry.error", e.to_string());
                    return registry_error(&e);
                }
            }
        }
    };
    let out = Json::obj([
        ("program", program.to_json()),
        ("metric", metric.to_json()),
        ("value", value.to_json()),
        ("cached", cached.to_json()),
    ]);
    Response::json(200, dse_util::json::to_string(&out))
}

fn predict_batch(state: &State, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let (program, metric) = match parse_target(&body) {
        Ok(t) => t,
        Err(resp) => return resp,
    };
    let configs = match body.field("configs").and_then(Vec::<Config>::from_json) {
        Ok(c) => c,
        Err(e) => return Response::error(422, &format!("configs: {e}")),
    };
    if configs.is_empty() {
        return Response::error(422, "configs must not be empty");
    }
    let (artifact, reg) = match state.registry.predictor(&program, metric) {
        Ok(p) => p,
        Err(e) => return registry_error(&e),
    };
    // Serve cache hits first, then push all misses through one batched
    // matrix-matrix forward (bit-identical per row to the scalar path).
    let keys: Vec<CacheKey> = configs
        .iter()
        .map(|c| cache_key(&program, metric, c))
        .collect();
    let mut values: Vec<Option<f64>> = keys.iter().map(|k| state.cache.get(k)).collect();
    let missing: Vec<usize> = (0..configs.len())
        .filter(|&i| values[i].is_none())
        .collect();
    if !missing.is_empty() {
        let mut flat = Vec::new();
        for &i in &missing {
            flat.extend_from_slice(&configs[i].to_features());
        }
        let mut computed = vec![0.0; missing.len()];
        artifact
            .offline
            .predict_with_batch_into(&reg, &flat, missing.len(), &mut computed);
        for (&i, &v) in missing.iter().zip(computed.iter()) {
            state.cache.insert(keys[i].clone(), v);
            values[i] = Some(v);
        }
    }
    let out = Json::obj([
        ("program", program.to_json()),
        ("metric", metric.to_json()),
        (
            "values",
            Json::Arr(values.iter().map(|v| v.unwrap().to_json()).collect()),
        ),
        ("computed", missing.len().to_json()),
    ]);
    Response::json(200, dse_util::json::to_string(&out))
}

fn fit(state: &State, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let (program, metric) = match parse_target(&body) {
        Ok(t) => t,
        Err(resp) => return resp,
    };
    let entries = match body.field("responses").and_then(|v| v.as_array()) {
        Ok(a) => a,
        Err(e) => return Response::error(400, &format!("responses: {e}")),
    };
    let mut responses = Vec::with_capacity(entries.len());
    for entry in entries {
        let index = match entry.field("index").and_then(usize::from_json) {
            Ok(i) => i,
            Err(e) => return Response::error(400, &format!("responses[].index: {e}")),
        };
        let value = match entry.field("value").and_then(f64::from_json) {
            Ok(v) => v,
            Err(e) => return Response::error(400, &format!("responses[].value: {e}")),
        };
        responses.push((index, value));
    }
    match state.registry.fit(&program, metric, &responses) {
        Ok(summary) => {
            // The combiner changed: cached predictions for this pair are
            // stale now.
            state.cache.invalidate(&program, metric);
            let out = Json::obj([
                ("program", summary.program.to_json()),
                ("metric", summary.metric.to_json()),
                ("responses", summary.responses.to_json()),
                ("weights", summary.weights.to_json()),
                ("intercept", summary.intercept.to_json()),
                ("training_rmae", summary.training_rmae.to_json()),
            ]);
            Response::json(200, dse_util::json::to_string(&out))
        }
        Err(e) => registry_error(&e),
    }
}

fn reload(state: &State) -> Response {
    match state.registry.reload() {
        Ok(n) => {
            // The workload store reloads under the same verb and the
            // same keep-on-error discipline as the model artifacts.
            let workloads = match state.workloads.as_ref().map(|w| w.reload()).transpose() {
                Ok(w) => w,
                Err(e) => return ingest_error(&e),
            };
            state.cache.clear();
            let mut fields = vec![
                ("status".to_string(), "reloaded".to_json()),
                ("models".to_string(), n.to_json()),
            ];
            if let Some(w) = workloads {
                fields.push(("workloads".to_string(), w.to_json()));
            }
            Response::json(200, dse_util::json::to_string(&Json::Obj(fields)))
        }
        Err(e) => registry_error(&e),
    }
}

/// The JSON body shared by every job-status response.
fn job_body(job: &crate::jobs::ExploreJob) -> Json {
    let snap = job.snapshot();
    let mut fields = vec![
        ("id".to_string(), job.id.to_json()),
        ("status".to_string(), snap.state.as_str().to_json()),
        ("rounds_done".to_string(), snap.rounds_done.to_json()),
        ("rounds_total".to_string(), snap.rounds_total.to_json()),
    ];
    match &snap.frontier {
        Some(f) => fields.push(("frontier".to_string(), f.to_json())),
        None => fields.push(("frontier".to_string(), Json::Null)),
    }
    if let Some(e) = &snap.error {
        fields.push(("error".to_string(), e.to_json()));
    }
    Json::Obj(fields)
}

/// `POST /v1/explore`: validate, register a job, schedule the loop on
/// the worker pool, answer `202` with the job id.
fn explore_submit(state: &Arc<State>, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let program = match body.field("program").and_then(String::from_json) {
        Ok(p) => p,
        Err(e) => return Response::error(400, &format!("program: {e}")),
    };
    let objective = match body.field("objective").and_then(Objective::from_json) {
        Ok(o) => o,
        Err(e) => return Response::error(400, &format!("objective: {e}")),
    };
    let constraints = match body.field("constraints") {
        Ok(v) => match Constraints::from_json(v) {
            Ok(c) => c,
            Err(e) => return Response::error(400, &format!("constraints: {e}")),
        },
        Err(_) => Constraints::none(),
    };
    let budget = match body.field("budget") {
        Ok(v) => match ExploreBudget::from_json(v) {
            Ok(b) => b,
            Err(e) => return Response::error(400, &format!("budget: {e}")),
        },
        Err(_) => ExploreBudget::default(),
    };
    // Built-ins first, then the imported-workload store — explore jobs
    // accept any program the server can build a protocol trace for.
    let Some(profile) = dse_workload::suites::all_benchmarks()
        .into_iter()
        .find(|p| p.name == program)
        .or_else(|| state.workloads.as_ref().and_then(|w| w.find(&program)))
    else {
        return Response::error(404, &format!("unknown benchmark '{program}'"));
    };
    // Pin the cheap oracle now: a later /v1/fit or reload must not shift
    // a running job, and an unfitted program should 404 at submit.
    let predictor =
        match RegistryPredictor::resolve(&state.registry, &program, &objective.metrics()) {
            Ok(p) => p,
            Err(e) => return registry_error(&e),
        };
    let job = match state.jobs.submit(budget.rounds) {
        Ok(j) => j,
        Err(SubmitRejected::TooManyJobs) => {
            return Response::error(429, "too many explore jobs, retry later")
        }
    };
    let id = job.id.clone();
    let run_state = state.clone();
    let run_job = job.clone();
    // The job outlives this request, but its rounds stay attributable:
    // the worker running it adopts the submitting request's id, so the
    // flight recorder links `POST /v1/explore` to every round it caused.
    let submit_req = dse_obs::flight::current_request();
    dse_obs::flight::event("explore.submit", format!("job={id} program={program}"));
    let run = Box::new(move || {
        let _trace_scope = dse_obs::flight::scope(submit_req);
        run_job.mark_running();
        let trace = protocol::trace(&profile);
        let oracle = SimOracle::new(trace, protocol::options());
        let explorer = Explorer {
            predictor: &predictor,
            oracle: &oracle,
            program: profile.name.to_string(),
            objective,
            constraints,
            budget,
            pool: None,
        };
        let mut round_started = Instant::now();
        let mut sims_before = 0u64;
        let result = explorer.run_with(|status| {
            run_job.update(status);
            // Per-round instrumentation: one flight event plus gauges
            // (last-round sims / duration / archive size) cheap enough
            // for every round of every job.
            let round_us = round_started.elapsed().as_micros() as u64;
            let sims = status.frontier.sim_calls - sims_before;
            let archive = status.frontier.points.len();
            dse_obs::flight::event(
                "explore.round",
                format!(
                    "job={} round={}/{} sims={sims} us={round_us} archive={archive}",
                    run_job.id, status.rounds_done, status.rounds_total
                ),
            );
            dse_obs::registry::gauge("dse_explore_round_sims").set(sims as f64);
            dse_obs::registry::gauge("dse_explore_round_duration_us").set(round_us as f64);
            dse_obs::registry::gauge("dse_explore_archive_size").set(archive as f64);
            round_started = Instant::now();
            sims_before = status.frontier.sim_calls;
            // Graceful drain: a shutting-down server cancels in-flight
            // jobs at the next round boundary instead of holding the
            // pool for the full budget.
            if run_job.cancel_requested() || run_state.shutdown.load(Ordering::SeqCst) {
                Command::Cancel
            } else {
                Command::Continue
            }
        });
        match result {
            Ok(frontier) => run_job.finish(frontier),
            Err(e) => run_job.fail(e.to_string()),
        }
    });
    if state.pool.try_execute(run).is_err() {
        // Never started: release the job slot so the 503 is retryable.
        state.jobs.discard(&id);
        return Response::error(503, "server overloaded, retry later");
    }
    Response::json(202, dse_util::json::to_string(&job_body(&job)))
}

/// `GET /v1/explore`: the known job ids, oldest first.
fn explore_list(state: &State) -> Response {
    let body = Json::obj([("jobs", state.jobs.ids().to_json())]);
    Response::json(200, dse_util::json::to_string(&body))
}

/// `GET /v1/explore/<id>`: status plus the latest (partial) frontier.
fn explore_status(state: &State, id: &str) -> Response {
    match state.jobs.get(id) {
        Some(job) => Response::json(200, dse_util::json::to_string(&job_body(&job))),
        None => Response::error(404, &format!("no such explore job '{id}'")),
    }
}

/// `DELETE /v1/explore/<id>`: request cancellation (idempotent).
fn explore_cancel(state: &State, id: &str) -> Response {
    match state.jobs.get(id) {
        Some(job) => {
            job.cancel();
            Response::json(200, dse_util::json::to_string(&job_body(&job)))
        }
        None => Response::error(404, &format!("no such explore job '{id}'")),
    }
}

fn shutdown_route(state: &State) -> Response {
    if !state.shutdown.swap(true, Ordering::SeqCst) {
        // Wake the reactors so they observe the flag (see Server::shutdown).
        state.wake_reactors();
    }
    Response {
        close: true,
        ..Response::json(
            200,
            dse_util::json::to_string(&Json::obj([("status", "shutting down".to_json())])),
        )
    }
}
