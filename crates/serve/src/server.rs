//! The prediction server: accept loop, worker pool, routing, handlers.
//!
//! One acceptor thread hands each connection to a fixed
//! [`WorkerPool`](dse_util::WorkerPool); a worker owns the connection for
//! its whole keep-alive lifetime, so `workers` bounds concurrent
//! connections and the pool's queue depth bounds the accept backlog —
//! when both are full the acceptor sheds load with `503` instead of
//! queueing unboundedly.
//!
//! Shutdown is graceful: [`Server::shutdown`] raises a flag and wakes the
//! acceptor with a loopback connection; workers notice the flag after
//! finishing (at latest, after their read timeout), answer the in-flight
//! request with `Connection: close`, and drain. [`Server::wait`] joins
//! everything.

use crate::cache::{CacheKey, PredictionCache};
use crate::http::{read_request, write_response, ReadError, Request, Response};
use crate::jobs::{protocol, JobManager, RegistryPredictor, SubmitRejected};
use crate::registry::{ModelRegistry, RegistryError};
use crate::telemetry::Telemetry;
use dse_explore::{Command, Constraints, ExploreBudget, Explorer, Objective, SimOracle};
use dse_sim::Metric;
use dse_space::Config;
use dse_util::json::{FromJson, Json, ToJson};
use dse_util::par::par_map;
use dse_util::WorkerPool;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tunables for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`host:port`; port `0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads — the bound on concurrently served connections.
    pub workers: usize,
    /// Accept backlog: connections queued beyond the busy workers.
    pub backlog: usize,
    /// Per-request cap on body size in bytes.
    pub max_body: usize,
    /// Socket read timeout (bounds how long an idle keep-alive connection
    /// occupies a worker).
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
    /// Prediction-cache shard count.
    pub cache_shards: usize,
    /// Prediction-cache total capacity (entries).
    pub cache_capacity: usize,
    /// Cap on queued-or-running explore jobs (`POST /v1/explore` answers
    /// 429 beyond it). Keep this below `workers`: a running job occupies
    /// a worker, and polling needs at least one free.
    pub max_explore_jobs: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            backlog: 64,
            max_body: crate::http::DEFAULT_MAX_BODY_BYTES,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            cache_shards: 8,
            cache_capacity: 4096,
            max_explore_jobs: 2,
        }
    }
}

/// Shared server state: everything a connection handler needs.
struct State {
    registry: Arc<ModelRegistry>,
    cache: PredictionCache,
    telemetry: Telemetry,
    jobs: JobManager,
    /// The server's own worker pool; explore jobs are scheduled onto it
    /// so one knob bounds all concurrency.
    pool: Arc<WorkerPool>,
    shutdown: AtomicBool,
    addr: SocketAddr,
    max_body: usize,
}

/// A running prediction server.
pub struct Server {
    state: Arc<State>,
    pool: Arc<WorkerPool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the worker pool and acceptor, and returns
    /// immediately; the server runs until [`Server::shutdown`] (or a
    /// `POST /v1/shutdown`).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(registry: Arc<ModelRegistry>, cfg: &ServerConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let pool = Arc::new(WorkerPool::new("dse-serve", cfg.workers, cfg.backlog));
        let state = Arc::new(State {
            registry,
            cache: PredictionCache::new(cfg.cache_shards, cfg.cache_capacity),
            telemetry: Telemetry::new(),
            jobs: JobManager::new(cfg.max_explore_jobs),
            pool: pool.clone(),
            shutdown: AtomicBool::new(false),
            addr,
            max_body: cfg.max_body,
        });
        let acceptor = {
            let state = state.clone();
            let pool = pool.clone();
            let read_timeout = cfg.read_timeout;
            let write_timeout = cfg.write_timeout;
            std::thread::Builder::new()
                .name("dse-serve-accept".to_string())
                .spawn(move || accept_loop(listener, state, pool, read_timeout, write_timeout))?
        };
        Ok(Self {
            state,
            pool,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (reports the real port after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Request telemetry (exposed for tests and embedding).
    pub fn telemetry(&self) -> &Telemetry {
        &self.state.telemetry
    }

    /// The prediction cache (exposed for tests and embedding).
    pub fn cache(&self) -> &PredictionCache {
        &self.state.cache
    }

    /// Signals shutdown and wakes the acceptor; returns without waiting.
    pub fn shutdown(&self) {
        if !self.state.shutdown.swap(true, Ordering::SeqCst) {
            // The acceptor may be parked in accept(); a loopback connection
            // unblocks it so it can observe the flag.
            let _ = TcpStream::connect(self.state.addr);
        }
    }

    /// Blocks until the acceptor has exited and every worker has drained,
    /// then joins them. Call [`Server::shutdown`] (or hit
    /// `POST /v1/shutdown`) to make this return.
    pub fn wait(mut self) {
        self.join();
    }

    /// Shuts down and waits — the one-call stop for tests and CLI exit.
    pub fn stop(self) {
        self.shutdown();
        self.wait();
    }

    fn join(&mut self) {
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
            self.pool.shutdown();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
        self.join();
    }
}

fn accept_loop(
    listener: TcpListener,
    state: Arc<State>,
    pool: Arc<WorkerPool>,
    read_timeout: Duration,
    write_timeout: Duration,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let _ = stream.set_read_timeout(Some(read_timeout));
        let _ = stream.set_write_timeout(Some(write_timeout));
        // Responses must not sit in the kernel waiting for a Nagle ACK.
        let _ = stream.set_nodelay(true);
        // The job consumes the stream; keep a clone so a rejected job can
        // still be answered with 503 before both handles drop.
        let shed_handle = stream.try_clone().ok();
        let conn_state = state.clone();
        let job = Box::new(move || handle_connection(conn_state, stream));
        if pool.try_execute(job).is_err() {
            state.telemetry.record("shed", 503, 0);
            if let Some(mut stream) = shed_handle {
                let _ = write_response(
                    &mut stream,
                    &Response {
                        close: true,
                        ..Response::error(503, "server overloaded, retry later")
                    },
                );
            }
        }
    }
}

fn handle_connection(state: Arc<State>, mut stream: TcpStream) {
    let mut carry = Vec::new();
    loop {
        let draining = state.shutdown.load(Ordering::SeqCst);
        let req = match read_request(&mut stream, &mut carry, state.max_body) {
            Ok(req) => req,
            Err(ReadError::Closed) => return,
            Err(ReadError::Timeout) => {
                if !draining {
                    let resp = Response {
                        close: true,
                        ..Response::error(408, "timed out waiting for a request")
                    };
                    let _ = write_response(&mut stream, &resp);
                }
                return;
            }
            Err(ReadError::BadRequest(m)) => {
                let resp = Response {
                    close: true,
                    ..Response::error(400, &m)
                };
                state.telemetry.record("malformed", 400, 0);
                let _ = write_response(&mut stream, &resp);
                return;
            }
            Err(ReadError::BodyTooLarge(n)) => {
                let resp = Response {
                    close: true,
                    ..Response::error(413, &format!("body of {n} bytes exceeds the cap"))
                };
                state.telemetry.record("malformed", 413, 0);
                let _ = write_response(&mut stream, &resp);
                return;
            }
            Err(ReadError::HeadTooLarge) => {
                let resp = Response {
                    close: true,
                    ..Response::error(431, "request head too large")
                };
                state.telemetry.record("malformed", 431, 0);
                let _ = write_response(&mut stream, &resp);
                return;
            }
            Err(ReadError::Io(_)) => return,
        };

        let started = Instant::now();
        let (label, mut resp) = route(&state, &req);
        state
            .telemetry
            .record(label, resp.status, started.elapsed().as_micros() as u64);
        let draining = state.shutdown.load(Ordering::SeqCst);
        if !req.keep_alive || draining {
            resp.close = true;
        }
        if write_response(&mut stream, &resp).is_err() || resp.close {
            return;
        }
    }
}

/// Dispatches one request; returns the telemetry label and the response.
fn route(state: &Arc<State>, req: &Request) -> (&'static str, Response) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => ("/healthz", healthz(state)),
        ("GET", "/metrics") => ("/metrics", metrics(state)),
        ("GET", "/v1/models") => ("/v1/models", models(state)),
        ("GET", "/v1/configs") => ("/v1/configs", configs(state, req)),
        ("POST", "/v1/predict") => ("/v1/predict", predict(state, req)),
        ("POST", "/v1/predict_batch") => ("/v1/predict_batch", predict_batch(state, req)),
        ("POST", "/v1/fit") => ("/v1/fit", fit(state, req)),
        ("POST", "/v1/reload") => ("/v1/reload", reload(state)),
        ("POST", "/v1/shutdown") => ("/v1/shutdown", shutdown_route(state)),
        ("POST", "/v1/explore") => ("/v1/explore", explore_submit(state, req)),
        ("GET", "/v1/explore") => ("/v1/explore", explore_list(state)),
        (method, path) if path.starts_with("/v1/explore/") => {
            let id = &path["/v1/explore/".len()..];
            match method {
                "GET" => ("/v1/explore/:id", explore_status(state, id)),
                "DELETE" => ("/v1/explore/:id", explore_cancel(state, id)),
                _ => (
                    "method_not_allowed",
                    Response::error(405, &format!("{} not allowed here", req.method)),
                ),
            }
        }
        (
            _,
            "/healthz" | "/metrics" | "/v1/models" | "/v1/configs" | "/v1/predict"
            | "/v1/predict_batch" | "/v1/fit" | "/v1/reload" | "/v1/shutdown" | "/v1/explore",
        ) => (
            "method_not_allowed",
            Response::error(405, &format!("{} not allowed here", req.method)),
        ),
        _ => ("not_found", Response::error(404, "no such route")),
    }
}

fn registry_error(err: &RegistryError) -> Response {
    let status = match err {
        RegistryError::UnknownMetric(_) | RegistryError::NotFitted { .. } => 404,
        RegistryError::BadRequest(_) => 422,
        RegistryError::Io(_) | RegistryError::Parse(_) => 500,
    };
    Response::error(status, &err.to_string())
}

fn healthz(state: &State) -> Response {
    let body = Json::obj([
        ("status", "ok".to_json()),
        ("models", state.registry.metrics().len().to_json()),
        ("fitted", state.registry.fitted().len().to_json()),
    ]);
    Response::json(200, dse_util::json::to_string(&body))
}

fn metrics(state: &State) -> Response {
    let mut body =
        state
            .telemetry
            .exposition(state.cache.hits(), state.cache.misses(), state.cache.len());
    // Workspace-wide metrics (simulator runs, dataset sweeps, MLP fits,
    // …) share the exposition: anything any crate registered in the
    // process-wide registry appears alongside the server's own series.
    body.push_str(&dse_obs::registry::global().prometheus());
    Response::text(200, body)
}

fn models(state: &State) -> Response {
    let loaded: Vec<Json> = state
        .registry
        .metrics()
        .into_iter()
        .filter_map(|m| state.registry.artifact(m))
        .map(|a| {
            Json::obj([
                ("metric", a.metric.to_json()),
                ("programs", a.programs().to_json()),
                ("configs", a.configs.len().to_json()),
            ])
        })
        .collect();
    let fitted: Vec<Json> = state
        .registry
        .fitted()
        .into_iter()
        .map(|(program, metric)| {
            Json::obj([("program", program.to_json()), ("metric", metric.to_json())])
        })
        .collect();
    let body = Json::obj([("models", Json::Arr(loaded)), ("fitted", Json::Arr(fitted))]);
    Response::json(200, dse_util::json::to_string(&body))
}

/// Accepts both the variant spelling (`Cycles`) and the display spelling
/// (`cycles`, `ED`), case-insensitively.
fn metric_from_str(text: &str) -> Option<Metric> {
    Metric::ALL.iter().copied().find(|m| {
        format!("{m:?}").eq_ignore_ascii_case(text) || m.to_string().eq_ignore_ascii_case(text)
    })
}

fn configs(state: &State, req: &Request) -> Response {
    let metric = match req.query_param("metric") {
        Some(text) => match metric_from_str(text) {
            Some(m) => m,
            None => return Response::error(422, &format!("unknown metric {text:?}")),
        },
        None => match state.registry.metrics().first() {
            Some(&m) => m,
            None => return Response::error(500, "no models loaded"),
        },
    };
    let Some(artifact) = state.registry.artifact(metric) else {
        return registry_error(&RegistryError::UnknownMetric(metric));
    };
    let limit = req
        .query_param("limit")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(32)
        .min(artifact.configs.len());
    let rows: Vec<Json> = artifact.configs[..limit]
        .iter()
        .enumerate()
        .map(|(i, cfg)| Json::obj([("index", i.to_json()), ("config", cfg.to_json())]))
        .collect();
    let body = Json::obj([
        ("metric", metric.to_json()),
        ("total", artifact.configs.len().to_json()),
        ("configs", Json::Arr(rows)),
    ]);
    Response::json(200, dse_util::json::to_string(&body))
}

/// Parses the `{program, metric}` pair shared by the prediction and fit
/// request bodies.
fn parse_target(body: &Json) -> Result<(String, Metric), Response> {
    let program = body
        .field("program")
        .and_then(String::from_json)
        .map_err(|e| Response::error(400, &format!("program: {e}")))?;
    let metric = body
        .field("metric")
        .and_then(Metric::from_json)
        .map_err(|e| Response::error(400, &format!("metric: {e}")))?;
    Ok((program, metric))
}

fn parse_body(req: &Request) -> Result<Json, Response> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| Response::error(400, "body is not valid UTF-8"))?;
    Json::parse(text).map_err(|e| Response::error(400, &format!("body: {e}")))
}

fn cache_key(program: &str, metric: Metric, config: &Config) -> CacheKey {
    let indices = config.to_indices();
    let mut encoded = [0u64; 13];
    for (slot, &idx) in encoded.iter_mut().zip(indices.iter()) {
        *slot = idx as u64;
    }
    CacheKey {
        program: program.to_string(),
        metric,
        config: encoded,
    }
}

fn predict(state: &State, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let (program, metric) = match parse_target(&body) {
        Ok(t) => t,
        Err(resp) => return resp,
    };
    let config = match body.field("config").and_then(Config::from_json) {
        Ok(c) => c,
        Err(e) => return Response::error(422, &format!("config: {e}")),
    };
    let key = cache_key(&program, metric, &config);
    let (value, cached) = match state.cache.get(&key) {
        Some(v) => (v, true),
        None => match state.registry.predict(&program, metric, &config) {
            Ok(v) => {
                state.cache.insert(key, v);
                (v, false)
            }
            Err(e) => return registry_error(&e),
        },
    };
    let out = Json::obj([
        ("program", program.to_json()),
        ("metric", metric.to_json()),
        ("value", value.to_json()),
        ("cached", cached.to_json()),
    ]);
    Response::json(200, dse_util::json::to_string(&out))
}

fn predict_batch(state: &State, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let (program, metric) = match parse_target(&body) {
        Ok(t) => t,
        Err(resp) => return resp,
    };
    let configs = match body.field("configs").and_then(Vec::<Config>::from_json) {
        Ok(c) => c,
        Err(e) => return Response::error(422, &format!("configs: {e}")),
    };
    if configs.is_empty() {
        return Response::error(422, "configs must not be empty");
    }
    let (artifact, reg) = match state.registry.predictor(&program, metric) {
        Ok(p) => p,
        Err(e) => return registry_error(&e),
    };
    // Serve cache hits first, then fan the misses out across threads.
    let keys: Vec<CacheKey> = configs
        .iter()
        .map(|c| cache_key(&program, metric, c))
        .collect();
    let mut values: Vec<Option<f64>> = keys.iter().map(|k| state.cache.get(k)).collect();
    let missing: Vec<usize> = (0..configs.len())
        .filter(|&i| values[i].is_none())
        .collect();
    let computed = par_map(&missing, |&i| {
        artifact
            .offline
            .predict_with(&reg, &configs[i].to_features())
    });
    for (&i, &v) in missing.iter().zip(computed.iter()) {
        state.cache.insert(keys[i].clone(), v);
        values[i] = Some(v);
    }
    let out = Json::obj([
        ("program", program.to_json()),
        ("metric", metric.to_json()),
        (
            "values",
            Json::Arr(values.iter().map(|v| v.unwrap().to_json()).collect()),
        ),
        ("computed", missing.len().to_json()),
    ]);
    Response::json(200, dse_util::json::to_string(&out))
}

fn fit(state: &State, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let (program, metric) = match parse_target(&body) {
        Ok(t) => t,
        Err(resp) => return resp,
    };
    let entries = match body.field("responses").and_then(|v| v.as_array()) {
        Ok(a) => a,
        Err(e) => return Response::error(400, &format!("responses: {e}")),
    };
    let mut responses = Vec::with_capacity(entries.len());
    for entry in entries {
        let index = match entry.field("index").and_then(usize::from_json) {
            Ok(i) => i,
            Err(e) => return Response::error(400, &format!("responses[].index: {e}")),
        };
        let value = match entry.field("value").and_then(f64::from_json) {
            Ok(v) => v,
            Err(e) => return Response::error(400, &format!("responses[].value: {e}")),
        };
        responses.push((index, value));
    }
    match state.registry.fit(&program, metric, &responses) {
        Ok(summary) => {
            // The combiner changed: cached predictions for this pair are
            // stale now.
            state.cache.invalidate(&program, metric);
            let out = Json::obj([
                ("program", summary.program.to_json()),
                ("metric", summary.metric.to_json()),
                ("responses", summary.responses.to_json()),
                ("weights", summary.weights.to_json()),
                ("intercept", summary.intercept.to_json()),
                ("training_rmae", summary.training_rmae.to_json()),
            ]);
            Response::json(200, dse_util::json::to_string(&out))
        }
        Err(e) => registry_error(&e),
    }
}

fn reload(state: &State) -> Response {
    match state.registry.reload() {
        Ok(n) => {
            state.cache.clear();
            let out = Json::obj([("status", "reloaded".to_json()), ("models", n.to_json())]);
            Response::json(200, dse_util::json::to_string(&out))
        }
        Err(e) => registry_error(&e),
    }
}

/// The JSON body shared by every job-status response.
fn job_body(job: &crate::jobs::ExploreJob) -> Json {
    let snap = job.snapshot();
    let mut fields = vec![
        ("id".to_string(), job.id.to_json()),
        ("status".to_string(), snap.state.as_str().to_json()),
        ("rounds_done".to_string(), snap.rounds_done.to_json()),
        ("rounds_total".to_string(), snap.rounds_total.to_json()),
    ];
    match &snap.frontier {
        Some(f) => fields.push(("frontier".to_string(), f.to_json())),
        None => fields.push(("frontier".to_string(), Json::Null)),
    }
    if let Some(e) = &snap.error {
        fields.push(("error".to_string(), e.to_json()));
    }
    Json::Obj(fields)
}

/// `POST /v1/explore`: validate, register a job, schedule the loop on
/// the worker pool, answer `202` with the job id.
fn explore_submit(state: &Arc<State>, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let program = match body.field("program").and_then(String::from_json) {
        Ok(p) => p,
        Err(e) => return Response::error(400, &format!("program: {e}")),
    };
    let objective = match body.field("objective").and_then(Objective::from_json) {
        Ok(o) => o,
        Err(e) => return Response::error(400, &format!("objective: {e}")),
    };
    let constraints = match body.field("constraints") {
        Ok(v) => match Constraints::from_json(v) {
            Ok(c) => c,
            Err(e) => return Response::error(400, &format!("constraints: {e}")),
        },
        Err(_) => Constraints::none(),
    };
    let budget = match body.field("budget") {
        Ok(v) => match ExploreBudget::from_json(v) {
            Ok(b) => b,
            Err(e) => return Response::error(400, &format!("budget: {e}")),
        },
        Err(_) => ExploreBudget::default(),
    };
    let Some(profile) = dse_workload::suites::all_benchmarks()
        .into_iter()
        .find(|p| p.name == program)
    else {
        return Response::error(404, &format!("unknown benchmark '{program}'"));
    };
    // Pin the cheap oracle now: a later /v1/fit or reload must not shift
    // a running job, and an unfitted program should 404 at submit.
    let predictor =
        match RegistryPredictor::resolve(&state.registry, &program, &objective.metrics()) {
            Ok(p) => p,
            Err(e) => return registry_error(&e),
        };
    let job = match state.jobs.submit(budget.rounds) {
        Ok(j) => j,
        Err(SubmitRejected::TooManyJobs) => {
            return Response::error(429, "too many explore jobs, retry later")
        }
    };
    let id = job.id.clone();
    let run_state = state.clone();
    let run_job = job.clone();
    let run = Box::new(move || {
        run_job.mark_running();
        let trace = protocol::trace(&profile);
        let oracle = SimOracle::new(trace, protocol::options());
        let explorer = Explorer {
            predictor: &predictor,
            oracle: &oracle,
            program: profile.name.to_string(),
            objective,
            constraints,
            budget,
            pool: None,
        };
        let result = explorer.run_with(|status| {
            run_job.update(status);
            // Graceful drain: a shutting-down server cancels in-flight
            // jobs at the next round boundary instead of holding the
            // pool for the full budget.
            if run_job.cancel_requested() || run_state.shutdown.load(Ordering::SeqCst) {
                Command::Cancel
            } else {
                Command::Continue
            }
        });
        match result {
            Ok(frontier) => run_job.finish(frontier),
            Err(e) => run_job.fail(e.to_string()),
        }
    });
    if state.pool.try_execute(run).is_err() {
        // Never started: release the job slot so the 503 is retryable.
        state.jobs.discard(&id);
        return Response::error(503, "server overloaded, retry later");
    }
    Response::json(202, dse_util::json::to_string(&job_body(&job)))
}

/// `GET /v1/explore`: the known job ids, oldest first.
fn explore_list(state: &State) -> Response {
    let body = Json::obj([("jobs", state.jobs.ids().to_json())]);
    Response::json(200, dse_util::json::to_string(&body))
}

/// `GET /v1/explore/<id>`: status plus the latest (partial) frontier.
fn explore_status(state: &State, id: &str) -> Response {
    match state.jobs.get(id) {
        Some(job) => Response::json(200, dse_util::json::to_string(&job_body(&job))),
        None => Response::error(404, &format!("no such explore job '{id}'")),
    }
}

/// `DELETE /v1/explore/<id>`: request cancellation (idempotent).
fn explore_cancel(state: &State, id: &str) -> Response {
    match state.jobs.get(id) {
        Some(job) => {
            job.cancel();
            Response::json(200, dse_util::json::to_string(&job_body(&job)))
        }
        None => Response::error(404, &format!("no such explore job '{id}'")),
    }
}

fn shutdown_route(state: &State) -> Response {
    if !state.shutdown.swap(true, Ordering::SeqCst) {
        // Wake the acceptor so it observes the flag (see Server::shutdown).
        let _ = TcpStream::connect(state.addr);
    }
    Response {
        close: true,
        ..Response::json(
            200,
            dse_util::json::to_string(&Json::obj([("status", "shutting down".to_json())])),
        )
    }
}
