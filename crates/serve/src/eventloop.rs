//! The nonblocking front end: sharded reactor threads over raw
//! `epoll(7)` (with a `poll(2)` fallback), feeding complete requests to
//! the worker pool.
//!
//! # Architecture
//!
//! * **Reactors own sockets.** Each reactor thread runs one [`Poller`]
//!   and a private connection table; all socket reads and writes happen
//!   on the reactor, so partial reads and partial writes are first-class
//!   states, not error paths. Reactor 0 additionally owns the (nonblocking)
//!   listener and round-robins accepted connections across all reactors.
//! * **Workers own request handling.** A connection's first complete
//!   request schedules a *session* job on the shared
//!   [`WorkerPool`](dse_util::WorkerPool): a loop over an `mpsc` channel
//!   that routes each request and mails the serialised response bytes
//!   back to the owning reactor. The session occupies its worker for the
//!   connection's whole keep-alive lifetime — exactly the concurrency
//!   contract of the old thread-per-connection design, so `workers` still
//!   bounds concurrently served connections and a full pool still sheds
//!   with `503`.
//! * **Parsing is incremental.** Reactors feed each connection's byte buffer
//!   through [`crate::http::try_parse`] — the same parser the blocking
//!   [`crate::http::read_request`] wraps — as bytes arrive, so a
//!   slow-loris client costs a reactor a buffer, not a worker thread.
//!
//! Cross-thread signalling uses the classic self-pipe trick
//! ([`ReactorShared::wake`]): worker threads and `Server::shutdown` push
//! a message into the reactor's inbox and write one byte into its wake
//! pipe; the poller reports the pipe readable and the reactor drains the
//! inbox on its own thread. No file descriptor is ever touched from two
//! threads.
//!
//! Everything here is `std`-only: the epoll/poll bindings are hand-rolled
//! `extern "C"` declarations against the libc that `std` already links.

use crate::http::{head_complete, try_parse, write_response, Parsed, ReadError, Request, Response};
use crate::server::{route, State};
use dse_obs::flight;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Raw bindings for the handful of syscalls `std` does not expose.
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x1;
    pub const EPOLLOUT: u32 = 0x4;
    pub const EPOLLERR: u32 = 0x8;
    pub const EPOLLHUP: u32 = 0x10;

    pub const POLLIN: i16 = 0x1;
    pub const POLLOUT: i16 = 0x4;
    pub const POLLERR: i16 = 0x8;
    pub const POLLHUP: i16 = 0x10;
    pub const POLLNVAL: i16 = 0x20;

    pub const F_GETFL: c_int = 3;
    pub const F_SETFL: c_int = 4;
    pub const O_NONBLOCK: c_int = 0o4000;

    /// `SIGUSR1` on Linux (every arch this workspace targets).
    pub const SIGUSR1: c_int = 10;

    /// `struct epoll_event`; packed on x86-64 only, matching the kernel ABI.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: i16,
        pub revents: i16,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout_ms: c_int,
        ) -> c_int;
        pub fn poll(fds: *mut PollFd, nfds: u64, timeout_ms: c_int) -> c_int;
        pub fn pipe(fds: *mut c_int) -> c_int;
        pub fn fcntl(fd: c_int, cmd: c_int, ...) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn close(fd: c_int) -> c_int;
        pub fn signal(signum: c_int, handler: usize) -> usize;
    }
}

/// `SIGUSR1` handler: flips the flight recorder's dump flag (one atomic
/// store — async-signal-safe) and lets the reactor loops do the actual
/// dumping from safe code.
extern "C" fn sigusr1_flight_dump(_signum: std::os::raw::c_int) {
    dse_obs::flight::request_dump();
}

/// Installs the `SIGUSR1` → flight-dump handler (idempotent; called at
/// server startup). `kill -USR1 <pid>` then makes the next reactor wake
/// write the full flight-recorder contents to stderr.
pub(crate) fn install_flight_dump_signal() {
    unsafe {
        let handler: extern "C" fn(std::os::raw::c_int) = sigusr1_flight_dump;
        sys::signal(sys::SIGUSR1, handler as *const () as usize);
    }
}

/// Process-wide request-id source; ids start at 1 so 0 can mean "no
/// request" everywhere (flight events, the response header).
static NEXT_REQUEST_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// Readiness reported for one registered file descriptor.
#[derive(Debug, Clone, Copy)]
struct Event {
    token: u64,
    readable: bool,
    writable: bool,
    hup: bool,
}

/// Level-triggered readiness: epoll where available, `poll(2)` otherwise.
///
/// Set `DSE_SERVE_POLL=1` to force the fallback (exercised in CI so the
/// portable path cannot rot).
enum Poller {
    Epoll { epfd: RawFd },
    Poll { interest: Vec<PollInterest> },
}

struct PollInterest {
    fd: RawFd,
    token: u64,
    readable: bool,
    writable: bool,
}

impl Poller {
    fn new() -> Self {
        let force_poll = std::env::var_os("DSE_SERVE_POLL").is_some_and(|v| v == "1");
        if !force_poll {
            let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
            if epfd >= 0 {
                return Poller::Epoll { epfd };
            }
        }
        Poller::Poll {
            interest: Vec::new(),
        }
    }

    fn epoll_mask(readable: bool, writable: bool) -> u32 {
        // HUP and ERR are always reported by the kernel; no need to ask.
        (if readable { sys::EPOLLIN } else { 0 }) | (if writable { sys::EPOLLOUT } else { 0 })
    }

    fn add(&mut self, fd: RawFd, token: u64, readable: bool, writable: bool) {
        match self {
            Poller::Epoll { epfd } => {
                let mut ev = sys::EpollEvent {
                    events: Self::epoll_mask(readable, writable),
                    data: token,
                };
                unsafe { sys::epoll_ctl(*epfd, sys::EPOLL_CTL_ADD, fd, &mut ev) };
            }
            Poller::Poll { interest } => interest.push(PollInterest {
                fd,
                token,
                readable,
                writable,
            }),
        }
    }

    fn modify(&mut self, fd: RawFd, token: u64, readable: bool, writable: bool) {
        match self {
            Poller::Epoll { epfd } => {
                let mut ev = sys::EpollEvent {
                    events: Self::epoll_mask(readable, writable),
                    data: token,
                };
                unsafe { sys::epoll_ctl(*epfd, sys::EPOLL_CTL_MOD, fd, &mut ev) };
            }
            Poller::Poll { interest } => {
                if let Some(i) = interest.iter_mut().find(|i| i.fd == fd) {
                    i.token = token;
                    i.readable = readable;
                    i.writable = writable;
                }
            }
        }
    }

    fn remove(&mut self, fd: RawFd) {
        match self {
            Poller::Epoll { epfd } => {
                let mut ev = sys::EpollEvent { events: 0, data: 0 };
                unsafe { sys::epoll_ctl(*epfd, sys::EPOLL_CTL_DEL, fd, &mut ev) };
            }
            Poller::Poll { interest } => interest.retain(|i| i.fd != fd),
        }
    }

    fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) {
        out.clear();
        match self {
            Poller::Epoll { epfd } => {
                const CAP: usize = 64;
                let mut evs = [sys::EpollEvent { events: 0, data: 0 }; CAP];
                let n = unsafe { sys::epoll_wait(*epfd, evs.as_mut_ptr(), CAP as i32, timeout_ms) };
                for ev in evs.iter().take(n.max(0) as usize) {
                    let bits = ev.events;
                    let token = ev.data;
                    out.push(Event {
                        token,
                        readable: bits & sys::EPOLLIN != 0,
                        writable: bits & sys::EPOLLOUT != 0,
                        hup: bits & (sys::EPOLLHUP | sys::EPOLLERR) != 0,
                    });
                }
            }
            Poller::Poll { interest } => {
                let mut fds: Vec<sys::PollFd> = interest
                    .iter()
                    .map(|i| sys::PollFd {
                        fd: i.fd,
                        events: (if i.readable { sys::POLLIN } else { 0 })
                            | (if i.writable { sys::POLLOUT } else { 0 }),
                        revents: 0,
                    })
                    .collect();
                let n = unsafe { sys::poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
                if n <= 0 {
                    return;
                }
                for (i, pf) in interest.iter().zip(&fds) {
                    let r = pf.revents;
                    if r == 0 {
                        continue;
                    }
                    out.push(Event {
                        token: i.token,
                        readable: r & sys::POLLIN != 0,
                        writable: r & sys::POLLOUT != 0,
                        hup: r & (sys::POLLHUP | sys::POLLERR | sys::POLLNVAL) != 0,
                    });
                }
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        if let Poller::Epoll { epfd } = self {
            unsafe { sys::close(*epfd) };
        }
    }
}

/// Mail addressed to a reactor thread.
pub(crate) enum ReactorMsg {
    /// A freshly accepted connection to adopt (round-robin hand-off).
    Conn(TcpStream),
    /// Serialised response bytes for one connection, produced by a
    /// session worker. `close` tears the connection down after the flush.
    Respond {
        token: u64,
        bytes: Vec<u8>,
        close: bool,
    },
}

/// The thread-safe half of a reactor: an inbox plus a self-pipe.
///
/// Owns both pipe ends and closes them on drop; workers hold `Arc`
/// clones, so the fds outlive every possible writer.
pub(crate) struct ReactorShared {
    inbox: Mutex<Vec<ReactorMsg>>,
    wake_read: RawFd,
    wake_write: RawFd,
}

impl ReactorShared {
    pub(crate) fn new() -> io::Result<Arc<Self>> {
        let mut fds = [0 as std::os::raw::c_int; 2];
        if unsafe { sys::pipe(fds.as_mut_ptr()) } != 0 {
            return Err(io::Error::last_os_error());
        }
        for fd in fds {
            unsafe {
                let fl = sys::fcntl(fd, sys::F_GETFL);
                sys::fcntl(fd, sys::F_SETFL, fl | sys::O_NONBLOCK);
            }
        }
        Ok(Arc::new(Self {
            inbox: Mutex::new(Vec::new()),
            wake_read: fds[0],
            wake_write: fds[1],
        }))
    }

    pub(crate) fn send(&self, msg: ReactorMsg) {
        self.inbox.lock().unwrap().push(msg);
        self.wake();
    }

    /// Writes one byte into the self-pipe. A full pipe (EAGAIN) already
    /// guarantees a pending wake, so the result is ignored.
    pub(crate) fn wake(&self) {
        let byte = 1u8;
        unsafe { sys::write(self.wake_write, (&byte as *const u8).cast(), 1) };
    }
}

impl Drop for ReactorShared {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.wake_read);
            sys::close(self.wake_write);
        }
    }
}

const TOKEN_WAKE: u64 = u64::MAX;
const TOKEN_LISTENER: u64 = u64::MAX - 1;

#[derive(Debug, Clone, Copy, PartialEq)]
enum ConnState {
    /// Waiting for (more of) a request; poller interest: readable.
    Reading,
    /// A request is with a session worker; poller interest: none (HUP
    /// and ERR still arrive). Unread pipelined bytes stay in the kernel
    /// buffer — natural backpressure.
    Busy,
    /// A response did not fit in the socket buffer; poller interest:
    /// writable.
    Flushing,
}

struct Conn {
    stream: TcpStream,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    outpos: usize,
    state: ConnState,
    /// Request channel into this connection's session worker, created
    /// lazily on the first complete request. Dropping it (teardown) makes
    /// the session's `recv` fail and the worker move on. Each request
    /// travels with the id the reactor assigned it at dispatch.
    session: Option<mpsc::Sender<(u64, Request)>>,
    close_after_flush: bool,
    last_activity: Instant,
    peer_eof: bool,
}

/// One reactor thread: poller, connection table, and (for reactor 0) the
/// listener.
pub(crate) struct Reactor {
    idx: usize,
    state: Arc<State>,
    shared: Arc<ReactorShared>,
    peers: Vec<Arc<ReactorShared>>,
    next_rr: Arc<AtomicUsize>,
    listener: Option<TcpListener>,
    poller: Poller,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    read_timeout: Duration,
    write_timeout: Duration,
    draining: bool,
    drain_deadline: Option<Instant>,
}

impl Reactor {
    pub(crate) fn new(
        idx: usize,
        state: Arc<State>,
        shared: Arc<ReactorShared>,
        peers: Vec<Arc<ReactorShared>>,
        next_rr: Arc<AtomicUsize>,
        listener: Option<TcpListener>,
        read_timeout: Duration,
        write_timeout: Duration,
    ) -> Self {
        let mut poller = Poller::new();
        poller.add(shared.wake_read, TOKEN_WAKE, true, false);
        if let Some(l) = &listener {
            let _ = l.set_nonblocking(true);
            poller.add(l.as_raw_fd(), TOKEN_LISTENER, true, false);
        }
        Self {
            idx,
            state,
            shared,
            peers,
            next_rr,
            listener,
            poller,
            conns: HashMap::new(),
            next_token: 0,
            read_timeout,
            write_timeout,
            draining: false,
            drain_deadline: None,
        }
    }

    pub(crate) fn run(mut self) {
        let mut events = Vec::new();
        loop {
            if self.state.shutdown.load(Ordering::SeqCst) {
                self.begin_drain();
            }
            if self.draining {
                if self.conns.is_empty() {
                    return;
                }
                if self.drain_deadline.is_some_and(|dl| Instant::now() >= dl) {
                    let all: Vec<u64> = self.conns.keys().copied().collect();
                    for t in all {
                        self.teardown(t);
                    }
                    return;
                }
            }
            let timeout_ms = self.next_timeout_ms();
            self.poller.wait(&mut events, timeout_ms);
            // A pending SIGUSR1 dump request (the handler only flips an
            // atomic): whichever reactor wakes first writes the dump.
            if flight::take_dump_request() {
                eprintln!("--- flight recorder dump (SIGUSR1) ---");
                eprint!("{}", flight::to_jsonl(&flight::dump()));
                eprintln!("--- end flight recorder dump ---");
            }
            let round: Vec<Event> = events.drain(..).collect();
            self.drain_inbox();
            for ev in round {
                match ev.token {
                    TOKEN_WAKE => self.drain_wake_pipe(),
                    TOKEN_LISTENER => self.accept_ready(),
                    token => {
                        if ev.readable {
                            self.conn_readable(token);
                        }
                        if ev.writable {
                            self.flush(token);
                        }
                        if ev.hup && !ev.readable && !ev.writable {
                            match self.conns.get(&token).map(|c| c.state) {
                                Some(ConnState::Reading) => self.conn_readable(token),
                                Some(ConnState::Flushing) => self.flush(token),
                                Some(ConnState::Busy) => self.teardown(token),
                                None => {}
                            }
                        }
                    }
                }
            }
            self.check_timeouts();
        }
    }

    /// Poll timeout: the nearest read/write/drain deadline, capped at one
    /// second so a missed wake can never wedge the loop.
    fn next_timeout_ms(&self) -> i32 {
        let now = Instant::now();
        let mut timeout = Duration::from_millis(1000);
        for c in self.conns.values() {
            let deadline = match c.state {
                ConnState::Reading => Some(c.last_activity + self.read_timeout),
                ConnState::Flushing => Some(c.last_activity + self.write_timeout),
                ConnState::Busy => None,
            };
            if let Some(dl) = deadline {
                timeout = timeout.min(dl.saturating_duration_since(now));
            }
        }
        if let Some(dl) = self.drain_deadline {
            timeout = timeout.min(dl.saturating_duration_since(now));
        }
        timeout.as_millis() as i32
    }

    fn drain_wake_pipe(&mut self) {
        let mut buf = [0u8; 256];
        loop {
            let n = unsafe { sys::read(self.shared.wake_read, buf.as_mut_ptr().cast(), buf.len()) };
            if n < buf.len() as isize {
                return;
            }
        }
    }

    fn drain_inbox(&mut self) {
        let msgs: Vec<ReactorMsg> = std::mem::take(&mut *self.shared.inbox.lock().unwrap());
        for msg in msgs {
            match msg {
                ReactorMsg::Conn(stream) => self.adopt(stream),
                ReactorMsg::Respond {
                    token,
                    bytes,
                    close,
                } => self.respond(token, bytes, close),
            }
        }
    }

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    if self.state.shutdown.load(Ordering::SeqCst) {
                        continue;
                    }
                    // Responses must not sit in the kernel waiting for a
                    // Nagle ACK.
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_nonblocking(true);
                    let target = self.next_rr.fetch_add(1, Ordering::Relaxed) % self.peers.len();
                    if target == self.idx {
                        self.adopt(stream);
                    } else {
                        self.peers[target].send(ReactorMsg::Conn(stream));
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn adopt(&mut self, stream: TcpStream) {
        if self.draining {
            return;
        }
        let _ = stream.set_nonblocking(true);
        let token = ((self.idx as u64) << 48) | self.next_token;
        self.next_token += 1;
        self.poller.add(stream.as_raw_fd(), token, true, false);
        self.conns.insert(
            token,
            Conn {
                stream,
                inbuf: Vec::new(),
                outbuf: Vec::new(),
                outpos: 0,
                state: ConnState::Reading,
                session: None,
                close_after_flush: false,
                last_activity: Instant::now(),
                peer_eof: false,
            },
        );
        // Bytes may already be waiting; level-triggered polling would
        // catch them next round, but reading now saves a syscall loop.
        self.conn_readable(token);
    }

    fn conn_readable(&mut self, token: u64) {
        let mut failed = false;
        {
            let Some(c) = self.conns.get_mut(&token) else {
                return;
            };
            if c.state != ConnState::Reading {
                return;
            }
            let mut chunk = [0u8; 16 * 1024];
            loop {
                match c.stream.read(&mut chunk) {
                    Ok(0) => {
                        c.peer_eof = true;
                        break;
                    }
                    Ok(n) => {
                        c.inbuf.extend_from_slice(&chunk[..n]);
                        c.last_activity = Instant::now();
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        failed = true;
                        break;
                    }
                }
            }
        }
        if failed {
            self.teardown(token);
            return;
        }
        self.advance(token);
    }

    /// Tries to cut one complete request out of the connection's buffer
    /// and hand it to its session; maps parse errors to the same status
    /// codes the blocking front end produced.
    fn advance(&mut self, token: u64) {
        enum Act {
            None,
            Dispatch(Request),
            Reject(Response),
            Teardown,
        }
        let act = {
            let Some(c) = self.conns.get_mut(&token) else {
                return;
            };
            if c.state != ConnState::Reading {
                Act::None
            } else {
                match try_parse(&c.inbuf, self.state.max_body) {
                    Ok(Parsed::Complete { req, consumed }) => {
                        c.inbuf.drain(..consumed);
                        Act::Dispatch(req)
                    }
                    Ok(Parsed::Partial) => {
                        if !c.peer_eof {
                            Act::None
                        } else if c.inbuf.is_empty() {
                            Act::Teardown
                        } else {
                            let what = if head_complete(&c.inbuf) {
                                "body"
                            } else {
                                "head"
                            };
                            Act::Reject(Response::error(400, &format!("truncated request {what}")))
                        }
                    }
                    Err(ReadError::BadRequest(m)) => Act::Reject(Response::error(400, &m)),
                    Err(ReadError::BodyTooLarge(n)) => Act::Reject(Response::error(
                        413,
                        &format!("body of {n} bytes exceeds the cap"),
                    )),
                    Err(ReadError::HeadTooLarge) => {
                        Act::Reject(Response::error(431, "request head too large"))
                    }
                    Err(_) => Act::Teardown,
                }
            }
        };
        match act {
            Act::None => {}
            Act::Dispatch(req) => self.dispatch(token, req),
            Act::Reject(mut resp) => {
                resp.close = true;
                self.state.telemetry.record("malformed", resp.status, 0);
                flight::event("reactor.malformed", format!("status={}", resp.status));
                self.queue_response(token, resp);
            }
            Act::Teardown => self.teardown(token),
        }
    }

    /// Routes one complete request to the connection's session worker,
    /// creating the session on first use. A full pool sheds with `503` —
    /// the same contract the old acceptor enforced.
    ///
    /// Every request gets a process-unique id here — the root of its
    /// trace. The id rides the session channel to the worker, comes back
    /// in the `x-archdse-request-id` header, and tags every flight event
    /// the request's handling records along the way.
    fn dispatch(&mut self, token: u64, req: Request) {
        let Some(needs_session) = self.conns.get(&token).map(|c| c.session.is_none()) else {
            return;
        };
        let req_id = NEXT_REQUEST_ID.fetch_add(1, Ordering::Relaxed);
        flight::event_for(
            req_id,
            "reactor.dispatch",
            format!("reactor={} {} {}", self.idx, req.method, req.path),
        );
        if needs_session {
            let (tx, rx) = mpsc::channel::<(u64, Request)>();
            let state = self.state.clone();
            let shared = self.shared.clone();
            let job: dse_util::pool::Job = Box::new(move || session_loop(state, rx, shared, token));
            if self.state.pool.try_execute(job).is_err() {
                self.state.telemetry.record("shed", 503, 0);
                flight::event_for(
                    req_id,
                    "reactor.shed",
                    format!("{} {}", req.method, req.path),
                );
                self.queue_response(
                    token,
                    Response {
                        close: true,
                        request_id: req_id,
                        ..Response::error(503, "server overloaded, retry later")
                    },
                );
                return;
            }
            if let Some(c) = self.conns.get_mut(&token) {
                c.session = Some(tx);
            }
        }
        let fd = {
            let Some(c) = self.conns.get_mut(&token) else {
                return;
            };
            if let Some(tx) = &c.session {
                let _ = tx.send((req_id, req));
            }
            c.state = ConnState::Busy;
            c.stream.as_raw_fd()
        };
        self.poller.modify(fd, token, false, false);
    }

    fn respond(&mut self, token: u64, bytes: Vec<u8>, close: bool) {
        {
            let Some(c) = self.conns.get_mut(&token) else {
                return;
            };
            c.outbuf.extend_from_slice(&bytes);
            // A drain that began after the session serialised its
            // response still forces the connection closed.
            if close || self.draining {
                c.close_after_flush = true;
            }
            c.last_activity = Instant::now();
        }
        self.flush(token);
    }

    fn queue_response(&mut self, token: u64, resp: Response) {
        let mut bytes = Vec::new();
        let _ = write_response(&mut bytes, &resp);
        self.respond(token, bytes, resp.close);
    }

    /// Writes as much buffered output as the socket accepts; transitions
    /// to `Flushing` on a partial write, back to `Reading` (and straight
    /// into the pipelining carry) once drained.
    fn flush(&mut self, token: u64) {
        enum Out {
            Teardown,
            Pending,
            Done { close: bool },
        }
        let out = {
            let Some(c) = self.conns.get_mut(&token) else {
                return;
            };
            loop {
                if c.outpos >= c.outbuf.len() {
                    break Out::Done {
                        close: c.close_after_flush,
                    };
                }
                match c.stream.write(&c.outbuf[c.outpos..]) {
                    Ok(0) => break Out::Teardown,
                    Ok(n) => {
                        c.outpos += n;
                        c.last_activity = Instant::now();
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break Out::Pending,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => break Out::Teardown,
                }
            }
        };
        match out {
            Out::Teardown => self.teardown(token),
            Out::Pending => {
                let Some(c) = self.conns.get_mut(&token) else {
                    return;
                };
                c.state = ConnState::Flushing;
                let fd = c.stream.as_raw_fd();
                self.poller.modify(fd, token, false, true);
            }
            Out::Done { close: true } => self.teardown(token),
            Out::Done { close: false } => {
                let fd = {
                    let Some(c) = self.conns.get_mut(&token) else {
                        return;
                    };
                    if c.outbuf.is_empty() {
                        // Nothing was queued (spurious writable); leave
                        // the state machine alone.
                        if c.state != ConnState::Flushing {
                            return;
                        }
                    }
                    c.outbuf.clear();
                    c.outpos = 0;
                    c.state = ConnState::Reading;
                    c.last_activity = Instant::now();
                    c.stream.as_raw_fd()
                };
                self.poller.modify(fd, token, true, false);
                // The carry may already hold the next pipelined request.
                self.advance(token);
            }
        }
    }

    fn check_timeouts(&mut self) {
        let now = Instant::now();
        let mut timed_out_reading = Vec::new();
        let mut timed_out_flushing = Vec::new();
        for (&t, c) in &self.conns {
            match c.state {
                ConnState::Reading
                    if now.saturating_duration_since(c.last_activity) >= self.read_timeout =>
                {
                    timed_out_reading.push(t)
                }
                ConnState::Flushing
                    if now.saturating_duration_since(c.last_activity) >= self.write_timeout =>
                {
                    timed_out_flushing.push(t)
                }
                _ => {}
            }
        }
        for t in timed_out_flushing {
            self.teardown(t);
        }
        for t in timed_out_reading {
            if self.draining {
                self.teardown(t);
            } else {
                self.queue_response(
                    t,
                    Response {
                        close: true,
                        ..Response::error(408, "timed out waiting for a request")
                    },
                );
            }
        }
    }

    fn begin_drain(&mut self) {
        if self.draining {
            return;
        }
        self.draining = true;
        self.drain_deadline = Some(Instant::now() + self.read_timeout);
        if let Some(l) = self.listener.take() {
            self.poller.remove(l.as_raw_fd());
        }
        // Idle connections close now; busy ones finish their in-flight
        // request (with `Connection: close` forced) under the deadline.
        let idle: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.state == ConnState::Reading)
            .map(|(&t, _)| t)
            .collect();
        for t in idle {
            self.teardown(t);
        }
    }

    fn teardown(&mut self, token: u64) {
        if let Some(c) = self.conns.remove(&token) {
            self.poller.remove(c.stream.as_raw_fd());
            // Dropping `c` closes the socket and drops the session
            // Sender, releasing the worker at its next `recv`.
        }
    }
}

/// The per-connection worker loop: receive a request, route it, mail the
/// serialised response back to the reactor. Pins its worker for the
/// connection's lifetime, preserving the old design's `workers`-bounded
/// concurrency (and the 503-shedding the tests pin down).
/// Above this, a completed request is worth an `ARCHDSE_LOG=info` line:
/// generous against the ~µs cache-hit path, small against a stuck one.
const SLOW_REQUEST_US: u64 = 100_000;

fn session_loop(
    state: Arc<State>,
    rx: mpsc::Receiver<(u64, Request)>,
    reactor: Arc<ReactorShared>,
    token: u64,
) {
    while let Ok((req_id, req)) = rx.recv() {
        let started = Instant::now();
        // Adopt the request id for this worker thread: every flight
        // event the handler records (cache, registry, explore, ingest)
        // is tagged with it until the scope drops.
        let scope = flight::scope(req_id);
        flight::event("worker.start", format!("{} {}", req.method, req.path));
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| route(&state, &req)));
        let panicked = outcome.is_err();
        let (label, mut resp) = outcome.unwrap_or_else(|_| {
            (
                "panic",
                Response {
                    close: true,
                    ..Response::error(500, "internal server error")
                },
            )
        });
        let elapsed_us = started.elapsed().as_micros() as u64;
        flight::event(
            "worker.done",
            format!("route={label} status={} us={elapsed_us}", resp.status),
        );
        drop(scope);
        if panicked || resp.status >= 500 {
            // Automatic targeted dump: the failing request's event chain
            // to stderr, while the ring still holds it.
            let why = if panicked { "panic" } else { "5xx" };
            eprintln!("--- flight recorder dump (request {req_id}, {why}) ---");
            eprint!("{}", flight::to_jsonl(&flight::dump_for(req_id)));
            eprintln!("--- end flight recorder dump ---");
        }
        if elapsed_us >= SLOW_REQUEST_US {
            dse_obs::log!(
                info,
                "slow request {req_id}: route={label} status={} us={elapsed_us}",
                resp.status
            );
        }
        state.telemetry.record(label, resp.status, elapsed_us);
        resp.request_id = req_id;
        if !req.keep_alive || state.shutdown.load(Ordering::SeqCst) {
            resp.close = true;
        }
        let mut bytes = Vec::new();
        let _ = write_response(&mut bytes, &resp);
        let close = resp.close;
        reactor.send(ReactorMsg::Respond {
            token,
            bytes,
            close,
        });
        if close {
            return;
        }
    }
}
