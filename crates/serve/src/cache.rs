//! Sharded LRU cache for predictions.
//!
//! Keyed on `(program id, metric, canonical config encoding)` — the raw
//! 13-parameter vector, so two JSON spellings of the same configuration
//! share an entry. Sharding keeps lock contention off the hot path: a key
//! hashes to one shard and only that shard's mutex is taken. Each shard
//! evicts its own least-recently-used entry at capacity, which bounds the
//! whole cache at `shards × per-shard capacity` entries.
//!
//! Hit/miss counters are global atomics so the `/metrics` endpoint can
//! report a hit rate without touching any shard lock.

use dse_sim::Metric;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Cache key: one program's one metric at one configuration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Program id the prediction belongs to.
    pub program: String,
    /// Target metric.
    pub metric: Metric,
    /// Canonical configuration encoding: per-parameter value indices
    /// ([`dse_space::Config::to_indices`]), widened to `u64`.
    pub config: [u64; 13],
}

struct Shard {
    /// key → (value, stamp of last touch).
    map: HashMap<CacheKey, (f64, u64)>,
    /// stamp → key, ordered oldest-first for O(log n) eviction.
    order: BTreeMap<u64, CacheKey>,
    /// Monotonic per-shard recency clock.
    clock: u64,
}

impl Shard {
    fn touch(&mut self, key: &CacheKey) -> Option<f64> {
        let (value, old_stamp) = *self.map.get(key)?;
        self.clock += 1;
        let stamp = self.clock;
        self.order.remove(&old_stamp);
        self.order.insert(stamp, key.clone());
        self.map.insert(key.clone(), (value, stamp));
        Some(value)
    }

    fn insert(&mut self, key: CacheKey, value: f64, capacity: usize) {
        self.clock += 1;
        let stamp = self.clock;
        if let Some((_, old_stamp)) = self.map.insert(key.clone(), (value, stamp)) {
            self.order.remove(&old_stamp);
        } else if self.map.len() > capacity {
            // Evict the least recently used entry (smallest stamp).
            if let Some((&oldest, _)) = self.order.iter().next() {
                if let Some(victim) = self.order.remove(&oldest) {
                    self.map.remove(&victim);
                }
            }
        }
        self.order.insert(stamp, key);
    }
}

/// A sharded LRU prediction cache.
pub struct PredictionCache {
    shards: Vec<Mutex<Shard>>,
    per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PredictionCache {
    /// A cache of `shards` shards holding at most `capacity` entries in
    /// total (rounded up to a multiple of the shard count).
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `capacity` is zero.
    pub fn new(shards: usize, capacity: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(capacity > 0, "capacity must be positive");
        let per_shard = capacity.div_ceil(shards);
        Self {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        order: BTreeMap::new(),
                        clock: 0,
                    })
                })
                .collect(),
            per_shard,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Looks `key` up, refreshing its recency and counting a hit or miss.
    pub fn get(&self, key: &CacheKey) -> Option<f64> {
        let found = self.shard(key).lock().unwrap().touch(key);
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Inserts (or refreshes) a prediction, evicting the shard's LRU entry
    /// at capacity.
    pub fn insert(&self, key: CacheKey, value: f64) {
        self.shard(&key)
            .lock()
            .unwrap()
            .insert(key, value, self.per_shard);
    }

    /// Drops every entry of `(program, metric)` — required when a program
    /// is re-fitted, or its stale predictions would outlive the new
    /// combiner.
    pub fn invalidate(&self, program: &str, metric: Metric) {
        for shard in &self.shards {
            let mut s = shard.lock().unwrap();
            let stale: Vec<CacheKey> = s
                .map
                .keys()
                .filter(|k| k.program == program && k.metric == metric)
                .cloned()
                .collect();
            for key in stale {
                if let Some((_, stamp)) = s.map.remove(&key) {
                    s.order.remove(&stamp);
                }
            }
        }
    }

    /// Drops everything (used on artifact hot-reload).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut s = shard.lock().unwrap();
            s.map.clear();
            s.order.clear();
        }
    }

    /// Entries currently cached across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().map.len())
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(program: &str, n: u64) -> CacheKey {
        CacheKey {
            program: program.to_string(),
            metric: Metric::Cycles,
            config: [n; 13],
        }
    }

    #[test]
    fn get_after_insert_hits() {
        let c = PredictionCache::new(4, 64);
        assert_eq!(c.get(&key("p", 1)), None);
        c.insert(key("p", 1), 42.5);
        assert_eq!(c.get(&key("p", 1)), Some(42.5));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn distinct_programs_do_not_collide() {
        let c = PredictionCache::new(2, 16);
        c.insert(key("a", 1), 1.0);
        c.insert(key("b", 1), 2.0);
        assert_eq!(c.get(&key("a", 1)), Some(1.0));
        assert_eq!(c.get(&key("b", 1)), Some(2.0));
    }

    #[test]
    fn eviction_removes_least_recently_used() {
        // Single shard so eviction order is fully observable.
        let c = PredictionCache::new(1, 3);
        c.insert(key("p", 1), 1.0);
        c.insert(key("p", 2), 2.0);
        c.insert(key("p", 3), 3.0);
        // Touch 1 so 2 becomes the LRU; inserting 4 must evict 2.
        assert_eq!(c.get(&key("p", 1)), Some(1.0));
        c.insert(key("p", 4), 4.0);
        assert_eq!(c.get(&key("p", 2)), None, "LRU entry should be evicted");
        assert_eq!(c.get(&key("p", 1)), Some(1.0));
        assert_eq!(c.get(&key("p", 3)), Some(3.0));
        assert_eq!(c.get(&key("p", 4)), Some(4.0));
    }

    #[test]
    fn reinsert_updates_value_without_growth() {
        let c = PredictionCache::new(1, 8);
        c.insert(key("p", 1), 1.0);
        c.insert(key("p", 1), 9.0);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&key("p", 1)), Some(9.0));
    }

    #[test]
    fn invalidate_targets_one_program_metric() {
        let c = PredictionCache::new(4, 64);
        c.insert(key("a", 1), 1.0);
        c.insert(key("b", 1), 2.0);
        let mut energy = key("a", 1);
        energy.metric = Metric::Energy;
        c.insert(energy.clone(), 3.0);
        c.invalidate("a", Metric::Cycles);
        assert_eq!(c.get(&key("a", 1)), None);
        assert_eq!(c.get(&key("b", 1)), Some(2.0));
        assert_eq!(c.get(&energy), Some(3.0));
    }

    #[test]
    fn clear_empties_every_shard() {
        let c = PredictionCache::new(8, 64);
        for i in 0..32 {
            c.insert(key("p", i), i as f64);
        }
        assert!(!c.is_empty());
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn capacity_is_bounded_under_churn() {
        let c = PredictionCache::new(4, 16);
        for i in 0..1000 {
            c.insert(key("p", i), i as f64);
        }
        // div_ceil(16, 4) = 4 per shard; tolerate the one-slot overshoot
        // window inside insert.
        assert!(c.len() <= 20, "cache grew to {}", c.len());
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let c = std::sync::Arc::new(PredictionCache::new(8, 1024));
        std::thread::scope(|s| {
            for t in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for i in 0..200 {
                        let k = key("p", (t * 200 + i) % 64);
                        match c.get(&k) {
                            Some(v) => assert_eq!(v, k.config[0] as f64),
                            None => c.insert(k.clone(), k.config[0] as f64),
                        }
                    }
                });
            }
        });
        assert!(c.hits() + c.misses() >= 800);
    }
}
