//! Minimal HTTP/1.1 wire layer: request reader and response writer.
//!
//! Implements exactly the subset the prediction server needs — no chunked
//! transfer encoding, no multipart, no TLS. Requests are framed by
//! `Content-Length`; both the head and the body are size-capped so a
//! misbehaving client cannot grow server memory, and the distinction
//! between "malformed" (400), "too large" (413) and "I/O died" is kept so
//! the server can answer each correctly.

use std::io::{self, Read, Write};

/// Hard cap on the request head (request line + headers) in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Default cap on request bodies in bytes (overridable per server).
pub const DEFAULT_MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Path component of the request target (before `?`).
    pub path: String,
    /// Raw query string (after `?`), if any.
    pub query: Option<String>,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

impl Request {
    /// First value of a header (name compared case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == lower)
            .map(|(_, v)| v.as_str())
    }

    /// The value of one `key=value` pair in the query string.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.as_deref()?.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection before sending a request — the
    /// normal end of a keep-alive session, not an error to report.
    Closed,
    /// The socket read timed out waiting for (more of) a request.
    Timeout,
    /// The request was syntactically invalid (maps to `400`).
    BadRequest(String),
    /// The declared body length exceeded the server's cap (maps to `413`).
    BodyTooLarge(usize),
    /// The head grew past [`MAX_HEAD_BYTES`] (maps to `431`).
    HeadTooLarge,
    /// Transport failure mid-request.
    Io(io::Error),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Closed => write!(f, "connection closed"),
            ReadError::Timeout => write!(f, "read timed out"),
            ReadError::BadRequest(m) => write!(f, "bad request: {m}"),
            ReadError::BodyTooLarge(n) => write!(f, "request body of {n} bytes exceeds the cap"),
            ReadError::HeadTooLarge => write!(f, "request head exceeds {MAX_HEAD_BYTES} bytes"),
            ReadError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

fn classify_io(e: io::Error) -> ReadError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ReadError::Timeout,
        io::ErrorKind::UnexpectedEof
        | io::ErrorKind::ConnectionReset
        | io::ErrorKind::ConnectionAborted => ReadError::Closed,
        _ => ReadError::Io(e),
    }
}

/// Outcome of one incremental parse attempt over a byte buffer.
#[derive(Debug)]
pub enum Parsed {
    /// A complete request; the first `consumed` buffer bytes belong to it
    /// (the rest is the next pipelined request's prefix).
    Complete {
        /// The parsed request.
        req: Request,
        /// Bytes of the buffer consumed by this request (head + body).
        consumed: usize,
    },
    /// The buffer does not yet hold a complete request; read more bytes
    /// and try again.
    Partial,
}

/// Attempts to parse one request from the front of `buf` without
/// consuming it.
///
/// This is the single parser behind both front ends: the blocking
/// [`read_request`] loops `read` + `try_parse`, and the nonblocking
/// event loop calls it on each connection's input buffer as bytes
/// arrive — so the two cannot diverge in what they accept or reject.
///
/// # Errors
///
/// The same classifications as [`read_request`]: a syntactically invalid
/// head is [`ReadError::BadRequest`], a declared body beyond `max_body`
/// is [`ReadError::BodyTooLarge`] (detected from the header alone,
/// before the body arrives), and a head growing past [`MAX_HEAD_BYTES`]
/// is [`ReadError::HeadTooLarge`].
pub fn try_parse(buf: &[u8], max_body: usize) -> Result<Parsed, ReadError> {
    // Locate the blank line ending the head.
    let head_end = match find_subslice(buf, b"\r\n\r\n") {
        Some(pos) => {
            if pos > MAX_HEAD_BYTES {
                return Err(ReadError::HeadTooLarge);
            }
            pos
        }
        None => {
            if buf.len() > MAX_HEAD_BYTES {
                return Err(ReadError::HeadTooLarge);
            }
            return Ok(Parsed::Partial);
        }
    };

    let (method, target, headers, version_11) = {
        let head = std::str::from_utf8(&buf[..head_end])
            .map_err(|_| ReadError::BadRequest("head is not valid UTF-8".into()))?;
        let mut lines = head.split("\r\n");
        let request_line = lines.next().unwrap_or_default();
        let mut parts = request_line.split(' ');
        let (method, target, version) =
            match (parts.next(), parts.next(), parts.next(), parts.next()) {
                (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
                _ => {
                    return Err(ReadError::BadRequest(format!(
                        "malformed request line `{request_line}`"
                    )))
                }
            };
        if version != "HTTP/1.1" && version != "HTTP/1.0" {
            return Err(ReadError::BadRequest(format!(
                "unsupported version `{version}`"
            )));
        }

        let mut headers = Vec::new();
        for line in lines {
            let Some((name, value)) = line.split_once(':') else {
                return Err(ReadError::BadRequest(format!("malformed header `{line}`")));
            };
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
        (
            method.to_ascii_uppercase(),
            target.to_string(),
            headers,
            version == "HTTP/1.1",
        )
    };

    let connection = headers
        .iter()
        .find(|(n, _)| n == "connection")
        .map(|(_, v)| v.to_ascii_lowercase());
    let keep_alive = match connection.as_deref() {
        Some("close") => false,
        Some("keep-alive") => true,
        _ => version_11,
    };

    let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| ReadError::BadRequest(format!("bad content-length `{v}`")))?,
        None => 0,
    };
    if content_length > max_body {
        return Err(ReadError::BodyTooLarge(content_length));
    }

    let body_start = head_end + 4;
    if buf.len() < body_start + content_length {
        return Ok(Parsed::Partial);
    }
    let body = buf[body_start..body_start + content_length].to_vec();

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };

    Ok(Parsed::Complete {
        req: Request {
            method,
            path,
            query,
            headers,
            body,
            keep_alive,
        },
        consumed: body_start + content_length,
    })
}

/// Whether `buf` holds a complete request head (the `\r\n\r\n`
/// terminator) — used to phrase truncation errors precisely.
pub(crate) fn head_complete(buf: &[u8]) -> bool {
    find_subslice(buf, b"\r\n\r\n").is_some()
}

/// Reads and parses one request from `stream`.
///
/// `carry` holds bytes read past the previous request on the same
/// connection (keep-alive pipelining); leftover bytes after this request's
/// body are pushed back into it. Implemented as a blocking `read` loop
/// over [`try_parse`], so the blocking and event-loop front ends share
/// one set of parsing semantics.
///
/// # Errors
///
/// See [`ReadError`]. On any error the connection should be closed (after
/// writing the matching status for the `BadRequest` / `BodyTooLarge` /
/// `HeadTooLarge` cases).
pub fn read_request(
    stream: &mut impl Read,
    carry: &mut Vec<u8>,
    max_body: usize,
) -> Result<Request, ReadError> {
    let mut buf = std::mem::take(carry);
    let mut chunk = [0u8; 4096];
    loop {
        match try_parse(&buf, max_body)? {
            Parsed::Complete { req, consumed } => {
                // Push back bytes belonging to the next pipelined request.
                *carry = buf.split_off(consumed);
                return Ok(req);
            }
            Parsed::Partial => {
                let n = stream.read(&mut chunk).map_err(classify_io)?;
                if n == 0 {
                    if buf.is_empty() {
                        return Err(ReadError::Closed);
                    }
                    let what = if head_complete(&buf) { "body" } else { "head" };
                    return Err(ReadError::BadRequest(format!("truncated request {what}")));
                }
                buf.extend_from_slice(&chunk[..n]);
            }
        }
    }
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// An HTTP response about to be written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Body bytes.
    pub body: Vec<u8>,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Whether to advertise `Connection: close`.
    pub close: bool,
    /// Request id echoed as `x-archdse-request-id` (0 = omit the
    /// header). Assigned by the session worker from the id the reactor
    /// attached at dispatch; handlers never set it themselves.
    pub request_id: u64,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            body: body.into_bytes(),
            content_type: "application/json",
            close: false,
            request_id: 0,
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: String) -> Self {
        Self {
            status,
            body: body.into_bytes(),
            content_type: "text/plain; charset=utf-8",
            close: false,
            request_id: 0,
        }
    }

    /// A JSON error envelope `{"error": "..."}`.
    pub fn error(status: u16, message: &str) -> Self {
        let mut body = String::from("{\"error\":");
        dse_util::json::Json::Str(message.to_string()).write(&mut body);
        body.push('}');
        Self::json(status, body)
    }
}

/// The reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serialises `resp` onto `stream`.
///
/// # Errors
///
/// Propagates transport failures.
pub fn write_response(stream: &mut impl Write, resp: &Response) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len()
    );
    if resp.close {
        head.push_str("connection: close\r\n");
    }
    if resp.request_id != 0 {
        head.push_str(&format!("x-archdse-request-id: {}\r\n", resp.request_id));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&resp.body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Result<Request, ReadError> {
        let mut carry = Vec::new();
        read_request(&mut text.as_bytes(), &mut carry, DEFAULT_MAX_BODY_BYTES)
    }

    #[test]
    fn parses_get_with_query() {
        let r =
            parse("GET /v1/configs?limit=32&metric=cycles HTTP/1.1\r\nhost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/v1/configs");
        assert_eq!(r.query_param("limit"), Some("32"));
        assert_eq!(r.query_param("metric"), Some("cycles"));
        assert!(r.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_post_with_body() {
        let r = parse("POST /v1/predict HTTP/1.1\r\ncontent-length: 7\r\n\r\n{\"a\":1}").unwrap();
        assert_eq!(r.body, b"{\"a\":1}");
        assert_eq!(r.header("Content-Length"), Some("7"));
    }

    #[test]
    fn connection_close_disables_keep_alive() {
        let r = parse("GET / HTTP/1.1\r\nconnection: close\r\n\r\n").unwrap();
        assert!(!r.keep_alive);
        let r10 = parse("GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!r10.keep_alive, "HTTP/1.0 defaults to close");
    }

    #[test]
    fn malformed_request_line_is_bad_request() {
        for bad in ["GARBAGE\r\n\r\n", "GET /\r\n\r\n", "GET / HTTP/2.0\r\n\r\n"] {
            match parse(bad) {
                Err(ReadError::BadRequest(_)) => {}
                other => panic!("{bad:?} should be BadRequest, got {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_body_is_rejected_before_reading_it() {
        let mut carry = Vec::new();
        let text = "POST / HTTP/1.1\r\ncontent-length: 999999999\r\n\r\n";
        match read_request(&mut text.as_bytes(), &mut carry, 1024) {
            Err(ReadError::BodyTooLarge(n)) => assert_eq!(n, 999_999_999),
            other => panic!("expected BodyTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn oversized_head_is_rejected() {
        let text = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(MAX_HEAD_BYTES + 1));
        match parse(&text) {
            Err(ReadError::HeadTooLarge) => {}
            other => panic!("expected HeadTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn empty_stream_is_closed_not_error() {
        match parse("") {
            Err(ReadError::Closed) => {}
            other => panic!("expected Closed, got {other:?}"),
        }
    }

    #[test]
    fn pipelined_requests_carry_over() {
        let text = "POST /a HTTP/1.1\r\ncontent-length: 2\r\n\r\nhiGET /b HTTP/1.1\r\n\r\n";
        let mut carry = Vec::new();
        let mut reader = text.as_bytes();
        let first = read_request(&mut reader, &mut carry, 1024).unwrap();
        assert_eq!(first.path, "/a");
        assert_eq!(first.body, b"hi");
        let second = read_request(&mut reader, &mut carry, 1024).unwrap();
        assert_eq!(second.path, "/b");
    }

    #[test]
    fn response_writes_status_and_length() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::error(404, "no such route")).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(text.contains("content-length: 25"));
        assert!(text.ends_with("{\"error\":\"no such route\"}"));
        assert!(
            !text.contains("x-archdse-request-id"),
            "id 0 must omit the header"
        );
    }

    #[test]
    fn response_echoes_request_id_header() {
        let mut out = Vec::new();
        let resp = Response {
            request_id: 42,
            ..Response::json(200, "{}".to_string())
        };
        write_response(&mut out, &resp).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("x-archdse-request-id: 42\r\n"), "{text}");
    }
}
