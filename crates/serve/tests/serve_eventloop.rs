//! Event-loop front-end tests: the failure modes a nonblocking reactor
//! must absorb that a thread-per-connection server never sees — slow
//! clients dribbling bytes, half-sent requests, oversized heads arriving
//! in pieces, pipelined bursts, and responses larger than the socket
//! buffer flushed to a reader that is in no hurry.

use dse_core::dataset::{DatasetSpec, SuiteDataset};
use dse_ml::MlpConfig;
use dse_serve::client::Client;
use dse_serve::registry::{save_artifacts, ModelRegistry};
use dse_serve::server::{Server, ServerConfig};
use dse_sim::Metric;
use dse_util::json::{FromJson, Json, ToJson};
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

const N_CONFIGS: usize = 40;
const T: usize = 30;
const SEED: u64 = 17;

struct Setup {
    dir: PathBuf,
    ds5: SuiteDataset,
}

fn setup() -> &'static Setup {
    static SETUP: OnceLock<Setup> = OnceLock::new();
    SETUP.get_or_init(|| {
        let profiles: Vec<_> = dse_workload::suites::spec2000()
            .into_iter()
            .take(5)
            .collect();
        let spec = DatasetSpec {
            n_configs: N_CONFIGS,
            ..DatasetSpec::tiny()
        };
        let ds5 = SuiteDataset::generate(&profiles, &spec);
        let ds4 = SuiteDataset {
            spec: ds5.spec,
            configs: ds5.configs.clone(),
            benchmarks: ds5.benchmarks[..4].to_vec(),
        };
        let dir = std::env::temp_dir().join(format!("dse-serve-evl-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        save_artifacts(
            &dir,
            &ds4,
            &[Metric::Cycles, Metric::Energy],
            T,
            &MlpConfig::default(),
            SEED,
        )
        .unwrap();
        Setup { dir, ds5 }
    })
}

fn start_server(cfg: &ServerConfig) -> (Server, String) {
    let registry = Arc::new(ModelRegistry::open(&setup().dir).unwrap());
    let server = Server::start(registry, cfg).unwrap();
    let addr = server.local_addr().to_string();
    (server, addr)
}

fn connect(addr: &str) -> TcpStream {
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
}

/// A slow-loris client parks in a reactor buffer, not on a worker: with a
/// single worker the server keeps serving others, and the loris itself is
/// eventually cut off with `408`.
#[test]
fn slow_loris_neither_starves_workers_nor_lives_forever() {
    let cfg = ServerConfig {
        workers: 1,
        backlog: 4,
        read_timeout: Duration::from_millis(600),
        ..ServerConfig::default()
    };
    let (server, addr) = start_server(&cfg);

    let mut loris = connect(&addr);
    loris.write_all(b"GET /healthz HTT").unwrap();

    // The loris has not produced a complete request, so it holds no
    // worker; a well-behaved client gets served immediately.
    let mut ok = connect(&addr);
    ok.write_all(b"GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n")
        .unwrap();
    let mut resp = Vec::new();
    ok.read_to_end(&mut resp).unwrap();
    let resp = String::from_utf8_lossy(&resp);
    assert!(resp.starts_with("HTTP/1.1 200 "), "got: {resp}");

    // Dribbling a byte resets the idle clock once...
    std::thread::sleep(Duration::from_millis(300));
    loris.write_all(b"P").unwrap();
    // ...but silence past the read timeout gets the loris 408 and closed.
    let mut out = Vec::new();
    loris.read_to_end(&mut out).unwrap();
    let out = String::from_utf8_lossy(&out);
    assert!(out.starts_with("HTTP/1.1 408 "), "got: {out}");
    server.stop();
}

#[test]
fn truncated_head_and_truncated_body_get_400() {
    let (server, addr) = start_server(&ServerConfig::default());

    let mut stream = connect(&addr);
    stream.write_all(b"GET /healthz HT").unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    let mut out = Vec::new();
    stream.read_to_end(&mut out).unwrap();
    let out = String::from_utf8_lossy(&out);
    assert!(out.starts_with("HTTP/1.1 400 "), "got: {out}");
    assert!(out.contains("truncated request head"), "got: {out}");

    let mut stream = connect(&addr);
    stream
        .write_all(b"POST /v1/predict HTTP/1.1\r\ncontent-length: 64\r\n\r\n{\"par")
        .unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    let mut out = Vec::new();
    stream.read_to_end(&mut out).unwrap();
    let out = String::from_utf8_lossy(&out);
    assert!(out.starts_with("HTTP/1.1 400 "), "got: {out}");
    assert!(out.contains("truncated request body"), "got: {out}");

    // A connection that closes without sending anything is not an error —
    // no response, no telemetry.
    let stream = connect(&addr);
    drop(stream);
    server.stop();
}

/// The head cap fires while the head is still arriving in pieces — the
/// reactor must not wait for a terminator that will never come.
#[test]
fn oversized_head_arriving_in_chunks_gets_431() {
    let (server, addr) = start_server(&ServerConfig::default());
    let mut stream = connect(&addr);
    stream.write_all(b"GET /healthz HTTP/1.1\r\n").unwrap();
    let filler = format!("x-filler: {}\r\n", "a".repeat(1000));
    // 24 KB of headers with no terminating blank line (cap is 16 KB). The
    // server answers 431 mid-stream and closes; later writes may fail
    // with EPIPE once the RST arrives, which is part of the point.
    for _ in 0..24 {
        if stream.write_all(filler.as_bytes()).is_err() {
            break;
        }
    }
    let mut out = Vec::new();
    let _ = stream.read_to_end(&mut out);
    let out = String::from_utf8_lossy(&out);
    assert!(out.starts_with("HTTP/1.1 431 "), "got: {out}");
    server.stop();
}

/// A burst of pipelined requests written in one packet is answered
/// one-by-one, in order, on one connection.
#[test]
fn pipelined_burst_is_answered_in_order() {
    let (server, addr) = start_server(&ServerConfig::default());
    let mut stream = connect(&addr);
    let burst = b"GET /healthz HTTP/1.1\r\n\r\n\
                  GET /nope HTTP/1.1\r\n\r\n\
                  GET /v1/models HTTP/1.1\r\n\r\n\
                  GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n";
    stream.write_all(burst).unwrap();
    let mut out = Vec::new();
    stream.read_to_end(&mut out).unwrap();
    let out = String::from_utf8_lossy(&out);
    // Responses are back-to-back (no separator after a JSON body), so
    // collect the status code following each "HTTP/1.1 " occurrence.
    let statuses: Vec<&str> = out
        .match_indices("HTTP/1.1 ")
        .map(|(pos, pat)| &out[pos + pat.len()..pos + pat.len() + 3])
        .collect();
    assert_eq!(
        statuses,
        ["200", "404", "200", "200"],
        "wrong response sequence in: {out}"
    );
    server.stop();
}

/// Requests spread over several reactors all get answered (round-robin
/// hand-off across reactor threads works).
#[test]
fn many_reactors_share_the_accept_load() {
    let cfg = ServerConfig {
        reactors: 3,
        workers: 4,
        ..ServerConfig::default()
    };
    let (server, addr) = start_server(&cfg);
    for _ in 0..9 {
        let mut stream = connect(&addr);
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n")
            .unwrap();
        let mut out = Vec::new();
        stream.read_to_end(&mut out).unwrap();
        assert!(
            String::from_utf8_lossy(&out).starts_with("HTTP/1.1 200 "),
            "reactor hand-off dropped a connection"
        );
    }
    server.stop();
}

/// A response several times larger than the socket send buffer reaches a
/// reader that sleeps before consuming it — the reactor's partial-write
/// (`Flushing`) path — and every value is bit-identical to the scalar
/// endpoint computed fresh after a cache-invalidating refit.
#[test]
fn big_batched_response_reaches_a_slow_reader_bit_identical() {
    let s = setup();
    let metric = Metric::Cycles;
    let cfg = ServerConfig {
        max_body: 16 * 1024 * 1024,
        ..ServerConfig::default()
    };
    let (server, addr) = start_server(&cfg);
    let mut client = Client::new(addr.clone());

    let target = &s.ds5.benchmarks[4];
    let responses: Vec<(usize, f64)> = (0..32)
        .map(|i| (i, target.metrics[i].get(metric)))
        .collect();
    client.fit(&target.name, metric, &responses).unwrap();

    // 20 000 rows cycling the 40 shared configs: a multi-hundred-KB
    // response, computed by the batched matrix–matrix forward.
    const ROWS: usize = 20_000;
    let configs_json: Vec<Json> = (0..ROWS)
        .map(|i| s.ds5.configs[i % N_CONFIGS].to_json())
        .collect();
    let body = dse_util::json::to_string(&Json::obj([
        ("program", target.name.to_json()),
        ("metric", metric.to_json()),
        ("configs", Json::Arr(configs_json)),
    ]));
    let request = format!(
        "POST /v1/predict_batch HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{}",
        body.len(),
        body
    );

    let mut stream = connect(&addr);
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    // Sleep before reading: the server's first write fills the kernel
    // buffer and the connection parks in Flushing until we drain it.
    std::thread::sleep(Duration::from_millis(800));
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let raw = String::from_utf8_lossy(&raw);
    assert!(
        raw.starts_with("HTTP/1.1 200 "),
        "got: {}",
        &raw[..raw.len().min(200)]
    );
    let json_body = raw.split("\r\n\r\n").nth(1).unwrap();
    let parsed = Json::parse(json_body).unwrap();
    let values = parsed
        .field("values")
        .and_then(Vec::<f64>::from_json)
        .unwrap();
    assert_eq!(values.len(), ROWS);

    // Refit with the same responses: same combiner, but the cache is
    // invalidated — the scalar endpoint now recomputes from scratch.
    client.fit(&target.name, metric, &responses).unwrap();
    for (i, config) in s.ds5.configs.iter().enumerate() {
        let (scalar, cached) = client.predict(&target.name, metric, config).unwrap();
        assert!(!cached, "config {i} should be recomputed after refit");
        for row in (i..ROWS).step_by(N_CONFIGS) {
            assert_eq!(
                values[row].to_bits(),
                scalar.to_bits(),
                "row {row} (config {i}): batched {:e} != scalar {scalar:e}",
                values[row]
            );
        }
    }
    server.stop();
}

/// Every persisted artifact model predicts bit-identically through the
/// batched forward — the registry path the server and explorer use.
#[test]
fn persisted_artifact_models_are_bit_identical_batched() {
    let s = setup();
    let registry = ModelRegistry::open(&s.dir).unwrap();
    let features = s.ds5.features();
    let flat: Vec<f64> = features.iter().flatten().copied().collect();
    for metric in [Metric::Cycles, Metric::Energy] {
        let artifact = registry.artifact(metric).unwrap();
        let target = &s.ds5.benchmarks[4];
        let idxs: Vec<usize> = (0..32).collect();
        let values: Vec<f64> = idxs
            .iter()
            .map(|&i| target.metrics[i].get(metric))
            .collect();
        let design: Vec<Vec<f64>> = idxs.iter().map(|&i| artifact.design[i].clone()).collect();
        let reg = dse_core::fit_combiner(&design, &values);
        let mut batched = vec![0.0; features.len()];
        artifact
            .offline
            .predict_with_batch_into(&reg, &flat, features.len(), &mut batched);
        for (i, row) in features.iter().enumerate() {
            let scalar = artifact.offline.predict_with(&reg, row);
            assert_eq!(
                scalar.to_bits(),
                batched[i].to_bits(),
                "{metric:?} config {i}: scalar {scalar:e} != batched {:e}",
                batched[i]
            );
        }
    }
}
