//! Integration tests for the workload ingestion surface: `GET`/`POST
//! /v1/workloads`, store-backed hot reload, and the headline guarantee
//! that a program the suites have never seen — synthesized or imported
//! over HTTP — can be fitted and predicted end to end.

use dse_core::dataset::{DatasetSpec, SuiteDataset};
use dse_ingest::{export_profile, synth_profile, WorkloadStore};
use dse_ml::MlpConfig;
use dse_serve::client::Client;
use dse_serve::registry::{save_artifacts, ModelRegistry};
use dse_serve::server::{Server, ServerConfig};
use dse_sim::{simulate, Metric, SimOptions};
use dse_util::json::FromJson;
use dse_workload::TraceGenerator;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

const N_CONFIGS: usize = 40;
const T: usize = 30;
const SEED: u64 = 13;

struct Setup {
    dir: PathBuf,
    ds: SuiteDataset,
}

/// One shared training run: 3 SPEC programs, artifacts for cycles.
fn setup() -> &'static Setup {
    static SETUP: OnceLock<Setup> = OnceLock::new();
    SETUP.get_or_init(|| {
        let profiles: Vec<_> = dse_workload::suites::spec2000()
            .into_iter()
            .take(3)
            .collect();
        let spec = DatasetSpec {
            n_configs: N_CONFIGS,
            ..DatasetSpec::tiny()
        };
        let ds = SuiteDataset::generate(&profiles, &spec);
        let dir = std::env::temp_dir().join(format!("dse-serve-ingest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        save_artifacts(&dir, &ds, &[Metric::Cycles], T, &MlpConfig::default(), SEED).unwrap();
        Setup { dir, ds }
    })
}

/// Fresh empty workload store directory for one test.
fn store_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("dse-serve-ingest-wl-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_server(workloads_dir: Option<&PathBuf>) -> (Server, Client) {
    let registry = Arc::new(ModelRegistry::open(&setup().dir).unwrap());
    let cfg = ServerConfig {
        workloads_dir: workloads_dir.map(|p| p.to_string_lossy().into_owned()),
        ..ServerConfig::default()
    };
    let server = Server::start(registry, &cfg).unwrap();
    let addr = server.local_addr().to_string();
    (server, Client::new(addr))
}

#[test]
fn workloads_list_works_and_post_is_refused_without_a_store() {
    let (server, mut client) = start_server(None);
    let resp = client.get("/v1/workloads").unwrap();
    assert_eq!(resp.status, 200);
    let body = resp.json().unwrap();
    let total = body.field("total").and_then(usize::from_json).unwrap();
    let imported = body.field("imported").and_then(usize::from_json).unwrap();
    assert_eq!(imported, 0);
    assert_eq!(
        total,
        dse_workload::suites::all_benchmarks().len(),
        "no store: the catalog is exactly the builtins"
    );

    let doc = export_profile(&synth_profile(3, 0));
    let resp = client.post("/v1/workloads", &doc).unwrap();
    assert_eq!(resp.status, 409, "got: {:?}", resp.text());
    server.stop();
}

#[test]
fn workload_import_lifecycle_over_http() {
    let dir = store_dir("lifecycle");
    let (server, mut client) = start_server(Some(&dir));

    // Import a synthesized profile: 201, echoed name/suite, count 1.
    let doc = export_profile(&synth_profile(41, 2));
    let resp = client.post("/v1/workloads", &doc).unwrap();
    assert_eq!(resp.status, 201, "got: {:?}", resp.text());
    let body = resp.json().unwrap();
    assert_eq!(
        body.field("name").and_then(String::from_json).unwrap(),
        "synth-41-2"
    );
    assert_eq!(
        body.field("workloads").and_then(usize::from_json).unwrap(),
        1
    );

    // The listing now carries it, flagged as imported.
    let list = client.get("/v1/workloads").unwrap().json().unwrap();
    assert_eq!(
        list.field("imported").and_then(usize::from_json).unwrap(),
        1
    );
    let names: Vec<String> = list
        .field("workloads")
        .and_then(|v| v.as_array().map(<[_]>::to_vec))
        .unwrap()
        .iter()
        .map(|w| w.field("name").and_then(String::from_json).unwrap())
        .collect();
    assert!(names.contains(&"synth-41-2".to_string()));

    // Re-importing the same name, or shadowing a builtin, is a conflict.
    let resp = client.post("/v1/workloads", &doc).unwrap();
    assert_eq!(resp.status, 409, "got: {:?}", resp.text());
    let mut builtin = synth_profile(41, 3);
    builtin.name = "gzip";
    let resp = client
        .post("/v1/workloads", &export_profile(&builtin))
        .unwrap();
    assert_eq!(resp.status, 409, "got: {:?}", resp.text());

    // Parse errors are 400, validation errors 422.
    let resp = client.post("/v1/workloads", "{not json").unwrap();
    assert_eq!(resp.status, 400, "got: {:?}", resp.text());
    let bad =
        export_profile(&synth_profile(41, 4)).replace("\"kind\":\"profile\"", "\"kind\":\"trace\"");
    let resp = client.post("/v1/workloads", &bad).unwrap();
    assert_eq!(resp.status, 400, "got: {:?}", resp.text());
    let invalid =
        export_profile(&synth_profile(41, 5)).replace("\"hot_frac\":0.", "\"hot_frac\":-0.");
    let resp = client.post("/v1/workloads", &invalid).unwrap();
    assert_eq!(resp.status, 422, "got: {:?}", resp.text());

    // Only the one good import survived, and it is on disk: a second
    // store handle opened on the same directory sees it.
    let reopened = WorkloadStore::open(&dir).unwrap();
    assert_eq!(reopened.len(), 1);
    assert!(reopened.find("synth-41-2").is_some());
    server.stop();
}

#[test]
fn reload_picks_up_out_of_band_store_changes() {
    let dir = store_dir("reload");
    let (server, mut client) = start_server(Some(&dir));
    assert_eq!(server.workload_count(), Some(0));

    // A second handle writes to the same directory behind the server's
    // back — the operational "scp a workload onto the box" path.
    let side = WorkloadStore::open(&dir).unwrap();
    side.add(&synth_profile(42, 0)).unwrap();

    let resp = client.post("/v1/reload", "").unwrap();
    assert_eq!(resp.status, 200, "got: {:?}", resp.text());
    let body = resp.json().unwrap();
    assert_eq!(
        body.field("workloads").and_then(usize::from_json).unwrap(),
        1
    );
    assert_eq!(server.workload_count(), Some(1));
    let list = client.get("/v1/workloads").unwrap().json().unwrap();
    assert_eq!(
        list.field("imported").and_then(usize::from_json).unwrap(),
        1
    );
    server.stop();
}

/// The headline ingestion guarantee: a program that exists in no suite —
/// synthesized by the fuzzer, imported over HTTP — is fitted from
/// simulated responses on the server's design sample and predicted,
/// bit-identically to the library path on the same artifacts.
#[test]
fn external_program_fit_predict_end_to_end() {
    let s = setup();
    let dir = store_dir("e2e");
    let (server, mut client) = start_server(Some(&dir));
    let external = synth_profile(7, 0);
    let resp = client
        .post("/v1/workloads", &export_profile(&external))
        .unwrap();
    assert_eq!(resp.status, 201, "got: {:?}", resp.text());

    // Simulate the external program on the first 16 configurations of
    // the server's persisted design sample — the R responses the paper's
    // method needs to place a new program in the trained space.
    let trace = TraceGenerator::new(&external).generate(12_000);
    let opts = SimOptions::with_warmup(2_000);
    let responses: Vec<(usize, f64)> = s.ds.configs[..16]
        .iter()
        .enumerate()
        .map(|(i, cfg)| (i, simulate(cfg, &trace, opts).cycles))
        .collect();

    let summary = client
        .fit(&external.name, Metric::Cycles, &responses)
        .unwrap();
    assert_eq!(
        summary
            .field("responses")
            .and_then(usize::from_json)
            .unwrap(),
        16
    );

    // Server predictions must equal the library path on the same
    // artifacts, bit for bit — imported programs get no special path.
    let registry = ModelRegistry::open(&s.dir).unwrap();
    registry
        .fit(&external.name, Metric::Cycles, &responses)
        .unwrap();
    for cfg in &s.ds.configs[..8] {
        let expected = registry
            .predict(&external.name, Metric::Cycles, cfg)
            .unwrap();
        let (got, _) = client.predict(&external.name, Metric::Cycles, cfg).unwrap();
        assert_eq!(got.to_bits(), expected.to_bits());
        let (again, cached) = client.predict(&external.name, Metric::Cycles, cfg).unwrap();
        assert!(cached);
        assert_eq!(again.to_bits(), expected.to_bits());
    }

    // The fitted external program is explorable: the job resolves its
    // profile from the workload store, not the builtin suites.
    let body = format!(
        "{{\"program\":\"{}\",\"objective\":\"cycles\",\
         \"budget\":{{\"rounds\":1,\"candidates_per_round\":8,\
         \"sims_per_round\":1,\"archive_cap\":4,\"seed\":3}}}}",
        external.name
    );
    let resp = client.post("/v1/explore", &body).unwrap();
    assert_eq!(resp.status, 202, "got: {:?}", resp.text());
    let id = resp
        .json()
        .unwrap()
        .field("id")
        .and_then(String::from_json)
        .unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
    let done = loop {
        let body = client
            .get(&format!("/v1/explore/{id}"))
            .unwrap()
            .json()
            .unwrap();
        let status = body.field("status").and_then(String::from_json).unwrap();
        if status != "queued" && status != "running" {
            break body;
        }
        assert!(std::time::Instant::now() < deadline, "job never settled");
        std::thread::sleep(std::time::Duration::from_millis(20));
    };
    assert_eq!(
        done.field("status").and_then(String::from_json).unwrap(),
        "done",
        "body: {}",
        dse_util::json::to_string(&done)
    );
    server.stop();
}
