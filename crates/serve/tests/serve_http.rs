//! Integration tests against a live in-process server: HTTP edge cases,
//! keep-alive, concurrent cache behaviour, and the end-to-end guarantee
//! that the serving path is bit-identical to the library path.

use dse_core::dataset::{DatasetSpec, SuiteDataset};
use dse_core::OfflineModel;
use dse_ml::MlpConfig;
use dse_serve::client::Client;
use dse_serve::registry::{save_artifacts, ModelRegistry};
use dse_serve::server::{Server, ServerConfig};
use dse_sim::Metric;
use dse_util::json::{FromJson, ToJson};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

const N_CONFIGS: usize = 40;
const T: usize = 30;
const SEED: u64 = 11;

/// Shared expensive setup: one 5-program dataset, artifacts trained on the
/// first 4 programs, the 5th held out as the "new" program.
struct Setup {
    dir: PathBuf,
    /// All 5 programs (4 training + 1 held out), one shared sample.
    ds5: SuiteDataset,
    /// The 4 training programs over the same sample.
    ds4: SuiteDataset,
}

fn setup() -> &'static Setup {
    static SETUP: OnceLock<Setup> = OnceLock::new();
    SETUP.get_or_init(|| {
        let profiles: Vec<_> = dse_workload::suites::spec2000()
            .into_iter()
            .take(5)
            .collect();
        let spec = DatasetSpec {
            n_configs: N_CONFIGS,
            ..DatasetSpec::tiny()
        };
        let ds5 = SuiteDataset::generate(&profiles, &spec);
        let ds4 = SuiteDataset {
            spec: ds5.spec,
            configs: ds5.configs.clone(),
            benchmarks: ds5.benchmarks[..4].to_vec(),
        };
        let dir = std::env::temp_dir().join(format!("dse-serve-e2e-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        save_artifacts(
            &dir,
            &ds4,
            &[Metric::Cycles],
            T,
            &MlpConfig::default(),
            SEED,
        )
        .unwrap();
        Setup { dir, ds5, ds4 }
    })
}

fn start_server(cfg: &ServerConfig) -> (Server, String) {
    let registry = Arc::new(ModelRegistry::open(&setup().dir).unwrap());
    let server = Server::start(registry, cfg).unwrap();
    let addr = server.local_addr().to_string();
    (server, addr)
}

/// Sends raw bytes on a fresh connection and returns the raw response.
fn raw_exchange(addr: &str, bytes: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    stream.write_all(bytes).unwrap();
    let mut out = Vec::new();
    let _ = stream.read_to_end(&mut out);
    String::from_utf8_lossy(&out).into_owned()
}

#[test]
fn malformed_request_line_gets_400() {
    let (server, addr) = start_server(&ServerConfig::default());
    let resp = raw_exchange(&addr, b"THIS IS NOT HTTP\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 400 "), "got: {resp}");
    server.stop();
}

#[test]
fn unknown_route_gets_404_and_known_route_wrong_method_gets_405() {
    let (server, addr) = start_server(&ServerConfig::default());
    let resp = raw_exchange(&addr, b"GET /nope HTTP/1.1\r\nconnection: close\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 404 "), "got: {resp}");
    let resp = raw_exchange(
        &addr,
        b"GET /v1/predict HTTP/1.1\r\nconnection: close\r\n\r\n",
    );
    assert!(resp.starts_with("HTTP/1.1 405 "), "got: {resp}");
    server.stop();
}

#[test]
fn oversized_body_gets_413_without_reading_it() {
    let cfg = ServerConfig {
        max_body: 1024,
        ..ServerConfig::default()
    };
    let (server, addr) = start_server(&cfg);
    // Declare a 10 MB body but never send it: the server must answer from
    // the Content-Length header alone.
    let resp = raw_exchange(
        &addr,
        b"POST /v1/predict HTTP/1.1\r\ncontent-length: 10485760\r\n\r\n",
    );
    assert!(resp.starts_with("HTTP/1.1 413 "), "got: {resp}");
    server.stop();
}

#[test]
fn keep_alive_serves_multiple_requests_on_one_connection() {
    let (server, addr) = start_server(&ServerConfig::default());
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    // Frames one full response (head + Content-Length body), carrying any
    // over-read bytes to the next call so pipelined reads stay aligned.
    let mut carry: Vec<u8> = Vec::new();
    let mut read_one = |stream: &mut TcpStream| -> String {
        let mut buf = [0u8; 4096];
        let head_end = loop {
            if let Some(pos) = carry.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos + 4;
            }
            let n = stream.read(&mut buf).unwrap();
            assert!(n > 0, "server closed the connection mid-response");
            carry.extend_from_slice(&buf[..n]);
        };
        let head = String::from_utf8_lossy(&carry[..head_end]).into_owned();
        let body_len = head
            .lines()
            .find_map(|l| {
                l.to_ascii_lowercase()
                    .strip_prefix("content-length:")
                    .map(str::to_string)
            })
            .map_or(0, |v| v.trim().parse::<usize>().unwrap());
        while carry.len() < head_end + body_len {
            let n = stream.read(&mut buf).unwrap();
            assert!(n > 0, "server closed the connection mid-body");
            carry.extend_from_slice(&buf[..n]);
        }
        let resp = String::from_utf8_lossy(&carry[..head_end + body_len]).into_owned();
        carry.drain(..head_end + body_len);
        resp
    };
    for _ in 0..3 {
        stream.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        let resp = read_one(&mut stream);
        assert!(resp.starts_with("HTTP/1.1 200 "), "got: {resp}");
        assert!(!resp.contains("connection: close"));
    }
    // Now ask for close; the server should honour it and drop the socket.
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n")
        .unwrap();
    let resp = read_one(&mut stream);
    assert!(resp.contains("connection: close"));
    let mut rest = Vec::new();
    let _ = stream.read_to_end(&mut rest);
    assert!(rest.is_empty(), "connection should be closed after close");
    server.stop();
}

#[test]
fn client_reuses_its_connection() {
    let (server, addr) = start_server(&ServerConfig::default());
    let mut client = Client::new(addr);
    for _ in 0..5 {
        let health = client.healthz().unwrap();
        assert_eq!(
            health.field("status").and_then(String::from_json).unwrap(),
            "ok"
        );
    }
    server.stop();
}

/// The headline guarantee: train → persist → serve → fit over HTTP with
/// R = 32 responses → predictions match the dse-core library path
/// bit for bit, both on the cold path and through the LRU cache.
#[test]
fn end_to_end_predictions_match_library_bit_for_bit() {
    let s = setup();
    let metric = Metric::Cycles;

    // Library path: the same training run save_artifacts performed, fitted
    // on the held-out program's first 32 responses.
    let train_rows: Vec<usize> = (0..4).collect();
    let offline = OfflineModel::train(&s.ds4, &train_rows, metric, T, &MlpConfig::default(), SEED);
    let idxs: Vec<usize> = (0..32).collect();
    let target = &s.ds5.benchmarks[4];
    let values: Vec<f64> = idxs
        .iter()
        .map(|&i| target.metrics[i].get(metric))
        .collect();
    let library = offline.fit_responses(&s.ds4, &idxs, &values);
    let features = s.ds5.features();

    // Serving path: same artifacts, same responses, over HTTP.
    let (server, addr) = start_server(&ServerConfig::default());
    let mut client = Client::new(addr);
    let responses: Vec<(usize, f64)> = idxs.iter().map(|&i| (i, values[i])).collect();
    let summary = client.fit(&target.name, metric, &responses).unwrap();
    assert_eq!(
        summary
            .field("responses")
            .and_then(usize::from_json)
            .unwrap(),
        32
    );

    for (i, config) in s.ds5.configs.iter().enumerate() {
        let expected = library.predict(&features[i]);
        let (cold, cached_cold) = client.predict(&target.name, metric, config).unwrap();
        assert!(!cached_cold, "first lookup of config {i} cannot be cached");
        assert_eq!(
            cold.to_bits(),
            expected.to_bits(),
            "config {i}: server {cold:e} != library {expected:e}"
        );
        // Second lookup must come from the LRU cache, still bit-identical.
        let (warm, cached_warm) = client.predict(&target.name, metric, config).unwrap();
        assert!(
            cached_warm,
            "second lookup of config {i} should hit the cache"
        );
        assert_eq!(warm.to_bits(), expected.to_bits());
    }
    assert_eq!(server.cache().hits(), N_CONFIGS as u64);

    // The batch endpoint agrees too (fresh program fit → cache invalidated,
    // so half the batch is computed, half cached after a warm-up call).
    let batch = client
        .predict_batch(&target.name, metric, &s.ds5.configs)
        .unwrap();
    for (i, value) in batch.iter().enumerate() {
        assert_eq!(value.to_bits(), library.predict(&features[i]).to_bits());
    }
    server.stop();
}

#[test]
fn refit_invalidates_cached_predictions() {
    let s = setup();
    let metric = Metric::Cycles;
    let (server, addr) = start_server(&ServerConfig::default());
    let mut client = Client::new(addr);
    let target = &s.ds5.benchmarks[4];
    let r16: Vec<(usize, f64)> = (0..16)
        .map(|i| (i, target.metrics[i].get(metric)))
        .collect();
    let r32: Vec<(usize, f64)> = (0..32)
        .map(|i| (i, target.metrics[i].get(metric)))
        .collect();

    client.fit(&target.name, metric, &r16).unwrap();
    let (v16, _) = client
        .predict(&target.name, metric, &s.ds5.configs[35])
        .unwrap();
    let (_, cached) = client
        .predict(&target.name, metric, &s.ds5.configs[35])
        .unwrap();
    assert!(cached);

    // Refit with more responses: the cached value must not survive.
    client.fit(&target.name, metric, &r32).unwrap();
    let (v32, cached) = client
        .predict(&target.name, metric, &s.ds5.configs[35])
        .unwrap();
    assert!(!cached, "refit must invalidate the cache");
    assert_ne!(
        v16.to_bits(),
        v32.to_bits(),
        "a different fit should move the prediction"
    );
    server.stop();
}

#[test]
fn concurrent_clients_share_the_cache_and_agree() {
    let s = setup();
    let metric = Metric::Cycles;
    let (server, addr) = start_server(&ServerConfig::default());
    let mut client = Client::new(addr.clone());
    let target = &s.ds5.benchmarks[4];
    let responses: Vec<(usize, f64)> = (0..32)
        .map(|i| (i, target.metrics[i].get(metric)))
        .collect();
    client.fit(&target.name, metric, &responses).unwrap();

    // Uncached reference values, computed through the library on the same
    // loaded artifacts so they are exact.
    let registry = ModelRegistry::open(&s.dir).unwrap();
    registry.fit(&target.name, metric, &responses).unwrap();
    let expected: Vec<f64> = s.ds5.configs[..8]
        .iter()
        .map(|c| registry.predict(&target.name, metric, c).unwrap())
        .collect();

    let results: Vec<Vec<f64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let addr = addr.clone();
                let name = target.name.clone();
                let configs = &s.ds5.configs;
                scope.spawn(move || {
                    let mut client = Client::new(addr);
                    let mut out = Vec::new();
                    for _ in 0..3 {
                        for config in &configs[..8] {
                            let (value, _) = client.predict(&name, metric, config).unwrap();
                            out.push(value);
                        }
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for values in &results {
        for (k, value) in values.iter().enumerate() {
            assert_eq!(
                value.to_bits(),
                expected[k % 8].to_bits(),
                "cached and uncached responses must be identical"
            );
        }
    }
    // 4 clients x 3 rounds x 8 configs = 96 lookups over 8 distinct keys:
    // most must have been cache hits.
    assert!(
        server.cache().hits() >= 80,
        "expected cache hits, saw {}",
        server.cache().hits()
    );
    let scrape = raw_exchange(
        &server.local_addr().to_string(),
        b"GET /metrics HTTP/1.1\r\nconnection: close\r\n\r\n",
    );
    assert!(
        scrape.contains("dse_serve_cache_hits_total"),
        "got: {scrape}"
    );
    server.stop();
}

// ---------------------------------------------------------------------------
// Explore job lifecycle
// ---------------------------------------------------------------------------

/// Fits the held-out program for `cycles` so explore submissions resolve
/// a predictor, and returns its name.
fn fit_target(client: &mut Client) -> String {
    let s = setup();
    let target = &s.ds5.benchmarks[4];
    let responses: Vec<(usize, f64)> = (0..16)
        .map(|i| (i, target.metrics[i].get(Metric::Cycles)))
        .collect();
    client
        .fit(&target.name, Metric::Cycles, &responses)
        .unwrap();
    target.name.clone()
}

/// Polls `GET /v1/explore/<id>` until the job leaves the active states,
/// returning the final body.
fn poll_until_settled(client: &mut Client, id: &str) -> dse_util::json::Json {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
    loop {
        let resp = client.get(&format!("/v1/explore/{id}")).unwrap();
        assert_eq!(resp.status, 200);
        let body = resp.json().unwrap();
        let status = body.field("status").and_then(String::from_json).unwrap();
        if status != "queued" && status != "running" {
            return body;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "explore job '{id}' never settled (last status: {status})"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
}

#[test]
fn explore_job_runs_to_completion_over_http() {
    let (server, addr) = start_server(&ServerConfig::default());
    let mut client = Client::new(addr);
    let target = fit_target(&mut client);

    let body = format!(
        "{{\"program\":\"{target}\",\"objective\":\"cycles,energy\",\
         \"budget\":{{\"rounds\":2,\"candidates_per_round\":12,\
         \"sims_per_round\":2,\"archive_cap\":8,\"seed\":6}}}}"
    );
    // The registry only holds a cycles model: a 2-axis objective needing
    // energy must be refused before any work is queued.
    let resp = client.post("/v1/explore", &body).unwrap();
    assert_eq!(resp.status, 404, "got: {:?}", resp.text());

    let body = format!(
        "{{\"program\":\"{target}\",\"objective\":\"cycles\",\
         \"budget\":{{\"rounds\":2,\"candidates_per_round\":12,\
         \"sims_per_round\":2,\"archive_cap\":8,\"seed\":6}}}}"
    );
    let resp = client.post("/v1/explore", &body).unwrap();
    assert_eq!(resp.status, 202, "got: {:?}", resp.text());
    let submitted = resp.json().unwrap();
    let id = submitted.field("id").and_then(String::from_json).unwrap();
    assert!(id.starts_with("explore-"));
    let status = submitted
        .field("status")
        .and_then(String::from_json)
        .unwrap();
    assert!(status == "queued" || status == "running");

    // The job shows up in the listing.
    let list = client.get("/v1/explore").unwrap().json().unwrap();
    let ids: Vec<String> = list
        .field("jobs")
        .and_then(|v| v.as_array().map(<[_]>::to_vec))
        .unwrap()
        .iter()
        .map(|v| String::from_json(v).unwrap())
        .collect();
    assert!(ids.contains(&id));

    let done = poll_until_settled(&mut client, &id);
    assert_eq!(
        done.field("status").and_then(String::from_json).unwrap(),
        "done",
        "body: {}",
        dse_util::json::to_string(&done)
    );
    assert_eq!(
        done.field("rounds_done")
            .and_then(usize::from_json)
            .unwrap(),
        2
    );
    let frontier = done.field("frontier").unwrap();
    let points = frontier
        .field("points")
        .and_then(|v| v.as_array().map(<[_]>::to_vec))
        .unwrap();
    assert!(!points.is_empty(), "a completed frontier holds points");
    let sim_calls = frontier
        .field("sim_calls")
        .and_then(u64::from_json)
        .unwrap();
    assert!(sim_calls <= 4, "2 rounds × 2 sims, spent {sim_calls}");
    server.stop();
}

#[test]
fn explore_rejects_bad_requests() {
    let (server, addr) = start_server(&ServerConfig::default());
    let mut client = Client::new(addr);
    let target = fit_target(&mut client);

    // Malformed objective → 400, before any job is registered.
    let resp = client
        .post(
            "/v1/explore",
            &format!("{{\"program\":\"{target}\",\"objective\":\"potato\"}}"),
        )
        .unwrap();
    assert_eq!(resp.status, 400, "got: {:?}", resp.text());

    // Malformed budget → 400.
    let resp = client
        .post(
            "/v1/explore",
            &format!(
                "{{\"program\":\"{target}\",\"objective\":\"cycles\",\
                 \"budget\":{{\"rounds\":0}}}}"
            ),
        )
        .unwrap();
    assert_eq!(resp.status, 400, "got: {:?}", resp.text());

    // Unknown benchmark → 404.
    let resp = client
        .post(
            "/v1/explore",
            "{\"program\":\"doom\",\"objective\":\"cycles\"}",
        )
        .unwrap();
    assert_eq!(resp.status, 404, "got: {:?}", resp.text());

    // Known benchmark, never fitted → 404 from the registry.
    let resp = client
        .post(
            "/v1/explore",
            "{\"program\":\"gzip\",\"objective\":\"cycles\"}",
        )
        .unwrap();
    assert_eq!(resp.status, 404, "got: {:?}", resp.text());

    // Unknown job id → 404 on both poll and cancel.
    let resp = client.get("/v1/explore/explore-999").unwrap();
    assert_eq!(resp.status, 404);
    let resp = client
        .request("DELETE", "/v1/explore/explore-999", None)
        .unwrap();
    assert_eq!(resp.status, 404);

    // No jobs were registered by any of the rejections.
    let list = client.get("/v1/explore").unwrap().json().unwrap();
    let ids = list
        .field("jobs")
        .and_then(|v| v.as_array().map(<[_]>::to_vec))
        .unwrap();
    assert!(ids.is_empty(), "rejected submissions must not leak jobs");
    server.stop();
}

#[test]
fn explore_job_cap_answers_429_and_cancel_stops_a_running_job() {
    let cfg = ServerConfig {
        max_explore_jobs: 1,
        ..ServerConfig::default()
    };
    let (server, addr) = start_server(&cfg);
    let mut client = Client::new(addr);
    let target = fit_target(&mut client);

    // A long-budget job: 40 rounds would take several seconds, so the
    // DELETE below lands mid-run.
    let long = format!(
        "{{\"program\":\"{target}\",\"objective\":\"cycles\",\
         \"budget\":{{\"rounds\":40,\"candidates_per_round\":16,\
         \"sims_per_round\":2,\"archive_cap\":8,\"seed\":7}}}}"
    );
    let resp = client.post("/v1/explore", &long).unwrap();
    assert_eq!(resp.status, 202, "got: {:?}", resp.text());
    let id = resp
        .json()
        .unwrap()
        .field("id")
        .and_then(String::from_json)
        .unwrap();

    // The cap is 1: a second submission is refused with 429.
    let resp = client.post("/v1/explore", &long).unwrap();
    assert_eq!(resp.status, 429, "got: {:?}", resp.text());

    // Cancel the running job; it settles as cancelled short of its budget.
    let resp = client
        .request("DELETE", &format!("/v1/explore/{id}"), None)
        .unwrap();
    assert_eq!(resp.status, 200);
    let settled = poll_until_settled(&mut client, &id);
    assert_eq!(
        settled.field("status").and_then(String::from_json).unwrap(),
        "cancelled"
    );
    let rounds_done = settled
        .field("rounds_done")
        .and_then(usize::from_json)
        .unwrap();
    assert!(rounds_done < 40, "cancel must cut the budget short");

    // The slot is free again.
    let tiny = format!(
        "{{\"program\":\"{target}\",\"objective\":\"cycles\",\
         \"budget\":{{\"rounds\":1,\"candidates_per_round\":8,\
         \"sims_per_round\":1,\"archive_cap\":4,\"seed\":8}}}}"
    );
    let resp = client.post("/v1/explore", &tiny).unwrap();
    assert_eq!(resp.status, 202, "got: {:?}", resp.text());
    let id2 = resp
        .json()
        .unwrap()
        .field("id")
        .and_then(String::from_json)
        .unwrap();
    let done = poll_until_settled(&mut client, &id2);
    assert_eq!(
        done.field("status").and_then(String::from_json).unwrap(),
        "done"
    );
    server.stop();
}

#[test]
fn explore_answers_503_when_the_worker_pool_is_saturated() {
    // One worker (occupied by this very connection) and a backlog of one:
    // the first submission fills the queue, the second must be refused —
    // and must not leak a job slot.
    let cfg = ServerConfig {
        workers: 1,
        backlog: 1,
        max_explore_jobs: 8,
        ..ServerConfig::default()
    };
    let (server, addr) = start_server(&cfg);
    let mut client = Client::new(addr);
    let target = fit_target(&mut client);

    let tiny = format!(
        "{{\"program\":\"{target}\",\"objective\":\"cycles\",\
         \"budget\":{{\"rounds\":1,\"candidates_per_round\":8,\
         \"sims_per_round\":1,\"archive_cap\":4,\"seed\":9}}}}"
    );
    let resp = client.post("/v1/explore", &tiny).unwrap();
    assert_eq!(resp.status, 202, "got: {:?}", resp.text());

    let resp = client.post("/v1/explore", &tiny).unwrap();
    assert_eq!(resp.status, 503, "got: {:?}", resp.text());

    // Only the accepted job is known; the 503'd one was discarded.
    let list = client.get("/v1/explore").unwrap().json().unwrap();
    let ids = list
        .field("jobs")
        .and_then(|v| v.as_array().map(<[_]>::to_vec))
        .unwrap();
    assert_eq!(ids.len(), 1);
    server.stop();
}

#[test]
fn shutdown_endpoint_drains_the_server() {
    let (server, addr) = start_server(&ServerConfig::default());
    let mut client = Client::new(addr.clone());
    client.shutdown().unwrap();
    // After the drain completes, new connections must be refused or reset.
    server.wait();
    let refused = TcpStream::connect(&addr).is_err() || {
        let mut s = TcpStream::connect(&addr).unwrap();
        let _ = s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
        let mut buf = [0u8; 64];
        matches!(s.read(&mut buf), Ok(0) | Err(_))
    };
    assert!(refused, "server should be gone after shutdown");
}

#[test]
fn request_ids_thread_from_header_to_flight_recorder() {
    let s = setup();
    let (server, addr) = start_server(&ServerConfig::default());
    let mut client = Client::new(addr);
    let target = fit_target(&mut client);

    // A served predict answers with its request id in the header …
    let body = dse_util::json::to_string(&dse_util::json::Json::obj([
        ("program", target.to_json()),
        ("metric", Metric::Cycles.to_json()),
        ("config", s.ds5.configs[0].to_json()),
    ]));
    let resp = client.post("/v1/predict", &body).unwrap();
    assert_eq!(resp.status, 200, "got: {:?}", resp.text());
    let req_id: u64 = resp
        .header("x-archdse-request-id")
        .expect("predict response carries x-archdse-request-id")
        .parse()
        .expect("request id is numeric");
    assert!(req_id > 0);

    // … and the flight recorder, filtered to that id, shows the whole
    // reactor → worker → cache/registry chain for it.
    let flight = client
        .get(&format!("/v1/obs/flight?request={req_id}"))
        .unwrap();
    assert_eq!(flight.status, 200);
    let events = flight.text().unwrap().to_string();
    for kind in [
        "reactor.dispatch",
        "worker.start",
        "cache.miss",
        "registry.predict",
        "worker.done",
    ] {
        assert!(
            events.contains(&format!("\"kind\":\"{kind}\"")),
            "flight dump for request {req_id} missing {kind}:\n{events}"
        );
    }
    assert!(events.contains("/v1/predict"), "{events}");

    // The unfiltered dump works too and includes the same id.
    let all = client.get("/v1/obs/flight").unwrap();
    assert_eq!(all.status, 200);
    assert!(all
        .text()
        .unwrap()
        .contains(&format!("\"request\":{req_id}")));
    server.stop();
}
