//! Criterion benches: individual microarchitectural components.

use criterion::{criterion_group, criterion_main, Criterion};
use dse_rng::Xoshiro256;
use dse_sim::branch::Gshare;
use dse_sim::cache::Cache;
use std::hint::black_box;

fn bench_cache(c: &mut Criterion) {
    let mut rng = Xoshiro256::seed_from(1);
    let addrs: Vec<u64> = (0..10_000).map(|_| rng.next_range(1 << 20)).collect();
    c.bench_function("cache/32KB-4way/10k-accesses", |b| {
        b.iter(|| {
            let mut cache = Cache::new(32 * 1024, 32, 4);
            for &a in &addrs {
                black_box(cache.access(a));
            }
        })
    });
}

fn bench_gshare(c: &mut Criterion) {
    let mut rng = Xoshiro256::seed_from(2);
    let events: Vec<(u64, bool)> = (0..10_000)
        .map(|_| (0x40_0000 + rng.next_range(4096) * 4, rng.next_bool(0.7)))
        .collect();
    c.bench_function("gshare/16K/10k-updates", |b| {
        b.iter(|| {
            let mut g = Gshare::new(16 * 1024);
            for &(pc, taken) in &events {
                black_box(g.update(pc, taken));
            }
        })
    });
}

criterion_group!(benches, bench_cache, bench_gshare);
criterion_main!(benches);
