//! Criterion benches: ML substrate (ANN training/inference, OLS,
//! clustering).

use criterion::{criterion_group, criterion_main, Criterion};
use dse_ml::{cluster, LinearRegression, Mlp, MlpConfig};
use dse_rng::Xoshiro256;
use std::hint::black_box;

fn data(n: usize, d: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = Xoshiro256::seed_from(seed);
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..d).map(|_| rng.next_f64()).collect())
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| x.iter().sum::<f64>() + x[0] * x[1])
        .collect();
    (xs, ys)
}

fn bench_mlp(c: &mut Criterion) {
    let mut group = c.benchmark_group("mlp");
    group.sample_size(10);
    let (xs, ys) = data(512, 13, 1);
    group.bench_function("train/512x13/200ep", |b| {
        b.iter(|| Mlp::train(black_box(&xs), &ys, &MlpConfig::default()))
    });
    let net = Mlp::train(&xs, &ys, &MlpConfig::default());
    group.bench_function("predict/1000", |b| {
        b.iter(|| {
            for x in xs.iter().cycle().take(1000) {
                black_box(net.predict(x));
            }
        })
    });
    group.finish();
}

fn bench_linreg(c: &mut Criterion) {
    let (xs, ys) = data(32, 25, 2);
    c.bench_function("linreg/fit/32x25", |b| {
        b.iter(|| LinearRegression::fit(black_box(&xs), &ys, true))
    });
}

fn bench_cluster(c: &mut Criterion) {
    let (xs, _) = data(26, 100, 3);
    let labels: Vec<String> = (0..26).map(|i| format!("p{i}")).collect();
    c.bench_function("cluster/average-linkage/26x100", |b| {
        b.iter(|| {
            let d = cluster::distance_matrix(black_box(&xs));
            cluster::Dendrogram::average_linkage(&labels, &d)
        })
    });
}

criterion_group!(benches, bench_mlp, bench_linreg, bench_cluster);
criterion_main!(benches);
