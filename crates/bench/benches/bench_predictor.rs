//! Criterion benches: end-to-end predictor costs (offline training,
//! response fitting, full-space querying).

use criterion::{criterion_group, criterion_main, Criterion};
use dse_core::arch_centric::OfflineModel;
use dse_core::dataset::{DatasetSpec, SuiteDataset};
use dse_ml::MlpConfig;
use dse_sim::Metric;
use std::hint::black_box;

fn bench_predictor(c: &mut Criterion) {
    let profiles: Vec<_> = dse_workload::suites::spec2000()
        .into_iter()
        .take(6)
        .collect();
    let ds = SuiteDataset::generate(
        &profiles,
        &DatasetSpec {
            n_configs: 120,
            ..DatasetSpec::tiny()
        },
    );
    let train: Vec<usize> = (0..5).collect();
    let mut group = c.benchmark_group("predictor");
    group.sample_size(10);
    group.bench_function("offline-train/5progs/T=80", |b| {
        b.iter(|| {
            OfflineModel::train(
                black_box(&ds),
                &train,
                Metric::Cycles,
                80,
                &MlpConfig::default(),
                1,
            )
        })
    });
    let offline = OfflineModel::train(&ds, &train, Metric::Cycles, 80, &MlpConfig::default(), 1);
    let idxs: Vec<usize> = (0..32).collect();
    let vals: Vec<f64> = idxs
        .iter()
        .map(|&i| ds.benchmarks[5].metrics[i].cycles)
        .collect();
    group.bench_function("fit-responses/R=32", |b| {
        b.iter(|| offline.fit_responses(black_box(&ds), &idxs, &vals))
    });
    let predictor = offline.fit_responses(&ds, &idxs, &vals);
    let features = ds.features();
    group.bench_function("predict-space/120", |b| {
        b.iter(|| predictor.predict_batch(black_box(&features)))
    });
    group.finish();
}

criterion_group!(benches, bench_predictor);
criterion_main!(benches);
