//! Criterion benches: simulator throughput on representative workloads.

use criterion::{criterion_group, criterion_main, Criterion};
use dse_sim::{simulate, SimOptions};
use dse_space::Config;
use dse_workload::{suites, TraceGenerator};
use std::hint::black_box;

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    let opts = SimOptions { warmup: 2_000 };
    for name in ["gzip", "art", "sha"] {
        let profile = suites::all_benchmarks()
            .into_iter()
            .find(|p| p.name == name)
            .unwrap();
        let trace = TraceGenerator::new(&profile).generate(20_000);
        group.bench_function(format!("baseline/{name}/20k"), |b| {
            b.iter(|| simulate(black_box(&Config::baseline()), &trace, opts))
        });
    }
    let gzip = suites::spec2000().into_iter().find(|p| p.name == "gzip").unwrap();
    let trace = TraceGenerator::new(&gzip).generate(20_000);
    let tiny = Config {
        width: 2, rob: 32, iq: 8, lsq: 8, rf: 40, rf_read: 2, rf_write: 1,
        bpred_k: 1, btb_k: 1, max_branches: 8, icache_kb: 8, dcache_kb: 8, l2_kb: 256,
    };
    group.bench_function("tiny-config/gzip/20k", |b| {
        b.iter(|| simulate(black_box(&tiny), &trace, opts))
    });
    group.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let gcc = dse_workload::suites::spec2000()
        .into_iter()
        .find(|p| p.name == "gcc")
        .unwrap();
    let generator = TraceGenerator::new(&gcc);
    c.bench_function("trace-gen/gcc/20k", |b| {
        b.iter(|| generator.generate(black_box(20_000)))
    });
}

criterion_group!(benches, bench_simulator, bench_trace_generation);
criterion_main!(benches);
