//! Fig 9: accuracy of the program-specific predictors as the number of
//! training simulations T grows; the paper picks T = 512.

use dse_core::xval::{sweep_t, EvalConfig};
use dse_sim::Metric;
use dse_workload::Suite;

fn main() {
    let ds = dse_bench::full_dataset();
    let cfg = EvalConfig {
        repeats: dse_bench::repeats().min(10),
        ..EvalConfig::default()
    };
    let ts: Vec<usize> = [8, 16, 32, 64, 128, 256, 512]
        .into_iter()
        .filter(|&t| t <= ds.n_configs() / 2)
        .collect();
    for metric in Metric::ALL {
        let pts = sweep_t(&ds, Suite::SpecCpu2000, metric, &ts, &cfg);
        let rows: Vec<Vec<String>> = pts
            .iter()
            .map(|p| {
                vec![
                    p.x.to_string(),
                    format!("{:.1}", p.rmae.mean),
                    format!("{:.1}", p.rmae.std),
                    format!("{:.3}", p.corr.mean),
                    format!("{:.3}", p.corr.std),
                ]
            })
            .collect();
        dse_bench::print_table(
            &format!("Fig 9: program-specific accuracy vs T ({metric})"),
            &["T", "rmae%", "±", "corr", "±"],
            &rows,
        );
    }
}
