//! Fig 13: head-to-head comparison — program-specific vs
//! architecture-centric — at equal numbers of simulations from the new
//! program. The paper's headline: at 32 simulations the
//! architecture-centric model reaches 7 % error / 0.95 correlation on
//! cycles versus 24 % / 0.55 for the program-specific model.

use dse_core::xval::{compare, EvalConfig};
use dse_sim::Metric;
use dse_workload::Suite;

fn main() {
    let ds = dse_bench::full_dataset();
    let cfg = EvalConfig {
        t: 512.min(ds.n_configs() / 2),
        repeats: dse_bench::repeats().min(10),
        ..EvalConfig::default()
    };
    let sims: Vec<usize> = [4, 8, 16, 32, 64, 128, 256, 512]
        .into_iter()
        .filter(|&s| s <= ds.n_configs() / 2)
        .collect();
    for metric in Metric::ALL {
        let rows_data = compare(&ds, Suite::SpecCpu2000, metric, &sims, &cfg);
        let rows: Vec<Vec<String>> = rows_data
            .iter()
            .map(|r| {
                vec![
                    r.sims.to_string(),
                    format!("{:.1}", r.ps_rmae.mean),
                    format!("{:.3}", r.ps_corr.mean),
                    format!("{:.1}", r.ac_rmae.mean),
                    format!("{:.3}", r.ac_corr.mean),
                ]
            })
            .collect();
        dse_bench::print_table(
            &format!("Fig 13: program-specific vs architecture-centric ({metric})"),
            &["sims", "ps rmae%", "ps corr", "ac rmae%", "ac corr"],
            &rows,
        );
    }
}
