//! Profiling driver: repeated scalar gzip simulations with no harness
//! statistics and no batching, so external profilers (or interleaved
//! A/B timing against a reference build) attribute time cleanly to the
//! pipeline hot loop. `PROF_SIMS` sets the simulation count and
//! `PROF_CFG=tiny` swaps the baseline machine for the narrow
//! stall-heavy configuration from `bench_sim`'s tiny-config row.
//!
//! `--stages` switches to the built-in stage profiler instead: each row
//! (default/tiny config × scalar/lockstep mode) runs `PROF_SIMS` repeats
//! under [`dse_sim::StageProf`] and the merged per-stage attribution is
//! written as the `results/stageprof.json` schema (`--out <path>`,
//! stdout otherwise). This is the regenerable evidence behind the
//! "issue stage dominates" claim in ROADMAP Open item 1.

use dse_bench::harness::black_box;
use dse_sim::{simulate, simulate_stage_profiled, SimOptions, StageProf, SweepEngine};
use dse_space::{Config, ConstantParams};
use dse_util::json::{Json, ToJson};
use dse_workload::{suites, Trace, TraceGenerator};

const TRACE_LEN: usize = 20_000;
const WARMUP: usize = 2_000;
/// Lockstep width for the batched rows: the sweep engine's default.
const LOCKSTEP_WIDTH: usize = 8;

fn tiny_config() -> Config {
    Config {
        width: 2,
        rob: 32,
        iq: 8,
        lsq: 8,
        rf: 40,
        rf_read: 2,
        rf_write: 1,
        bpred_k: 1,
        btb_k: 1,
        max_branches: 8,
        icache_kb: 8,
        dcache_kb: 8,
        l2_kb: 256,
    }
}

fn gzip_trace() -> Trace {
    let gzip = suites::spec2000()
        .into_iter()
        .find(|p| p.name == "gzip")
        .unwrap();
    TraceGenerator::new(&gzip).generate(TRACE_LEN)
}

/// One report row: `sims` repeats of `cfg` under the stage profiler,
/// scalar (`width == 1`) or lockstep-batched, merged into one profile.
fn stage_row(name: &str, cfg: &Config, trace: &Trace, width: usize, sims: usize) -> Json {
    let opts = SimOptions::with_warmup(WARMUP);
    let mut merged = StageProf::default();
    if width <= 1 {
        for _ in 0..sims {
            let (_, prof) = simulate_stage_profiled(cfg, trace, opts);
            merged.merge(&prof);
        }
    } else {
        let cfgs = vec![*cfg; width];
        let engine = SweepEngine::new(&cfgs, &ConstantParams::standard(), trace, opts, width);
        // One lockstep pass already steps `width` lanes; repeat enough
        // passes to cover `sims` lane-runs.
        for _ in 0..sims.div_ceil(width) {
            let mut profs = vec![StageProf::default(); width];
            let recs = engine.run_range_obs(0..width, &mut profs);
            assert!(recs.iter().all(|r| r.is_ok()));
            for p in &profs {
                merged.merge(p);
            }
        }
    }
    let mut row = vec![
        ("config".to_string(), Json::Str(name.to_string())),
        (
            "mode".to_string(),
            Json::Str(if width <= 1 {
                "scalar".to_string()
            } else {
                format!("lockstep{width}")
            }),
        ),
    ];
    if let Json::Obj(fields) = merged.to_json() {
        row.extend(fields);
    }
    Json::Obj(row)
}

fn run_stages(n: usize, out: Option<&str>) {
    let trace = gzip_trace();
    let rows = vec![
        stage_row("default", &Config::baseline(), &trace, 1, n),
        stage_row("default", &Config::baseline(), &trace, LOCKSTEP_WIDTH, n),
        stage_row("tiny", &tiny_config(), &trace, 1, n),
        stage_row("tiny", &tiny_config(), &trace, LOCKSTEP_WIDTH, n),
    ];
    let report = Json::Obj(vec![
        ("version".to_string(), Json::Num(1.0)),
        (
            "generator".to_string(),
            Json::Str("bench_prof --stages".to_string()),
        ),
        ("benchmark".to_string(), Json::Str("gzip".to_string())),
        ("trace_len".to_string(), Json::Num(TRACE_LEN as f64)),
        ("warmup".to_string(), Json::Num(WARMUP as f64)),
        ("sims_per_row".to_string(), Json::Num(n as f64)),
        ("rows".to_string(), Json::Arr(rows)),
    ]);
    let text = format!("{report}\n");
    match out {
        Some(path) => {
            std::fs::write(path, &text).unwrap_or_else(|e| panic!("write {path}: {e}"));
            eprintln!("stage profile written to {path}");
        }
        None => print!("{text}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = std::env::var("PROF_SIMS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(400);
    if args.iter().any(|a| a == "--stages") {
        let out = args
            .iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1))
            .map(|s| s.as_str());
        // Stage rows repeat per config×mode; default to a lighter count.
        let n = std::env::var("PROF_SIMS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(40);
        run_stages(n, out);
        return;
    }
    let cfg = if std::env::var("PROF_CFG").as_deref() == Ok("tiny") {
        tiny_config()
    } else {
        Config::baseline()
    };
    let trace = gzip_trace();
    let opts = SimOptions::with_warmup(WARMUP);
    let start = std::time::Instant::now();
    for _ in 0..n {
        black_box(simulate(black_box(&cfg), &trace, opts));
    }
    let elapsed = start.elapsed();
    eprintln!(
        "{n} sims in {:.3}s ({:.3} ms/sim)",
        elapsed.as_secs_f64(),
        elapsed.as_secs_f64() * 1e3 / n as f64
    );
}
