//! Profiling driver: repeated scalar gzip simulations with no harness
//! statistics and no batching, so external profilers (or interleaved
//! A/B timing against a reference build) attribute time cleanly to the
//! pipeline hot loop. `PROF_SIMS` sets the simulation count and
//! `PROF_CFG=tiny` swaps the baseline machine for the narrow
//! stall-heavy configuration from `bench_sim`'s tiny-config row.

use dse_bench::harness::black_box;
use dse_sim::{simulate, SimOptions};
use dse_space::Config;
use dse_workload::{suites, TraceGenerator};

fn main() {
    let n: usize = std::env::var("PROF_SIMS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(400);
    let cfg = if std::env::var("PROF_CFG").as_deref() == Ok("tiny") {
        Config {
            width: 2,
            rob: 32,
            iq: 8,
            lsq: 8,
            rf: 40,
            rf_read: 2,
            rf_write: 1,
            bpred_k: 1,
            btb_k: 1,
            max_branches: 8,
            icache_kb: 8,
            dcache_kb: 8,
            l2_kb: 256,
        }
    } else {
        Config::baseline()
    };
    let gzip = suites::spec2000()
        .into_iter()
        .find(|p| p.name == "gzip")
        .unwrap();
    let trace = TraceGenerator::new(&gzip).generate(20_000);
    let opts = SimOptions::with_warmup(2_000);
    let start = std::time::Instant::now();
    for _ in 0..n {
        black_box(simulate(black_box(&cfg), &trace, opts));
    }
    let elapsed = start.elapsed();
    eprintln!(
        "{n} sims in {:.3}s ({:.3} ms/sim)",
        elapsed.as_secs_f64(),
        elapsed.as_secs_f64() * 1e3 / n as f64
    );
}
