//! Generates (or verifies the cache of) the full experimental dataset:
//! 45 benchmarks × 3,000 shared configurations. Run this first; every
//! figure binary reuses the cache.

fn main() {
    let t0 = std::time::Instant::now();
    let ds = dse_bench::full_dataset();
    println!(
        "dataset ready: {} benchmarks x {} configs in {:.1}s",
        ds.benchmarks.len(),
        ds.n_configs(),
        t0.elapsed().as_secs_f64()
    );
}
