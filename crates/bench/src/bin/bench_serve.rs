//! Performance bench: dse-serve request throughput and latency.
//!
//! Measures single-request and batched predictions against a live
//! in-process server at 1, 4, and 8 worker threads, plus the cold
//! (cache-miss) vs warm (cache-hit) single-request path. Each row's
//! closure issues a fixed number of requests, so sims/sec here reads as
//! request-rounds/sec; the printed median divided by the round size gives
//! per-request latency.
//!
//! Set `DSE_BENCH_JSON=<path>` to write the machine-readable report and
//! `DSE_BENCH_BASELINE=<path>` to fail on a >50 % regression of each
//! row's best iteration (µs-scale latency rows need a wider band than
//! the sim gate's 25 %). `DSE_QUICK=1` shrinks iteration counts.

use dse_bench::harness::{black_box, iters_for, Report};
use dse_core::dataset::{DatasetSpec, SuiteDataset};
use dse_ml::MlpConfig;
use dse_serve::{save_artifacts, Client, ModelRegistry, Server, ServerConfig};
use dse_sim::Metric;
use std::sync::Arc;

const REQUESTS_PER_ROUND: usize = 32;

fn main() {
    let metric = Metric::Cycles;
    let profiles: Vec<_> = dse_workload::suites::spec2000()
        .into_iter()
        .take(5)
        .collect();
    let ds = SuiteDataset::generate(
        &profiles,
        &DatasetSpec {
            n_configs: 64,
            ..DatasetSpec::tiny()
        },
    );
    let train = SuiteDataset {
        spec: ds.spec,
        configs: ds.configs.clone(),
        benchmarks: ds.benchmarks[..4].to_vec(),
    };
    let dir = std::env::temp_dir().join(format!("dse-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    save_artifacts(&dir, &train, &[metric], 40, &MlpConfig::default(), 7).unwrap();

    let target = &ds.benchmarks[4];
    let responses: Vec<(usize, f64)> = (0..32)
        .map(|i| (i, target.metrics[i].get(metric)))
        .collect();
    let batch: Vec<_> = ds.configs[..REQUESTS_PER_ROUND].to_vec();

    let iters = iters_for(30, 5);
    let mut report = Report::new();

    for workers in [1usize, 4, 8] {
        let registry = Arc::new(ModelRegistry::open(&dir).unwrap());
        registry.fit(&target.name, metric, &responses).unwrap();
        let server = Server::start(
            registry,
            &ServerConfig {
                workers,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr().to_string();
        let mut client = Client::new(addr.clone());

        // Warm path: every config already cached after the warm-up round.
        report.bench(
            &format!("serve/predict-warm/{REQUESTS_PER_ROUND}req/w={workers}"),
            2,
            iters,
            None,
            || {
                for config in &batch {
                    black_box(client.predict(&target.name, metric, config).unwrap());
                }
            },
        );

        // Cold path: refitting invalidates the cache, so every request
        // runs the full MLP + combiner evaluation.
        report.bench(
            &format!("serve/predict-cold/{REQUESTS_PER_ROUND}req/w={workers}"),
            1,
            iters,
            None,
            || {
                client.fit(&target.name, metric, &responses).unwrap();
                for config in &batch {
                    black_box(client.predict(&target.name, metric, config).unwrap());
                }
            },
        );

        // Batched: the same configs in one request, fanned out with
        // par_map on the server side.
        report.bench(
            &format!("serve/predict-batch/{REQUESTS_PER_ROUND}req/w={workers}"),
            1,
            iters,
            None,
            || {
                client.fit(&target.name, metric, &responses).unwrap();
                black_box(client.predict_batch(&target.name, metric, &batch).unwrap());
            },
        );

        server.stop();
    }

    let _ = std::fs::remove_dir_all(&dir);

    if let Ok(path) = std::env::var("DSE_BENCH_JSON") {
        report.write_json(&path);
    }
    if let Ok(path) = std::env::var("DSE_BENCH_BASELINE") {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read bench baseline {path}: {e}"));
        // Same 50% tolerance as bench_load: µs-scale latency rows.
        match report.regressions(&text, 0.5) {
            Ok(msgs) if msgs.is_empty() => {
                eprintln!("[bench] no regression vs {path}");
            }
            Ok(msgs) => {
                for m in &msgs {
                    eprintln!("[bench] REGRESSION {m}");
                }
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("[bench] {e}");
                std::process::exit(1);
            }
        }
    }
}
