//! Fig 2: how often each parameter value appears in the best and worst 1%
//! of configurations for **cycles**, accumulated over SPEC benchmarks.

fn main() {
    dse_bench::extremes_report(dse_sim::Metric::Cycles);
}
