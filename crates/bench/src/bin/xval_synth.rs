//! Cross-suite generalization onto the fuzzer-generated suite: train on
//! SPEC CPU 2000 only, predict 12 `workload synth` profiles drawn from
//! the full legal envelope (DESIGN.md §15), with the paper's SPEC →
//! MiBench transfer (Fig 12) re-run on the same dataset as the
//! reference point. The synthetic programs are *harder* than MiBench by
//! construction — the fuzzer ignores the correlations real programs
//! exhibit — so the gap between the two columns measures how far the
//! architecture-centric method stretches beyond suite-alike programs.

use dse_core::dataset::SuiteDataset;
use dse_core::xval::{cross_suite, EvalConfig, ProgramEval};
use dse_ingest::synth_profiles;
use dse_sim::Metric;
use dse_workload::Suite;

/// Seed for the synthetic test suite; pinned so the experiment is a
/// deterministic, re-runnable claim rather than a one-off measurement.
const SYNTH_SEED: u64 = 0xF0CC;
const SYNTH_COUNT: usize = 12;

fn report(title: &str, evals: &[ProgramEval]) {
    let mut rows: Vec<Vec<String>> = evals
        .iter()
        .map(|e| {
            vec![
                e.program.clone(),
                format!("{:.1}", e.train_rmae.mean),
                format!("{:.1}", e.test_rmae.mean),
                format!("{:.1}", e.test_rmae.std),
                format!("{:.3}", e.corr.mean),
            ]
        })
        .collect();
    let n = evals.len() as f64;
    let avg_train: f64 = evals.iter().map(|e| e.train_rmae.mean).sum::<f64>() / n;
    let avg_test: f64 = evals.iter().map(|e| e.test_rmae.mean).sum::<f64>() / n;
    let avg_corr: f64 = evals.iter().map(|e| e.corr.mean).sum::<f64>() / n;
    rows.push(vec![
        "AVERAGE".into(),
        format!("{avg_train:.1}"),
        format!("{avg_test:.1}"),
        String::new(),
        format!("{avg_corr:.3}"),
    ]);
    dse_bench::print_table(title, &["program", "train%", "test%", "±", "corr"], &rows);
}

fn main() {
    let mut profiles = dse_workload::suites::all_benchmarks();
    profiles.extend(synth_profiles(SYNTH_SEED, SYNTH_COUNT));
    let spec = dse_bench::experiment_spec();
    let ds = SuiteDataset::load_or_generate(&profiles, &spec, &dse_bench::data_dir())
        .expect("dataset cache must be readable and writable");
    let cfg = EvalConfig {
        t: 512.min(ds.n_configs() / 2),
        repeats: dse_bench::repeats(),
        ..EvalConfig::default()
    };
    for metric in [Metric::Cycles, Metric::Energy] {
        for (label, test) in [("MiBench", Suite::MiBench), ("synthetic", Suite::Synthetic)] {
            let evals = cross_suite(&ds, Suite::SpecCpu2000, test, metric, &cfg);
            report(
                &format!("{label} predicted from SPEC ({metric}, R = {})", cfg.r),
                &evals,
            );
        }
    }
}
