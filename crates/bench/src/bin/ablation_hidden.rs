//! Ablation: hidden-layer width of the program-specific ANNs around the
//! paper's choice of 10 neurons.

use dse_core::xval::{arch_centric_accuracy, EvalConfig};
use dse_ml::MlpConfig;
use dse_sim::Metric;
use dse_workload::Suite;

fn main() {
    let ds = dse_bench::full_dataset();
    let mut rows = Vec::new();
    for hidden in [2usize, 5, 10, 20, 40] {
        let cfg = EvalConfig {
            t: 512.min(ds.n_configs() / 2),
            repeats: dse_bench::repeats().min(5),
            mlp: MlpConfig {
                hidden,
                ..MlpConfig::default()
            },
            ..EvalConfig::default()
        };
        let p = arch_centric_accuracy(&ds, Suite::SpecCpu2000, Metric::Cycles, 32, &cfg);
        rows.push(vec![
            hidden.to_string(),
            format!("{:.1}", p.rmae.mean),
            format!("{:.3}", p.corr.mean),
        ]);
    }
    dse_bench::print_table(
        "Ablation: hidden-layer width (cycles, T=512, R=32)",
        &["hidden", "rmae%", "corr"],
        &rows,
    );
}
