//! Performance bench: ML substrate (ANN training/inference, OLS,
//! clustering).

use dse_bench::harness::{bench, black_box, iters_for};
use dse_ml::{cluster, LinearRegression, Mlp, MlpConfig};
use dse_rng::Xoshiro256;

fn data(n: usize, d: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = Xoshiro256::seed_from(seed);
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..d).map(|_| rng.next_f64()).collect())
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| x.iter().sum::<f64>() + x[0] * x[1])
        .collect();
    (xs, ys)
}

fn main() {
    let iters = iters_for(10, 3);

    let (xs, ys) = data(512, 13, 1);
    bench("mlp/train/512x13/200ep", 1, iters, || {
        black_box(Mlp::train(black_box(&xs), &ys, &MlpConfig::default()));
    });

    let net = Mlp::train(&xs, &ys, &MlpConfig::default());
    bench("mlp/predict/1000", 1, iters, || {
        for x in xs.iter().cycle().take(1000) {
            black_box(net.predict(x));
        }
    });

    let (xs, ys) = data(32, 25, 2);
    bench("linreg/fit/32x25", 2, iters_for(50, 5), || {
        black_box(LinearRegression::fit(black_box(&xs), &ys, true));
    });

    let (xs, _) = data(26, 100, 3);
    let labels: Vec<String> = (0..26).map(|i| format!("p{i}")).collect();
    bench(
        "cluster/average-linkage/26x100",
        2,
        iters_for(50, 5),
        || {
            let d = cluster::distance_matrix(black_box(&xs));
            black_box(cluster::Dendrogram::average_linkage(&labels, &d));
        },
    );
}
