//! Predictor error on the shared-L2 interference surface (DESIGN.md §15).
//!
//! The paper's response surfaces are all single-program. This study asks
//! whether the architecture-centric method survives on a surface it was
//! never designed for: the *contended* cycles of a program co-scheduled
//! with an intruder through the shared L2 (`simulate --corun`). The
//! offline ensemble is trained purely on solo SPEC surfaces (the target
//! left out); the combiner is then fitted with R = 32 responses drawn
//! once from the target's solo surface and once from its contended
//! surface, each evaluated against its own ground truth on the held-out
//! configurations. If linear recombination of solo program behaviours
//! can absorb contention, the two error columns stay close; the gap is
//! the price of interference.

use dse_core::arch_centric::OfflineModel;
use dse_core::dataset::SuiteDataset;
use dse_core::xval::EvalConfig;
use dse_ingest::synth_profiles;
use dse_rng::Xoshiro256;
use dse_sim::{simulate_corun, Metric, SimOptions};
use dse_workload::{Suite, TraceGenerator};

/// Co-run pairs: memory-bound and cache-resident targets against a
/// memory-bound intruder (and `mcf` against `art` so the heaviest
/// program is also measured as a victim).
const PAIRS: [(&str, &str); 4] = [
    ("gzip", "mcf"),
    ("parser", "mcf"),
    ("art", "mcf"),
    ("mcf", "art"),
];

fn rmae(preds: &[f64], actual: &[f64]) -> f64 {
    let sum: f64 = preds
        .iter()
        .zip(actual)
        .map(|(p, a)| ((p - a) / a).abs())
        .sum();
    100.0 * sum / preds.len() as f64
}

fn correlation(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let (mx, my) = (xs.iter().sum::<f64>() / n, ys.iter().sum::<f64>() / n);
    let cov: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let (vx, vy) = (
        xs.iter().map(|x| (x - mx).powi(2)).sum::<f64>(),
        ys.iter().map(|y| (y - my).powi(2)).sum::<f64>(),
    );
    cov / (vx * vy).sqrt()
}

/// Fits the offline ensemble's combiner on R responses of `truth` and
/// returns (rmae, corr) on the held-out configurations.
fn fit_and_eval(
    offline: &OfflineModel,
    ds: &SuiteDataset,
    features: &[Vec<f64>],
    truth: &[f64],
    r: usize,
    seed: u64,
) -> (f64, f64) {
    let mut rng = Xoshiro256::seed_from(seed);
    let idxs = rng.sample_indices(ds.n_configs(), r);
    let values: Vec<f64> = idxs.iter().map(|&i| truth[i]).collect();
    let predictor = offline.fit_responses(ds, &idxs, &values);
    let mut mask = vec![false; ds.n_configs()];
    for &i in &idxs {
        mask[i] = true;
    }
    let (mut preds, mut actual) = (Vec::new(), Vec::new());
    for i in 0..ds.n_configs() {
        if !mask[i] {
            preds.push(predictor.predict(&features[i]));
            actual.push(truth[i]);
        }
    }
    (rmae(&preds, &actual), correlation(&preds, &actual))
}

fn main() {
    // Same profile list and spec as `xval_synth` so the two experiments
    // share one cached dataset.
    let mut profiles = dse_workload::suites::all_benchmarks();
    profiles.extend(synth_profiles(0xF0CC, 12));
    let spec = dse_bench::experiment_spec();
    let ds = SuiteDataset::load_or_generate(&profiles, &spec, &dse_bench::data_dir())
        .expect("dataset cache must be readable and writable");
    let features = ds.features();
    let cfg = EvalConfig {
        t: 512.min(ds.n_configs() / 2),
        repeats: dse_bench::repeats(),
        ..EvalConfig::default()
    };
    let metric = Metric::Cycles;
    let options = SimOptions::with_warmup(spec.warmup);

    let row_of = |name: &str| {
        (0..ds.benchmarks.len())
            .find(|&i| ds.benchmarks[i].name == name)
            .unwrap_or_else(|| panic!("benchmark `{name}` absent from dataset"))
    };
    let trace_of = |name: &str| {
        let p = profiles.iter().find(|p| p.name == name).unwrap();
        TraceGenerator::new(p).generate(spec.trace_len)
    };
    let spec_rows: Vec<usize> = (0..ds.benchmarks.len())
        .filter(|&i| ds.benchmarks[i].suite == Suite::SpecCpu2000)
        .collect();

    let mut rows = Vec::new();
    for (target, intruder) in PAIRS {
        let target_row = row_of(target);
        let (trace_t, trace_i) = (trace_of(target), trace_of(intruder));

        // Ground truth: the target's contended cycles on every shared
        // configuration (the solo surface is already in the dataset; the
        // co-run capture pass reproduces it bit-exactly).
        let mut contended = Vec::with_capacity(ds.n_configs());
        let mut slowdowns = Vec::with_capacity(ds.n_configs());
        for cfg_i in &ds.configs {
            let r = simulate_corun(cfg_i, &trace_t, &trace_i, options)
                .expect("co-run simulation must be sanitizer-clean");
            contended.push(r.a.contended.cycles);
            slowdowns.push(r.a.slowdown());
        }
        let solo: Vec<f64> = (0..ds.n_configs())
            .map(|i| ds.benchmarks[target_row].metrics[i].get(metric))
            .collect();
        let mean_slowdown = slowdowns.iter().sum::<f64>() / slowdowns.len() as f64;
        let max_slowdown = slowdowns.iter().cloned().fold(f64::MIN, f64::max);

        // Offline ensembles never see the target (or any co-run data).
        let train_rows: Vec<usize> = spec_rows
            .iter()
            .copied()
            .filter(|&i| i != target_row)
            .collect();
        let (mut se, mut ce, mut sc, mut cc) = (0.0, 0.0, 0.0, 0.0);
        for k in 0..cfg.repeats {
            let seed = Xoshiro256::seed_from(cfg.seed ^ 0xC0_5EED)
                .child(k as u64)
                .next_u64();
            let offline = OfflineModel::train(&ds, &train_rows, metric, cfg.t, &cfg.mlp, seed);
            let (e1, c1) = fit_and_eval(&offline, &ds, &features, &solo, cfg.r, seed ^ 1);
            let (e2, c2) = fit_and_eval(&offline, &ds, &features, &contended, cfg.r, seed ^ 1);
            se += e1;
            ce += e2;
            sc += c1;
            cc += c2;
        }
        let n = cfg.repeats as f64;
        rows.push(vec![
            format!("{target} + {intruder}"),
            format!("{:.3}", mean_slowdown),
            format!("{:.3}", max_slowdown),
            format!("{:.1}", se / n),
            format!("{:.1}", ce / n),
            format!("{:+.1}", (ce - se) / n),
            format!("{:.3}", sc / n),
            format!("{:.3}", cc / n),
        ]);
    }
    dse_bench::print_table(
        &format!(
            "Predictor error on the shared-L2 co-run surface (cycles, R = {})",
            cfg.r
        ),
        &[
            "pair",
            "slow_mean",
            "slow_max",
            "solo%",
            "corun%",
            "Δ%",
            "solo_r",
            "corun_r",
        ],
        &rows,
    );
}
