//! Load harness: dse-serve under sustained multi-connection traffic.
//!
//! Where `bench_serve` times request *rounds* from a single caller, this
//! bin drives the event-loop front end the way production traffic would:
//! M concurrent keep-alive connections, each request individually timed,
//! reported as per-request p50/p95/p99 latency plus measured throughput.
//! Two arrival disciplines:
//!
//! * **closed-loop** — each connection fires its next request the moment
//!   the previous response lands (latency-bound; measures the service
//!   path itself);
//! * **open-loop** — requests follow a fixed-rate arrival schedule
//!   computed up front, and latency is measured **from the scheduled
//!   arrival**, so queueing delay behind a slow server shows up in the
//!   tail instead of silently stretching the schedule.
//!
//! Scenarios cover the warm path (every config cached), the cold path
//! (a `/v1/fit` invalidates the cache, then every config is predicted
//! exactly once), and the batched path (`/v1/predict_batch` with the
//! batch priced in predictions/sec — the ≥100k predict/s headline row).
//!
//! Set `DSE_BENCH_JSON=<path>` to write the machine-readable report and
//! `DSE_BENCH_BASELINE=<path>` to fail on a >50 % regression of each
//! row's best iteration — µs-scale latency rows need a wider band than
//! the sim gate's 25 % —
//! (the `scripts/ci.sh` gate against `BENCH_serve.json`). `DSE_QUICK=1`
//! shrinks the number of rounds only — per-round work is constant, so
//! quick runs gate against full-mode baselines.

use dse_bench::harness::{iters_for, Report};
use dse_core::dataset::{DatasetSpec, SuiteDataset};
use dse_ml::MlpConfig;
use dse_serve::{save_artifacts, Client, ModelRegistry, Server, ServerConfig};
use dse_sim::Metric;
use dse_space::Config;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Concurrent keep-alive connections per load scenario.
const CONNS: usize = 4;
/// Closed-loop warm requests per connection per round.
const WARM_PER_CONN: usize = 48;
/// Open-loop arrivals per round.
const OPEN_ARRIVALS: usize = 256;
/// Open-loop arrival rate (requests per second).
const OPEN_RATE: f64 = 2000.0;
/// Configs per `/v1/predict_batch` request.
const BATCH: usize = 512;
/// Batch requests per round.
const BATCH_REQS: usize = 4;

/// One load round: per-request latencies plus the round's wall time.
struct RoundOut {
    lat: Vec<Duration>,
    wall: Duration,
}

/// Closed-loop round: `CONNS` threads, each with its own keep-alive
/// connection, each issuing `per_conn` back-to-back requests. With
/// `distinct`, request `k` of connection `c` hits config `c*per_conn+k`
/// exactly once (the all-miss cold round); otherwise requests cycle the
/// config pool (all hits once the cache is warm).
fn closed_round(
    addr: &str,
    program: &str,
    metric: Metric,
    configs: &Arc<Vec<Config>>,
    per_conn: usize,
    distinct: bool,
) -> RoundOut {
    let t0 = Instant::now();
    let handles: Vec<_> = (0..CONNS)
        .map(|c| {
            let addr = addr.to_string();
            let program = program.to_string();
            let configs = Arc::clone(configs);
            std::thread::spawn(move || {
                let mut client = Client::new(addr);
                let mut lat = Vec::with_capacity(per_conn);
                for k in 0..per_conn {
                    let idx = (c * per_conn + k) % configs.len();
                    debug_assert!(!distinct || c * per_conn + k < configs.len());
                    let t = Instant::now();
                    client.predict(&program, metric, &configs[idx]).unwrap();
                    lat.push(t.elapsed());
                }
                lat
            })
        })
        .collect();
    let mut lat = Vec::new();
    for h in handles {
        lat.extend(h.join().unwrap());
    }
    RoundOut {
        lat,
        wall: t0.elapsed(),
    }
}

/// Open-loop round: `OPEN_ARRIVALS` arrivals at `OPEN_RATE`/s, dealt
/// round-robin over `CONNS` connections. Latency runs from the
/// *scheduled* arrival, so a server that falls behind accrues queueing
/// delay in the measured tail.
fn open_round(addr: &str, program: &str, metric: Metric, configs: &Arc<Vec<Config>>) -> RoundOut {
    let t0 = Instant::now();
    let interval = Duration::from_secs_f64(1.0 / OPEN_RATE);
    // Small lead so every thread has connected before arrival 0.
    let start = t0 + Duration::from_millis(20);
    let handles: Vec<_> = (0..CONNS)
        .map(|c| {
            let addr = addr.to_string();
            let program = program.to_string();
            let configs = Arc::clone(configs);
            std::thread::spawn(move || {
                let mut client = Client::new(addr);
                let mut lat = Vec::with_capacity(OPEN_ARRIVALS / CONNS + 1);
                for j in (c..OPEN_ARRIVALS).step_by(CONNS) {
                    let sched = start + interval.mul_f64(j as f64);
                    if let Some(wait) = sched.checked_duration_since(Instant::now()) {
                        std::thread::sleep(wait);
                    }
                    client
                        .predict(&program, metric, &configs[j % configs.len()])
                        .unwrap();
                    lat.push(sched.elapsed());
                }
                lat
            })
        })
        .collect();
    let mut lat = Vec::new();
    for h in handles {
        lat.extend(h.join().unwrap());
    }
    RoundOut {
        lat,
        wall: t0.elapsed(),
    }
}

/// Batched round: one connection, `BATCH_REQS` sequential
/// `/v1/predict_batch` requests of `BATCH` configs each.
fn batch_round(client: &mut Client, program: &str, metric: Metric, batch: &[Config]) -> RoundOut {
    let t0 = Instant::now();
    let mut lat = Vec::with_capacity(BATCH_REQS);
    for _ in 0..BATCH_REQS {
        let t = Instant::now();
        let values = client.predict_batch(program, metric, batch).unwrap();
        assert_eq!(values.len(), batch.len());
        lat.push(t.elapsed());
    }
    RoundOut {
        lat,
        wall: t0.elapsed(),
    }
}

/// Runs one untimed warm-up round, then `rounds` timed rounds, and
/// records the pooled per-request latency distribution. Throughput is
/// total events over total wall time; `events_per_req` prices batched
/// rows in predictions/sec instead of requests/sec.
fn scenario<F: FnMut() -> RoundOut>(
    report: &mut Report,
    name: &str,
    rounds: usize,
    events_per_req: usize,
    mut round: F,
) {
    round();
    let mut lat = Vec::new();
    let mut wall = Duration::ZERO;
    for _ in 0..rounds {
        let r = round();
        lat.extend(r.lat);
        wall += r.wall;
    }
    let rate = (lat.len() * events_per_req) as f64 / wall.as_secs_f64();
    report.push_samples(name, &mut lat, rate);
}

fn main() {
    let metric = Metric::Cycles;
    let profiles: Vec<_> = dse_workload::suites::spec2000()
        .into_iter()
        .take(5)
        .collect();
    let ds = SuiteDataset::generate(
        &profiles,
        &DatasetSpec {
            n_configs: CONNS * 16,
            ..DatasetSpec::tiny()
        },
    );
    let train = SuiteDataset {
        spec: ds.spec,
        configs: ds.configs.clone(),
        benchmarks: ds.benchmarks[..4].to_vec(),
    };
    let dir = std::env::temp_dir().join(format!("dse-bench-load-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    save_artifacts(&dir, &train, &[metric], 40, &MlpConfig::default(), 7).unwrap();

    let target = &ds.benchmarks[4];
    let responses: Vec<(usize, f64)> = (0..32)
        .map(|i| (i, target.metrics[i].get(metric)))
        .collect();
    let configs = Arc::new(ds.configs.clone());
    let batch: Vec<Config> = (0..BATCH)
        .map(|i| ds.configs[i % ds.configs.len()].clone())
        .collect();

    let registry = Arc::new(ModelRegistry::open(&dir).unwrap());
    registry.fit(&target.name, metric, &responses).unwrap();
    // Worker-pinned sessions: each keep-alive connection occupies a
    // worker for its lifetime, so size the pool for the load connections
    // plus the control client with headroom for round-boundary overlap.
    let server = Server::start(
        registry,
        &ServerConfig {
            workers: 2 * CONNS,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    let mut control = Client::new(addr.clone());

    let rounds = iters_for(12, 3);
    let mut report = Report::new();

    // Warm the cache: one pass over every config.
    for config in configs.iter() {
        control.predict(&target.name, metric, config).unwrap();
    }

    scenario(
        &mut report,
        &format!("load/closed/warm/c={CONNS}"),
        rounds,
        1,
        || closed_round(&addr, &target.name, metric, &configs, WARM_PER_CONN, false),
    );

    // Cold: every round refits (invalidating the cache), then predicts
    // each config exactly once across the connections.
    let cold_per_conn = configs.len() / CONNS;
    scenario(
        &mut report,
        &format!("load/closed/cold/c={CONNS}"),
        rounds,
        1,
        || {
            control.fit(&target.name, metric, &responses).unwrap();
            closed_round(&addr, &target.name, metric, &configs, cold_per_conn, true)
        },
    );

    // Re-warm after the cold rounds left a fresh fit in place.
    for config in configs.iter() {
        control.predict(&target.name, metric, config).unwrap();
    }

    scenario(
        &mut report,
        &format!("load/open/warm/c={CONNS}/r={}", OPEN_RATE as u64),
        rounds,
        1,
        || open_round(&addr, &target.name, metric, &configs),
    );

    scenario(
        &mut report,
        &format!("load/batch/warm/b={BATCH}"),
        rounds,
        BATCH,
        || batch_round(&mut control, &target.name, metric, &batch),
    );

    server.stop();
    let _ = std::fs::remove_dir_all(&dir);

    if let Ok(path) = std::env::var("DSE_BENCH_JSON") {
        report.write_json(&path);
    }
    if let Ok(path) = std::env::var("DSE_BENCH_BASELINE") {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read bench baseline {path}: {e}"));
        // 50% tolerance (not the sim gate's 25%): these rows are
        // microsecond-scale request latencies whose best iteration still
        // moves >25% with scheduler phase on a shared 1-vCPU host. The
        // failures this gate exists for (accidental quadratic scans,
        // lost batching) are multiples, not tens of percent.
        match report.regressions(&text, 0.5) {
            Ok(msgs) if msgs.is_empty() => {
                eprintln!("[bench] no regression vs {path}");
            }
            Ok(msgs) => {
                for m in &msgs {
                    eprintln!("[bench] REGRESSION {m}");
                }
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("[bench] {e}");
                std::process::exit(1);
            }
        }
    }
}
