//! Performance bench: end-to-end predictor costs (offline training,
//! response fitting, full-space querying).

use dse_bench::harness::{bench, black_box, iters_for};
use dse_core::arch_centric::OfflineModel;
use dse_core::dataset::{DatasetSpec, SuiteDataset};
use dse_ml::MlpConfig;
use dse_sim::Metric;

fn main() {
    let profiles: Vec<_> = dse_workload::suites::spec2000()
        .into_iter()
        .take(6)
        .collect();
    let ds = SuiteDataset::generate(
        &profiles,
        &DatasetSpec {
            n_configs: 120,
            ..DatasetSpec::tiny()
        },
    );
    let train: Vec<usize> = (0..5).collect();
    let iters = iters_for(10, 3);

    bench("predictor/offline-train/5progs/T=80", 1, iters, || {
        black_box(OfflineModel::train(
            black_box(&ds),
            &train,
            Metric::Cycles,
            80,
            &MlpConfig::default(),
            1,
        ));
    });

    let offline = OfflineModel::train(&ds, &train, Metric::Cycles, 80, &MlpConfig::default(), 1);
    let idxs: Vec<usize> = (0..32).collect();
    let vals: Vec<f64> = idxs
        .iter()
        .map(|&i| ds.benchmarks[5].metrics[i].cycles)
        .collect();
    bench("predictor/fit-responses/R=32", 2, iters_for(50, 5), || {
        black_box(offline.fit_responses(black_box(&ds), &idxs, &vals));
    });

    let predictor = offline.fit_responses(&ds, &idxs, &vals);
    let features = ds.features();
    bench("predictor/predict-space/120", 2, iters_for(50, 5), || {
        black_box(predictor.predict_batch(black_box(&features)));
    });
}
