//! Ablation: fit the response regression on the training programs'
//! *actual* simulated values (the paper's method) versus on the offline
//! ANNs' *predictions* — quantifying the cost of the ANN approximation
//! in the design matrix.

use dse_core::arch_centric::{OfflineModel, ResponseSource};
use dse_core::xval::Summary;
use dse_ml::stats::{correlation, rmae};
use dse_ml::MlpConfig;
use dse_rng::Xoshiro256;
use dse_sim::Metric;
use dse_workload::Suite;

fn main() {
    let ds = dse_bench::full_dataset();
    let metric = Metric::Cycles;
    let t = 512.min(ds.n_configs() / 2);
    let repeats = dse_bench::repeats().min(10);
    let features = ds.features();
    let rows: Vec<usize> = (0..ds.benchmarks.len())
        .filter(|&i| ds.benchmarks[i].suite == Suite::SpecCpu2000)
        .collect();

    let mut out = Vec::new();
    for source in [ResponseSource::Actual, ResponseSource::Predicted] {
        let mut errs = Vec::new();
        let mut corrs = Vec::new();
        for k in 0..repeats {
            let pool = OfflineModel::train_model_pool(
                &ds,
                metric,
                t,
                &MlpConfig::default(),
                0xAB + k as u64,
            );
            for &target in &rows {
                let train_rows: Vec<usize> =
                    rows.iter().copied().filter(|&r| r != target).collect();
                let models = train_rows.iter().map(|&r| pool[r].clone()).collect();
                let offline = OfflineModel::from_parts(metric, train_rows, models);
                let mut rng = Xoshiro256::seed_from(0xAB00 + (k as u64) * 131 + target as u64);
                let idxs = rng.sample_indices(ds.n_configs(), 32);
                let vals: Vec<f64> = idxs
                    .iter()
                    .map(|&i| ds.benchmarks[target].metrics[i].get(metric))
                    .collect();
                let pred = offline.fit_responses_with(&ds, &idxs, &vals, source);
                let preds: Vec<f64> = features.iter().map(|f| pred.predict(f)).collect();
                let actual = ds.benchmarks[target].values(metric);
                errs.push(rmae(&preds, &actual));
                corrs.push(correlation(&preds, &actual));
            }
        }
        let e = Summary::of(&errs);
        let c = Summary::of(&corrs);
        out.push(vec![
            format!("{source:?}"),
            format!("{:.1}", e.mean),
            format!("{:.1}", e.std),
            format!("{:.3}", c.mean),
        ]);
    }
    dse_bench::print_table(
        "Ablation: response design-matrix source (cycles, R=32)",
        &["source", "rmae%", "±", "corr"],
        &out,
    );
}
