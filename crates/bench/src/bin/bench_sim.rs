//! Performance bench: simulator throughput on representative workloads.

use dse_bench::harness::{bench, black_box, iters_for};
use dse_sim::{simulate, SimOptions};
use dse_space::Config;
use dse_workload::{suites, TraceGenerator};

fn main() {
    let iters = iters_for(15, 3);
    let opts = SimOptions::with_warmup(2_000);
    for name in ["gzip", "art", "sha"] {
        let profile = suites::all_benchmarks()
            .into_iter()
            .find(|p| p.name == name)
            .unwrap();
        let trace = TraceGenerator::new(&profile).generate(20_000);
        bench(&format!("simulator/baseline/{name}/20k"), 2, iters, || {
            black_box(simulate(black_box(&Config::baseline()), &trace, opts));
        });
    }
    let gzip = suites::spec2000()
        .into_iter()
        .find(|p| p.name == "gzip")
        .unwrap();
    let trace = TraceGenerator::new(&gzip).generate(20_000);
    let tiny = Config {
        width: 2,
        rob: 32,
        iq: 8,
        lsq: 8,
        rf: 40,
        rf_read: 2,
        rf_write: 1,
        bpred_k: 1,
        btb_k: 1,
        max_branches: 8,
        icache_kb: 8,
        dcache_kb: 8,
        l2_kb: 256,
    };
    bench("simulator/tiny-config/gzip/20k", 2, iters, || {
        black_box(simulate(black_box(&tiny), &trace, opts));
    });

    let gcc = suites::spec2000()
        .into_iter()
        .find(|p| p.name == "gcc")
        .unwrap();
    let generator = TraceGenerator::new(&gcc);
    bench("trace-gen/gcc/20k", 2, iters, || {
        black_box(generator.generate(black_box(20_000)));
    });
}
