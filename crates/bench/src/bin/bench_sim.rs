//! Performance bench: simulator throughput on representative workloads.
//!
//! Prints one line per row and records sims/sec and simulated cycles/sec.
//! Set `DSE_BENCH_JSON=<path>` to also write the machine-readable report
//! (this is how `BENCH_sim.json` is produced), and
//! `DSE_BENCH_BASELINE=<path>` to compare against a committed report and
//! exit non-zero on a >25 % min-iteration regression (the `scripts/ci.sh` gate).

use dse_bench::harness::{black_box, iters_for, Report};
use dse_rng::Xoshiro256;
use dse_sim::{
    record_metrics, simulate, simulate_detailed, simulate_profiled, SimOptions, SweepEngine,
};
use dse_space::{sample_legal, Config, ConstantParams};
use dse_workload::{suites, TraceGenerator};

fn main() {
    // 5 quick iterations (not 3): the gate compares per-row minimums,
    // and the min of 5 is stable enough on a noisy shared host.
    let iters = iters_for(15, 5);
    let opts = SimOptions::with_warmup(2_000);
    let mut report = Report::new();
    for name in ["gzip", "art", "sha"] {
        let profile = suites::all_benchmarks()
            .into_iter()
            .find(|p| p.name == name)
            .unwrap();
        let trace = TraceGenerator::new(&profile).generate(20_000);
        let cycles = simulate_detailed(&Config::baseline(), &trace, opts)
            .0
            .cycles;
        report.bench(
            &format!("simulator/baseline/{name}/20k"),
            2,
            iters,
            Some(cycles),
            || {
                black_box(simulate(black_box(&Config::baseline()), &trace, opts));
            },
        );
    }
    let gzip = suites::spec2000()
        .into_iter()
        .find(|p| p.name == "gzip")
        .unwrap();
    let trace = TraceGenerator::new(&gzip).generate(20_000);
    let tiny = Config {
        width: 2,
        rob: 32,
        iq: 8,
        lsq: 8,
        rf: 40,
        rf_read: 2,
        rf_write: 1,
        bpred_k: 1,
        btb_k: 1,
        max_branches: 8,
        icache_kb: 8,
        dcache_kb: 8,
        l2_kb: 256,
    };
    let tiny_cycles = simulate_detailed(&tiny, &trace, opts).0.cycles;
    report.bench(
        "simulator/tiny-config/gzip/20k",
        2,
        iters,
        Some(tiny_cycles),
        || {
            black_box(simulate(black_box(&tiny), &trace, opts));
        },
    );

    // Observability overhead: the same baseline gzip run with per-cycle
    // stall attribution enabled. The disabled path (`simulate`, row
    // `simulator/baseline/gzip/20k` above) is monomorphised with
    // `NoObs::ENABLED = false`, so its hot loop is the pre-obs machine
    // code — the regression gate below holds it to the committed
    // baseline. The delta printed here documents what turning the hooks
    // *on* costs.
    let cycles_gzip = simulate_detailed(&Config::baseline(), &trace, opts)
        .0
        .cycles;
    let obs_on = report.bench(
        "simulator/obs-on/gzip/20k",
        2,
        iters,
        Some(cycles_gzip),
        || {
            black_box(simulate_profiled(
                black_box(&Config::baseline()),
                &trace,
                opts,
            ));
        },
    );
    let obs_off_ns = report
        .rows()
        .iter()
        .find(|r| r.name == "simulator/baseline/gzip/20k")
        .map(|r| r.result.median.as_nanos() as f64)
        .unwrap();
    let obs_on_ns = obs_on.median.as_nanos() as f64;
    eprintln!(
        "[bench] obs-off median {:.2}ms vs obs-on {:.2}ms: {:+.1}% with attribution enabled",
        obs_off_ns / 1e6,
        obs_on_ns / 1e6,
        100.0 * (obs_on_ns - obs_off_ns) / obs_off_ns
    );

    // Sweep throughput: sixteen sampled configurations over one shared
    // gzip trace, as the dataset sweep runs them — one-at-a-time scalar
    // simulation (w1) against the lockstep batched engine at widths 4
    // and 8. `sims_per_sec` is priced per simulation (16 per timed
    // iteration), so the three rows compare directly with each other and
    // with the single-simulation rows above; the regression gate holds
    // each to its own committed baseline.
    let mut rng = Xoshiro256::seed_from(0xBA7C);
    let sweep_cfgs = sample_legal(&mut rng, 16);
    let sweep_cycles: u64 = sweep_cfgs
        .iter()
        .map(|c| simulate_detailed(c, &trace, opts).0.cycles)
        .sum();
    report.bench_scaled(
        "simulator/sweep-w1/gzip/16x20k",
        1,
        iters,
        sweep_cfgs.len(),
        Some(sweep_cycles),
        || {
            for cfg in &sweep_cfgs {
                black_box(simulate(black_box(cfg), &trace, opts));
            }
        },
    );
    for width in [4usize, 8] {
        report.bench_scaled(
            &format!("simulator/sweep-w{width}/gzip/16x20k"),
            1,
            iters,
            sweep_cfgs.len(),
            Some(sweep_cycles),
            || {
                // Engine construction (shared front-end plans) is timed:
                // it is a real cost of sweeping from scratch.
                let engine = SweepEngine::new(
                    &sweep_cfgs,
                    &ConstantParams::standard(),
                    &trace,
                    opts,
                    width,
                );
                for s in (0..sweep_cfgs.len()).step_by(width) {
                    let e = (s + width).min(sweep_cfgs.len());
                    for r in engine.run_range(s..e) {
                        black_box(record_metrics(&r.expect("clean lane").result));
                    }
                }
            },
        );
    }

    let gcc = suites::spec2000()
        .into_iter()
        .find(|p| p.name == "gcc")
        .unwrap();
    let generator = TraceGenerator::new(&gcc);
    report.bench("trace-gen/gcc/20k", 2, iters, None, || {
        black_box(generator.generate(black_box(20_000)));
    });

    if let Ok(path) = std::env::var("DSE_BENCH_JSON") {
        report.write_json(&path);
    }
    if let Ok(path) = std::env::var("DSE_BENCH_BASELINE") {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read bench baseline {path}: {e}"));
        match report.regressions(&text, 0.25) {
            Ok(msgs) if msgs.is_empty() => {
                eprintln!("[bench] no regression vs {path}");
            }
            Ok(msgs) => {
                for m in &msgs {
                    eprintln!("[bench] REGRESSION {m}");
                }
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("[bench] {e}");
                std::process::exit(1);
            }
        }
    }
}
