//! Fig 4: per-program design-space characteristics — min, quartiles,
//! median, max and the baseline value, for all four metrics.

use dse_core::analysis::characterise;
use dse_sim::Metric;

fn main() {
    let ds = dse_bench::full_dataset();
    for metric in Metric::ALL {
        let rows: Vec<Vec<String>> = characterise(&ds, metric)
            .into_iter()
            .map(|c| {
                vec![
                    c.program,
                    format!("{:.3e}", c.summary.min),
                    format!("{:.3e}", c.summary.q25),
                    format!("{:.3e}", c.summary.median),
                    format!("{:.3e}", c.summary.q75),
                    format!("{:.3e}", c.summary.max),
                    format!("{:.3e}", c.baseline),
                    format!("{:.1}", c.summary.max / c.summary.min),
                ]
            })
            .collect();
        dse_bench::print_table(
            &format!("Fig 4: {metric} characteristics"),
            &[
                "program", "min", "q25", "median", "q75", "max", "baseline", "max/min",
            ],
            &rows,
        );
    }
}
