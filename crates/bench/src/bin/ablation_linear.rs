//! Ablation: replace the per-program ANNs with per-program *linear*
//! models. The paper's §5 premise is that individual program spaces are
//! non-linear while the cross-program relation is linear; if that holds,
//! this ablation must lose accuracy.

use dse_core::xval::Summary;
use dse_ml::stats::{correlation, rmae};
use dse_ml::LinearRegression;
use dse_rng::Xoshiro256;
use dse_sim::Metric;
use dse_workload::Suite;

fn main() {
    let ds = dse_bench::full_dataset();
    let metric = Metric::Cycles;
    let t = 512.min(ds.n_configs() / 2);
    let repeats = dse_bench::repeats().min(5);
    let features = ds.features();
    let rows: Vec<usize> = (0..ds.benchmarks.len())
        .filter(|&i| ds.benchmarks[i].suite == Suite::SpecCpu2000)
        .collect();

    let mut errs = Vec::new();
    let mut corrs = Vec::new();
    for k in 0..repeats {
        // Per-program linear surrogates instead of ANNs.
        let mut root = Xoshiro256::seed_from(0x11AB + k as u64);
        let surrogates: Vec<LinearRegression> = rows
            .iter()
            .map(|&r| {
                let idx = root.sample_indices(ds.n_configs(), t);
                let xs: Vec<Vec<f64>> = idx.iter().map(|&i| features[i].clone()).collect();
                let ys: Vec<f64> = idx
                    .iter()
                    .map(|&i| ds.benchmarks[r].metrics[i].get(metric))
                    .collect();
                LinearRegression::fit(&xs, &ys, true)
            })
            .collect();
        for (ti, &target) in rows.iter().enumerate() {
            let mut rng = Xoshiro256::seed_from(0x11CD + (k as u64) * 131 + target as u64);
            let idxs = rng.sample_indices(ds.n_configs(), 32);
            let vals: Vec<f64> = idxs
                .iter()
                .map(|&i| ds.benchmarks[target].metrics[i].get(metric))
                .collect();
            // Combine the other programs' actual responses linearly, then
            // predict through the linear surrogates.
            let xs: Vec<Vec<f64>> = idxs
                .iter()
                .map(|&i| {
                    rows.iter()
                        .enumerate()
                        .filter(|&(j, _)| j != ti)
                        .map(|(_, &r)| ds.benchmarks[r].metrics[i].get(metric))
                        .collect()
                })
                .collect();
            let reg = LinearRegression::fit(&xs, &vals, true);
            let preds: Vec<f64> = (0..ds.n_configs())
                .map(|i| {
                    let per: Vec<f64> = rows
                        .iter()
                        .enumerate()
                        .filter(|&(j, _)| j != ti)
                        .map(|(j, _)| surrogates[j].predict(&features[i]))
                        .collect();
                    reg.predict(&per)
                })
                .collect();
            let actual = ds.benchmarks[target].values(metric);
            errs.push(rmae(&preds, &actual));
            corrs.push(correlation(&preds, &actual));
        }
    }
    let e = Summary::of(&errs);
    let c = Summary::of(&corrs);
    println!(
        "linear surrogates : rmae {:.1}% ± {:.1}, corr {:.3}",
        e.mean, e.std, c.mean
    );
    println!("(compare with the ANN-based numbers from fig11/fig13 at R=32)");
}
