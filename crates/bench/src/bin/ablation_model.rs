//! Ablation: choice of program-specific surrogate model — the paper's MLP
//! vs the RBF network it cites as an alternative (Joseph et al.) vs a
//! plain linear model — each trained on T samples of each SPEC program
//! and tested on the remainder.

use dse_core::xval::Summary;
use dse_ml::stats::{correlation, rmae};
use dse_ml::{LinearRegression, Mlp, MlpConfig, RbfConfig, RbfNetwork};
use dse_rng::Xoshiro256;
use dse_sim::Metric;
use dse_workload::Suite;

fn main() {
    let ds = dse_bench::full_dataset();
    let metric = Metric::Cycles;
    let repeats = dse_bench::repeats().min(5);
    let features = ds.features();
    let rows: Vec<usize> = (0..ds.benchmarks.len())
        .filter(|&i| ds.benchmarks[i].suite == Suite::SpecCpu2000)
        .collect();

    let mut table = Vec::new();
    for t in [32usize, 256] {
        // (name, train+predict closure)
        type Model = Box<dyn Fn(&[Vec<f64>], &[f64], u64) -> Box<dyn Fn(&[f64]) -> f64>>;
        let models: Vec<(&str, Model)> = vec![
            (
                "MLP (paper)",
                Box::new(|xs: &[Vec<f64>], ys: &[f64], seed: u64| {
                    let net = Mlp::train(
                        xs,
                        ys,
                        &MlpConfig {
                            seed,
                            ..MlpConfig::default()
                        },
                    );
                    Box::new(move |x: &[f64]| net.predict(x)) as Box<dyn Fn(&[f64]) -> f64>
                }),
            ),
            (
                "RBF",
                Box::new(|xs: &[Vec<f64>], ys: &[f64], seed: u64| {
                    let net = RbfNetwork::train(
                        xs,
                        ys,
                        &RbfConfig {
                            seed,
                            ..RbfConfig::default()
                        },
                    );
                    Box::new(move |x: &[f64]| net.predict(x)) as Box<dyn Fn(&[f64]) -> f64>
                }),
            ),
            (
                "linear",
                Box::new(|xs: &[Vec<f64>], ys: &[f64], _seed: u64| {
                    let m = LinearRegression::fit(xs, ys, true);
                    Box::new(move |x: &[f64]| m.predict(x)) as Box<dyn Fn(&[f64]) -> f64>
                }),
            ),
        ];
        for (name, train) in &models {
            let mut errs = Vec::new();
            let mut corrs = Vec::new();
            for k in 0..repeats {
                for &row in &rows {
                    let mut rng = Xoshiro256::seed_from(0x30D0 + (k as u64) * 997 + row as u64);
                    let idx = rng.sample_indices(ds.n_configs(), t);
                    let bench = &ds.benchmarks[row];
                    let xs: Vec<Vec<f64>> = idx.iter().map(|&i| features[i].clone()).collect();
                    let ys: Vec<f64> = idx.iter().map(|&i| bench.metrics[i].get(metric)).collect();
                    let predict = train(&xs, &ys, rng.next_u64());
                    let mut mask = vec![false; ds.n_configs()];
                    for &i in &idx {
                        mask[i] = true;
                    }
                    let mut preds = Vec::new();
                    let mut actual = Vec::new();
                    for i in 0..ds.n_configs() {
                        if !mask[i] {
                            preds.push(predict(&features[i]));
                            actual.push(bench.metrics[i].get(metric));
                        }
                    }
                    errs.push(rmae(&preds, &actual));
                    corrs.push(correlation(&preds, &actual));
                }
            }
            let e = Summary::of(&errs);
            let c = Summary::of(&corrs);
            table.push(vec![
                t.to_string(),
                name.to_string(),
                format!("{:.1}", e.mean),
                format!("{:.1}", e.std),
                format!("{:.3}", c.mean),
            ]);
        }
    }
    dse_bench::print_table(
        "Ablation: program-specific surrogate model (cycles)",
        &["T", "model", "rmae%", "±", "corr"],
        &table,
    );
}
