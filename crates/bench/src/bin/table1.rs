//! Table 1: the varied design-space parameters, their ranges and counts,
//! the raw space size, and the measured legal fraction (§3.1).

use dse_rng::Xoshiro256;
use dse_space::{estimate_legal_fraction, raw_space_size, Config, PARAMS};

fn main() {
    let rows: Vec<Vec<String>> = PARAMS
        .iter()
        .map(|d| {
            vec![
                d.name.to_string(),
                d.unit.to_string(),
                format!("{}..{}", d.values[0], d.values.last().unwrap()),
                d.len().to_string(),
            ]
        })
        .collect();
    dse_bench::print_table(
        "Table 1: varied parameters",
        &["parameter", "unit", "range", "values"],
        &rows,
    );
    println!("\nraw design points : {}", raw_space_size());
    let mut rng = Xoshiro256::seed_from(1);
    let frac = estimate_legal_fraction(&mut rng, 300_000);
    println!("legal fraction    : {frac:.3} (paper: 18/63 = 0.286)");
    println!(
        "legal design points (est.): {:.1} billion (paper: ~18 billion)",
        raw_space_size() as f64 * frac / 1e9
    );
    println!("baseline          : {}", Config::baseline());
    println!(
        "baseline paper vector: {:?}",
        Config::baseline().to_paper_vector()
    );
}
