//! Fig 10: accuracy of the architecture-centric model as the number of
//! responses R grows; the paper picks R = 32.

use dse_core::xval::{sweep_r, EvalConfig};
use dse_sim::Metric;
use dse_workload::Suite;

fn main() {
    let ds = dse_bench::full_dataset();
    let cfg = EvalConfig {
        t: 512.min(ds.n_configs() / 2),
        repeats: dse_bench::repeats().min(10),
        ..EvalConfig::default()
    };
    let rs = [2usize, 4, 8, 16, 32, 64, 128];
    for metric in Metric::ALL {
        let pts = sweep_r(&ds, Suite::SpecCpu2000, metric, &rs, &cfg);
        let rows: Vec<Vec<String>> = pts
            .iter()
            .map(|p| {
                vec![
                    p.x.to_string(),
                    format!("{:.1}", p.rmae.mean),
                    format!("{:.1}", p.rmae.std),
                    format!("{:.3}", p.corr.mean),
                    format!("{:.3}", p.corr.std),
                ]
            })
            .collect();
        dse_bench::print_table(
            &format!("Fig 10: architecture-centric accuracy vs R ({metric})"),
            &["R", "rmae%", "±", "corr", "±"],
            &rows,
        );
    }
}
