//! Performance bench: individual microarchitectural components.

use dse_bench::harness::{bench, black_box, iters_for};
use dse_rng::Xoshiro256;
use dse_sim::branch::Gshare;
use dse_sim::cache::Cache;

fn main() {
    let iters = iters_for(30, 5);

    let mut rng = Xoshiro256::seed_from(1);
    let addrs: Vec<u64> = (0..10_000).map(|_| rng.next_range(1 << 20)).collect();
    bench("cache/32KB-4way/10k-accesses", 3, iters, || {
        let mut cache = Cache::new(32 * 1024, 32, 4);
        for &a in &addrs {
            black_box(cache.access(a));
        }
    });

    let mut rng = Xoshiro256::seed_from(2);
    let events: Vec<(u64, bool)> = (0..10_000)
        .map(|_| (0x40_0000 + rng.next_range(4096) * 4, rng.next_bool(0.7)))
        .collect();
    bench("gshare/16K/10k-updates", 3, iters, || {
        let mut g = Gshare::new(16 * 1024);
        for &(pc, taken) in &events {
            black_box(g.update(pc, taken));
        }
    });
}
