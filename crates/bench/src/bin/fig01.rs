//! Fig 1 (motivation): the energy design space of `applu`, predicted by a
//! program-specific model and by the architecture-centric model, both
//! given the same 32 simulations of applu.

use dse_core::arch_centric::OfflineModel;
use dse_core::program_specific::ProgramSpecificPredictor;
use dse_ml::stats::{correlation, rmae};
use dse_ml::MlpConfig;
use dse_rng::Xoshiro256;
use dse_sim::Metric;
use dse_workload::Suite;

fn main() {
    let ds = dse_bench::full_dataset();
    let metric = Metric::Energy;
    let target_row = ds.benchmark_index("applu").expect("applu in dataset");
    let features = ds.features();
    let mut rng = Xoshiro256::seed_from(0xF1);
    let response_idxs = rng.sample_indices(ds.n_configs(), 32);
    let values: Vec<f64> = response_idxs
        .iter()
        .map(|&i| ds.benchmarks[target_row].metrics[i].get(metric))
        .collect();

    // Program-specific model: the 32 simulations are its training set.
    let tf: Vec<Vec<f64>> = response_idxs.iter().map(|&i| features[i].clone()).collect();
    let ps = ProgramSpecificPredictor::train("applu", metric, &tf, &values, &MlpConfig::default());

    // Architecture-centric: offline on every other SPEC program, the same
    // 32 simulations as responses.
    let train_rows: Vec<usize> = (0..ds.benchmarks.len())
        .filter(|&i| i != target_row && ds.benchmarks[i].suite == Suite::SpecCpu2000)
        .collect();
    let offline = OfflineModel::train(
        &ds,
        &train_rows,
        metric,
        512.min(ds.n_configs()),
        &MlpConfig::default(),
        0xF1,
    );
    let ac = offline.fit_responses(&ds, &response_idxs, &values);

    // Order configurations by increasing actual energy, as in the figure.
    let actual: Vec<f64> = ds.benchmarks[target_row].values(metric);
    let mut order: Vec<usize> = (0..ds.n_configs()).collect();
    order.sort_by(|&a, &b| actual[a].partial_cmp(&actual[b]).unwrap());

    println!("# applu energy space, configurations sorted by actual energy");
    println!("# rank  actual_nJ  program_specific  arch_centric");
    let step = (order.len() / 60).max(1);
    for (rank, &i) in order.iter().enumerate() {
        if rank % step == 0 {
            println!(
                "{rank:5}  {:.4e}  {:.4e}  {:.4e}",
                actual[i],
                ps.predict(&features[i]),
                ac.predict(&features[i])
            );
        }
    }
    let ps_all: Vec<f64> = features.iter().map(|f| ps.predict(f)).collect();
    let ac_all: Vec<f64> = features.iter().map(|f| ac.predict(f)).collect();
    println!(
        "\nprogram-specific : rmae {:6.1}%  corr {:.3}",
        rmae(&ps_all, &actual),
        correlation(&ps_all, &actual)
    );
    println!(
        "arch-centric     : rmae {:6.1}%  corr {:.3}",
        rmae(&ac_all, &actual),
        correlation(&ac_all, &actual)
    );
}
