//! Ablation: random vs stratified (metric-quantile) response selection.
//! The paper selects the R responses uniformly at random; stratifying
//! them over one metric's quantiles is the obvious alternative.

use dse_core::arch_centric::OfflineModel;
use dse_core::xval::Summary;
use dse_ml::stats::{correlation, rmae};
use dse_ml::MlpConfig;
use dse_rng::Xoshiro256;
use dse_sim::Metric;
use dse_workload::Suite;

fn stratified(values: &[f64], r: usize, rng: &mut Xoshiro256) -> Vec<usize> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).unwrap());
    let stride = order.len() / r;
    (0..r)
        .map(|k| order[k * stride + rng.next_index(stride.max(1))])
        .collect()
}

fn main() {
    let ds = dse_bench::full_dataset();
    let metric = Metric::Cycles;
    let t = 512.min(ds.n_configs() / 2);
    let repeats = dse_bench::repeats().min(5);
    let features = ds.features();
    let rows: Vec<usize> = (0..ds.benchmarks.len())
        .filter(|&i| ds.benchmarks[i].suite == Suite::SpecCpu2000)
        .collect();

    let mut table = Vec::new();
    for strat in [false, true] {
        let mut errs = Vec::new();
        let mut corrs = Vec::new();
        for k in 0..repeats {
            let pool = OfflineModel::train_model_pool(
                &ds,
                metric,
                t,
                &MlpConfig::default(),
                0x5A + k as u64,
            );
            for &target in &rows {
                let train_rows: Vec<usize> =
                    rows.iter().copied().filter(|&r| r != target).collect();
                let models = train_rows.iter().map(|&r| pool[r].clone()).collect();
                let offline = OfflineModel::from_parts(metric, train_rows, models);
                let mut rng = Xoshiro256::seed_from(0x5A00 + (k as u64) * 131 + target as u64);
                let actual = ds.benchmarks[target].values(metric);
                let idxs = if strat {
                    // NOTE: stratifying on the *actual* values is an oracle
                    // (it needs the very data we are trying to avoid
                    // simulating); this bounds the best case.
                    stratified(&actual, 32, &mut rng)
                } else {
                    rng.sample_indices(ds.n_configs(), 32)
                };
                let vals: Vec<f64> = idxs.iter().map(|&i| actual[i]).collect();
                let pred = offline.fit_responses(&ds, &idxs, &vals);
                let preds: Vec<f64> = features.iter().map(|f| pred.predict(f)).collect();
                errs.push(rmae(&preds, &actual));
                corrs.push(correlation(&preds, &actual));
            }
        }
        let e = Summary::of(&errs);
        let c = Summary::of(&corrs);
        table.push(vec![
            if strat {
                "stratified (oracle)"
            } else {
                "random (paper)"
            }
            .to_string(),
            format!("{:.1}", e.mean),
            format!("{:.1}", e.std),
            format!("{:.3}", c.mean),
        ]);
    }
    dse_bench::print_table(
        "Ablation: response sampling strategy (cycles, R=32)",
        &["strategy", "rmae%", "±", "corr"],
        &table,
    );
}
