//! Fig 14: architecture-centric accuracy versus the number of offline
//! training programs (random subsets, R = 32). The paper reports a
//! plateau around 15 programs and corr > 0.85 with just 5.

use dse_core::xval::{sweep_train_programs, EvalConfig};
use dse_sim::Metric;
use dse_workload::Suite;

fn main() {
    let ds = dse_bench::full_dataset();
    let cfg = EvalConfig {
        t: 512.min(ds.n_configs() / 2),
        repeats: dse_bench::repeats().min(10),
        ..EvalConfig::default()
    };
    let ns = [1usize, 2, 3, 5, 8, 12, 15, 20, 25];
    for metric in Metric::ALL {
        let pts = sweep_train_programs(&ds, Suite::SpecCpu2000, metric, &ns, &cfg);
        let rows: Vec<Vec<String>> = pts
            .iter()
            .map(|p| {
                vec![
                    p.x.to_string(),
                    format!("{:.1}", p.rmae.mean),
                    format!("{:.1}", p.rmae.std),
                    format!("{:.3}", p.corr.mean),
                    format!("{:.3}", p.corr.std),
                ]
            })
            .collect();
        dse_bench::print_table(
            &format!("Fig 14: accuracy vs offline training programs ({metric})"),
            &["N", "rmae%", "±", "corr", "±"],
            &rows,
        );
    }
}
