//! Table 2: parameters held constant (a) and width-derived functional
//! units (b).

use dse_space::{ConstantParams, FunctionalUnits};

fn main() {
    let c = ConstantParams::standard();
    let rows = vec![
        vec![
            "front-end depth".into(),
            format!("{} cycles", c.frontend_depth),
        ],
        vec!["L1 line".into(), format!("{} B", c.l1_line_bytes)],
        vec!["L2 line".into(), format!("{} B", c.l2_line_bytes)],
        vec![
            "L1I/L1D/L2 assoc".into(),
            format!("{}/{}/{}", c.l1i_assoc, c.l1d_assoc, c.l2_assoc),
        ],
        vec![
            "memory latency".into(),
            format!("{} cycles", c.memory_latency),
        ],
        vec![
            "int alu/mul/div lat".into(),
            format!(
                "{}/{}/{}",
                c.int_alu_latency, c.int_mul_latency, c.int_div_latency
            ),
        ],
        vec![
            "fp alu/mul/div lat".into(),
            format!(
                "{}/{}/{}",
                c.fp_alu_latency, c.fp_mul_latency, c.fp_div_latency
            ),
        ],
        vec!["memory ports".into(), format!("{}", c.mem_ports)],
    ];
    dse_bench::print_table(
        "Table 2a: constant parameters",
        &["parameter", "value"],
        &rows,
    );

    let rows: Vec<Vec<String>> = [2u32, 4, 6, 8]
        .iter()
        .map(|&w| {
            let f = FunctionalUnits::for_width(w);
            vec![
                w.to_string(),
                f.int_alu.to_string(),
                f.int_mul.to_string(),
                f.fp_alu.to_string(),
                f.fp_mul.to_string(),
            ]
        })
        .collect();
    dse_bench::print_table(
        "Table 2b: functional units by width",
        &["width", "intALU", "intMUL", "fpALU", "fpMUL"],
        &rows,
    );
}
