//! Fig 12: predicting MiBench programs from a model trained only on
//! SPEC CPU 2000 (T = 512, R = 32).

use dse_core::xval::{cross_suite, EvalConfig};
use dse_sim::Metric;
use dse_workload::Suite;

fn main() {
    let ds = dse_bench::full_dataset();
    let cfg = EvalConfig {
        t: 512.min(ds.n_configs() / 2),
        repeats: dse_bench::repeats(),
        ..EvalConfig::default()
    };
    for metric in Metric::ALL {
        let evals = cross_suite(&ds, Suite::SpecCpu2000, Suite::MiBench, metric, &cfg);
        let mut rows: Vec<Vec<String>> = evals
            .iter()
            .map(|e| {
                vec![
                    e.program.clone(),
                    format!("{:.1}", e.train_rmae.mean),
                    format!("{:.1}", e.test_rmae.mean),
                    format!("{:.1}", e.test_rmae.std),
                    format!("{:.3}", e.corr.mean),
                ]
            })
            .collect();
        let avg_train: f64 =
            evals.iter().map(|e| e.train_rmae.mean).sum::<f64>() / evals.len() as f64;
        let avg_test: f64 =
            evals.iter().map(|e| e.test_rmae.mean).sum::<f64>() / evals.len() as f64;
        let avg_corr: f64 = evals.iter().map(|e| e.corr.mean).sum::<f64>() / evals.len() as f64;
        rows.push(vec![
            "AVERAGE".into(),
            format!("{avg_train:.1}"),
            format!("{avg_test:.1}"),
            String::new(),
            format!("{avg_corr:.3}"),
        ]);
        dse_bench::print_table(
            &format!("Fig 12: MiBench predicted from SPEC ({metric})"),
            &["program", "train%", "test%", "±", "corr"],
            &rows,
        );
    }
}
