//! Fig 5: hierarchical clustering (average linkage, Euclidean distance on
//! baseline-normalised spaces) of the SPEC programs, per metric.

use dse_core::analysis::similarity;
use dse_core::dataset::SuiteDataset;
use dse_sim::Metric;
use dse_workload::Suite;

fn main() {
    let full = dse_bench::full_dataset();
    // Restrict to SPEC as in the figure.
    let spec = SuiteDataset {
        spec: full.spec,
        configs: full.configs.clone(),
        benchmarks: full
            .benchmarks
            .iter()
            .filter(|b| b.suite == Suite::SpecCpu2000)
            .cloned()
            .collect(),
    };
    for metric in Metric::ALL {
        let dg = similarity(&spec, metric);
        println!("\n== Fig 5: {metric} dendrogram ==");
        print!("{}", dg.render());
        let mut joins: Vec<(String, f64)> = (0..spec.benchmarks.len())
            .map(|i| (spec.benchmarks[i].name.clone(), dg.join_height(i)))
            .collect();
        joins.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        println!("most isolated programs (join height):");
        for (name, h) in joins.iter().take(5) {
            println!("  {name:12} {h:.3}");
        }
    }
}
