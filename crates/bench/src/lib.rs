//! Shared infrastructure for the experiment binaries (one per paper table
//! and figure) and the in-repo performance benches.
//!
//! Experiment binaries live in `src/bin/` (`table1`, `fig01` … `fig14`,
//! `ablation_*`) and all draw on the same cached dataset: 45 benchmarks
//! (SPEC CPU 2000 + MiBench stand-ins) × 3,000 shared configurations,
//! generated on first use under `target/dse-datasets/` (override with the
//! `DSE_DATA_DIR` environment variable). Reduced scale for smoke runs can
//! be requested with `DSE_QUICK=1`.
//!
//! Performance benches (`bench_sim`, `bench_ml`, `bench_predictor`,
//! `bench_components`) are ordinary binaries built on [`harness`]; run
//! them with `cargo run --release -p dse-bench --bin bench_sim`.

pub mod harness;

use dse_core::dataset::{DatasetSpec, SuiteDataset};
use std::path::PathBuf;

/// Directory holding cached datasets.
pub fn data_dir() -> PathBuf {
    std::env::var_os("DSE_DATA_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/dse-datasets"))
}

/// Whether quick (reduced-scale) mode was requested via `DSE_QUICK=1`.
pub fn quick_mode() -> bool {
    std::env::var_os("DSE_QUICK").is_some_and(|v| v == "1")
}

/// The dataset spec used by the experiments: the paper's 3,000-sample
/// protocol, or a reduced spec in quick mode.
pub fn experiment_spec() -> DatasetSpec {
    if quick_mode() {
        DatasetSpec {
            n_configs: 300,
            ..DatasetSpec::default()
        }
    } else {
        DatasetSpec::default()
    }
}

/// Loads (or generates and caches) the full 45-benchmark dataset.
///
/// # Panics
///
/// Panics if the cache directory cannot be created or written.
pub fn full_dataset() -> SuiteDataset {
    let profiles = dse_workload::suites::all_benchmarks();
    SuiteDataset::load_or_generate(&profiles, &experiment_spec(), &data_dir())
        .expect("dataset cache must be readable and writable")
}

/// Number of experiment repetitions (the paper's 20, or 5 in quick mode).
pub fn repeats() -> usize {
    if quick_mode() {
        5
    } else {
        20
    }
}

/// Formats one numeric cell compactly.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1e5 || v.abs() < 1e-2 {
        format!("{v:.3e}")
    } else {
        format!("{v:.2}")
    }
}

/// Prints an aligned text table to stdout.
///
/// # Panics
///
/// Panics if a row's width differs from the header's.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), headers.len(), "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let joined: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        println!("{}", joined.join("  "));
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Shared report for Figs 2 and 3: parameter-value frequencies in the
/// best and worst 1 % of configurations for one metric, over SPEC.
pub fn extremes_report(metric: dse_sim::Metric) {
    use dse_core::analysis::{dominant_value, extremes, Extreme};
    use dse_core::dataset::SuiteDataset;
    use dse_space::{Param, PARAMS};

    let full = full_dataset();
    let spec = SuiteDataset {
        spec: full.spec,
        configs: full.configs.clone(),
        benchmarks: full
            .benchmarks
            .iter()
            .filter(|b| b.suite == dse_workload::Suite::SpecCpu2000)
            .cloned()
            .collect(),
    };
    // The six parameters shown in the paper's figures.
    let shown = [
        Param::Width,
        Param::Rob,
        Param::Rf,
        Param::RfRead,
        Param::L2,
        Param::Bpred,
    ];
    for (label, end) in [("best", Extreme::Best), ("worst", Extreme::Worst)] {
        let freqs = extremes(&spec, metric, end, 0.01);
        for p in shown {
            let def = &PARAMS[p as usize];
            let f = &freqs[p as usize];
            let total: usize = f.iter().sum();
            let rows: Vec<Vec<String>> = def
                .values
                .iter()
                .zip(f)
                .map(|(v, &c)| {
                    vec![
                        v.to_string(),
                        c.to_string(),
                        format!("{:.1}%", 100.0 * c as f64 / total as f64),
                    ]
                })
                .collect();
            print_table(
                &format!("{metric} {label} 1%: {} ({})", def.name, def.unit),
                &["value", "count", "share"],
                &rows,
            );
        }
        println!("\ndominant values in the {label} 1% ({metric}):");
        for p in Param::ALL {
            let (v, share) = dominant_value(&freqs, p);
            println!(
                "  {:12} {v:>6}  ({:.0}% of selections)",
                p.to_string(),
                share * 100.0
            );
        }
    }
}
