//! Minimal measurement harness replacing Criterion.
//!
//! Each benchmark runs a warm-up phase followed by `iters` timed
//! iterations and reports the median, the interquartile spread, and the
//! min/max — enough to spot regressions and multi-modal timings without
//! any statistical machinery. Results print as one aligned line per
//! benchmark:
//!
//! ```text
//! simulator/baseline/gzip/20k       median 12.41ms  iqr 0.22ms  min 12.30ms  max 13.05ms  (15 iters)
//! ```
//!
//! Bench binaries live in `src/bin/bench_*.rs` and are plain `cargo run
//! --release -p dse-bench --bin bench_sim` targets; iteration counts can
//! be scaled down for smoke runs with `DSE_QUICK=1`.
//!
//! A [`Report`] collects the per-row summaries plus throughput rates and
//! environment metadata. Bench binaries write it as machine-readable JSON
//! when `DSE_BENCH_JSON=<path>` is set, and compare their fresh per-row
//! minimums against a committed baseline when `DSE_BENCH_BASELINE=<path>`
//! is set, failing on a >25 % regression (the CI perf gate; the minimum
//! is used because it is robust to neighbour load on a shared host).

use dse_util::json::{Json, ToJson};
use std::time::{Duration, Instant};

/// Re-export so bench binaries keep the optimiser honest without naming
/// `std::hint` everywhere.
pub use std::hint::black_box;

/// One benchmark's timing summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchResult {
    /// Median iteration time.
    pub median: Duration,
    /// Interquartile range (p75 − p25): the robust spread measure.
    pub iqr: Duration,
    /// 95th-percentile iteration time (tail latency).
    pub p95: Duration,
    /// 99th-percentile iteration time (deep tail; the latency SLO most
    /// load tests care about).
    pub p99: Duration,
    /// Fastest iteration.
    pub min: Duration,
    /// Slowest iteration.
    pub max: Duration,
    /// Number of timed iterations.
    pub iters: usize,
}

/// Runs `f` for `warmup` untimed and `iters` timed iterations and returns
/// the summary.
///
/// # Panics
///
/// Panics if `iters` is zero.
pub fn measure<F: FnMut()>(warmup: usize, iters: usize, mut f: F) -> BenchResult {
    assert!(iters > 0, "need at least one timed iteration");
    for _ in 0..warmup {
        f();
    }
    let mut samples: Vec<Duration> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed());
    }
    samples.sort_unstable();
    let pct = |p: f64| samples[((samples.len() - 1) as f64 * p).round() as usize];
    BenchResult {
        median: pct(0.5),
        iqr: pct(0.75).saturating_sub(pct(0.25)),
        p95: pct(0.95),
        p99: pct(0.99),
        min: samples[0],
        max: samples[samples.len() - 1],
        iters,
    }
}

/// Runs and prints one benchmark line.
pub fn bench<F: FnMut()>(name: &str, warmup: usize, iters: usize, f: F) -> BenchResult {
    let r = measure(warmup, iters, f);
    println!(
        "{name:<40} median {:>9}  iqr {:>9}  min {:>9}  max {:>9}  ({} iters)",
        fmt_duration(r.median),
        fmt_duration(r.iqr),
        fmt_duration(r.min),
        fmt_duration(r.max),
        r.iters
    );
    r
}

/// Iteration count respecting quick mode: `full` normally, `quick` when
/// `DSE_QUICK=1`.
pub fn iters_for(full: usize, quick: usize) -> usize {
    if crate::quick_mode() {
        quick
    } else {
        full
    }
}

/// One named bench row with optional throughput rates, as collected into
/// a [`Report`].
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Row name as printed (e.g. `simulator/baseline/gzip/20k`).
    pub name: String,
    /// Timing summary.
    pub result: BenchResult,
    /// Simulations (or trace generations) per second, `1 / median`.
    pub sims_per_sec: f64,
    /// Simulated cycles per second of wall time, when the workload has a
    /// cycle count (`None` for non-simulator rows).
    pub cycles_per_sec: Option<f64>,
}

/// A machine-readable bench report: rows plus environment metadata.
#[derive(Debug, Clone, Default)]
pub struct Report {
    rows: Vec<BenchRecord>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs and prints one bench row and records it. `cycles_per_run`
    /// (simulated cycles executed by one call of `f`) prices the
    /// cycles/sec rate; pass `None` for rows that simulate nothing.
    pub fn bench<F: FnMut()>(
        &mut self,
        name: &str,
        warmup: usize,
        iters: usize,
        cycles_per_run: Option<u64>,
        f: F,
    ) -> BenchResult {
        self.bench_scaled(name, warmup, iters, 1, cycles_per_run, f)
    }

    /// Like [`Report::bench`], but one call of `f` performs `runs` whole
    /// simulations (e.g. a batch sweep over many configurations):
    /// `sims_per_sec` is priced per simulation (`runs / median`), so
    /// sweep rows compare directly against single-simulation rows.
    /// `cycles_per_run` stays the total simulated cycles of one call.
    pub fn bench_scaled<F: FnMut()>(
        &mut self,
        name: &str,
        warmup: usize,
        iters: usize,
        runs: usize,
        cycles_per_run: Option<u64>,
        f: F,
    ) -> BenchResult {
        assert!(runs > 0, "a bench row must perform at least one run");
        let r = bench(name, warmup, iters, f);
        let secs = r.median.as_secs_f64();
        self.rows.push(BenchRecord {
            name: name.to_string(),
            result: r,
            sims_per_sec: runs as f64 / secs,
            cycles_per_sec: cycles_per_run.map(|c| c as f64 / secs),
        });
        r
    }

    /// Records a row from externally collected per-event latencies — the
    /// load-harness case, where requests complete concurrently across
    /// many connections and a single timed closure cannot observe them
    /// individually. `rate_per_sec` is the measured end-to-end event
    /// throughput (a latency distribution alone cannot derive it under
    /// concurrency) and lands in `sims_per_sec`.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn push_samples(&mut self, name: &str, samples: &mut [Duration], rate_per_sec: f64) {
        assert!(!samples.is_empty(), "need at least one latency sample");
        samples.sort_unstable();
        let pct = |p: f64| samples[((samples.len() - 1) as f64 * p).round() as usize];
        let r = BenchResult {
            median: pct(0.5),
            iqr: pct(0.75).saturating_sub(pct(0.25)),
            p95: pct(0.95),
            p99: pct(0.99),
            min: samples[0],
            max: samples[samples.len() - 1],
            iters: samples.len(),
        };
        println!(
            "{name:<40} p50 {:>9}  p95 {:>9}  p99 {:>9}  max {:>9}  ({} reqs, {:.0}/s)",
            fmt_duration(r.median),
            fmt_duration(r.p95),
            fmt_duration(r.p99),
            fmt_duration(r.max),
            r.iters,
            rate_per_sec
        );
        self.rows.push(BenchRecord {
            name: name.to_string(),
            result: r,
            sims_per_sec: rate_per_sec,
            cycles_per_sec: None,
        });
    }

    /// The recorded rows.
    pub fn rows(&self) -> &[BenchRecord] {
        &self.rows
    }

    /// Serialises the report (row medians/percentiles, rates, and host
    /// metadata) for `BENCH_sim.json`.
    pub fn to_json(&self) -> Json {
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|rec| {
                let r = rec.result;
                Json::obj([
                    ("name", rec.name.to_json()),
                    ("median_ns", (r.median.as_nanos() as u64).to_json()),
                    ("iqr_ns", (r.iqr.as_nanos() as u64).to_json()),
                    ("p95_ns", (r.p95.as_nanos() as u64).to_json()),
                    ("p99_ns", (r.p99.as_nanos() as u64).to_json()),
                    ("min_ns", (r.min.as_nanos() as u64).to_json()),
                    ("max_ns", (r.max.as_nanos() as u64).to_json()),
                    ("iters", r.iters.to_json()),
                    ("sims_per_sec", rec.sims_per_sec.to_json()),
                    (
                        "cycles_per_sec",
                        match rec.cycles_per_sec {
                            Some(c) => c.to_json(),
                            None => Json::Null,
                        },
                    ),
                ])
            })
            .collect();
        Json::obj([
            (
                "env",
                Json::obj([
                    ("os", std::env::consts::OS.to_json()),
                    ("arch", std::env::consts::ARCH.to_json()),
                    (
                        "cpus",
                        std::thread::available_parallelism()
                            .map(|n| n.get())
                            .unwrap_or(1)
                            .to_json(),
                    ),
                    ("quick", crate::quick_mode().to_json()),
                    ("harness", env!("CARGO_PKG_VERSION").to_json()),
                ]),
            ),
            ("rows", Json::Arr(rows)),
        ])
    }

    /// Writes the JSON report to `path`.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written (a bench run asked for output
    /// it cannot produce).
    pub fn write_json(&self, path: &str) {
        std::fs::write(path, format!("{}\n", self.to_json()))
            .unwrap_or_else(|e| panic!("cannot write bench report {path}: {e}"));
        eprintln!("[bench] wrote {path}");
    }

    /// Compares fresh per-row minimums against a baseline report
    /// previously written by [`Report::write_json`]. The minimum is the
    /// noise-robust statistic on a shared 1-vCPU host: transient
    /// neighbour load inflates medians of 3-iteration rows by 40 %+,
    /// while the best iteration tracks what the code can actually do.
    /// Rows are matched by name; rows missing on either side are skipped
    /// (new benches and retired benches don't fail the gate). Baselines
    /// written before `min_ns` existed fall back to `median_ns`. Returns
    /// one message per row that regressed by more than `tolerance`
    /// (0.25 = +25 %).
    ///
    /// # Errors
    ///
    /// Returns the baseline parse failure as a message, so a corrupt
    /// baseline fails the gate loudly instead of silently passing.
    pub fn regressions(&self, baseline_text: &str, tolerance: f64) -> Result<Vec<String>, String> {
        let base = Json::parse(baseline_text).map_err(|e| format!("bad baseline JSON: {e}"))?;
        let rows = base
            .field("rows")
            .and_then(Json::as_array)
            .map_err(|e| format!("bad baseline JSON: {e}"))?;
        let mut msgs = Vec::new();
        for rec in &self.rows {
            let Some(b) = rows
                .iter()
                .find(|r| r.field("name").and_then(Json::as_str).ok() == Some(rec.name.as_str()))
            else {
                continue;
            };
            let base_ns = b
                .field("min_ns")
                .and_then(Json::as_u64)
                .or_else(|_| b.field("median_ns").and_then(Json::as_u64))
                .map_err(|e| format!("bad baseline row `{}`: {e}", rec.name))?;
            let fresh_ns = rec.result.min.as_nanos() as u64;
            let limit = base_ns as f64 * (1.0 + tolerance);
            if fresh_ns as f64 > limit {
                msgs.push(format!(
                    "{}: min {fresh_ns}ns exceeds baseline {base_ns}ns by more than {:.0}%",
                    rec.name,
                    tolerance * 100.0
                ));
            }
        }
        Ok(msgs)
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_reports_ordered_statistics() {
        let mut n = 0u64;
        let r = measure(2, 9, || {
            n += 1;
            std::thread::sleep(Duration::from_micros(50 + (n % 3) * 20));
        });
        assert_eq!(r.iters, 9);
        assert!(r.min <= r.median && r.median <= r.max);
        assert!(r.iqr <= r.max - r.min);
        assert!(r.min >= Duration::from_micros(50));
    }

    #[test]
    #[should_panic(expected = "at least one timed iteration")]
    fn measure_rejects_zero_iters() {
        measure(0, 0, || {});
    }

    #[test]
    fn fmt_duration_picks_sensible_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(999)), "999ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
    }

    fn report_with(name: &str, median_ns: u64) -> Report {
        let d = Duration::from_nanos(median_ns);
        let mut rep = Report::new();
        rep.rows.push(BenchRecord {
            name: name.to_string(),
            result: BenchResult {
                median: d,
                iqr: Duration::ZERO,
                p95: d,
                p99: d,
                min: d,
                max: d,
                iters: 3,
            },
            sims_per_sec: 1e9 / median_ns as f64,
            cycles_per_sec: None,
        });
        rep
    }

    #[test]
    fn regression_gate_flags_only_real_regressions() {
        let baseline = report_with("row/a", 1_000_000);
        let text = baseline.to_json().to_string();

        // +10% is within the 25% tolerance.
        assert!(report_with("row/a", 1_100_000)
            .regressions(&text, 0.25)
            .unwrap()
            .is_empty());
        // +50% regresses.
        let msgs = report_with("row/a", 1_500_000)
            .regressions(&text, 0.25)
            .unwrap();
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].contains("row/a"), "message names the row: {msgs:?}");
        // A row absent from the baseline is skipped, not failed.
        assert!(report_with("row/new", 9_000_000)
            .regressions(&text, 0.25)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn regression_gate_compares_minimums_not_medians() {
        let baseline = report_with("row/a", 1_000_000);
        let text = baseline.to_json().to_string();

        // A fresh run whose median spiked +80% but whose best iteration
        // still matches the baseline passes: neighbour load, not code.
        let mut noisy = report_with("row/a", 1_800_000);
        noisy.rows[0].result.min = Duration::from_nanos(1_050_000);
        assert!(noisy.regressions(&text, 0.25).unwrap().is_empty());

        // A fresh run whose *minimum* regressed +50% fails even if the
        // median happens to look fine.
        let mut slow = report_with("row/a", 1_000_000);
        slow.rows[0].result.min = Duration::from_nanos(1_500_000);
        let msgs = slow.regressions(&text, 0.25).unwrap();
        assert_eq!(msgs.len(), 1);
        assert!(
            msgs[0].contains("min"),
            "message names the statistic: {msgs:?}"
        );

        // Baselines from before `min_ns` existed fall back to median_ns.
        let legacy = r#"{"rows": [{"name": "row/a", "median_ns": 1000000}]}"#;
        assert!(report_with("row/a", 1_100_000)
            .regressions(legacy, 0.25)
            .unwrap()
            .is_empty());
        assert_eq!(
            report_with("row/a", 1_500_000)
                .regressions(legacy, 0.25)
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn push_samples_builds_percentiles_and_rate() {
        let mut rep = Report::new();
        let mut samples: Vec<Duration> = (1..=100).map(Duration::from_micros).collect();
        rep.push_samples("load/x", &mut samples, 1234.0);
        let rec = &rep.rows()[0];
        assert_eq!(rec.result.iters, 100);
        assert_eq!(rec.result.median, Duration::from_micros(51));
        assert_eq!(rec.result.p95, Duration::from_micros(95));
        assert_eq!(rec.result.p99, Duration::from_micros(99));
        assert_eq!(rec.result.min, Duration::from_micros(1));
        assert_eq!(rec.result.max, Duration::from_micros(100));
        assert_eq!(rec.sims_per_sec, 1234.0);
        let j = rep.to_json();
        let row = &j.field("rows").and_then(Json::as_array).unwrap()[0];
        assert_eq!(row.field("p99_ns").and_then(Json::as_u64).unwrap(), 99_000);
    }

    #[test]
    fn regression_gate_rejects_corrupt_baseline() {
        let rep = report_with("row/a", 1_000_000);
        assert!(rep.regressions("not json", 0.25).is_err());
        assert!(rep.regressions("{\"rows\": 3}", 0.25).is_err());
    }

    #[test]
    fn report_json_has_rows_and_env() {
        let rep = report_with("row/a", 2_000_000);
        let j = rep.to_json();
        let rows = j.field("rows").and_then(Json::as_array).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(
            rows[0].field("median_ns").and_then(Json::as_u64).unwrap(),
            2_000_000
        );
        assert_eq!(
            rows[0]
                .field("sims_per_sec")
                .and_then(Json::as_f64)
                .unwrap(),
            500.0
        );
        assert!(j.field("env").and_then(|e| e.field("os")).is_ok());
    }
}
