//! Minimal measurement harness replacing Criterion.
//!
//! Each benchmark runs a warm-up phase followed by `iters` timed
//! iterations and reports the median, the interquartile spread, and the
//! min/max — enough to spot regressions and multi-modal timings without
//! any statistical machinery. Results print as one aligned line per
//! benchmark:
//!
//! ```text
//! simulator/baseline/gzip/20k       median 12.41ms  iqr 0.22ms  min 12.30ms  max 13.05ms  (15 iters)
//! ```
//!
//! Bench binaries live in `src/bin/bench_*.rs` and are plain `cargo run
//! --release -p dse-bench --bin bench_sim` targets; iteration counts can
//! be scaled down for smoke runs with `DSE_QUICK=1`.

use std::time::{Duration, Instant};

/// Re-export so bench binaries keep the optimiser honest without naming
/// `std::hint` everywhere.
pub use std::hint::black_box;

/// One benchmark's timing summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchResult {
    /// Median iteration time.
    pub median: Duration,
    /// Interquartile range (p75 − p25): the robust spread measure.
    pub iqr: Duration,
    /// Fastest iteration.
    pub min: Duration,
    /// Slowest iteration.
    pub max: Duration,
    /// Number of timed iterations.
    pub iters: usize,
}

/// Runs `f` for `warmup` untimed and `iters` timed iterations and returns
/// the summary.
///
/// # Panics
///
/// Panics if `iters` is zero.
pub fn measure<F: FnMut()>(warmup: usize, iters: usize, mut f: F) -> BenchResult {
    assert!(iters > 0, "need at least one timed iteration");
    for _ in 0..warmup {
        f();
    }
    let mut samples: Vec<Duration> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed());
    }
    samples.sort_unstable();
    let pct = |p: f64| samples[((samples.len() - 1) as f64 * p).round() as usize];
    BenchResult {
        median: pct(0.5),
        iqr: pct(0.75).saturating_sub(pct(0.25)),
        min: samples[0],
        max: samples[samples.len() - 1],
        iters,
    }
}

/// Runs and prints one benchmark line.
pub fn bench<F: FnMut()>(name: &str, warmup: usize, iters: usize, f: F) -> BenchResult {
    let r = measure(warmup, iters, f);
    println!(
        "{name:<40} median {:>9}  iqr {:>9}  min {:>9}  max {:>9}  ({} iters)",
        fmt_duration(r.median),
        fmt_duration(r.iqr),
        fmt_duration(r.min),
        fmt_duration(r.max),
        r.iters
    );
    r
}

/// Iteration count respecting quick mode: `full` normally, `quick` when
/// `DSE_QUICK=1`.
pub fn iters_for(full: usize, quick: usize) -> usize {
    if crate::quick_mode() {
        quick
    } else {
        full
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_reports_ordered_statistics() {
        let mut n = 0u64;
        let r = measure(2, 9, || {
            n += 1;
            std::thread::sleep(Duration::from_micros(50 + (n % 3) * 20));
        });
        assert_eq!(r.iters, 9);
        assert!(r.min <= r.median && r.median <= r.max);
        assert!(r.iqr <= r.max - r.min);
        assert!(r.min >= Duration::from_micros(50));
    }

    #[test]
    #[should_panic(expected = "at least one timed iteration")]
    fn measure_rejects_zero_iters() {
        measure(0, 0, || {});
    }

    #[test]
    fn fmt_duration_picks_sensible_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(999)), "999ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
    }
}
