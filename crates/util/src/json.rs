//! Minimal JSON value type, writer and parser.
//!
//! This replaces `serde`/`serde_json` for the one serialisation job the
//! workspace has: the on-disk dataset cache. The subset implemented is
//! full RFC 8259 JSON on the *parse* side (any well-formed document is
//! accepted, including `\uXXXX` escapes and surrogate pairs) and a
//! deliberately small surface on the *write* side: objects, arrays,
//! strings, booleans, `null`, and numbers.
//!
//! Numbers are stored as `f64` and written with Rust's shortest
//! round-trip formatting, so `write → parse` reproduces every `f64`
//! bit-exactly (see the round-trip tests). Integers up to 2⁵³ — every
//! count and seed-derived id the workspace stores — survive the same way.
//! The format is byte-compatible with what `serde_json` produced for the
//! same structures (unit enum variants as bare strings, structs as
//! objects), so dataset caches written before this layer existed remain
//! readable.
//!
//! Domain types implement [`ToJson`]/[`FromJson`] by hand; see
//! `dse-space::Config` or `dse-core::SuiteDataset` for the idiom.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Insertion order is preserved for stable output.
    Obj(Vec<(String, Json)>),
}

/// Error produced by the parser or by [`FromJson`] conversions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Byte offset in the input where the parser failed (0 for
    /// conversion errors that could not be located in the input).
    pub offset: usize,
    /// Key path from the document root to the failing value, outermost
    /// segment first. Object keys are stored bare (`"profile"`), array
    /// indices bracketed (`"[3]"`). Empty for parser errors and for
    /// conversions that never descended into a container.
    pub path: Vec<String>,
}

impl JsonError {
    /// A conversion (non-positional) error.
    pub fn msg(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            offset: 0,
            path: Vec::new(),
        }
    }

    /// Prefixes `segment` onto the key path — called by container
    /// conversions as an error propagates outward, so the outermost
    /// frame ends up first.
    #[must_use]
    pub fn in_path(mut self, segment: impl Into<String>) -> Self {
        self.path.insert(0, segment.into());
        self
    }

    /// The key path rendered `$`-rooted, e.g. `$.profile.mix[2]`.
    pub fn path_string(&self) -> String {
        let mut s = String::from("$");
        for seg in &self.path {
            if seg.starts_with('[') {
                s.push_str(seg);
            } else {
                s.push('.');
                s.push_str(seg);
            }
        }
        s
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.path.is_empty() {
            write!(f, "{} (at byte {})", self.message, self.offset)
        } else {
            write!(
                f,
                "{} (at {}, byte {})",
                self.message,
                self.path_string(),
                self.offset
            )
        }
    }
}

impl std::error::Error for JsonError {}

/// Serialise to a [`Json`] value.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

/// Deserialise from a [`Json`] value.
pub trait FromJson: Sized {
    /// Reconstructs `Self`, rejecting structurally or semantically
    /// invalid input.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first mismatch.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

impl Json {
    /// Parses a complete JSON document (trailing garbage is rejected).
    ///
    /// # Errors
    ///
    /// Returns the first syntax error with its byte offset.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Serialises to a compact string (no whitespace).
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(x) => write_number(*x, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// The value of an object field.
    ///
    /// # Errors
    ///
    /// Errors if `self` is not an object or lacks the field.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        match self {
            Json::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| JsonError::msg(format!("missing field `{key}`"))),
            other => Err(JsonError::msg(format!(
                "expected object with field `{key}`, found {}",
                other.kind()
            ))),
        }
    }

    /// The elements of an array.
    ///
    /// # Errors
    ///
    /// Errors if `self` is not an array.
    pub fn as_array(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(JsonError::msg(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }

    /// The string payload.
    ///
    /// # Errors
    ///
    /// Errors if `self` is not a string.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(JsonError::msg(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }

    /// The numeric payload.
    ///
    /// # Errors
    ///
    /// Errors if `self` is not a number.
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Json::Num(x) => Ok(*x),
            other => Err(JsonError::msg(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }

    /// The numeric payload as a non-negative integer.
    ///
    /// # Errors
    ///
    /// Errors if `self` is not a number with an exact non-negative
    /// integral value within `u64` range.
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        let x = self.as_f64()?;
        if x < 0.0 || x.fract() != 0.0 || x > 2f64.powi(53) {
            return Err(JsonError::msg(format!(
                "expected non-negative integer, found {x}"
            )));
        }
        Ok(x as u64)
    }

    /// The boolean payload.
    ///
    /// # Errors
    ///
    /// Errors if `self` is not a boolean.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(JsonError::msg(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }

    /// Reads and converts an object field, tagging any error with the
    /// field's key path — the idiomatic accessor for `FromJson`
    /// implementations that want actionable nested errors.
    ///
    /// # Errors
    ///
    /// Errors if `self` is not an object, lacks the field, or the field
    /// fails `T`'s conversion; conversion errors carry `key` prefixed
    /// onto their path.
    pub fn get<T: FromJson>(&self, key: &str) -> Result<T, JsonError> {
        T::from_json(self.field(key)?).map_err(|e| e.in_path(key))
    }

    fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    /// Builds an object from `(key, value)` pairs — the idiomatic way for
    /// `ToJson` implementations to stay readable.
    pub fn obj<const N: usize>(fields: [(&str, Json); N]) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

/// Shortest round-trip formatting (Rust's `{:?}` for floats is exact:
/// parsing the output recovers the identical bits). Non-finite values have
/// no JSON representation.
fn write_number(x: f64, out: &mut String) {
    assert!(x.is_finite(), "cannot serialise non-finite number {x}");
    // Integral values in the exactly-representable range print without the
    // trailing `.0`, matching what serde_json emitted for integer fields.
    if x.fract() == 0.0 && x.abs() <= 2f64.powi(53) {
        write_int(x, out);
    } else {
        out.push_str(&format!("{x:?}"));
    }
}

fn write_int(x: f64, out: &mut String) {
    if x < 0.0 {
        out.push_str(&format!("{}", x as i64));
    } else {
        out.push_str(&format!("{}", x as u64));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Nesting-depth cap: the workspace's documents are ~4 levels deep; a cap
/// keeps maliciously-nested input from overflowing the parser stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
            path: Vec::new(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal (expected `{word}`)")))
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => {
                    // Consume the whole run of plain bytes at once. The
                    // input is a &str, and the run only ever stops at an
                    // ASCII byte (`"`, `\` or a control character), which
                    // cannot fall inside a multi-byte UTF-8 sequence — so
                    // the chunk is valid UTF-8 by construction.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' || b < 0x20 {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` alone or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let x: f64 = text.parse().map_err(|_| self.err("number out of range"))?;
        if !x.is_finite() {
            return Err(self.err("number overflows f64"));
        }
        Ok(Json::Num(x))
    }
}

// --- blanket and primitive impls -----------------------------------------

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_f64()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_bool()
    }
}

impl ToJson for u32 {
    fn to_json(&self) -> Json {
        Json::Num(f64::from(*self))
    }
}

impl FromJson for u32 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let x = v.as_u64()?;
        u32::try_from(x).map_err(|_| JsonError::msg(format!("{x} overflows u32")))
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        // Seeds and counts beyond 2^53 are stored as exact decimal strings
        // would be safer, but the workspace keeps all persisted u64s within
        // the f64-exact range; assert rather than lose bits silently.
        assert!(
            *self <= 1u64 << 53,
            "u64 value {self} exceeds the f64-exact range"
        );
        Json::Num(*self as f64)
    }
}

impl FromJson for u64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_u64()
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        (*self as u64).to_json()
    }
}

impl FromJson for usize {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let x = v.as_u64()?;
        usize::try_from(x).map_err(|_| JsonError::msg(format!("{x} overflows usize")))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.as_str()?.to_string())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_array()?
            .iter()
            .enumerate()
            .map(|(i, item)| T::from_json(item).map_err(|e| e.in_path(format!("[{i}]"))))
            .collect()
    }
}

impl<K: Ord + ToString, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Obj(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_json()))
                .collect(),
        )
    }
}

/// Serialises any [`ToJson`] value to a compact JSON string.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    value.to_json().write(&mut out);
    out
}

/// Parses a JSON document and converts it to `T`.
///
/// Conversion errors that carry a key path are re-anchored to the byte
/// offset of that path in `text`, so callers see *where* in the document
/// the offending value sits, not just which field it was.
///
/// # Errors
///
/// Returns the first syntax or conversion error.
pub fn from_str<T: FromJson>(text: &str) -> Result<T, JsonError> {
    T::from_json(&Json::parse(text)?).map_err(|mut e| {
        if e.offset == 0 && !e.path.is_empty() {
            if let Some(off) = locate(text, &e.path) {
                e.offset = off;
            }
        }
        e
    })
}

/// Walks `text` to the value addressed by `path` (object keys bare,
/// array indices as `[i]`) and returns its byte offset, or `None` if the
/// path does not resolve — e.g. because it names a missing field.
fn locate(text: &str, path: &[String]) -> Option<usize> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    for seg in path {
        if let Some(idx) = seg.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            let want: usize = idx.parse().ok()?;
            if p.peek() != Some(b'[') {
                return None;
            }
            p.pos += 1;
            let mut i = 0;
            loop {
                p.skip_ws();
                if p.peek() == Some(b']') {
                    return None;
                }
                if i == want {
                    break;
                }
                p.value().ok()?;
                p.skip_ws();
                if p.peek() != Some(b',') {
                    return None;
                }
                p.pos += 1;
                i += 1;
            }
        } else {
            if p.peek() != Some(b'{') {
                return None;
            }
            p.pos += 1;
            loop {
                p.skip_ws();
                let key = p.string().ok()?;
                p.skip_ws();
                if p.peek() != Some(b':') {
                    return None;
                }
                p.pos += 1;
                p.skip_ws();
                if key == *seg {
                    break;
                }
                p.value().ok()?;
                p.skip_ws();
                if p.peek() != Some(b',') {
                    return None;
                }
                p.pos += 1;
            }
        }
    }
    Some(p.pos)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Json) -> Json {
        Json::parse(&v.to_string()).expect("writer output must parse")
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Num(0.0),
            Json::Num(-17.0),
            Json::Num(3.141592653589793),
            Json::Num(1e300),
            Json::Num(-2.2250738585072014e-308),
            Json::Str(String::new()),
            Json::Str("hello \"world\"\n\t\\ ∑ 🎉".to_string()),
        ] {
            assert_eq!(round_trip(&v), v);
        }
    }

    #[test]
    fn f64_bit_exact_round_trip() {
        // A stress sample across the exponent range, including values with
        // no short decimal representation.
        let mut x = 1.0f64;
        for i in 0..200 {
            let v = x * (1.0 + (i as f64) * 1e-13) * if i % 2 == 0 { 1.0 } else { -1.0 };
            let back = round_trip(&Json::Num(v));
            match back {
                Json::Num(y) => assert_eq!(y.to_bits(), v.to_bits(), "value {v}"),
                other => panic!("expected number, got {other:?}"),
            }
            x *= 3.7;
            if !x.is_finite() {
                x = 1.0e-250;
            }
        }
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::Num(96.0).to_string(), "96");
        assert_eq!(Json::Num(-5.0).to_string(), "-5");
        assert_eq!(to_string(&42u32), "42");
        assert_eq!(to_string(&(1u64 << 53)), "9007199254740992");
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Json::obj([
            ("name", "gzip".to_json()),
            ("metrics", Json::Arr(vec![Json::Num(1.5), Json::Num(2.5)])),
            (
                "inner",
                Json::obj([("ok", Json::Bool(true)), ("n", Json::Null)]),
            ),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        assert_eq!(round_trip(&v), v);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let text = r#"
            { "a" : [ 1 , 2.5e1 , -3 ] ,
              "b" : "line\nbreak Aé 🎉" }
        "#;
        let v = Json::parse(text).unwrap();
        assert_eq!(
            v.field("a").unwrap().as_array().unwrap()[1],
            Json::Num(25.0)
        );
        assert_eq!(v.field("b").unwrap().as_str().unwrap(), "line\nbreak Aé 🎉");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "}",
            "[1, 2",
            "[1 2]",
            "{\"a\": }",
            "{\"a\" 1}",
            "{a: 1}",
            "tru",
            "nulll",
            "01",
            "1.",
            "1e",
            "+1",
            "\"unterminated",
            "\"bad \\x escape\"",
            "\"\\ud800 unpaired\"",
            "[1] trailing",
            "NaN",
            "Infinity",
            "1e999",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted malformed: {bad:?}");
        }
    }

    #[test]
    fn depth_limit_rejects_pathological_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.message.contains("deep"));
    }

    #[test]
    fn error_carries_offset() {
        let err = Json::parse("[1, 2, oops]").unwrap_err();
        assert_eq!(err.offset, 7);
    }

    #[test]
    fn field_and_accessor_errors_are_descriptive() {
        let v = Json::parse("{\"x\": 1}").unwrap();
        assert!(v.field("y").unwrap_err().message.contains("missing"));
        assert!(v.field("x").unwrap().as_str().is_err());
        assert!(Json::Num(1.5).as_u64().is_err());
        assert!(Json::Num(-1.0).as_u64().is_err());
    }

    #[test]
    fn vec_and_primitive_traits_round_trip() {
        let xs = vec![1.5f64, -2.25, 1e-12];
        let back: Vec<f64> = from_str(&to_string(&xs)).unwrap();
        assert_eq!(back, xs);
        let n: u32 = from_str("4096").unwrap();
        assert_eq!(n, 4096);
        assert!(from_str::<u32>("4294967296").is_err());
        assert!(from_str::<u32>("3.5").is_err());
    }

    #[test]
    fn get_tags_errors_with_key_path() {
        let v = Json::parse(r#"{"outer": {"inner": "oops"}}"#).unwrap();
        let outer = v.field("outer").unwrap();
        let err = outer.get::<f64>("inner").unwrap_err().in_path("outer");
        assert_eq!(err.path, vec!["outer".to_string(), "inner".to_string()]);
        assert_eq!(err.path_string(), "$.outer.inner");
        let shown = err.to_string();
        assert!(shown.contains("$.outer.inner"), "display: {shown}");
    }

    #[test]
    fn vec_conversion_errors_carry_index_segments() {
        let err = from_str::<Vec<f64>>("[1.0, 2.0, \"x\"]").unwrap_err();
        assert_eq!(err.path, vec!["[2]".to_string()]);
        assert_eq!(err.path_string(), "$[2]");
    }

    #[test]
    fn from_str_locates_conversion_errors_by_byte_offset() {
        let text = r#"{"a": [1, 2], "b": [3, "bad"]}"#;
        #[derive(Debug)]
        struct Two;
        impl FromJson for Two {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let _: Vec<f64> = v.get("a")?;
                let _: Vec<f64> = v.get("b")?;
                Ok(Two)
            }
        }
        let err = from_str::<Two>(text).unwrap_err();
        assert_eq!(err.path_string(), "$.b[1]");
        assert_eq!(err.offset, text.find("\"bad\"").unwrap());
        assert!(err.to_string().contains("byte 23"), "display: {err}");
    }

    #[test]
    fn locate_handles_missing_paths_gracefully() {
        assert_eq!(locate("[1, 2]", &["[5]".to_string()]), None);
        assert_eq!(locate("{\"a\": 1}", &["b".to_string()]), None);
        assert_eq!(locate("17", &["a".to_string()]), None);
        let text = r#"{"a": {"b": [10, 20, 30]}}"#;
        let path = vec!["a".to_string(), "b".to_string(), "[2]".to_string()];
        assert_eq!(locate(text, &path), Some(text.find("30").unwrap()));
    }

    #[test]
    fn parser_errors_keep_the_legacy_display_format() {
        let err = Json::parse("[1, 2, oops]").unwrap_err();
        assert!(err.path.is_empty());
        assert_eq!(err.to_string(), "unexpected character (at byte 7)");
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn writer_rejects_nan() {
        let mut s = String::new();
        Json::Num(f64::NAN).write(&mut s);
    }

    #[test]
    fn control_characters_escape_and_round_trip() {
        let s = "\u{01}\u{1F}\u{08}\u{0C}".to_string();
        let v = Json::Str(s.clone());
        assert_eq!(round_trip(&v), v);
        assert!(v.to_string().contains("\\u0001"));
    }
}
