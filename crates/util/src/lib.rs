//! Zero-dependency substrate for the archdse workspace.
//!
//! The workspace builds offline with an empty registry cache, so the two
//! pieces of infrastructure that would normally come from crates.io are
//! owned here instead:
//!
//! * [`par`] — a scoped thread-pool parallel map ([`par::par_map`],
//!   [`par::par_chunks`]) with deterministic output ordering and
//!   thread-count control via the `ARCHDSE_THREADS` environment variable;
//! * [`json`] — a minimal JSON value type ([`json::Json`]), writer and
//!   parser, plus the [`json::ToJson`] / [`json::FromJson`] traits the
//!   domain crates implement by hand;
//! * [`pool`] — a fixed-size worker thread pool over a bounded job queue
//!   ([`pool::WorkerPool`]), the substrate of the `dse-serve` HTTP server.
//!
//! All are hot paths of the reproduction: dataset generation simulates
//! thousands of configurations per benchmark in parallel, the dataset
//! disk cache is JSON, and the serving layer dispatches every accepted
//! connection through the pool.
//!
//! # Examples
//!
//! ```
//! use dse_util::par::par_map;
//! use dse_util::json::{Json, ToJson};
//!
//! let squares = par_map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//!
//! // Integral floats print without a fraction, matching the cache format.
//! let v = Json::Arr(vec![1.5.to_json(), 2.0.to_json(), true.to_json()]);
//! assert_eq!(v.to_string(), "[1.5,2,true]");
//! ```

#![warn(missing_docs)]

pub mod json;
pub mod par;
pub mod pool;

pub use json::{FromJson, Json, JsonError, ToJson};
pub use par::{num_threads, par_chunks, par_map};
pub use pool::WorkerPool;
