//! Fixed-size worker thread pool over a bounded job queue.
//!
//! [`par::par_map`](crate::par::par_map) covers the workspace's batch
//! workloads (a known slice of work, results in input order). The serving
//! layer has the opposite shape: jobs arrive one at a time from the
//! network, each owns its own I/O, and nothing is returned — so this
//! module provides a long-lived pool of named workers draining a bounded
//! MPMC queue.
//!
//! The queue bound is load shedding, not flow control: when the queue is
//! full, [`WorkerPool::try_execute`] hands the job back to the caller
//! immediately (an HTTP server turns that into `503 Service Unavailable`)
//! instead of letting latency grow without bound.
//!
//! Shutdown is graceful by construction: [`WorkerPool::shutdown`] closes
//! the queue, lets the workers finish every job already accepted, and
//! joins them. Jobs submitted after shutdown are rejected.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A unit of work executed by the pool.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

struct Queue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    capacity: usize,
}

/// Why a job was not accepted by [`WorkerPool::try_execute`].
pub enum SubmitError {
    /// The queue held `capacity` pending jobs; the job is returned so the
    /// caller can shed it explicitly.
    Full(Job),
    /// [`WorkerPool::shutdown`] has been called.
    ShuttingDown(Job),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Full(_) => write!(f, "job queue is full"),
            SubmitError::ShuttingDown(_) => write!(f, "pool is shutting down"),
        }
    }
}

impl std::fmt::Debug for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The boxed job is opaque; name only the variant.
        match self {
            SubmitError::Full(_) => f.write_str("Full(..)"),
            SubmitError::ShuttingDown(_) => f.write_str("ShuttingDown(..)"),
        }
    }
}

/// A fixed-size pool of worker threads draining a bounded job queue.
///
/// # Examples
///
/// ```
/// use dse_util::pool::WorkerPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
///
/// let pool = WorkerPool::new("example", 2, 64);
/// let done = Arc::new(AtomicUsize::new(0));
/// for _ in 0..10 {
///     let done = done.clone();
///     pool.try_execute(Box::new(move || {
///         done.fetch_add(1, Ordering::SeqCst);
///     }))
///     .unwrap();
/// }
/// pool.shutdown(); // drains the queue, then joins the workers
/// assert_eq!(done.load(Ordering::SeqCst), 10);
/// ```
pub struct WorkerPool {
    queue: Arc<Queue>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkerPool {
    /// Spawns `threads` workers named `<name>-0` … `<name>-{threads-1}`
    /// sharing a queue of at most `capacity` pending jobs.
    ///
    /// # Panics
    ///
    /// Panics if `threads` or `capacity` is zero, or if the OS refuses to
    /// spawn a thread.
    pub fn new(name: &str, threads: usize, capacity: usize) -> Self {
        assert!(threads > 0, "need at least one worker");
        assert!(capacity > 0, "queue capacity must be positive");
        let queue = Arc::new(Queue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity,
        });
        let workers = (0..threads)
            .map(|i| {
                let queue = queue.clone();
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || worker_loop(&queue))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        Self {
            queue,
            workers: Mutex::new(workers),
        }
    }

    /// Submits a job without blocking.
    ///
    /// # Errors
    ///
    /// Returns the job back inside [`SubmitError`] when the queue is full
    /// or the pool is shutting down.
    pub fn try_execute(&self, job: Job) -> Result<(), SubmitError> {
        let mut state = self.queue.state.lock().unwrap();
        if state.closed {
            return Err(SubmitError::ShuttingDown(job));
        }
        if state.jobs.len() >= self.queue.capacity {
            return Err(SubmitError::Full(job));
        }
        state.jobs.push_back(job);
        drop(state);
        self.queue.not_empty.notify_one();
        Ok(())
    }

    /// Number of jobs waiting in the queue (excluding jobs being run).
    pub fn pending(&self) -> usize {
        self.queue.state.lock().unwrap().jobs.len()
    }

    /// Closes the queue, waits for every accepted job to finish, and joins
    /// the workers. Idempotent; later calls return immediately.
    pub fn shutdown(&self) {
        {
            let mut state = self.queue.state.lock().unwrap();
            state.closed = true;
        }
        self.queue.not_empty.notify_all();
        let mut workers = self.workers.lock().unwrap();
        for handle in workers.drain(..) {
            // A worker that panicked already poisoned nothing we read; the
            // remaining workers still drain the queue.
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(queue: &Queue) {
    loop {
        let job = {
            let mut state = queue.state.lock().unwrap();
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break job;
                }
                if state.closed {
                    return;
                }
                state = queue.not_empty.wait(state).unwrap();
            }
        };
        // Run outside the lock. A panicking job must not take the worker
        // down with it — the pool serves independent requests.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn runs_all_jobs_before_shutdown_returns() {
        let pool = WorkerPool::new("t", 4, 1024);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..200 {
            let done = done.clone();
            pool.try_execute(Box::new(move || {
                done.fetch_add(1, Ordering::SeqCst);
            }))
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 200);
    }

    #[test]
    fn full_queue_returns_the_job() {
        let pool = WorkerPool::new("t", 1, 1);
        let gate = Arc::new(Mutex::new(()));
        let held = gate.lock().unwrap();
        // First job blocks the only worker; second fills the queue.
        for _ in 0..2 {
            let gate = gate.clone();
            let r = pool.try_execute(Box::new(move || {
                let _g = gate.lock().unwrap();
            }));
            if r.is_err() {
                // Depending on scheduling the worker may not have picked
                // the first job up yet; retry until both are in flight.
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        // Fill until rejection (worker is blocked, capacity is 1).
        let mut rejected = false;
        for _ in 0..50 {
            match pool.try_execute(Box::new(|| {})) {
                Err(SubmitError::Full(_)) => {
                    rejected = true;
                    break;
                }
                Ok(()) => std::thread::sleep(Duration::from_millis(2)),
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(rejected, "bounded queue never reported Full");
        drop(held);
        pool.shutdown();
    }

    #[test]
    fn execute_after_shutdown_is_rejected() {
        let pool = WorkerPool::new("t", 1, 8);
        pool.shutdown();
        match pool.try_execute(Box::new(|| {})) {
            Err(SubmitError::ShuttingDown(_)) => {}
            other => panic!("expected ShuttingDown, got {:?}", other.map(|()| "ok")),
        }
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let pool = WorkerPool::new("t", 1, 8);
        pool.try_execute(Box::new(|| panic!("boom"))).unwrap();
        let done = Arc::new(AtomicUsize::new(0));
        let d = done.clone();
        pool.try_execute(Box::new(move || {
            d.fetch_add(1, Ordering::SeqCst);
        }))
        .unwrap();
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn shutdown_is_idempotent() {
        let pool = WorkerPool::new("t", 2, 8);
        pool.shutdown();
        pool.shutdown();
    }
}
