//! Scoped thread-pool parallel iteration.
//!
//! [`par_map`] is the workhorse: it maps a function over a slice on a pool
//! of scoped threads and returns the results **in input order**, bit-wise
//! independent of how the work was scheduled. Work is handed out in
//! contiguous chunks through an atomic cursor, so threads that draw cheap
//! items (short traces, small configurations) immediately pull more work
//! instead of idling — the paper's workload is exactly this shape: thousands
//! of simulations whose cost varies several-fold with the configuration.
//!
//! The pool size comes from the `ARCHDSE_THREADS` environment variable and
//! defaults to [`std::thread::available_parallelism`]. `ARCHDSE_THREADS=1`
//! forces the serial path, which the determinism tests use to check that
//! parallel output is bit-identical to serial output.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "ARCHDSE_THREADS";

/// Number of worker threads to use: `ARCHDSE_THREADS` if set to a positive
/// integer, otherwise [`std::thread::available_parallelism`] (1 if even
/// that is unavailable). Unparsable or zero values fall back to the
/// default rather than aborting a long run.
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Size of the work chunks handed to threads: large enough to amortise the
/// cursor fetch and result merge, small enough that an unlucky thread
/// holding the most expensive items cannot stall the tail.
fn chunk_len(n: usize, threads: usize) -> usize {
    // ~4 chunks per thread keeps the tail short without merge overhead.
    (n / (threads * 4)).max(1)
}

/// Maps `f` over `items` in parallel, returning results in input order.
///
/// Results are deterministic: element `i` of the output is always
/// `f(&items[i])`, regardless of the thread count or scheduling, so any
/// pure `f` yields bit-identical output for `ARCHDSE_THREADS=1` and
/// `ARCHDSE_THREADS=64`.
///
/// A panic in `f` propagates to the caller once every worker has stopped.
///
/// # Examples
///
/// ```
/// use dse_util::par::par_map;
/// let doubled = par_map(&[1, 2, 3], |&x| x * 2);
/// assert_eq!(doubled, vec![2, 4, 6]);
/// ```
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let threads = num_threads().min(n);
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = chunk_len(n, threads);
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let out = Mutex::new(slots);
    let f = &f;
    // Spans opened inside `f` on a worker thread nest under the span that
    // was current on the calling thread.
    let parent_span = dse_obs::span::current();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                let _span_ctx = dse_obs::span::ThreadContext::enter(parent_span);
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + chunk).min(n);
                    // Compute outside the lock; only the merge is serialised.
                    let results: Vec<R> = items[start..end].iter().map(f).collect();
                    let mut guard = out.lock().unwrap();
                    for (slot, r) in guard[start..end].iter_mut().zip(results) {
                        *slot = Some(r);
                    }
                }
            });
        }
    });
    out.into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("every index is covered by exactly one chunk"))
        .collect()
}

/// Maps `f` over contiguous chunks of `items` (at most `chunk` elements
/// each) in parallel and concatenates the per-chunk outputs in input
/// order.
///
/// Use this instead of [`par_map`] when per-item work is too cheap to
/// dispatch individually, or when `f` benefits from batch-local state
/// (e.g. one scratch buffer per chunk).
///
/// # Panics
///
/// Panics if `chunk` is zero.
///
/// # Examples
///
/// ```
/// use dse_util::par::par_chunks;
/// let sums = par_chunks(&[1, 2, 3, 4, 5], 2, |c| vec![c.iter().sum::<i32>()]);
/// assert_eq!(sums, vec![3, 7, 5]);
/// ```
pub fn par_chunks<T, R, F>(items: &[T], chunk: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> Vec<R> + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    let pieces: Vec<&[T]> = items.chunks(chunk).collect();
    par_map(&pieces, |piece| f(piece))
        .into_iter()
        .flatten()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Env-var mutation is process-global, so every test touching
    /// `ARCHDSE_THREADS` holds this lock.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    fn with_threads<R>(n: Option<&str>, body: impl FnOnce() -> R) -> R {
        let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        match n {
            Some(v) => std::env::set_var(THREADS_ENV, v),
            None => std::env::remove_var(THREADS_ENV),
        }
        let r = body();
        std::env::remove_var(THREADS_ENV);
        r
    }

    #[test]
    fn par_map_preserves_order() {
        with_threads(Some("4"), || {
            let items: Vec<u64> = (0..1000).collect();
            let out = par_map(&items, |&x| x * 3 + 1);
            let serial: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
            assert_eq!(out, serial);
        });
    }

    #[test]
    fn par_map_matches_serial_across_thread_counts() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(x)).collect();
        for threads in ["1", "2", "8"] {
            let out = with_threads(Some(threads), || par_map(&items, |&x| x.wrapping_mul(x)));
            assert_eq!(out, serial, "mismatch at {threads} threads");
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        with_threads(Some("8"), || {
            let empty: Vec<u32> = vec![];
            assert_eq!(par_map(&empty, |&x| x), Vec::<u32>::new());
            assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
        });
    }

    #[test]
    fn par_map_actually_uses_multiple_threads() {
        with_threads(Some("4"), || {
            // Each item sleeps so the queue cannot be drained by the first
            // worker before the remaining workers have spawned (even on a
            // single-core host).
            let items: Vec<u32> = (0..64).collect();
            let ids = par_map(&items, |_| {
                std::thread::sleep(std::time::Duration::from_millis(2));
                std::thread::current().id()
            });
            let distinct: std::collections::HashSet<_> = ids.iter().collect();
            assert!(distinct.len() > 1, "expected work on more than one thread");
        });
    }

    #[test]
    fn par_chunks_concatenates_in_order() {
        with_threads(Some("3"), || {
            let items: Vec<u32> = (0..100).collect();
            let out = par_chunks(&items, 7, |c| c.iter().map(|&x| x + 1).collect());
            let serial: Vec<u32> = items.iter().map(|&x| x + 1).collect();
            assert_eq!(out, serial);
        });
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn par_chunks_rejects_zero_chunk() {
        par_chunks(&[1, 2, 3], 0, |c| c.to_vec());
    }

    #[test]
    fn num_threads_reads_env() {
        with_threads(Some("3"), || assert_eq!(num_threads(), 3));
        with_threads(Some("garbage"), || assert!(num_threads() >= 1));
        with_threads(Some("0"), || assert!(num_threads() >= 1));
        with_threads(None, || assert!(num_threads() >= 1));
    }

    #[test]
    fn worker_panic_propagates() {
        let result = with_threads(Some("4"), || {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                par_map(&(0..128).collect::<Vec<u32>>(), |&x| {
                    assert!(x != 77, "boom");
                    x
                })
            }))
        });
        assert!(result.is_err());
    }
}
