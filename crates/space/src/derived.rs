//! Constant and width-derived parameters (the paper's Table 2).

/// Functional-unit mix, scaled with pipeline width (Table 2b).
///
/// For a 4-way machine the paper uses 4 integer ALUs, 2 integer multipliers,
/// 2 floating-point ALUs and 1 floating-point multiplier/divider; we scale
/// the same ratios across widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FunctionalUnits {
    /// Integer ALUs (one per pipeline lane).
    pub int_alu: u32,
    /// Integer multiplier/dividers.
    pub int_mul: u32,
    /// Floating-point ALUs.
    pub fp_alu: u32,
    /// Floating-point multiplier/dividers.
    pub fp_mul: u32,
}

impl FunctionalUnits {
    /// The functional-unit mix for a machine of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn for_width(width: u32) -> Self {
        assert!(width > 0, "width must be positive");
        Self {
            int_alu: width,
            int_mul: (width / 2).max(1),
            fp_alu: (width / 2).max(1),
            fp_mul: (width / 4).max(1),
        }
    }

    /// Total number of functional units.
    pub fn total(&self) -> u32 {
        self.int_alu + self.int_mul + self.fp_alu + self.fp_mul
    }
}

/// Microarchitectural parameters held constant across the design space
/// (Table 2a), plus latency constants used by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConstantParams {
    /// Front-end pipeline depth in cycles (fetch to rename); mispredicted
    /// branches pay this plus the resolve depth as the restart penalty.
    pub frontend_depth: u32,
    /// Cache line size in bytes for both L1 caches.
    pub l1_line_bytes: u32,
    /// Cache line size in bytes for the L2 cache.
    pub l2_line_bytes: u32,
    /// L1 instruction-cache associativity.
    pub l1i_assoc: u32,
    /// L1 data-cache associativity.
    pub l1d_assoc: u32,
    /// L2 associativity.
    pub l2_assoc: u32,
    /// Main-memory access latency in cycles.
    pub memory_latency: u32,
    /// Integer ALU latency in cycles.
    pub int_alu_latency: u32,
    /// Integer multiply latency in cycles.
    pub int_mul_latency: u32,
    /// Integer divide latency in cycles.
    pub int_div_latency: u32,
    /// Floating-point ALU latency in cycles.
    pub fp_alu_latency: u32,
    /// Floating-point multiply latency in cycles.
    pub fp_mul_latency: u32,
    /// Floating-point divide latency in cycles.
    pub fp_div_latency: u32,
    /// Return-address-stack entries.
    pub ras_entries: u32,
    /// Cache ports available to the load/store unit per cycle.
    pub mem_ports: u32,
}

impl ConstantParams {
    /// The constant parameter set used throughout the reproduction
    /// (SimpleScalar-era values).
    pub const fn standard() -> Self {
        Self {
            frontend_depth: 5,
            l1_line_bytes: 32,
            l2_line_bytes: 64,
            l1i_assoc: 2,
            l1d_assoc: 4,
            l2_assoc: 8,
            memory_latency: 200,
            int_alu_latency: 1,
            int_mul_latency: 3,
            int_div_latency: 20,
            fp_alu_latency: 2,
            fp_mul_latency: 4,
            fp_div_latency: 12,
            ras_entries: 16,
            mem_ports: 2,
        }
    }
}

impl Default for ConstantParams {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_wide_matches_paper() {
        let fu = FunctionalUnits::for_width(4);
        assert_eq!(fu.int_alu, 4);
        assert_eq!(fu.int_mul, 2);
        assert_eq!(fu.fp_alu, 2);
        assert_eq!(fu.fp_mul, 1);
        assert_eq!(fu.total(), 9);
    }

    #[test]
    fn narrow_machine_keeps_at_least_one_of_each() {
        let fu = FunctionalUnits::for_width(2);
        assert!(fu.int_mul >= 1);
        assert!(fu.fp_mul >= 1);
    }

    #[test]
    fn units_scale_monotonically_with_width() {
        let mut prev = FunctionalUnits::for_width(2).total();
        for w in [4, 6, 8] {
            let t = FunctionalUnits::for_width(w).total();
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_panics() {
        FunctionalUnits::for_width(0);
    }

    #[test]
    fn constants_are_sane() {
        let c = ConstantParams::standard();
        assert!(c.memory_latency > c.int_mul_latency);
        assert!(c.l2_line_bytes >= c.l1_line_bytes);
        assert!(c.int_div_latency > c.int_mul_latency);
    }
}
