//! Parameter definitions for the varied design-space dimensions (Table 1).

/// Number of varied microarchitectural parameters.
pub const PARAM_COUNT: usize = 13;

/// Identifier of one varied parameter, in the paper's Table 1 / vector order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(usize)]
pub enum Param {
    /// Pipeline width.
    Width = 0,
    /// Reorder-buffer entries.
    Rob = 1,
    /// Issue-queue entries.
    Iq = 2,
    /// Load/store-queue entries.
    Lsq = 3,
    /// Physical register-file registers.
    Rf = 4,
    /// Register-file read ports.
    RfRead = 5,
    /// Register-file write ports.
    RfWrite = 6,
    /// Gshare branch-predictor K-entries.
    Bpred = 7,
    /// Branch-target-buffer K-entries.
    Btb = 8,
    /// Maximum in-flight branches.
    MaxBranches = 9,
    /// L1 instruction cache KB.
    Icache = 10,
    /// L1 data cache KB.
    Dcache = 11,
    /// Unified L2 cache KB.
    L2 = 12,
}

impl Param {
    /// All parameters in vector order.
    pub const ALL: [Param; PARAM_COUNT] = [
        Param::Width,
        Param::Rob,
        Param::Iq,
        Param::Lsq,
        Param::Rf,
        Param::RfRead,
        Param::RfWrite,
        Param::Bpred,
        Param::Btb,
        Param::MaxBranches,
        Param::Icache,
        Param::Dcache,
        Param::L2,
    ];

    /// The definition (name, unit, value list) of this parameter.
    pub fn def(self) -> &'static ParamDef {
        &PARAMS[self as usize]
    }
}

impl std::fmt::Display for Param {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.def().name)
    }
}

/// Definition of one varied parameter: display name, unit and the ordered
/// list of legal values in natural units.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamDef {
    /// Human-readable name as used in the paper's figures.
    pub name: &'static str,
    /// Natural unit of the values.
    pub unit: &'static str,
    /// Ordered legal values.
    pub values: &'static [u64],
}

impl ParamDef {
    /// Number of legal values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the value list is empty (never true for the built-in table).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Table 1: the 13 varied parameters with their ranges, steps and counts.
///
/// Value counts: 4, 17, 10, 10, 16, 8, 8, 6, 3, 4, 5, 5, 5 — whose product
/// is 62,668,800,000, the paper's "63 billion configurations".
pub static PARAMS: [ParamDef; PARAM_COUNT] = [
    ParamDef {
        name: "Width",
        unit: "insns/cycle",
        values: &[2, 4, 6, 8],
    },
    ParamDef {
        name: "ROB",
        unit: "entries",
        values: &[
            32, 40, 48, 56, 64, 72, 80, 88, 96, 104, 112, 120, 128, 136, 144, 152, 160,
        ],
    },
    ParamDef {
        name: "IQ",
        unit: "entries",
        values: &[8, 16, 24, 32, 40, 48, 56, 64, 72, 80],
    },
    ParamDef {
        name: "LSQ",
        unit: "entries",
        values: &[8, 16, 24, 32, 40, 48, 56, 64, 72, 80],
    },
    ParamDef {
        name: "RF",
        unit: "registers",
        values: &[
            40, 48, 56, 64, 72, 80, 88, 96, 104, 112, 120, 128, 136, 144, 152, 160,
        ],
    },
    ParamDef {
        name: "RF read",
        unit: "ports",
        values: &[2, 4, 6, 8, 10, 12, 14, 16],
    },
    ParamDef {
        name: "RF write",
        unit: "ports",
        values: &[1, 2, 3, 4, 5, 6, 7, 8],
    },
    ParamDef {
        name: "Bpred",
        unit: "K-entries",
        values: &[1, 2, 4, 8, 16, 32],
    },
    ParamDef {
        name: "BTB",
        unit: "K-entries",
        values: &[1, 2, 4],
    },
    ParamDef {
        name: "Branches",
        unit: "in-flight",
        values: &[8, 16, 24, 32],
    },
    ParamDef {
        name: "ICache",
        unit: "KB",
        values: &[8, 16, 32, 64, 128],
    },
    ParamDef {
        name: "DCache",
        unit: "KB",
        values: &[8, 16, 32, 64, 128],
    },
    ParamDef {
        name: "L2",
        unit: "KB",
        values: &[256, 512, 1024, 2048, 4096],
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_counts_match_table1() {
        let counts: Vec<usize> = PARAMS.iter().map(|d| d.len()).collect();
        assert_eq!(counts, vec![4, 17, 10, 10, 16, 8, 8, 6, 3, 4, 5, 5, 5]);
    }

    #[test]
    fn values_are_strictly_increasing() {
        for def in PARAMS.iter() {
            for w in def.values.windows(2) {
                assert!(w[0] < w[1], "{} values not increasing", def.name);
            }
        }
    }

    #[test]
    fn param_all_covers_every_index() {
        for (i, p) in Param::ALL.iter().enumerate() {
            assert_eq!(*p as usize, i);
        }
    }

    #[test]
    fn def_accessor_matches_table() {
        assert_eq!(Param::Rob.def().name, "ROB");
        assert_eq!(Param::L2.def().values.last(), Some(&4096));
    }

    #[test]
    fn display_uses_name() {
        assert_eq!(Param::RfRead.to_string(), "RF read");
    }
}
