//! Uniform random sampling of the design space (§3.3 of the paper).

use crate::{Config, PARAMS, PARAM_COUNT};
use dse_rng::Xoshiro256;

/// Draws one configuration uniformly from the *raw* (unfiltered) space.
pub fn sample_raw(rng: &mut Xoshiro256) -> Config {
    let mut idx = [0usize; PARAM_COUNT];
    for (slot, def) in idx.iter_mut().zip(PARAMS.iter()) {
        *slot = rng.next_index(def.values.len());
    }
    Config::from_indices(&idx)
}

/// Draws `n` **distinct** configurations uniformly from the *legal* space
/// by rejection sampling (uniform over raw points, keep legal ones),
/// exactly the paper's uniform-random-sampling protocol over the filtered
/// space.
///
/// Repeat draws of a configuration already in the batch are rejected and
/// redrawn: a duplicate would be a wasted simulation for every consumer
/// (dataset sweeps, explorer acquisition rounds) since the simulator is
/// deterministic. Collisions only start to matter around the birthday
/// bound of the ~19-billion-point legal space (tens of thousands of
/// draws), so for the sample sizes of the paper's protocol the output is
/// identical to pre-dedup sampling — existing seeded datasets and golden
/// tests are unaffected.
///
/// # Panics
///
/// Panics if `n` exceeds the number of legal configurations (practically
/// unreachable: the legal space holds ~19 billion points).
pub fn sample_legal(rng: &mut Xoshiro256, n: usize) -> Vec<Config> {
    let mut seen = std::collections::HashSet::with_capacity(n);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let cfg = sample_raw(rng);
        if cfg.is_legal() && seen.insert(cfg.to_indices()) {
            out.push(cfg);
        }
    }
    out
}

/// Estimates the legal fraction of the raw space by Monte-Carlo sampling.
///
/// With the filter set in [`Config::is_legal`] this is ~0.30, i.e. roughly
/// 19 billion of the 62.7 billion raw points — matching the paper's
/// reduction from 63 to 18 billion.
pub fn estimate_legal_fraction(rng: &mut Xoshiro256, samples: usize) -> f64 {
    assert!(samples > 0, "need at least one sample");
    let legal = (0..samples).filter(|_| sample_raw(rng).is_legal()).count();
    legal as f64 / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic stand-in for the former proptest cases: 12 seeds
    /// drawn from a fixed-seed generator (same budget as before).
    fn case_seeds() -> Vec<u64> {
        let mut rng = Xoshiro256::seed_from(0x5A5A_CA5E);
        (0..12).map(|_| rng.next_u64()).collect()
    }

    #[test]
    fn sample_legal_returns_requested_count() {
        let mut rng = Xoshiro256::seed_from(1);
        let v = sample_legal(&mut rng, 500);
        assert_eq!(v.len(), 500);
        assert!(v.iter().all(Config::is_legal));
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let a = sample_legal(&mut Xoshiro256::seed_from(42), 50);
        let b = sample_legal(&mut Xoshiro256::seed_from(42), 50);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_samples() {
        let a = sample_legal(&mut Xoshiro256::seed_from(1), 50);
        let b = sample_legal(&mut Xoshiro256::seed_from(2), 50);
        assert_ne!(a, b);
    }

    /// Seed 9's accepted-legal stream repeats a configuration at draw
    /// 26,650 (found by exhaustive search over small seeds), so before
    /// the sampling-layer dedup this batch contained a duplicate — a
    /// wasted oracle simulation for every consumer. Pin that the batch
    /// is now fully distinct by `to_indices`.
    #[test]
    fn sample_legal_dedups_within_a_batch() {
        let mut rng = Xoshiro256::seed_from(9);
        let v = sample_legal(&mut rng, 26_650);
        let set: std::collections::HashSet<_> = v.iter().map(Config::to_indices).collect();
        assert_eq!(set.len(), v.len(), "batch still contains duplicates");
    }

    #[test]
    fn legal_fraction_matches_paper_reduction() {
        let mut rng = Xoshiro256::seed_from(7);
        let f = estimate_legal_fraction(&mut rng, 200_000);
        // 18/63 = 0.286; our filter set lands in the same band.
        assert!(
            (0.24..0.36).contains(&f),
            "legal fraction {f} outside the paper's band"
        );
    }

    #[test]
    fn raw_samples_cover_extreme_values() {
        let mut rng = Xoshiro256::seed_from(3);
        let mut saw_min_width = false;
        let mut saw_max_width = false;
        for _ in 0..2000 {
            let c = sample_raw(&mut rng);
            saw_min_width |= c.width == 2;
            saw_max_width |= c.width == 8;
        }
        assert!(saw_min_width && saw_max_width);
    }

    #[test]
    fn prop_sampled_configs_round_trip_indices() {
        for seed in case_seeds() {
            let mut rng = Xoshiro256::seed_from(seed);
            let cfg = sample_raw(&mut rng);
            let idx = cfg.to_indices();
            assert_eq!(Config::from_indices(&idx), cfg, "seed {seed}");
        }
    }

    #[test]
    fn prop_legal_samples_satisfy_every_filter() {
        for seed in case_seeds() {
            let mut rng = Xoshiro256::seed_from(seed);
            for cfg in sample_legal(&mut rng, 20) {
                assert!(cfg.iq <= cfg.rob, "seed {seed}: {cfg}");
                assert!(cfg.lsq <= cfg.rob, "seed {seed}: {cfg}");
                assert!(cfg.rf >= cfg.iq, "seed {seed}: {cfg}");
                assert!(cfg.rf_read <= 2 * cfg.width, "seed {seed}: {cfg}");
                assert!(cfg.rf_write <= cfg.width, "seed {seed}: {cfg}");
                assert!(
                    cfg.l2_kb >= 4 * cfg.icache_kb.max(cfg.dcache_kb),
                    "seed {seed}: {cfg}"
                );
            }
        }
    }

    #[test]
    fn prop_paper_vector_round_trips() {
        for seed in case_seeds() {
            let mut rng = Xoshiro256::seed_from(seed);
            let cfg = sample_raw(&mut rng);
            let v = cfg.to_paper_vector();
            assert_eq!(Config::from_paper_vector(&v), cfg, "seed {seed}");
        }
    }
}

/// All legal one-step neighbours of a configuration: each parameter moved
/// one position up or down its value list, keeping everything else fixed.
///
/// Useful for local search over the design space once a predictor makes
/// point evaluations cheap.
///
/// # Examples
///
/// ```
/// use dse_space::{neighbors, Config};
/// let n = neighbors(&Config::baseline());
/// assert!(!n.is_empty());
/// assert!(n.iter().all(Config::is_legal));
/// ```
pub fn neighbors(cfg: &Config) -> Vec<Config> {
    let idx = cfg.to_indices();
    let mut out = Vec::new();
    for (p, def) in PARAMS.iter().enumerate() {
        for step in [-1isize, 1] {
            let ni = idx[p] as isize + step;
            if ni < 0 || ni as usize >= def.values.len() {
                continue;
            }
            let mut nidx = idx;
            nidx[p] = ni as usize;
            let n = Config::from_indices(&nidx);
            if n.is_legal() {
                out.push(n);
            }
        }
    }
    out
}

#[cfg(test)]
mod neighbor_tests {
    use super::*;

    #[test]
    fn neighbors_differ_in_exactly_one_parameter() {
        let base = Config::baseline();
        for n in neighbors(&base) {
            let a = base.to_indices();
            let b = n.to_indices();
            let diffs = a.iter().zip(b.iter()).filter(|(x, y)| x != y).count();
            assert_eq!(diffs, 1, "{n} differs in {diffs} parameters");
        }
    }

    #[test]
    fn extreme_corner_has_fewer_neighbors() {
        let tiny = Config {
            width: 2,
            rob: 32,
            iq: 8,
            lsq: 8,
            rf: 40,
            rf_read: 2,
            rf_write: 1,
            bpred_k: 1,
            btb_k: 1,
            max_branches: 8,
            icache_kb: 8,
            dcache_kb: 8,
            l2_kb: 256,
        };
        assert!(tiny.is_legal());
        // Every parameter is at its minimum, so only upward moves exist,
        // and some of those are blocked by the legality filter.
        let n = neighbors(&tiny);
        assert!(n.len() <= 13);
        assert!(!n.is_empty());
        assert!(n.iter().all(Config::is_legal));
    }

    #[test]
    fn neighbors_are_unique() {
        let n = neighbors(&Config::baseline());
        let set: std::collections::HashSet<_> = n.iter().collect();
        assert_eq!(set.len(), n.len());
    }
}
