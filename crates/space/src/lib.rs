//! The microarchitectural design space of Dubach, Jones & O'Boyle
//! (MICRO 2007 / IEEE TC 2011).
//!
//! Thirteen superscalar core parameters are varied (the paper's Table 1),
//! giving ~63 billion raw configurations; architectural-sense filters reduce
//! this to ~18–19 billion legal points (§3.1). A further set of parameters is
//! held constant or derived from the pipeline width (Table 2).
//!
//! This crate owns:
//! * the parameter definitions ([`Param`], [`ParamDef`], [`PARAMS`]);
//! * the configuration type ([`Config`]) with the paper's 13-element vector
//!   encoding (e.g. the baseline encodes as
//!   `(4, 96, 32, 48, 96, 8, 4, 16, 4, 16, 32, 32, 2)`);
//! * the legality filter ([`Config::is_legal`]) and uniform random sampling
//!   of legal points ([`sample_legal`]);
//! * the width-derived functional-unit mix and the constant parameters
//!   ([`derived`]).
//!
//! # Examples
//!
//! ```
//! use dse_space::{Config, raw_space_size, sample_legal};
//! use dse_rng::Xoshiro256;
//!
//! let baseline = Config::baseline();
//! assert!(baseline.is_legal());
//! assert_eq!(baseline.to_paper_vector()[0], 4.0); // 4-wide
//! assert_eq!(raw_space_size(), 62_668_800_000);
//!
//! let mut rng = Xoshiro256::seed_from(1);
//! let configs = sample_legal(&mut rng, 10);
//! assert!(configs.iter().all(Config::is_legal));
//! ```

#![warn(missing_docs)]

pub mod derived;
pub mod params;
pub mod sample;

pub use derived::{ConstantParams, FunctionalUnits};
pub use params::{Param, ParamDef, PARAMS, PARAM_COUNT};
pub use sample::{estimate_legal_fraction, neighbors, sample_legal, sample_raw};

use dse_util::json::{FromJson, Json, JsonError, ToJson};

/// One point of the design space: a concrete setting for each of the
/// 13 varied parameters, stored in natural units.
///
/// Construct with [`Config::baseline`], [`Config::from_indices`] or
/// [`Config::from_paper_vector`]; mutate through [`Config::with_param`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Config {
    /// Pipeline width (fetch/decode/issue/commit per cycle): 2, 4, 6 or 8.
    pub width: u32,
    /// Reorder-buffer entries: 32–160 step 8.
    pub rob: u32,
    /// Issue-queue entries: 8–80 step 8.
    pub iq: u32,
    /// Load/store-queue entries: 8–80 step 8.
    pub lsq: u32,
    /// Physical register-file registers (per bank): 40–160 step 8.
    pub rf: u32,
    /// Register-file read ports: 2–16 step 2.
    pub rf_read: u32,
    /// Register-file write ports: 1–8 step 1.
    pub rf_write: u32,
    /// Gshare branch-predictor size in K-entries: 1–32 (powers of two).
    pub bpred_k: u32,
    /// Branch-target-buffer size in K-entries: 1, 2 or 4.
    pub btb_k: u32,
    /// Maximum in-flight (unresolved) branches: 8, 16, 24 or 32.
    pub max_branches: u32,
    /// L1 instruction-cache size in KB: 8–128 (powers of two).
    pub icache_kb: u32,
    /// L1 data-cache size in KB: 8–128 (powers of two).
    pub dcache_kb: u32,
    /// Unified L2 cache size in MB-quarters encoded as MB value 0.25–4;
    /// stored as KB to stay integral: 256–4096.
    pub l2_kb: u32,
}

impl Config {
    /// The paper's baseline configuration
    /// `(4, 96, 32, 48, 96, 8, 4, 16, 4, 16, 32, 32, 2)`.
    pub fn baseline() -> Self {
        Self {
            width: 4,
            rob: 96,
            iq: 32,
            lsq: 48,
            rf: 96,
            rf_read: 8,
            rf_write: 4,
            bpred_k: 16,
            btb_k: 4,
            max_branches: 16,
            icache_kb: 32,
            dcache_kb: 32,
            l2_kb: 2048,
        }
    }

    /// Builds a configuration from per-parameter value indices
    /// (index `i` selects `PARAMS[p].values[i]`).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range for its parameter.
    pub fn from_indices(indices: &[usize; PARAM_COUNT]) -> Self {
        let mut raw = [0u64; PARAM_COUNT];
        for (p, (&idx, def)) in indices.iter().zip(PARAMS.iter()).enumerate() {
            assert!(
                idx < def.values.len(),
                "index {idx} out of range for parameter {p} ({})",
                def.name
            );
            raw[p] = def.values[idx];
        }
        Self::from_raw(&raw)
    }

    /// Returns the per-parameter value indices of this configuration.
    ///
    /// # Panics
    ///
    /// Panics if a field holds a value outside its parameter's value list
    /// (impossible for configurations built through this crate's API).
    pub fn to_indices(&self) -> [usize; PARAM_COUNT] {
        let raw = self.to_raw();
        let mut out = [0usize; PARAM_COUNT];
        for (p, (&v, def)) in raw.iter().zip(PARAMS.iter()).enumerate() {
            out[p] = def
                .values
                .iter()
                .position(|&x| x == v)
                .unwrap_or_else(|| panic!("value {v} invalid for parameter {}", def.name));
        }
        out
    }

    /// Internal natural-unit vector in [`Param`] order.
    fn from_raw(raw: &[u64; PARAM_COUNT]) -> Self {
        Self {
            width: raw[0] as u32,
            rob: raw[1] as u32,
            iq: raw[2] as u32,
            lsq: raw[3] as u32,
            rf: raw[4] as u32,
            rf_read: raw[5] as u32,
            rf_write: raw[6] as u32,
            bpred_k: raw[7] as u32,
            btb_k: raw[8] as u32,
            max_branches: raw[9] as u32,
            icache_kb: raw[10] as u32,
            dcache_kb: raw[11] as u32,
            l2_kb: raw[12] as u32,
        }
    }

    fn to_raw(&self) -> [u64; PARAM_COUNT] {
        [
            self.width as u64,
            self.rob as u64,
            self.iq as u64,
            self.lsq as u64,
            self.rf as u64,
            self.rf_read as u64,
            self.rf_write as u64,
            self.bpred_k as u64,
            self.btb_k as u64,
            self.max_branches as u64,
            self.icache_kb as u64,
            self.dcache_kb as u64,
            self.l2_kb as u64,
        ]
    }

    /// Returns the value of one parameter in its natural unit.
    pub fn param(&self, p: Param) -> u64 {
        self.to_raw()[p as usize]
    }

    /// Returns a copy with one parameter set to `value` (natural unit).
    ///
    /// # Panics
    ///
    /// Panics if `value` is not one of the parameter's legal values.
    pub fn with_param(&self, p: Param, value: u64) -> Self {
        let def = &PARAMS[p as usize];
        assert!(
            def.values.contains(&value),
            "{value} is not a legal value for {}",
            def.name
        );
        let mut raw = self.to_raw();
        raw[p as usize] = value;
        Self::from_raw(&raw)
    }

    /// Encodes as the paper's 13-element vector: width, ROB, IQ, LSQ, RF,
    /// RF read ports, RF write ports, branch predictor (K-entries),
    /// BTB (K-entries), in-flight branches, I-cache (KB), D-cache (KB),
    /// L2 (MB).
    ///
    /// The baseline encodes as `(4, 96, 32, 48, 96, 8, 4, 16, 4, 16, 32, 32, 2)`,
    /// matching §5.2.1 of the paper.
    pub fn to_paper_vector(&self) -> [f64; PARAM_COUNT] {
        [
            self.width as f64,
            self.rob as f64,
            self.iq as f64,
            self.lsq as f64,
            self.rf as f64,
            self.rf_read as f64,
            self.rf_write as f64,
            self.bpred_k as f64,
            self.btb_k as f64,
            self.max_branches as f64,
            self.icache_kb as f64,
            self.dcache_kb as f64,
            self.l2_kb as f64 / 1024.0,
        ]
    }

    /// Decodes the paper's 13-element vector (see [`Config::to_paper_vector`]).
    ///
    /// # Panics
    ///
    /// Panics if any element is not a legal value for its parameter.
    pub fn from_paper_vector(v: &[f64; PARAM_COUNT]) -> Self {
        let mut raw = [0u64; PARAM_COUNT];
        for (i, (&x, slot)) in v.iter().zip(raw.iter_mut()).enumerate() {
            let scaled = if i == PARAM_COUNT - 1 { x * 1024.0 } else { x };
            *slot = scaled.round() as u64;
        }
        let cfg = Self::from_raw(&raw);
        // Round-trip through indices to validate every value.
        let _ = cfg.to_indices();
        cfg
    }

    /// Feature vector for machine learning: each parameter mapped to
    /// `[0, 1]` by its index position within its value list.
    ///
    /// Index (rather than magnitude) scaling makes the exponentially-spaced
    /// parameters (caches, predictor) behave like the linearly-spaced ones,
    /// which materially improves ANN conditioning.
    pub fn to_features(&self) -> [f64; PARAM_COUNT] {
        let idx = self.to_indices();
        let mut out = [0.0; PARAM_COUNT];
        for (i, (&ix, def)) in idx.iter().zip(PARAMS.iter()).enumerate() {
            let n = def.values.len();
            out[i] = if n > 1 {
                ix as f64 / (n - 1) as f64
            } else {
                0.0
            };
        }
        out
    }

    /// Whether this configuration passes the architectural-sense filters
    /// of §3.1.
    ///
    /// The paper names one rule explicitly (ROB at least as large as the
    /// issue queue) and states others were applied to cut 63 B points to
    /// ~18 B. We apply the following, which reproduces that fraction
    /// (~30 % legal; see [`estimate_legal_fraction`]):
    ///
    /// 1. `iq <= rob` — in-flight instructions live in the ROB (paper's
    ///    explicit example);
    /// 2. `lsq <= rob` — same argument for memory operations;
    /// 3. `rf >= iq` — fewer physical registers than issue-queue slots
    ///    starves rename;
    /// 4. `rf_read <= 2 * width` — more read ports than peak operand
    ///    demand is dead silicon;
    /// 5. `rf_write <= width` — more write ports than commit width likewise;
    /// 6. `l2 >= 4 * max(icache, dcache)` — an L2 smaller than a few times
    ///    L1 is not a meaningful second level.
    pub fn is_legal(&self) -> bool {
        self.iq <= self.rob
            && self.lsq <= self.rob
            && self.rf >= self.iq
            && self.rf_read <= 2 * self.width
            && self.rf_write <= self.width
            && self.l2_kb >= 4 * self.icache_kb.max(self.dcache_kb)
    }

    /// The width-derived functional-unit mix for this configuration
    /// (Table 2b).
    pub fn functional_units(&self) -> FunctionalUnits {
        FunctionalUnits::for_width(self.width)
    }
}

impl Default for Config {
    fn default() -> Self {
        Self::baseline()
    }
}

impl ToJson for Config {
    fn to_json(&self) -> Json {
        Json::obj([
            ("width", self.width.to_json()),
            ("rob", self.rob.to_json()),
            ("iq", self.iq.to_json()),
            ("lsq", self.lsq.to_json()),
            ("rf", self.rf.to_json()),
            ("rf_read", self.rf_read.to_json()),
            ("rf_write", self.rf_write.to_json()),
            ("bpred_k", self.bpred_k.to_json()),
            ("btb_k", self.btb_k.to_json()),
            ("max_branches", self.max_branches.to_json()),
            ("icache_kb", self.icache_kb.to_json()),
            ("dcache_kb", self.dcache_kb.to_json()),
            ("l2_kb", self.l2_kb.to_json()),
        ])
    }
}

impl FromJson for Config {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let cfg = Self {
            width: u32::from_json(v.field("width")?)?,
            rob: u32::from_json(v.field("rob")?)?,
            iq: u32::from_json(v.field("iq")?)?,
            lsq: u32::from_json(v.field("lsq")?)?,
            rf: u32::from_json(v.field("rf")?)?,
            rf_read: u32::from_json(v.field("rf_read")?)?,
            rf_write: u32::from_json(v.field("rf_write")?)?,
            bpred_k: u32::from_json(v.field("bpred_k")?)?,
            btb_k: u32::from_json(v.field("btb_k")?)?,
            max_branches: u32::from_json(v.field("max_branches")?)?,
            icache_kb: u32::from_json(v.field("icache_kb")?)?,
            dcache_kb: u32::from_json(v.field("dcache_kb")?)?,
            l2_kb: u32::from_json(v.field("l2_kb")?)?,
        };
        // Every field must hold one of its parameter's listed values;
        // hand-edited cache files with out-of-range settings are rejected
        // rather than silently simulated.
        for (&raw, def) in cfg.to_raw().iter().zip(PARAMS.iter()) {
            if !def.values.contains(&raw) {
                return Err(JsonError::msg(format!(
                    "{raw} is not a legal value for {}",
                    def.name
                )));
            }
        }
        Ok(cfg)
    }
}

impl std::fmt::Display for Config {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "w{} rob{} iq{} lsq{} rf{}r{}w{} bp{}K btb{}K br{} I{}K D{}K L2:{}K",
            self.width,
            self.rob,
            self.iq,
            self.lsq,
            self.rf,
            self.rf_read,
            self.rf_write,
            self.bpred_k,
            self.btb_k,
            self.max_branches,
            self.icache_kb,
            self.dcache_kb,
            self.l2_kb
        )
    }
}

/// Total number of raw (unfiltered) design points: the product of the
/// 13 parameters' value counts — 62,668,800,000 (the paper's "63 billion").
pub fn raw_space_size() -> u64 {
    PARAMS.iter().map(|d| d.values.len() as u64).product()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_space_is_63_billion() {
        assert_eq!(raw_space_size(), 62_668_800_000);
    }

    #[test]
    fn baseline_matches_paper_vector() {
        let v = Config::baseline().to_paper_vector();
        let expected = [
            4.0, 96.0, 32.0, 48.0, 96.0, 8.0, 4.0, 16.0, 4.0, 16.0, 32.0, 32.0, 2.0,
        ];
        assert_eq!(v, expected);
    }

    #[test]
    fn baseline_is_legal() {
        assert!(Config::baseline().is_legal());
    }

    #[test]
    fn paper_vector_round_trips() {
        let cfg = Config::baseline();
        let back = Config::from_paper_vector(&cfg.to_paper_vector());
        assert_eq!(cfg, back);
    }

    #[test]
    fn indices_round_trip() {
        let cfg = Config::baseline();
        let idx = cfg.to_indices();
        assert_eq!(Config::from_indices(&idx), cfg);
    }

    #[test]
    fn with_param_changes_exactly_one_field() {
        let base = Config::baseline();
        let wide = base.with_param(Param::Width, 8);
        assert_eq!(wide.width, 8);
        assert_eq!(wide.rob, base.rob);
        assert_eq!(wide.l2_kb, base.l2_kb);
    }

    #[test]
    #[should_panic(expected = "not a legal value")]
    fn with_param_rejects_illegal_value() {
        Config::baseline().with_param(Param::Width, 5);
    }

    #[test]
    fn filter_rejects_rob_smaller_than_iq() {
        let cfg = Config {
            rob: 32,
            iq: 80,
            lsq: 8,
            ..Config::baseline()
        };
        assert!(!cfg.is_legal());
    }

    #[test]
    fn filter_rejects_overported_rf() {
        let cfg = Config {
            width: 2,
            rf_read: 16,
            rf_write: 1,
            ..Config::baseline()
        };
        assert!(!cfg.is_legal());
    }

    #[test]
    fn filter_rejects_tiny_l2() {
        let cfg = Config {
            icache_kb: 128,
            dcache_kb: 128,
            l2_kb: 256,
            ..Config::baseline()
        };
        assert!(!cfg.is_legal());
    }

    #[test]
    fn features_are_unit_interval() {
        let f = Config::baseline().to_features();
        assert!(f.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!Config::baseline().to_string().is_empty());
    }

    #[test]
    fn json_round_trips() {
        let cfg = Config::baseline();
        let json = dse_util::json::to_string(&cfg);
        let back: Config = dse_util::json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn json_rejects_out_of_range_value() {
        let mut v = Config::baseline().to_json();
        if let Json::Obj(fields) = &mut v {
            for (k, val) in fields.iter_mut() {
                if k == "width" {
                    *val = Json::Num(5.0); // 5-wide is not in the value list
                }
            }
        }
        let err = Config::from_json(&v).unwrap_err();
        assert!(err.message.contains("not a legal value"));
    }
}
