//! The architecture-centric predictor (§5 of the paper).
//!
//! Offline, one program-specific ANN is trained per training program
//! (`T` simulations each). Online, a new program is characterised by just
//! `R` simulated "responses": a linear regressor is fitted that expresses
//! the new program's space as a weighted sum of the training programs'
//! spaces (equation 5). The regressor's design matrix uses the training
//! programs' *actual* simulated values at the response configurations —
//! available without new simulations because every benchmark was simulated
//! on the same shared sample (§5.3.1) — while predictions for unseen
//! configurations flow through the ANNs (Fig 6).

use crate::dataset::SuiteDataset;
use crate::program_specific::ProgramSpecificPredictor;
use dse_ml::{LinearRegression, MlpConfig};
use dse_rng::Xoshiro256;
use dse_sim::Metric;
use dse_util::par::par_map;

/// Where the linear regressor's design matrix comes from when fitting the
/// response weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResponseSource {
    /// The training programs' actual simulated values at the response
    /// configurations (the paper's method — no extra simulation needed).
    #[default]
    Actual,
    /// The ANNs' predictions at the response configurations (ablation:
    /// quantifies the cost of the ANN approximation).
    Predicted,
}

/// The offline half of the model: `N` trained program-specific ANNs.
#[derive(Debug, Clone)]
pub struct OfflineModel {
    metric: Metric,
    /// Indices into the dataset's benchmark list.
    train_rows: Vec<usize>,
    models: Vec<ProgramSpecificPredictor>,
}

impl OfflineModel {
    /// Trains one ANN per training program, each on `t` configurations
    /// sampled uniformly (without replacement) from the shared sample.
    ///
    /// `seed` controls both the per-program training-set sampling and the
    /// ANN initialisations, so a whole experiment repeat is reproducible.
    ///
    /// # Panics
    ///
    /// Panics if `train_rows` is empty, contains an out-of-range index, or
    /// `t` exceeds the number of shared configurations.
    pub fn train(
        ds: &SuiteDataset,
        train_rows: &[usize],
        metric: Metric,
        t: usize,
        mlp_cfg: &MlpConfig,
        seed: u64,
    ) -> Self {
        assert!(!train_rows.is_empty(), "need at least one training program");
        assert!(
            t >= 2 && t <= ds.n_configs(),
            "t = {t} outside [2, {}]",
            ds.n_configs()
        );
        for &r in train_rows {
            assert!(r < ds.benchmarks.len(), "train row {r} out of range");
        }
        let _span = dse_obs::span!(
            "train.offline_model",
            metric = metric,
            programs = train_rows.len(),
            t = t
        );
        let features = ds.features();
        let root = Xoshiro256::seed_from(seed);
        let jobs: Vec<(usize, usize)> = train_rows.iter().copied().enumerate().collect();
        let models: Vec<ProgramSpecificPredictor> = par_map(&jobs, |&(k, row)| {
            let bench = &ds.benchmarks[row];
            let _span = dse_obs::span!("train_mlp", program = bench.name, metric = metric);
            let mut rng = root.child(k as u64 + 1);
            let idx = rng.sample_indices(ds.n_configs(), t);
            let tf: Vec<Vec<f64>> = idx.iter().map(|&i| features[i].clone()).collect();
            let tv: Vec<f64> = idx.iter().map(|&i| bench.metrics[i].get(metric)).collect();
            let cfg = MlpConfig {
                seed: rng.next_u64(),
                ..*mlp_cfg
            };
            ProgramSpecificPredictor::train(&bench.name, metric, &tf, &tv, &cfg)
        });
        Self {
            metric,
            train_rows: train_rows.to_vec(),
            models,
        }
    }

    /// Assembles an ensemble from already-trained per-program models.
    ///
    /// The evaluation harness trains one model per benchmark per repeat
    /// and reuses them across leave-one-out folds (a model for program
    /// `j` does not depend on which program is left out), which is an
    /// exact 26× saving over retraining per fold.
    ///
    /// # Panics
    ///
    /// Panics if the row and model lists differ in length or are empty,
    /// or a model predicts a different metric.
    pub fn from_parts(
        metric: Metric,
        train_rows: Vec<usize>,
        models: Vec<ProgramSpecificPredictor>,
    ) -> Self {
        assert_eq!(train_rows.len(), models.len(), "rows/models mismatch");
        assert!(!models.is_empty(), "need at least one model");
        assert!(
            models.iter().all(|m| m.metric() == metric),
            "all models must predict the ensemble metric"
        );
        Self {
            metric,
            train_rows,
            models,
        }
    }

    /// Trains one program-specific model per benchmark row — the shared
    /// pool consumed by [`OfflineModel::from_parts`].
    pub fn train_model_pool(
        ds: &SuiteDataset,
        metric: Metric,
        t: usize,
        mlp_cfg: &MlpConfig,
        seed: u64,
    ) -> Vec<ProgramSpecificPredictor> {
        let all: Vec<usize> = (0..ds.benchmarks.len()).collect();
        Self::train(ds, &all, metric, t, mlp_cfg, seed).models
    }

    /// The metric this ensemble models.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Number of training programs.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the ensemble is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// The per-program models.
    pub fn models(&self) -> &[ProgramSpecificPredictor] {
        &self.models
    }

    /// Fits the linear combination from `R` responses of a new program
    /// using the paper's method (actual training-program values as the
    /// design matrix).
    ///
    /// `response_idxs` index the shared configurations; `response_values`
    /// are the new program's simulated metric at those configurations.
    ///
    /// # Panics
    ///
    /// Panics if the index and value lists differ in length or are empty.
    pub fn fit_responses(
        &self,
        ds: &SuiteDataset,
        response_idxs: &[usize],
        response_values: &[f64],
    ) -> ArchCentricPredictor {
        self.fit_responses_with(ds, response_idxs, response_values, ResponseSource::Actual)
    }

    /// Like [`OfflineModel::fit_responses`], selecting the design-matrix
    /// source explicitly.
    ///
    /// # Panics
    ///
    /// See [`OfflineModel::fit_responses`].
    pub fn fit_responses_with(
        &self,
        ds: &SuiteDataset,
        response_idxs: &[usize],
        response_values: &[f64],
        source: ResponseSource,
    ) -> ArchCentricPredictor {
        let xs = self.design_rows(ds, response_idxs, source);
        let reg = fit_combiner(&xs, response_values);
        ArchCentricPredictor {
            offline: self.clone(),
            reg,
        }
    }

    /// The linear regressor's design matrix for a set of response
    /// configurations: one row per response, one column per training
    /// program (the training programs' values of the target metric at
    /// that configuration).
    ///
    /// This is the per-program knowledge a serving layer persists so it
    /// can run [`fit_combiner`] online without the full dataset in
    /// memory.
    ///
    /// # Panics
    ///
    /// Panics if `response_idxs` is empty or contains an out-of-range
    /// index.
    pub fn design_rows(
        &self,
        ds: &SuiteDataset,
        response_idxs: &[usize],
        source: ResponseSource,
    ) -> Vec<Vec<f64>> {
        assert!(!response_idxs.is_empty(), "need at least one response");
        let features = ds.features();
        response_idxs
            .iter()
            .map(|&cfg_idx| {
                assert!(cfg_idx < ds.n_configs(), "response index out of range");
                match source {
                    ResponseSource::Actual => self
                        .train_rows
                        .iter()
                        .map(|&row| ds.benchmarks[row].metrics[cfg_idx].get(self.metric))
                        .collect(),
                    ResponseSource::Predicted => self
                        .models
                        .iter()
                        .map(|m| m.predict(&features[cfg_idx]))
                        .collect(),
                }
            })
            .collect()
    }

    /// Runs the full architecture-centric prediction with an externally
    /// fitted combiner: per-program ANN forward passes, then the linear
    /// combination. [`ArchCentricPredictor::predict`] delegates here, so
    /// a serving layer holding `(OfflineModel, LinearRegression)` pairs
    /// produces bit-identical predictions to the library path.
    ///
    /// # Panics
    ///
    /// Panics if `reg` was fitted on a different number of programs than
    /// this ensemble holds.
    pub fn predict_with(&self, reg: &LinearRegression, features: &[f64]) -> f64 {
        let per_program: Vec<f64> = self.models.iter().map(|m| m.predict(features)).collect();
        reg.predict(&per_program)
    }

    /// Batched [`OfflineModel::predict_with`]: runs every per-program
    /// ANN as one matrix–matrix forward over the flat row-major feature
    /// batch (`features[r * dim + i]`), then applies the combiner per
    /// row. Each row's arithmetic — per-program forward order, then the
    /// combiner dot product over programs in ensemble order — matches
    /// the scalar path exactly, so results are bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if the buffer lengths disagree with `n_rows` or `reg` was
    /// fitted on a different number of programs.
    pub fn predict_with_batch_into(
        &self,
        reg: &LinearRegression,
        features: &[f64],
        n_rows: usize,
        out: &mut [f64],
    ) {
        assert!(out.len() >= n_rows, "output buffer too short");
        if n_rows == 0 {
            return;
        }
        let n_models = self.models.len();
        // One column of per-program predictions per ANN.
        let mut cols = vec![0.0; n_models * n_rows];
        for (k, m) in self.models.iter().enumerate() {
            m.predict_batch_into(features, n_rows, &mut cols[k * n_rows..(k + 1) * n_rows]);
        }
        let mut per_program = vec![0.0; n_models];
        for (r, o) in out.iter_mut().take(n_rows).enumerate() {
            for (k, p) in per_program.iter_mut().enumerate() {
                *p = cols[k * n_rows + r];
            }
            *o = reg.predict(&per_program);
        }
    }

    /// Training error proxy: fits the responses and reports the rmae of
    /// the fitted model on the responses themselves (the paper uses this
    /// to flag programs unlike anything in the training set, §7.2).
    pub fn training_error(
        &self,
        ds: &SuiteDataset,
        response_idxs: &[usize],
        response_values: &[f64],
    ) -> f64 {
        let predictor = self.fit_responses(ds, response_idxs, response_values);
        let features = ds.features();
        let preds: Vec<f64> = response_idxs
            .iter()
            .map(|&i| predictor.predict(&features[i]))
            .collect();
        dse_ml::stats::rmae(&preds, response_values)
    }
}

/// Fits the online half of the model — the paper's equation (5) — from a
/// precomputed design matrix (see [`OfflineModel::design_rows`]) and the
/// new program's simulated responses.
///
/// This is the library entry point for *online* fitting: a serving layer
/// that persisted the design table alongside the trained ANNs can
/// characterise a new program with exactly the same arithmetic as
/// [`OfflineModel::fit_responses`], without the dataset.
///
/// # Panics
///
/// Panics if the rows and values differ in length or are empty (see
/// [`LinearRegression::fit`]).
pub fn fit_combiner(design_rows: &[Vec<f64>], response_values: &[f64]) -> LinearRegression {
    LinearRegression::fit(design_rows, response_values, true)
}

/// The complete architecture-centric predictor: offline ANNs + fitted
/// response weights. Predicts the target metric of the *new* program for
/// any configuration in the design space.
#[derive(Debug, Clone)]
pub struct ArchCentricPredictor {
    offline: OfflineModel,
    reg: LinearRegression,
}

impl ArchCentricPredictor {
    /// Assembles a predictor from an offline ensemble and an externally
    /// fitted combiner (see [`fit_combiner`]).
    ///
    /// # Panics
    ///
    /// Panics if the combiner's width differs from the ensemble size.
    pub fn from_parts(offline: OfflineModel, reg: LinearRegression) -> Self {
        assert_eq!(
            reg.weights().len(),
            offline.len(),
            "combiner width must match the ensemble size"
        );
        Self { offline, reg }
    }

    /// Predicts the new program's metric for a configuration feature
    /// vector (Fig 6: configuration → per-program ANNs → linear
    /// combination).
    pub fn predict(&self, features: &[f64]) -> f64 {
        self.offline.predict_with(&self.reg, features)
    }

    /// Predicts a batch through the batched matrix–matrix forward
    /// (bit-identical to per-row [`ArchCentricPredictor::predict`]).
    pub fn predict_batch(&self, features: &[Vec<f64>]) -> Vec<f64> {
        if features.is_empty() {
            return Vec::new();
        }
        let dim = features[0].len();
        let mut flat = Vec::with_capacity(features.len() * dim);
        for f in features {
            assert_eq!(f.len(), dim, "rows must have equal length");
            flat.extend_from_slice(f);
        }
        let mut out = vec![0.0; features.len()];
        self.offline
            .predict_with_batch_into(&self.reg, &flat, features.len(), &mut out);
        out
    }

    /// The fitted per-program combination weights (β₁…β_N).
    pub fn weights(&self) -> &[f64] {
        self.reg.weights()
    }

    /// The fitted intercept (β₀).
    pub fn intercept(&self) -> f64 {
        self.reg.intercept()
    }

    /// The fitted linear combiner.
    pub fn combiner(&self) -> &LinearRegression {
        &self.reg
    }

    /// The offline ensemble.
    pub fn offline(&self) -> &OfflineModel {
        &self.offline
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetSpec, SuiteDataset};
    use dse_ml::stats::{correlation, rmae};

    fn small_dataset(n_benchmarks: usize, n_configs: usize) -> SuiteDataset {
        let profiles: Vec<_> = dse_workload::suites::spec2000()
            .into_iter()
            .take(n_benchmarks)
            .collect();
        let spec = DatasetSpec {
            n_configs,
            ..DatasetSpec::tiny()
        };
        SuiteDataset::generate(&profiles, &spec)
    }

    #[test]
    fn offline_model_trains_one_ann_per_program() {
        let ds = small_dataset(4, 30);
        let m = OfflineModel::train(
            &ds,
            &[0, 1, 2],
            dse_sim::Metric::Cycles,
            20,
            &MlpConfig::default(),
            1,
        );
        assert_eq!(m.len(), 3);
        assert_eq!(m.models()[1].program(), ds.benchmarks[1].name);
    }

    #[test]
    fn responses_fit_and_predict_held_out_program() {
        let ds = small_dataset(5, 80);
        let target_row = 4;
        let train: Vec<usize> = (0..4).collect();
        let metric = dse_sim::Metric::Cycles;
        let m = OfflineModel::train(&ds, &train, metric, 60, &MlpConfig::default(), 7);

        let response_idxs: Vec<usize> = (0..16).collect();
        let target = &ds.benchmarks[target_row];
        let values: Vec<f64> = response_idxs
            .iter()
            .map(|&i| target.metrics[i].get(metric))
            .collect();
        let predictor = m.fit_responses(&ds, &response_idxs, &values);

        let features = ds.features();
        let test_idx: Vec<usize> = (16..80).collect();
        let preds: Vec<f64> = test_idx
            .iter()
            .map(|&i| predictor.predict(&features[i]))
            .collect();
        let actual: Vec<f64> = test_idx
            .iter()
            .map(|&i| target.metrics[i].get(metric))
            .collect();
        let c = correlation(&preds, &actual);
        assert!(c > 0.3, "correlation {c} too low even for a tiny dataset");
        assert!(rmae(&preds, &actual) < 60.0);
    }

    #[test]
    fn predicted_source_differs_from_actual() {
        let ds = small_dataset(4, 40);
        let metric = dse_sim::Metric::Energy;
        let m = OfflineModel::train(&ds, &[0, 1, 2], metric, 30, &MlpConfig::default(), 3);
        let idxs: Vec<usize> = (0..10).collect();
        let values: Vec<f64> = idxs
            .iter()
            .map(|&i| ds.benchmarks[3].metrics[i].get(metric))
            .collect();
        let a = m.fit_responses_with(&ds, &idxs, &values, ResponseSource::Actual);
        let p = m.fit_responses_with(&ds, &idxs, &values, ResponseSource::Predicted);
        // Both are valid predictors but their weights differ in general.
        assert_ne!(a.weights(), p.weights());
    }

    #[test]
    fn training_error_is_finite_and_nonnegative() {
        let ds = small_dataset(4, 40);
        let metric = dse_sim::Metric::Ed;
        let m = OfflineModel::train(&ds, &[0, 1, 2], metric, 30, &MlpConfig::default(), 3);
        let idxs: Vec<usize> = (0..12).collect();
        let values: Vec<f64> = idxs
            .iter()
            .map(|&i| ds.benchmarks[3].metrics[i].get(metric))
            .collect();
        let e = m.training_error(&ds, &idxs, &values);
        assert!(e.is_finite() && e >= 0.0);
    }

    #[test]
    fn online_fit_path_matches_library_path_bit_for_bit() {
        // The serving layer persists design rows and refits with
        // `fit_combiner` + `predict_with`; that path must be arithmetic-
        // identical to `fit_responses` + `predict`.
        let ds = small_dataset(4, 40);
        let metric = dse_sim::Metric::Cycles;
        let m = OfflineModel::train(&ds, &[0, 1, 2], metric, 30, &MlpConfig::default(), 5);
        let idxs: Vec<usize> = (0..16).collect();
        let values: Vec<f64> = idxs
            .iter()
            .map(|&i| ds.benchmarks[3].metrics[i].get(metric))
            .collect();

        let library = m.fit_responses(&ds, &idxs, &values);
        let rows = m.design_rows(&ds, &idxs, ResponseSource::Actual);
        let reg = fit_combiner(&rows, &values);

        let features = ds.features();
        for f in features.iter().take(30) {
            assert_eq!(
                library.predict(f).to_bits(),
                m.predict_with(&reg, f).to_bits()
            );
        }
        let rebuilt = ArchCentricPredictor::from_parts(m.clone(), reg);
        assert_eq!(
            library.predict(&features[0]).to_bits(),
            rebuilt.predict(&features[0]).to_bits()
        );
    }

    #[test]
    #[should_panic(expected = "at least one response")]
    fn empty_responses_panic() {
        let ds = small_dataset(3, 20);
        let m = OfflineModel::train(
            &ds,
            &[0, 1],
            dse_sim::Metric::Cycles,
            10,
            &MlpConfig::default(),
            1,
        );
        m.fit_responses(&ds, &[], &[]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_train_row_panics() {
        let ds = small_dataset(2, 20);
        OfflineModel::train(
            &ds,
            &[5],
            dse_sim::Metric::Cycles,
            10,
            &MlpConfig::default(),
            1,
        );
    }
}
