//! Design-space characterisation (§3.4 and §4 of the paper).
//!
//! * [`extremes`] — how often each parameter value appears in the best and
//!   worst 1 % of configurations (Figs 2 and 3);
//! * [`characterise`] — per-program five-number summaries plus the
//!   baseline (Fig 4);
//! * [`similarity`] — hierarchical clustering of programs by the Euclidean
//!   distance between their baseline-normalised spaces (Fig 5).

use crate::dataset::SuiteDataset;
use dse_ml::cluster::{distance_matrix, Dendrogram};
use dse_ml::stats::FiveNumber;
use dse_sim::Metric;
use dse_space::{Param, PARAMS};

/// Frequency of each value of each parameter within a set of
/// configurations (one inner vector per parameter, aligned with
/// [`ParamDef::values`](dse_space::ParamDef)).
pub type ParamFrequencies = Vec<Vec<usize>>;

/// Which end of the metric distribution to select.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Extreme {
    /// The lowest-metric configurations (best: fewest cycles, least
    /// energy, ...).
    Best,
    /// The highest-metric configurations (worst).
    Worst,
}

/// Counts how often each parameter value occurs in the `fraction` best or
/// worst configurations of each benchmark, accumulated over all
/// benchmarks — the paper's Figs 2 and 3 with `fraction = 0.01`.
///
/// # Panics
///
/// Panics if `fraction` is not in `(0, 1]` or the dataset is empty.
pub fn extremes(
    ds: &SuiteDataset,
    metric: Metric,
    extreme: Extreme,
    fraction: f64,
) -> ParamFrequencies {
    assert!(fraction > 0.0 && fraction <= 1.0, "fraction outside (0, 1]");
    assert!(!ds.benchmarks.is_empty(), "empty dataset");
    let take = ((ds.n_configs() as f64 * fraction).ceil() as usize).max(1);
    let mut freqs: ParamFrequencies = PARAMS.iter().map(|d| vec![0; d.values.len()]).collect();

    for bench in &ds.benchmarks {
        let mut order: Vec<usize> = (0..ds.n_configs()).collect();
        order.sort_by(|&a, &b| {
            let (va, vb) = (bench.metrics[a].get(metric), bench.metrics[b].get(metric));
            va.partial_cmp(&vb).expect("metrics are finite")
        });
        let slice: Vec<usize> = match extreme {
            Extreme::Best => order[..take].to_vec(),
            Extreme::Worst => order[order.len() - take..].to_vec(),
        };
        for idx in slice {
            let indices = ds.configs[idx].to_indices();
            for (p, &vi) in indices.iter().enumerate() {
                freqs[p][vi] += 1;
            }
        }
    }
    freqs
}

/// The dominant value of one parameter within a frequency table, with its
/// share of the total.
pub fn dominant_value(freqs: &ParamFrequencies, param: Param) -> (u64, f64) {
    let f = &freqs[param as usize];
    let total: usize = f.iter().sum();
    let (best_idx, &count) = f
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .expect("parameters have at least one value");
    (
        PARAMS[param as usize].values[best_idx],
        if total > 0 {
            count as f64 / total as f64
        } else {
            0.0
        },
    )
}

/// Per-program characterisation of the space (Fig 4): the five-number
/// summary of one metric plus the baseline configuration's value.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramCharacter {
    /// Program name.
    pub program: String,
    /// min / 25 % / median / 75 % / max over the sampled space.
    pub summary: FiveNumber,
    /// The baseline configuration's metric value.
    pub baseline: f64,
}

/// Characterises every benchmark of the dataset for one metric.
pub fn characterise(ds: &SuiteDataset, metric: Metric) -> Vec<ProgramCharacter> {
    ds.benchmarks
        .iter()
        .map(|b| ProgramCharacter {
            program: b.name.clone(),
            summary: FiveNumber::of(&b.values(metric)),
            baseline: b.baseline.get(metric),
        })
        .collect()
}

/// Program-similarity clustering (Fig 5): each program is a point in
/// R^{n_configs} of baseline-normalised metric values; programs are
/// clustered by Euclidean distance with average linkage — the paper's
/// `hclust` protocol, including the baseline normalisation footnote.
pub fn similarity(ds: &SuiteDataset, metric: Metric) -> Dendrogram {
    let rows: Vec<Vec<f64>> = ds
        .benchmarks
        .iter()
        .map(|b| b.normalized_values(metric))
        .collect();
    let labels: Vec<String> = ds.benchmarks.iter().map(|b| b.name.clone()).collect();
    Dendrogram::average_linkage(&labels, &distance_matrix(&rows))
}

/// Pairwise Euclidean distance between two named programs' normalised
/// spaces (useful for tests and reports).
///
/// # Panics
///
/// Panics if either name is absent.
pub fn program_distance(ds: &SuiteDataset, metric: Metric, a: &str, b: &str) -> f64 {
    let ia = ds.benchmark_index(a).expect("program a present");
    let ib = ds.benchmark_index(b).expect("program b present");
    dse_ml::stats::euclidean(
        &ds.benchmarks[ia].normalized_values(metric),
        &ds.benchmarks[ib].normalized_values(metric),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetSpec;

    fn dataset() -> SuiteDataset {
        let profiles: Vec<_> = dse_workload::suites::spec2000()
            .into_iter()
            .filter(|p| ["gzip", "parser", "art", "mcf", "sixtrack"].contains(&p.name))
            .collect();
        let spec = DatasetSpec {
            n_configs: 100,
            ..DatasetSpec::tiny()
        };
        SuiteDataset::generate(&profiles, &spec)
    }

    #[test]
    fn extremes_counts_sum_to_take_times_benchmarks() {
        let ds = dataset();
        let f = extremes(&ds, Metric::Cycles, Extreme::Best, 0.05);
        let take = 5; // ceil(100 * 0.05)
        for pf in &f {
            assert_eq!(pf.iter().sum::<usize>(), take * ds.benchmarks.len());
        }
    }

    #[test]
    fn best_energy_prefers_narrow_machines() {
        let ds = dataset();
        let best = extremes(&ds, Metric::Energy, Extreme::Best, 0.05);
        let worst = extremes(&ds, Metric::Energy, Extreme::Worst, 0.05);
        // Width index 0 = 2-wide. Low-energy configs should be narrower
        // than high-energy ones on average.
        let avg_width = |f: &ParamFrequencies| {
            let wf = &f[Param::Width as usize];
            let total: usize = wf.iter().sum();
            wf.iter()
                .enumerate()
                .map(|(i, &c)| PARAMS[0].values[i] as f64 * c as f64)
                .sum::<f64>()
                / total as f64
        };
        assert!(
            avg_width(&best) < avg_width(&worst),
            "best {} worst {}",
            avg_width(&best),
            avg_width(&worst)
        );
    }

    #[test]
    fn dominant_value_returns_a_legal_value() {
        let ds = dataset();
        let f = extremes(&ds, Metric::Cycles, Extreme::Worst, 0.05);
        let (v, share) = dominant_value(&f, Param::Rf);
        assert!(PARAMS[Param::Rf as usize].values.contains(&v));
        assert!(share > 0.0 && share <= 1.0);
    }

    #[test]
    fn characterise_orders_quartiles() {
        let ds = dataset();
        for c in characterise(&ds, Metric::Ed) {
            assert!(c.summary.min <= c.summary.median);
            assert!(c.summary.median <= c.summary.max);
            assert!(c.baseline > 0.0);
        }
    }

    #[test]
    fn art_and_mcf_are_isolated_in_the_dendrogram() {
        let ds = dataset();
        let dg = similarity(&ds, Metric::Cycles);
        let idx = |n: &str| ds.require_benchmark(n);
        let art = dg.join_height(idx("art"));
        let gzip = dg.join_height(idx("gzip"));
        let parser = dg.join_height(idx("parser"));
        assert!(
            art > gzip && art > parser,
            "art ({art}) should join later than gzip ({gzip}) / parser ({parser})"
        );
    }

    #[test]
    fn program_distance_is_symmetric_and_zero_on_self() {
        let ds = dataset();
        let d1 = program_distance(&ds, Metric::Energy, "gzip", "art");
        let d2 = program_distance(&ds, Metric::Energy, "art", "gzip");
        assert_eq!(d1, d2);
        assert_eq!(program_distance(&ds, Metric::Energy, "gzip", "gzip"), 0.0);
        assert!(d1 > 0.0);
    }
}
