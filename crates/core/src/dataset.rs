//! Simulated datasets following the paper's sampling protocol (§3.3).
//!
//! One set of configurations is drawn uniformly at random from the legal
//! design space and **every benchmark is simulated on the same set** — the
//! paper simulates the same 3,000 sampled architectures for each program,
//! which is what lets the architecture-centric model reuse the training
//! programs' responses without new simulations (§5.3).

use dse_rng::Xoshiro256;
use dse_sim::{batch_width, CheckError, Metric, Metrics, SimOptions, SweepEngine};
use dse_space::{sample_legal, Config, ConstantParams};
use dse_util::json::{FromJson, Json, JsonError, ToJson};
use dse_util::par::par_map;
use dse_workload::{Profile, Suite, TraceGenerator};
use std::io;
use std::path::Path;

/// A sanitizer violation raised while generating a dataset, annotated with
/// the benchmark and configuration that triggered it so a failure deep in
/// a parallel sweep is actionable.
#[derive(Debug, Clone)]
pub struct GenerateError {
    /// Benchmark whose simulation violated an invariant.
    pub benchmark: String,
    /// The configuration being simulated.
    pub config: Config,
    /// The underlying invariant violation.
    pub source: CheckError,
}

impl std::fmt::Display for GenerateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "dataset generation failed on benchmark `{}`, config {}: {}",
            self.benchmark, self.config, self.source
        )
    }
}

impl std::error::Error for GenerateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Parameters of a dataset generation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DatasetSpec {
    /// Number of sampled configurations (the paper uses 3,000; the
    /// default here is 1,000 to fit a single-core time budget — see
    /// EXPERIMENTS.md).
    pub n_configs: usize,
    /// Dynamic trace length per benchmark in instructions.
    pub trace_len: usize,
    /// Warm-up instructions excluded from the metrics.
    pub warmup: usize,
    /// Seed for configuration sampling.
    pub seed: u64,
}

impl Default for DatasetSpec {
    fn default() -> Self {
        Self {
            n_configs: 1_000,
            trace_len: 60_000,
            warmup: 15_000,
            seed: 0xD5E,
        }
    }
}

impl DatasetSpec {
    /// The paper's full protocol: 3,000 configurations per benchmark.
    pub fn paper() -> Self {
        Self {
            n_configs: 3_000,
            trace_len: 200_000,
            warmup: 50_000,
            seed: 0xD5E,
        }
    }

    /// A reduced spec for unit tests and examples: few configurations and
    /// short traces, still exercising the full pipeline.
    pub fn tiny() -> Self {
        Self {
            n_configs: 24,
            trace_len: 12_000,
            warmup: 2_000,
            seed: 0xD5E,
        }
    }
}

impl ToJson for DatasetSpec {
    fn to_json(&self) -> Json {
        Json::obj([
            ("n_configs", self.n_configs.to_json()),
            ("trace_len", self.trace_len.to_json()),
            ("warmup", self.warmup.to_json()),
            ("seed", self.seed.to_json()),
        ])
    }
}

impl FromJson for DatasetSpec {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let spec = Self {
            n_configs: usize::from_json(v.field("n_configs")?)?,
            trace_len: usize::from_json(v.field("trace_len")?)?,
            warmup: usize::from_json(v.field("warmup")?)?,
            seed: u64::from_json(v.field("seed")?)?,
        };
        if spec.warmup >= spec.trace_len {
            return Err(JsonError::msg("warmup must be smaller than trace_len"));
        }
        Ok(spec)
    }
}

/// Simulated metrics of one benchmark over the shared configurations.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkData {
    /// Benchmark name.
    pub name: String,
    /// Owning suite.
    pub suite: Suite,
    /// One [`Metrics`] per shared configuration (same order as
    /// [`SuiteDataset::configs`]).
    pub metrics: Vec<Metrics>,
    /// Metrics of the paper's baseline configuration, used for
    /// normalisation (Fig 4, Fig 5).
    pub baseline: Metrics,
}

impl BenchmarkData {
    /// The values of one metric across all shared configurations.
    pub fn values(&self, metric: Metric) -> Vec<f64> {
        self.metrics.iter().map(|m| m.get(metric)).collect()
    }

    /// The values of one metric normalised by the baseline configuration.
    pub fn normalized_values(&self, metric: Metric) -> Vec<f64> {
        let base = self.baseline.get(metric);
        self.metrics.iter().map(|m| m.get(metric) / base).collect()
    }
}

impl ToJson for BenchmarkData {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", self.name.to_json()),
            ("suite", self.suite.to_json()),
            ("metrics", self.metrics.to_json()),
            ("baseline", self.baseline.to_json()),
        ])
    }
}

impl FromJson for BenchmarkData {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            name: String::from_json(v.field("name")?)?,
            suite: Suite::from_json(v.field("suite")?)?,
            metrics: Vec::from_json(v.field("metrics")?)?,
            baseline: Metrics::from_json(v.field("baseline")?)?,
        })
    }
}

/// A full dataset: shared configurations × benchmarks.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteDataset {
    /// The generation parameters.
    pub spec: DatasetSpec,
    /// The shared sampled configurations.
    pub configs: Vec<Config>,
    /// Per-benchmark simulated metrics.
    pub benchmarks: Vec<BenchmarkData>,
}

impl ToJson for SuiteDataset {
    fn to_json(&self) -> Json {
        Json::obj([
            ("spec", self.spec.to_json()),
            ("configs", self.configs.to_json()),
            ("benchmarks", self.benchmarks.to_json()),
        ])
    }
}

impl FromJson for SuiteDataset {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let ds = Self {
            spec: DatasetSpec::from_json(v.field("spec")?)?,
            configs: Vec::from_json(v.field("configs")?)?,
            benchmarks: Vec::from_json(v.field("benchmarks")?)?,
        };
        // Structural consistency: every benchmark must cover the shared
        // configuration sample exactly.
        for b in &ds.benchmarks {
            if b.metrics.len() != ds.configs.len() {
                return Err(JsonError::msg(format!(
                    "benchmark `{}` has {} metric rows for {} configs",
                    b.name,
                    b.metrics.len(),
                    ds.configs.len()
                )));
            }
        }
        Ok(ds)
    }
}

impl SuiteDataset {
    /// Simulates `profiles` over a fresh uniform sample of legal
    /// configurations. The whole benchmark × configuration grid (plus one
    /// baseline cell per benchmark) is flattened into a single work list
    /// of *lockstep batches* — `ARCHDSE_BATCH` consecutive configurations
    /// of one benchmark per work item, simulated in one shared trace pass
    /// by a per-benchmark [`dse_sim::SweepEngine`] (`ARCHDSE_BATCH=1`
    /// restores the legacy one-sim-per-item path) — and handed to one
    /// [`dse_util::par::par_map`] call (thread count via
    /// `ARCHDSE_THREADS`): a thread finishing a cheap batch immediately
    /// pulls work from *any* benchmark instead of idling at a
    /// per-benchmark barrier. Results are bit-identical for every batch
    /// width and thread count. Progress (sims completed, sims/sec, ETA)
    /// and a one-line summary are reported at `info` level
    /// (`ARCHDSE_LOG=info`) since full generation takes minutes.
    ///
    /// # Panics
    ///
    /// Panics if `profiles` is empty, the spec's warm-up is not smaller
    /// than the trace length, or (with the sanitizer enabled) a simulation
    /// violates an invariant — use [`SuiteDataset::try_generate`] to
    /// handle violations as errors.
    pub fn generate(profiles: &[Profile], spec: &DatasetSpec) -> Self {
        match Self::try_generate(profiles, spec) {
            Ok(ds) => ds,
            Err(e) => panic!("{e}"),
        }
    }

    /// Like [`SuiteDataset::generate`], but threads sanitizer violations
    /// out of the parallel sweep as an error naming the benchmark and
    /// configuration instead of panicking mid-`par_map`.
    ///
    /// # Panics
    ///
    /// Panics if `profiles` is empty or the spec's warm-up is not smaller
    /// than the trace length (caller bugs, not simulation outcomes).
    pub fn try_generate(profiles: &[Profile], spec: &DatasetSpec) -> Result<Self, GenerateError> {
        assert!(!profiles.is_empty(), "need at least one profile");
        assert!(
            spec.warmup < spec.trace_len,
            "warmup must precede trace end"
        );
        let _gen_span = dse_obs::span!(
            "dataset.generate",
            benchmarks = profiles.len(),
            configs = spec.n_configs
        );
        let mut rng = Xoshiro256::seed_from(spec.seed);
        let configs = sample_legal(&mut rng, spec.n_configs);
        let options = SimOptions::with_warmup(spec.warmup);
        let baseline_cfg = Config::baseline();

        // One trace per benchmark, generated up front and shared read-only
        // by every simulation of that benchmark.
        let traces: Vec<_> = {
            let _span = dse_obs::span!("dataset.traces", count = profiles.len());
            par_map(profiles, |p| {
                TraceGenerator::new(p).generate(spec.trace_len)
            })
        };

        // Flatten the benchmark × configuration grid into a single work
        // list of lockstep batches: `width` consecutive columns of one
        // benchmark per item, sharing a single trace pass. The baseline
        // rides along as a final pseudo-column so it is scheduled like
        // any other cell. One `SweepEngine` per benchmark precomputes the
        // front-end plans for *all* columns up front, so every distinct
        // predictor/BTB/I-cache geometry is paid for once per benchmark,
        // not once per batch.
        let sweep_cfgs: Vec<Config> = configs.iter().copied().chain([baseline_cfg]).collect();
        let cols = sweep_cfgs.len();
        let width = batch_width();
        let engines: Vec<SweepEngine> = {
            let _span = dse_obs::span!("dataset.plans", benchmarks = profiles.len());
            traces
                .iter()
                .map(|t| {
                    SweepEngine::new(&sweep_cfgs, &ConstantParams::standard(), t, options, width)
                })
                .collect()
        };
        let jobs: Vec<(usize, usize, usize)> = (0..profiles.len())
            .flat_map(|b| {
                (0..cols)
                    .step_by(width)
                    .map(move |s| (b, s, (s + width).min(cols)))
            })
            .collect();
        let t0 = std::time::Instant::now();
        let total = profiles.len() * cols;
        // Progress heartbeat: ~10 reports per sweep, each with the
        // completion count, throughput, and a remaining-time estimate.
        let progress_step = (total / 10).max(1);
        let done = std::sync::atomic::AtomicUsize::new(0);
        let sims_counter = dse_obs::counter("dse_core_dataset_sims_total");
        let cells: Vec<Vec<Result<Metrics, CheckError>>> = {
            let _span = dse_obs::span!("dataset.sweep", sims = total);
            par_map(&jobs, |&(b, s, e)| {
                let r: Vec<Result<Metrics, CheckError>> = engines[b]
                    .run_range(s..e)
                    .into_iter()
                    .map(|r| r.map(|rec| dse_sim::record_metrics(&rec.result)))
                    .collect();
                let lanes = e - s;
                sims_counter.add(lanes as u64);
                let before = done.fetch_add(lanes, std::sync::atomic::Ordering::Relaxed);
                let d = before + lanes;
                if before / progress_step != d / progress_step || d == total {
                    let elapsed = t0.elapsed().as_secs_f64().max(1e-9);
                    let rate = d as f64 / elapsed;
                    dse_obs::log!(
                        info,
                        "[dataset] {d}/{total} sims, {rate:.1} sims/s, eta {:.0}s",
                        (total - d) as f64 / rate.max(1e-9)
                    );
                }
                r
            })
        };
        dse_obs::log!(
            info,
            "[dataset] {} benchmarks x {} configs (+{} baselines) = {} sims in {:.1}s",
            profiles.len(),
            configs.len(),
            profiles.len(),
            jobs.len(),
            t0.elapsed().as_secs_f64()
        );

        // Regroup benchmark-major; `par_map` returns results in input
        // order and each batch covers consecutive columns, so flattening
        // restores the exact (benchmark, column) row-major order — the
        // output is deterministic for any thread count and batch width.
        let mut iter = cells.into_iter().flatten();
        let mut benchmarks = Vec::with_capacity(profiles.len());
        for p in profiles {
            let mut metrics = Vec::with_capacity(cols);
            for c in 0..cols {
                let cfg = configs.get(c).copied().unwrap_or(baseline_cfg);
                let m = iter
                    .next()
                    .expect("job list covers the grid")
                    .map_err(|source| GenerateError {
                        benchmark: p.name.to_string(),
                        config: cfg,
                        source,
                    })?;
                metrics.push(m);
            }
            let baseline = metrics.pop().expect("baseline pseudo-column");
            benchmarks.push(BenchmarkData {
                name: p.name.to_string(),
                suite: p.suite,
                metrics,
                baseline,
            });
        }

        Ok(Self {
            spec: *spec,
            configs,
            benchmarks,
        })
    }

    /// Loads the dataset from `cache_dir` if a file generated with the
    /// same spec and benchmark set exists; otherwise generates and caches
    /// it.
    ///
    /// # Errors
    ///
    /// Returns any I/O or serialisation error from reading/writing the
    /// cache, and any sanitizer violation raised during generation
    /// (surfaced as [`io::ErrorKind::InvalidData`]).
    pub fn load_or_generate(
        profiles: &[Profile],
        spec: &DatasetSpec,
        cache_dir: &Path,
    ) -> io::Result<Self> {
        let key = Self::cache_key(profiles, spec);
        let path = cache_dir.join(format!("dse-dataset-{key}.json"));
        if path.exists() {
            let text = std::fs::read_to_string(&path)?;
            let ds: SuiteDataset = dse_util::json::from_str(&text)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            dse_obs::log!(info, "[dataset] loaded cache {}", path.display());
            return Ok(ds);
        }
        let ds = Self::try_generate(profiles, spec)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        std::fs::create_dir_all(cache_dir)?;
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, dse_util::json::to_string(&ds))?;
        std::fs::rename(&tmp, &path)?;
        dse_obs::log!(info, "[dataset] cached to {}", path.display());
        Ok(ds)
    }

    fn cache_key(profiles: &[Profile], spec: &DatasetSpec) -> String {
        // Cheap stable fingerprint over names, seeds and the spec.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |byte: u8| {
            h ^= byte as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        for p in profiles {
            for b in p.name.bytes() {
                mix(b);
            }
            for b in p.seed.to_le_bytes() {
                mix(b);
            }
        }
        for v in [
            spec.n_configs as u64,
            spec.trace_len as u64,
            spec.warmup as u64,
            spec.seed,
        ] {
            for b in v.to_le_bytes() {
                mix(b);
            }
        }
        format!("{h:016x}")
    }

    /// ML feature vectors of the shared configurations.
    pub fn features(&self) -> Vec<Vec<f64>> {
        self.configs
            .iter()
            .map(|c| c.to_features().to_vec())
            .collect()
    }

    /// Index of a benchmark by name.
    pub fn benchmark_index(&self, name: &str) -> Option<usize> {
        self.benchmarks.iter().position(|b| b.name == name)
    }

    /// Index of a benchmark that must be present.
    ///
    /// # Panics
    ///
    /// Panics with the requested name and the available benchmarks, so a
    /// misspelling is immediately diagnosable.
    pub fn require_benchmark(&self, name: &str) -> usize {
        self.benchmark_index(name).unwrap_or_else(|| {
            let available: Vec<&str> = self.benchmarks.iter().map(|b| b.name.as_str()).collect();
            panic!("benchmark `{name}` is not in the dataset (available: {available:?})")
        })
    }

    /// Number of shared configurations.
    pub fn n_configs(&self) -> usize {
        self.configs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dse_workload::suites;

    fn tiny_dataset() -> SuiteDataset {
        let profiles: Vec<Profile> = suites::spec2000().into_iter().take(3).collect();
        SuiteDataset::generate(&profiles, &DatasetSpec::tiny())
    }

    #[test]
    fn generate_produces_full_grid() {
        let ds = tiny_dataset();
        assert_eq!(ds.configs.len(), 24);
        assert_eq!(ds.benchmarks.len(), 3);
        for b in &ds.benchmarks {
            assert_eq!(b.metrics.len(), 24);
            assert!(b.metrics.iter().all(|m| m.cycles > 0.0 && m.energy > 0.0));
            assert!(b.baseline.cycles > 0.0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let profiles: Vec<Profile> = suites::spec2000().into_iter().take(2).collect();
        let a = SuiteDataset::generate(&profiles, &DatasetSpec::tiny());
        let b = SuiteDataset::generate(&profiles, &DatasetSpec::tiny());
        assert_eq!(a, b);
    }

    #[test]
    fn values_and_normalized_values_are_consistent() {
        let ds = tiny_dataset();
        let b = &ds.benchmarks[0];
        let raw = b.values(Metric::Energy);
        let norm = b.normalized_values(Metric::Energy);
        for (r, n) in raw.iter().zip(&norm) {
            assert!((n * b.baseline.energy - r).abs() < 1e-6 * r);
        }
    }

    #[test]
    fn cache_round_trips() {
        let dir = std::env::temp_dir().join("dse-dataset-test");
        let _ = std::fs::remove_dir_all(&dir);
        let profiles: Vec<Profile> = suites::mibench().into_iter().take(2).collect();
        let spec = DatasetSpec::tiny();
        let a = SuiteDataset::load_or_generate(&profiles, &spec, &dir).unwrap();
        let b = SuiteDataset::load_or_generate(&profiles, &spec, &dir).unwrap();
        assert_eq!(a, b);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_key_distinguishes_specs() {
        let profiles: Vec<Profile> = suites::spec2000().into_iter().take(1).collect();
        let a = SuiteDataset::cache_key(&profiles, &DatasetSpec::tiny());
        let mut other = DatasetSpec::tiny();
        other.seed += 1;
        let b = SuiteDataset::cache_key(&profiles, &other);
        assert_ne!(a, b);
    }

    #[test]
    fn benchmark_index_finds_names() {
        let ds = tiny_dataset();
        assert_eq!(ds.benchmark_index("gzip"), Some(0));
        assert_eq!(ds.benchmark_index("nonexistent"), None);
    }

    #[test]
    fn require_benchmark_reports_the_misspelled_name() {
        let ds = tiny_dataset();
        assert_eq!(ds.require_benchmark("gzip"), 0);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ds.require_benchmark("gzpi")
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("panic message");
        assert!(msg.contains("gzpi"), "message should name the typo: {msg}");
        assert!(
            msg.contains("gzip"),
            "message should list alternatives: {msg}"
        );
    }

    /// Writes a corrupted dataset cache file for `profiles`+`spec` at the
    /// path `load_or_generate` will look up, by applying `mutate` to the
    /// valid serialised JSON text.
    fn corrupt_cache(
        dir: &Path,
        profiles: &[Profile],
        spec: &DatasetSpec,
        mutate: impl Fn(String) -> String,
    ) {
        let ds = SuiteDataset::generate(profiles, spec);
        let text = mutate(dse_util::json::to_string(&ds));
        let key = SuiteDataset::cache_key(profiles, spec);
        std::fs::create_dir_all(dir).unwrap();
        std::fs::write(dir.join(format!("dse-dataset-{key}.json")), text).unwrap();
    }

    fn load_corrupt_err(label: &str, mutate: impl Fn(String) -> String) -> io::Error {
        let dir = std::env::temp_dir().join(format!("dse-dataset-corrupt-{label}"));
        let _ = std::fs::remove_dir_all(&dir);
        let profiles: Vec<Profile> = suites::mibench().into_iter().take(1).collect();
        let mut spec = DatasetSpec::tiny();
        spec.n_configs = 4;
        corrupt_cache(&dir, &profiles, &spec, mutate);
        let err = SuiteDataset::load_or_generate(&profiles, &spec, &dir)
            .expect_err("corrupt cache must be rejected");
        let _ = std::fs::remove_dir_all(&dir);
        err
    }

    #[test]
    fn cache_with_wrong_row_count_fails_loudly() {
        // Drop one metrics row from the benchmark: the row count no longer
        // matches the shared configuration sample.
        let err = load_corrupt_err("rows", |text| {
            let start = text.find("\"metrics\":[").expect("metrics array") + "\"metrics\":[".len();
            // Remove the first row object `{...},`.
            let end = text[start..].find("},").expect("first row") + start + 2;
            format!("{}{}", &text[..start], &text[end..])
        });
        let msg = err.to_string();
        assert!(msg.contains("metric rows"), "unhelpful message: {msg}");
    }

    #[test]
    fn cache_with_non_finite_metric_fails_loudly() {
        // Overflow a stored number to infinity: 1e999 parses as +inf in
        // most readers; ours rejects it at the JSON layer.
        let err = load_corrupt_err("nonfinite", |text| {
            let pos = text.find("\"cycles\":").expect("a cycles field") + "\"cycles\":".len();
            let end = text[pos..].find([',', '}']).expect("number terminator") + pos;
            format!("{}1e999{}", &text[..pos], &text[end..])
        });
        let msg = err.to_string();
        assert!(
            msg.contains("overflows") || msg.contains("finite"),
            "unhelpful message: {msg}"
        );
    }

    #[test]
    fn cache_with_illegal_config_value_fails_loudly() {
        // Width 5 is not on the paper's parameter grid.
        let err = load_corrupt_err("illegal", |text| {
            let pos = text.find("\"width\":").expect("a width field") + "\"width\":".len();
            let end = text[pos..].find([',', '}']).expect("number terminator") + pos;
            format!("{}5{}", &text[..pos], &text[end..])
        });
        let msg = err.to_string();
        assert!(
            msg.contains("not a legal value") && msg.to_lowercase().contains("width"),
            "unhelpful message: {msg}"
        );
    }

    #[test]
    fn features_match_config_count() {
        let ds = tiny_dataset();
        let f = ds.features();
        assert_eq!(f.len(), ds.n_configs());
        assert!(f.iter().all(|row| row.len() == 13));
    }
}
