//! The state-of-the-art baseline: a program-specific ANN predictor
//! (Ïpek et al., §5.2 and §9.4).
//!
//! One artificial neural network per program, trained on `T` simulations
//! of that program, predicting one target metric for any configuration.
//! The paper's headline comparison (Fig 13) pits this model — given `S`
//! simulations as *training data* — against the architecture-centric model
//! given the same `S` simulations as *responses*.

use dse_ml::{Mlp, MlpConfig};
use dse_sim::Metric;
use dse_util::json::{FromJson, Json, JsonError, ToJson};

/// A trained per-program predictor for one metric.
///
/// # Examples
///
/// ```
/// use dse_core::ProgramSpecificPredictor;
/// use dse_ml::MlpConfig;
/// use dse_sim::Metric;
///
/// // A toy 2-feature space.
/// let feats = vec![vec![0.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0], vec![1.0, 1.0]];
/// let cycles = vec![1.0e7, 2.0e7, 3.0e7, 4.0e7];
/// let p = ProgramSpecificPredictor::train(
///     "toy", Metric::Cycles, &feats, &cycles, &MlpConfig::default());
/// assert_eq!(p.metric(), Metric::Cycles);
/// assert!(p.predict(&[0.5, 0.5]) > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramSpecificPredictor {
    program: String,
    metric: Metric,
    net: Mlp,
}

impl ProgramSpecificPredictor {
    /// Trains on configuration features and the corresponding metric
    /// values of one program.
    ///
    /// # Panics
    ///
    /// Panics on empty or mismatched training data (see [`Mlp::train`]).
    pub fn train(
        program: &str,
        metric: Metric,
        features: &[Vec<f64>],
        values: &[f64],
        cfg: &MlpConfig,
    ) -> Self {
        Self {
            program: program.to_string(),
            metric,
            net: Mlp::train(features, values, cfg),
        }
    }

    /// The program this predictor models.
    pub fn program(&self) -> &str {
        &self.program
    }

    /// The metric this predictor models.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Predicts the metric for one configuration feature vector.
    pub fn predict(&self, features: &[f64]) -> f64 {
        self.net.predict(features)
    }

    /// Predicts a batch.
    pub fn predict_batch(&self, features: &[Vec<f64>]) -> Vec<f64> {
        self.net.predict_batch(features)
    }

    /// Predicts a flat row-major batch into a caller-provided buffer
    /// (see [`Mlp::predict_batch_into`]); bit-identical to per-row
    /// [`ProgramSpecificPredictor::predict`].
    pub fn predict_batch_into(&self, features: &[f64], n_rows: usize, out: &mut [f64]) {
        self.net.predict_batch_into(features, n_rows, out);
    }

    /// Reassembles a predictor from a deserialised network — the loading
    /// half of the model artifact store.
    pub fn from_parts(program: String, metric: Metric, net: Mlp) -> Self {
        Self {
            program,
            metric,
            net,
        }
    }

    /// The underlying network.
    pub fn net(&self) -> &Mlp {
        &self.net
    }
}

impl ToJson for ProgramSpecificPredictor {
    fn to_json(&self) -> Json {
        Json::obj([
            ("program", self.program.to_json()),
            ("metric", self.metric.to_json()),
            ("net", self.net.to_json()),
        ])
    }
}

impl FromJson for ProgramSpecificPredictor {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            program: String::from_json(v.field("program")?)?,
            metric: Metric::from_json(v.field("metric")?)?,
            net: Mlp::from_json(v.field("net")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetSpec, SuiteDataset};
    use dse_ml::stats::{correlation, rmae};
    use dse_rng::Xoshiro256;

    /// Full-pipeline check on real simulated data: a program-specific
    /// model trained on most of a small dataset predicts the rest with
    /// usable accuracy.
    #[test]
    fn predicts_simulated_space_reasonably() {
        let profiles: Vec<_> = dse_workload::suites::spec2000()
            .into_iter()
            .filter(|p| p.name == "gzip")
            .collect();
        let spec = DatasetSpec {
            n_configs: 120,
            ..DatasetSpec::tiny()
        };
        let ds = SuiteDataset::generate(&profiles, &spec);
        let feats = ds.features();
        let vals = ds.benchmarks[0].values(Metric::Cycles);

        let mut rng = Xoshiro256::seed_from(3);
        let train_idx = rng.sample_indices(feats.len(), 90);
        let test_idx: Vec<usize> = (0..feats.len())
            .filter(|i| !train_idx.contains(i))
            .collect();
        let tf: Vec<Vec<f64>> = train_idx.iter().map(|&i| feats[i].clone()).collect();
        let tv: Vec<f64> = train_idx.iter().map(|&i| vals[i]).collect();
        let p = ProgramSpecificPredictor::train("gzip", Metric::Cycles, &tf, &tv, &{
            MlpConfig {
                epochs: 400,
                ..MlpConfig::default()
            }
        });
        let preds: Vec<f64> = test_idx.iter().map(|&i| p.predict(&feats[i])).collect();
        let actual: Vec<f64> = test_idx.iter().map(|&i| vals[i]).collect();
        let c = correlation(&preds, &actual);
        let e = rmae(&preds, &actual);
        assert!(c > 0.5, "correlation too low: {c}");
        assert!(e < 25.0, "rmae too high: {e}");
    }

    #[test]
    fn accessors_report_identity() {
        let p = ProgramSpecificPredictor::train(
            "x",
            Metric::Edd,
            &[vec![0.0], vec![1.0]],
            &[1.0, 2.0],
            &MlpConfig::default(),
        );
        assert_eq!(p.program(), "x");
        assert_eq!(p.metric(), Metric::Edd);
    }

    #[test]
    fn json_round_trip_is_exact() {
        let p = ProgramSpecificPredictor::train(
            "gzip",
            Metric::Ed,
            &[vec![0.0, 1.0], vec![1.0, 0.0], vec![0.5, 0.5]],
            &[1.0, 2.0, 1.5],
            &MlpConfig::default(),
        );
        let back: ProgramSpecificPredictor =
            dse_util::json::from_str(&dse_util::json::to_string(&p)).unwrap();
        assert_eq!(back, p);
        let x = [0.25, 0.75];
        assert_eq!(p.predict(&x).to_bits(), back.predict(&x).to_bits());
    }
}
