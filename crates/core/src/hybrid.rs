//! Hybrid prediction strategy (§7.2 / §7.3 of the paper).
//!
//! The paper observes that the architecture-centric model's *training*
//! error (its error on the responses themselves) predicts its *testing*
//! error: programs unlike anything in the training set — `art`, `mcf`,
//! `tiff2rgba`, `patricia` — show a high training error. It suggests the
//! designer can use this signal to fall back to a program-specific model
//! for such programs. This module implements that policy.

use crate::arch_centric::{ArchCentricPredictor, OfflineModel};
use crate::dataset::SuiteDataset;
use crate::program_specific::ProgramSpecificPredictor;
use dse_ml::MlpConfig;

/// Which underlying model a [`HybridPredictor`] selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HybridChoice {
    /// The cross-program model was trusted (training error below the
    /// threshold).
    ArchCentric,
    /// The program looked unlike the training set; a program-specific
    /// model was trained on the same responses instead.
    ProgramSpecific,
}

/// A predictor that picks between the architecture-centric model and a
/// response-trained program-specific model based on the training error.
#[derive(Debug, Clone)]
pub struct HybridPredictor {
    choice: HybridChoice,
    training_error: f64,
    arch: Option<ArchCentricPredictor>,
    program: Option<ProgramSpecificPredictor>,
}

impl HybridPredictor {
    /// Fits the hybrid: the architecture-centric model is fitted on the
    /// responses; if its training error exceeds
    /// `threshold_percent`, a program-specific ANN is trained on the same
    /// `R` simulations and used instead (no additional simulations are
    /// spent either way).
    ///
    /// # Panics
    ///
    /// Panics on empty or mismatched responses (see
    /// [`OfflineModel::fit_responses`]).
    pub fn fit(
        offline: &OfflineModel,
        ds: &SuiteDataset,
        response_idxs: &[usize],
        response_values: &[f64],
        threshold_percent: f64,
        mlp_cfg: &MlpConfig,
    ) -> Self {
        let arch = offline.fit_responses(ds, response_idxs, response_values);
        let features = ds.features();
        let preds: Vec<f64> = response_idxs
            .iter()
            .map(|&i| arch.predict(&features[i]))
            .collect();
        let training_error = dse_ml::stats::rmae(&preds, response_values);
        if training_error <= threshold_percent {
            Self {
                choice: HybridChoice::ArchCentric,
                training_error,
                arch: Some(arch),
                program: None,
            }
        } else {
            let tf: Vec<Vec<f64>> = response_idxs.iter().map(|&i| features[i].clone()).collect();
            let program = ProgramSpecificPredictor::train(
                "hybrid-fallback",
                offline.metric(),
                &tf,
                response_values,
                mlp_cfg,
            );
            Self {
                choice: HybridChoice::ProgramSpecific,
                training_error,
                arch: None,
                program: Some(program),
            }
        }
    }

    /// Which model was selected.
    pub fn choice(&self) -> HybridChoice {
        self.choice
    }

    /// The architecture-centric training error that drove the decision.
    pub fn training_error(&self) -> f64 {
        self.training_error
    }

    /// Predicts the target metric for a configuration feature vector.
    pub fn predict(&self, features: &[f64]) -> f64 {
        match self.choice {
            HybridChoice::ArchCentric => self
                .arch
                .as_ref()
                .expect("arch model present for ArchCentric choice")
                .predict(features),
            HybridChoice::ProgramSpecific => self
                .program
                .as_ref()
                .expect("program model present for ProgramSpecific choice")
                .predict(features),
        }
    }

    /// Predicts a batch.
    pub fn predict_batch(&self, features: &[Vec<f64>]) -> Vec<f64> {
        features.iter().map(|f| self.predict(f)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetSpec, SuiteDataset};
    use dse_sim::Metric;

    fn dataset() -> SuiteDataset {
        let profiles: Vec<_> = dse_workload::suites::spec2000()
            .into_iter()
            .filter(|p| ["gzip", "parser", "crafty", "gap", "art"].contains(&p.name))
            .collect();
        SuiteDataset::generate(
            &profiles,
            &DatasetSpec {
                n_configs: 60,
                ..DatasetSpec::tiny()
            },
        )
    }

    #[test]
    fn low_threshold_forces_program_specific() {
        let ds = dataset();
        let offline = OfflineModel::train(
            &ds,
            &[0, 1, 2],
            Metric::Cycles,
            40,
            &MlpConfig::default(),
            1,
        );
        let idxs: Vec<usize> = (0..16).collect();
        let vals: Vec<f64> = idxs
            .iter()
            .map(|&i| ds.benchmarks[3].metrics[i].cycles)
            .collect();
        let h = HybridPredictor::fit(&offline, &ds, &idxs, &vals, 0.0, &MlpConfig::default());
        assert_eq!(h.choice(), HybridChoice::ProgramSpecific);
        assert!(h.predict(&ds.features()[20]).is_finite());
    }

    #[test]
    fn high_threshold_keeps_arch_centric() {
        let ds = dataset();
        let offline = OfflineModel::train(
            &ds,
            &[0, 1, 2],
            Metric::Cycles,
            40,
            &MlpConfig::default(),
            1,
        );
        let idxs: Vec<usize> = (0..16).collect();
        let vals: Vec<f64> = idxs
            .iter()
            .map(|&i| ds.benchmarks[3].metrics[i].cycles)
            .collect();
        let h = HybridPredictor::fit(&offline, &ds, &idxs, &vals, 1e9, &MlpConfig::default());
        assert_eq!(h.choice(), HybridChoice::ArchCentric);
        assert!(h.training_error() >= 0.0);
    }

    #[test]
    fn outlier_program_has_higher_training_error_than_typical() {
        // art (trained on none of gzip/parser/crafty/gap's behaviours)
        // should be harder to express as their combination than gap is.
        let ds = dataset();
        let art = ds.require_benchmark("art");
        let gap = ds.require_benchmark("gap");
        let train_for = |target: usize| {
            let rows: Vec<usize> = (0..ds.benchmarks.len()).filter(|&i| i != target).collect();
            let offline =
                OfflineModel::train(&ds, &rows, Metric::Cycles, 40, &MlpConfig::default(), 2);
            let idxs: Vec<usize> = (0..16).collect();
            let vals: Vec<f64> = idxs
                .iter()
                .map(|&i| ds.benchmarks[target].metrics[i].cycles)
                .collect();
            offline.training_error(&ds, &idxs, &vals)
        };
        let e_art = train_for(art);
        let e_gap = train_for(gap);
        assert!(
            e_art > e_gap,
            "art training error ({e_art:.1}) should exceed gap's ({e_gap:.1})"
        );
    }
}
