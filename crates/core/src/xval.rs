//! Cross-validation and sweep experiments (Figs 9–14 of the paper).
//!
//! All experiments follow the paper's protocol (§7.1): N-fold
//! leave-one-out cross-validation over benchmarks, repeated `repeats`
//! times with different random training/response samples, reporting the
//! relative mean absolute error and the correlation coefficient on the
//! configurations not shown to the model.

use crate::arch_centric::OfflineModel;
use crate::dataset::SuiteDataset;
use crate::program_specific::ProgramSpecificPredictor;
use dse_ml::stats::{correlation, mean, rmae, std_dev};
use dse_ml::MlpConfig;
use dse_rng::Xoshiro256;
use dse_sim::Metric;
use dse_util::par::par_map;
use dse_workload::Suite;

/// Shared experiment parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalConfig {
    /// Simulations per training program for the offline ANNs (paper: 512).
    pub t: usize,
    /// Responses from each new program (paper: 32).
    pub r: usize,
    /// Experiment repetitions with fresh random samples (paper: 20).
    pub repeats: usize,
    /// Root seed.
    pub seed: u64,
    /// ANN hyper-parameters.
    pub mlp: MlpConfig,
}

impl Default for EvalConfig {
    fn default() -> Self {
        Self {
            t: 512,
            r: 32,
            repeats: 20,
            seed: 0xE7A1,
            mlp: MlpConfig::default(),
        }
    }
}

/// Mean and standard deviation over repeats (and programs, where noted).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Mean value.
    pub mean: f64,
    /// Standard deviation.
    pub std: f64,
}

impl Summary {
    /// Summarises a sample.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn of(xs: &[f64]) -> Self {
        Self {
            mean: mean(xs),
            std: std_dev(xs),
        }
    }
}

/// Per-program evaluation result (Figs 11 and 12).
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramEval {
    /// Program name.
    pub program: String,
    /// Error of the fitted model on its own responses (the paper's
    /// "training error", used to flag unusual programs).
    pub train_rmae: Summary,
    /// Error on the unseen remainder of the space ("actual"/testing
    /// error).
    pub test_rmae: Summary,
    /// Correlation coefficient on the unseen remainder.
    pub corr: Summary,
}

/// One point of a sweep (Figs 9, 10, 14).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Swept quantity (T, R, or the number of training programs).
    pub x: usize,
    /// rmae over programs × repeats.
    pub rmae: Summary,
    /// Correlation over programs × repeats.
    pub corr: Summary,
}

/// One row of the model comparison (Fig 13).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompareRow {
    /// Simulations of the new program given to both models.
    pub sims: usize,
    /// Program-specific predictor rmae.
    pub ps_rmae: Summary,
    /// Program-specific predictor correlation.
    pub ps_corr: Summary,
    /// Architecture-centric predictor rmae.
    pub ac_rmae: Summary,
    /// Architecture-centric predictor correlation.
    pub ac_corr: Summary,
}

fn suite_rows(ds: &SuiteDataset, suite: Suite) -> Vec<usize> {
    (0..ds.benchmarks.len())
        .filter(|&i| ds.benchmarks[i].suite == suite)
        .collect()
}

fn repeat_seed(root: u64, tag: u64, repeat: usize) -> u64 {
    let rng = Xoshiro256::seed_from(root ^ tag.wrapping_mul(0x9E37_79B9));
    rng.child(repeat as u64).next_u64()
}

/// Evaluates one fitted predictor on held-out configurations.
fn evaluate(
    predictor: &crate::arch_centric::ArchCentricPredictor,
    ds: &SuiteDataset,
    features: &[Vec<f64>],
    target_row: usize,
    metric: Metric,
    response_idxs: &[usize],
) -> (f64, f64, f64) {
    let in_response = {
        let mut mask = vec![false; ds.n_configs()];
        for &i in response_idxs {
            mask[i] = true;
        }
        mask
    };
    let target = &ds.benchmarks[target_row];
    let mut preds = Vec::with_capacity(ds.n_configs());
    let mut actual = Vec::with_capacity(ds.n_configs());
    let mut train_preds = Vec::with_capacity(response_idxs.len());
    let mut train_actual = Vec::with_capacity(response_idxs.len());
    for i in 0..ds.n_configs() {
        let p = predictor.predict(&features[i]);
        let a = target.metrics[i].get(metric);
        if in_response[i] {
            train_preds.push(p);
            train_actual.push(a);
        } else {
            preds.push(p);
            actual.push(a);
        }
    }
    (
        rmae(&train_preds, &train_actual),
        rmae(&preds, &actual),
        correlation(&preds, &actual),
    )
}

/// Trains per-repeat pools of program-specific models (one per benchmark)
/// that leave-one-out folds share.
fn model_pools(
    ds: &SuiteDataset,
    metric: Metric,
    cfg: &EvalConfig,
) -> Vec<Vec<ProgramSpecificPredictor>> {
    (0..cfg.repeats)
        .map(|k| {
            OfflineModel::train_model_pool(
                ds,
                metric,
                cfg.t,
                &cfg.mlp,
                repeat_seed(cfg.seed, 0x0FF1, k),
            )
        })
        .collect()
}

/// Leave-one-out evaluation of the architecture-centric model over every
/// benchmark of `suite` within `ds` (Fig 11 when run on SPEC).
///
/// # Panics
///
/// Panics if `ds` holds fewer than two benchmarks of `suite`.
pub fn loo(ds: &SuiteDataset, suite: Suite, metric: Metric, cfg: &EvalConfig) -> Vec<ProgramEval> {
    let _span = dse_obs::span!("xval.loo", metric = metric, repeats = cfg.repeats);
    let rows = suite_rows(ds, suite);
    assert!(rows.len() >= 2, "need at least two benchmarks in the suite");
    let pools = model_pools(ds, metric, cfg);
    loo_with_pools(ds, &rows, metric, cfg, &pools)
}

/// One leave-one-out fold repetition: fit the offline ensemble from
/// `pools[k]` on `rows` minus `target_row`, draw `r` responses of the
/// target, and evaluate. Returns (train rmae, test rmae, correlation).
#[allow(clippy::too_many_arguments)]
fn loo_job(
    ds: &SuiteDataset,
    features: &[Vec<f64>],
    rows: &[usize],
    metric: Metric,
    cfg: &EvalConfig,
    pools: &[Vec<ProgramSpecificPredictor>],
    target_row: usize,
    k: usize,
    r: usize,
) -> (f64, f64, f64) {
    let train_rows: Vec<usize> = rows.iter().copied().filter(|&x| x != target_row).collect();
    let models: Vec<ProgramSpecificPredictor> =
        train_rows.iter().map(|&x| pools[k][x].clone()).collect();
    let offline = OfflineModel::from_parts(metric, train_rows, models);
    let mut rng = Xoshiro256::seed_from(repeat_seed(cfg.seed, 0x1003 + target_row as u64, k));
    let response_idxs = rng.sample_indices(ds.n_configs(), r);
    let values: Vec<f64> = response_idxs
        .iter()
        .map(|&i| ds.benchmarks[target_row].metrics[i].get(metric))
        .collect();
    let predictor = offline.fit_responses(ds, &response_idxs, &values);
    evaluate(&predictor, ds, features, target_row, metric, &response_idxs)
}

/// Leave-one-out body over explicit rows, reusing pre-trained per-repeat
/// model pools. The program × repeat grid is flattened into one
/// [`par_map`] work list so repeats of different programs fill the pool
/// together; results regroup deterministically because `par_map` returns
/// them in input order.
fn loo_with_pools(
    ds: &SuiteDataset,
    rows: &[usize],
    metric: Metric,
    cfg: &EvalConfig,
    pools: &[Vec<ProgramSpecificPredictor>],
) -> Vec<ProgramEval> {
    let features = ds.features();
    let jobs: Vec<(usize, usize)> = rows
        .iter()
        .flat_map(|&row| (0..cfg.repeats).map(move |k| (row, k)))
        .collect();
    let results: Vec<(f64, f64, f64)> = par_map(&jobs, |&(row, k)| {
        loo_job(ds, &features, rows, metric, cfg, pools, row, k, cfg.r)
    });
    rows.iter()
        .zip(results.chunks(cfg.repeats))
        .map(|(&row, chunk)| ProgramEval {
            program: ds.benchmarks[row].name.clone(),
            train_rmae: Summary::of(&chunk.iter().map(|x| x.0).collect::<Vec<f64>>()),
            test_rmae: Summary::of(&chunk.iter().map(|x| x.1).collect::<Vec<f64>>()),
            corr: Summary::of(&chunk.iter().map(|x| x.2).collect::<Vec<f64>>()),
        })
        .collect()
}

/// Cross-suite evaluation: train on every benchmark of `train_suite`,
/// predict each benchmark of `test_suite` (Fig 12: SPEC → MiBench).
///
/// # Panics
///
/// Panics if either suite is absent from `ds`.
pub fn cross_suite(
    ds: &SuiteDataset,
    train_suite: Suite,
    test_suite: Suite,
    metric: Metric,
    cfg: &EvalConfig,
) -> Vec<ProgramEval> {
    let _span = dse_obs::span!("xval.cross_suite", metric = metric, repeats = cfg.repeats);
    let train_rows = suite_rows(ds, train_suite);
    let test_rows = suite_rows(ds, test_suite);
    assert!(!train_rows.is_empty(), "training suite absent from dataset");
    assert!(!test_rows.is_empty(), "test suite absent from dataset");
    let features = ds.features();

    // Offline ensembles depend only on the repeat, not the test program.
    let offlines: Vec<OfflineModel> = (0..cfg.repeats)
        .map(|k| {
            OfflineModel::train(
                ds,
                &train_rows,
                metric,
                cfg.t,
                &cfg.mlp,
                repeat_seed(cfg.seed, 0xC805, k),
            )
        })
        .collect();

    par_map(&test_rows, |&target_row| {
        let mut train_errs = Vec::new();
        let mut test_errs = Vec::new();
        let mut corrs = Vec::new();
        for (k, offline) in offlines.iter().enumerate() {
            let mut rng =
                Xoshiro256::seed_from(repeat_seed(cfg.seed, 0x2003 + target_row as u64, k));
            let response_idxs = rng.sample_indices(ds.n_configs(), cfg.r);
            let values: Vec<f64> = response_idxs
                .iter()
                .map(|&i| ds.benchmarks[target_row].metrics[i].get(metric))
                .collect();
            let predictor = offline.fit_responses(ds, &response_idxs, &values);
            let (tr, te, c) = evaluate(
                &predictor,
                ds,
                &features,
                target_row,
                metric,
                &response_idxs,
            );
            train_errs.push(tr);
            test_errs.push(te);
            corrs.push(c);
        }
        ProgramEval {
            program: ds.benchmarks[target_row].name.clone(),
            train_rmae: Summary::of(&train_errs),
            test_rmae: Summary::of(&test_errs),
            corr: Summary::of(&corrs),
        }
    })
}

/// One program-specific fit: train on `t` random samples of `row` and
/// test on the rest. Returns (rmae, correlation) on the held-out space.
fn ps_job(
    ds: &SuiteDataset,
    features: &[Vec<f64>],
    metric: Metric,
    cfg: &EvalConfig,
    row: usize,
    k: usize,
    t: usize,
) -> (f64, f64) {
    let mut rng = Xoshiro256::seed_from(repeat_seed(cfg.seed, 0x9001 + row as u64, k));
    let idx = rng.sample_indices(ds.n_configs(), t.min(ds.n_configs()));
    let bench = &ds.benchmarks[row];
    let tf: Vec<Vec<f64>> = idx.iter().map(|&i| features[i].clone()).collect();
    let tv: Vec<f64> = idx.iter().map(|&i| bench.metrics[i].get(metric)).collect();
    let mlp = MlpConfig {
        seed: rng.next_u64(),
        ..cfg.mlp
    };
    let p = ProgramSpecificPredictor::train(&bench.name, metric, &tf, &tv, &mlp);
    let mut mask = vec![false; ds.n_configs()];
    for &i in &idx {
        mask[i] = true;
    }
    let mut preds = Vec::new();
    let mut actual = Vec::new();
    for i in 0..ds.n_configs() {
        if !mask[i] {
            preds.push(p.predict(&features[i]));
            actual.push(bench.metrics[i].get(metric));
        }
    }
    (rmae(&preds, &actual), correlation(&preds, &actual))
}

/// Program-specific accuracy at each budget of `ts`, with the whole
/// budget × program × repeat grid flattened into one [`par_map`] list.
fn ps_points(
    ds: &SuiteDataset,
    rows: &[usize],
    metric: Metric,
    ts: &[usize],
    cfg: &EvalConfig,
) -> Vec<SweepPoint> {
    let features = ds.features();
    let jobs: Vec<(usize, usize, usize)> = ts
        .iter()
        .flat_map(|&t| {
            rows.iter()
                .flat_map(move |&row| (0..cfg.repeats).map(move |k| (t, row, k)))
        })
        .collect();
    let results: Vec<(f64, f64)> = par_map(&jobs, |&(t, row, k)| {
        ps_job(ds, &features, metric, cfg, row, k, t)
    });
    let per_point = rows.len() * cfg.repeats;
    ts.iter()
        .zip(results.chunks(per_point))
        .map(|(&t, chunk)| SweepPoint {
            x: t,
            rmae: Summary::of(&chunk.iter().map(|x| x.0).collect::<Vec<f64>>()),
            corr: Summary::of(&chunk.iter().map(|x| x.1).collect::<Vec<f64>>()),
        })
        .collect()
}

/// Evaluates a *program-specific* predictor trained on `t` samples of
/// each program and tested on the rest, averaged over programs × repeats
/// (Fig 9, and the program-specific side of Fig 13).
pub fn program_specific_accuracy(
    ds: &SuiteDataset,
    suite: Suite,
    metric: Metric,
    t: usize,
    cfg: &EvalConfig,
) -> SweepPoint {
    let rows = suite_rows(ds, suite);
    ps_points(ds, &rows, metric, &[t], cfg).remove(0)
}

/// Sweeps the number of training simulations T for the program-specific
/// predictors (Fig 9) as one flattened work list over every (T, program,
/// repeat) cell.
pub fn sweep_t(
    ds: &SuiteDataset,
    suite: Suite,
    metric: Metric,
    ts: &[usize],
    cfg: &EvalConfig,
) -> Vec<SweepPoint> {
    let _span = dse_obs::span!("xval.sweep_t", metric = metric, points = ts.len());
    let rows = suite_rows(ds, suite);
    ps_points(ds, &rows, metric, ts, cfg)
}

/// Architecture-centric sweep points for each response count of `rs`,
/// with the response-count × program × repeat grid flattened into one
/// [`par_map`] list (the pre-trained pools are shared by every cell).
/// Each point averages the per-program repeat means, matching
/// [`loo_with_pools`]' summaries.
fn arch_points(
    ds: &SuiteDataset,
    rows: &[usize],
    metric: Metric,
    rs: &[usize],
    cfg: &EvalConfig,
    pools: &[Vec<ProgramSpecificPredictor>],
) -> Vec<SweepPoint> {
    let features = ds.features();
    let jobs: Vec<(usize, usize, usize)> = rs
        .iter()
        .flat_map(|&r| {
            rows.iter()
                .flat_map(move |&row| (0..cfg.repeats).map(move |k| (r, row, k)))
        })
        .collect();
    let results: Vec<(f64, f64, f64)> = par_map(&jobs, |&(r, row, k)| {
        loo_job(ds, &features, rows, metric, cfg, pools, row, k, r)
    });
    let per_point = rows.len() * cfg.repeats;
    rs.iter()
        .zip(results.chunks(per_point))
        .map(|(&r, chunk)| {
            let errs: Vec<f64> = chunk
                .chunks(cfg.repeats)
                .map(|per_row| mean(&per_row.iter().map(|x| x.1).collect::<Vec<f64>>()))
                .collect();
            let corrs: Vec<f64> = chunk
                .chunks(cfg.repeats)
                .map(|per_row| mean(&per_row.iter().map(|x| x.2).collect::<Vec<f64>>()))
                .collect();
            SweepPoint {
                x: r,
                rmae: Summary::of(&errs),
                corr: Summary::of(&corrs),
            }
        })
        .collect()
}

/// Architecture-centric accuracy at one response count, averaged over
/// leave-one-out programs × repeats (one point of Fig 10 / Fig 13).
pub fn arch_centric_accuracy(
    ds: &SuiteDataset,
    suite: Suite,
    metric: Metric,
    r: usize,
    cfg: &EvalConfig,
) -> SweepPoint {
    let pools = model_pools(ds, metric, cfg);
    let rows = suite_rows(ds, suite);
    arch_points(ds, &rows, metric, &[r], cfg, &pools).remove(0)
}

/// Sweeps the number of responses R for the architecture-centric model
/// (Fig 10). The offline ensembles are trained once and shared across
/// every point of the sweep (they do not depend on R), and all points'
/// folds run as a single flattened work list.
pub fn sweep_r(
    ds: &SuiteDataset,
    suite: Suite,
    metric: Metric,
    rs: &[usize],
    cfg: &EvalConfig,
) -> Vec<SweepPoint> {
    let _span = dse_obs::span!("xval.sweep_r", metric = metric, points = rs.len());
    let pools = model_pools(ds, metric, cfg);
    let rows = suite_rows(ds, suite);
    arch_points(ds, &rows, metric, rs, cfg, &pools)
}

/// Head-to-head comparison at equal simulation budgets (Fig 13). Both
/// sides sweep every budget through one flattened work list each; the
/// architecture-centric offline ensembles are shared across budgets.
pub fn compare(
    ds: &SuiteDataset,
    suite: Suite,
    metric: Metric,
    sims: &[usize],
    cfg: &EvalConfig,
) -> Vec<CompareRow> {
    let _span = dse_obs::span!("xval.compare", metric = metric, budgets = sims.len());
    let pools = model_pools(ds, metric, cfg);
    let rows = suite_rows(ds, suite);
    let ps = ps_points(ds, &rows, metric, sims, cfg);
    let ac = arch_points(ds, &rows, metric, sims, cfg, &pools);
    sims.iter()
        .zip(ps.into_iter().zip(ac))
        .map(|(&s, (ps, ac))| CompareRow {
            sims: s,
            ps_rmae: ps.rmae,
            ps_corr: ps.corr,
            ac_rmae: ac.rmae,
            ac_corr: ac.corr,
        })
        .collect()
}

/// Accuracy versus the number of offline training programs (Fig 14):
/// for each left-out program, `n` training programs are drawn at random
/// from the remainder. All (n, program, repeat) cells run as one
/// flattened [`par_map`] work list.
pub fn sweep_train_programs(
    ds: &SuiteDataset,
    suite: Suite,
    metric: Metric,
    ns: &[usize],
    cfg: &EvalConfig,
) -> Vec<SweepPoint> {
    let _span = dse_obs::span!(
        "xval.sweep_train_programs",
        metric = metric,
        points = ns.len()
    );
    let rows = suite_rows(ds, suite);
    for &n in ns {
        assert!(
            n >= 1 && n < rows.len(),
            "training-set size {n} outside [1, {})",
            rows.len()
        );
    }
    let pools = model_pools(ds, metric, cfg);
    let features = ds.features();

    let jobs: Vec<(usize, usize, usize)> = ns
        .iter()
        .flat_map(|&n| {
            rows.iter()
                .flat_map(move |&row| (0..cfg.repeats).map(move |k| (n, row, k)))
        })
        .collect();
    let results: Vec<(f64, f64)> = par_map(&jobs, |&(n, target_row, k)| {
        let mut rng = Xoshiro256::seed_from(repeat_seed(
            cfg.seed,
            0x1400 + target_row as u64 + ((n as u64) << 8),
            k,
        ));
        let others: Vec<usize> = rows.iter().copied().filter(|&r| r != target_row).collect();
        let chosen = rng.sample_indices(others.len(), n);
        let train_rows: Vec<usize> = chosen.iter().map(|&i| others[i]).collect();
        let models: Vec<ProgramSpecificPredictor> =
            train_rows.iter().map(|&r| pools[k][r].clone()).collect();
        let offline = OfflineModel::from_parts(metric, train_rows, models);
        let response_idxs = rng.sample_indices(ds.n_configs(), cfg.r);
        let values: Vec<f64> = response_idxs
            .iter()
            .map(|&i| ds.benchmarks[target_row].metrics[i].get(metric))
            .collect();
        let predictor = offline.fit_responses(ds, &response_idxs, &values);
        let (_, te, c) = evaluate(
            &predictor,
            ds,
            &features,
            target_row,
            metric,
            &response_idxs,
        );
        (te, c)
    });
    let per_point = rows.len() * cfg.repeats;
    ns.iter()
        .zip(results.chunks(per_point))
        .map(|(&n, chunk)| SweepPoint {
            x: n,
            rmae: Summary::of(&chunk.iter().map(|x| x.0).collect::<Vec<f64>>()),
            corr: Summary::of(&chunk.iter().map(|x| x.1).collect::<Vec<f64>>()),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetSpec, SuiteDataset};

    fn tiny_cfg() -> EvalConfig {
        EvalConfig {
            t: 30,
            r: 10,
            repeats: 2,
            seed: 5,
            mlp: MlpConfig {
                epochs: 60,
                ..MlpConfig::default()
            },
        }
    }

    fn mixed_dataset() -> SuiteDataset {
        let mut profiles: Vec<_> = dse_workload::suites::spec2000()
            .into_iter()
            .take(4)
            .collect();
        profiles.extend(dse_workload::suites::mibench().into_iter().take(2));
        let spec = DatasetSpec {
            n_configs: 60,
            ..DatasetSpec::tiny()
        };
        SuiteDataset::generate(&profiles, &spec)
    }

    #[test]
    fn loo_reports_every_program() {
        let ds = mixed_dataset();
        let evals = loo(&ds, Suite::SpecCpu2000, Metric::Cycles, &tiny_cfg());
        assert_eq!(evals.len(), 4);
        for e in &evals {
            assert!(e.test_rmae.mean.is_finite());
            assert!(e.corr.mean >= -1.0 && e.corr.mean <= 1.0);
        }
    }

    #[test]
    fn loo_is_deterministic() {
        let ds = mixed_dataset();
        let a = loo(&ds, Suite::SpecCpu2000, Metric::Energy, &tiny_cfg());
        let b = loo(&ds, Suite::SpecCpu2000, Metric::Energy, &tiny_cfg());
        assert_eq!(a, b);
    }

    #[test]
    fn cross_suite_tests_only_target_suite() {
        let ds = mixed_dataset();
        let evals = cross_suite(
            &ds,
            Suite::SpecCpu2000,
            Suite::MiBench,
            Metric::Cycles,
            &tiny_cfg(),
        );
        assert_eq!(evals.len(), 2);
        let names: Vec<&str> = evals.iter().map(|e| e.program.as_str()).collect();
        assert!(names.contains(&"basicmath"));
    }

    #[test]
    fn sweep_t_improves_with_more_data() {
        let ds = mixed_dataset();
        let pts = sweep_t(
            &ds,
            Suite::SpecCpu2000,
            Metric::Cycles,
            &[6, 48],
            &tiny_cfg(),
        );
        assert_eq!(pts.len(), 2);
        assert!(
            pts[1].rmae.mean < pts[0].rmae.mean,
            "48 samples ({}) should beat 6 ({})",
            pts[1].rmae.mean,
            pts[0].rmae.mean
        );
    }

    #[test]
    fn compare_produces_rows_for_each_budget() {
        let ds = mixed_dataset();
        let rows = compare(
            &ds,
            Suite::SpecCpu2000,
            Metric::Cycles,
            &[8, 16],
            &tiny_cfg(),
        );
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.ps_rmae.mean.is_finite());
            assert!(r.ac_rmae.mean.is_finite());
        }
    }

    #[test]
    fn sweep_train_programs_accepts_valid_sizes() {
        let ds = mixed_dataset();
        let pts = sweep_train_programs(
            &ds,
            Suite::SpecCpu2000,
            Metric::Cycles,
            &[1, 3],
            &tiny_cfg(),
        );
        assert_eq!(pts.len(), 2);
        assert!(pts.iter().all(|p| p.rmae.mean.is_finite()));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn sweep_train_programs_rejects_too_many() {
        let ds = mixed_dataset();
        sweep_train_programs(&ds, Suite::SpecCpu2000, Metric::Cycles, &[4], &tiny_cfg());
    }

    #[test]
    fn summary_of_constant_sample() {
        let s = Summary::of(&[2.0, 2.0, 2.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.std, 0.0);
    }
}
