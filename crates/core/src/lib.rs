//! The paper's contribution: an architecture-centric predictor for
//! microarchitectural design-space exploration, plus the evaluation
//! harness that reproduces the paper's experiments.
//!
//! * [`dataset`] — the experimental protocol of §3.3: one shared set of
//!   3,000 uniformly sampled legal configurations, simulated for every
//!   benchmark (generated in parallel and cached on disk);
//! * [`program_specific`] — the state-of-the-art baseline the paper
//!   compares against (Ïpek et al.): one ANN per program trained on that
//!   program's own simulations;
//! * [`arch_centric`] — the paper's model (§5): N offline program-specific
//!   ANNs combined by a linear regressor fitted on R "responses" of the
//!   new program;
//! * [`xval`] — leave-one-out, cross-suite and sweep evaluations
//!   (Figs 9–14);
//! * [`analysis`] — design-space characterisation (Figs 2–5).
//!
//! # Examples
//!
//! ```no_run
//! use dse_core::dataset::{DatasetSpec, SuiteDataset};
//! use dse_core::arch_centric::OfflineModel;
//! use dse_ml::MlpConfig;
//! use dse_sim::Metric;
//!
//! // Simulate the suite (cached after the first run), train offline on all
//! // programs but the last, and predict the last from 32 responses.
//! let profiles = dse_workload::suites::spec2000();
//! let ds = SuiteDataset::generate(&profiles, &DatasetSpec::default());
//! let train: Vec<usize> = (0..ds.benchmarks.len() - 1).collect();
//! let offline = OfflineModel::train(&ds, &train, Metric::Cycles, 512, &MlpConfig::default(), 1);
//! let responses: Vec<usize> = (0..32).collect();
//! let target = ds.benchmarks.last().unwrap();
//! let values: Vec<f64> = responses.iter().map(|&i| target.metrics[i].cycles).collect();
//! let predictor = offline.fit_responses(&ds, &responses, &values);
//! let prediction = predictor.predict(&ds.features()[100]);
//! assert!(prediction > 0.0);
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod arch_centric;
pub mod dataset;
pub mod hybrid;
pub mod program_specific;
pub mod xval;

pub use arch_centric::{fit_combiner, ArchCentricPredictor, OfflineModel};
pub use dataset::{BenchmarkData, DatasetSpec, SuiteDataset};
pub use hybrid::{HybridChoice, HybridPredictor};
pub use program_specific::ProgramSpecificPredictor;
