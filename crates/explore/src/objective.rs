//! Objectives (what to minimize) and constraints (where to look).
//!
//! An [`Objective`] is a list of axes, each axis a weighted blend of the
//! four simulated metrics; the explorer minimizes all axes simultaneously
//! and returns the Pareto front over them. A single-axis objective
//! degenerates to scalar optimization (the front is one point).
//!
//! [`Constraints`] restrict the search to a box in parameter space:
//! per-dimension lower/upper bounds on the *actual* parameter values
//! (entries, KB, bits), on top of the design space's own legality filter.

use dse_sim::{Metric, Metrics};
use dse_space::{Config, Param};
use dse_util::json::{FromJson, Json, JsonError, ToJson};
use std::fmt;

/// One `weight × metric` term of an objective axis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectiveTerm {
    /// Multiplier applied to the metric (must be finite and positive).
    pub weight: f64,
    /// The simulated metric.
    pub metric: Metric,
}

/// One minimized axis: a weighted sum of metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectiveAxis {
    /// The blend; at least one term, metrics distinct within the axis.
    pub terms: Vec<ObjectiveTerm>,
}

impl ObjectiveAxis {
    /// A single-metric axis with weight 1.
    pub fn metric(metric: Metric) -> Self {
        Self {
            terms: vec![ObjectiveTerm {
                weight: 1.0,
                metric,
            }],
        }
    }

    /// Evaluates the axis on simulated metrics.
    pub fn eval(&self, m: &Metrics) -> f64 {
        self.terms.iter().map(|t| t.weight * m.get(t.metric)).sum()
    }

    /// Evaluates the axis on per-metric predictions, in [`Metric::ALL`]
    /// order.
    pub fn eval_predicted(&self, by_metric: &[f64; 4]) -> f64 {
        self.terms
            .iter()
            .map(|t| t.weight * by_metric[t.metric as usize])
            .sum()
    }

    /// The metrics this axis reads.
    pub fn metrics(&self) -> impl Iterator<Item = Metric> + '_ {
        self.terms.iter().map(|t| t.metric)
    }
}

impl fmt::Display for ObjectiveAxis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                f.write_str("+")?;
            }
            if t.weight == 1.0 && self.terms.len() == 1 {
                write!(f, "{}", metric_name(t.metric))?;
            } else {
                write!(f, "{}*{}", t.weight, metric_name(t.metric))?;
            }
        }
        Ok(())
    }
}

/// A multi-objective minimization target: one or more axes.
#[derive(Debug, Clone, PartialEq)]
pub struct Objective {
    /// The minimized axes (1–4 of them).
    pub axes: Vec<ObjectiveAxis>,
}

/// Error from parsing or validating an objective or constraint set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseError {}

fn metric_name(m: Metric) -> &'static str {
    match m {
        Metric::Cycles => "cycles",
        Metric::Energy => "energy",
        Metric::Ed => "ed",
        Metric::Edd => "edd",
    }
}

/// Parses a metric name: `cycles`, `energy`, `ed` (energy·delay), `edd`
/// (aliases `ed2`, `ed^2` — energy·delay²). Case-insensitive.
pub fn parse_metric(s: &str) -> Result<Metric, ParseError> {
    match s.trim().to_ascii_lowercase().as_str() {
        "cycles" => Ok(Metric::Cycles),
        "energy" => Ok(Metric::Energy),
        "ed" => Ok(Metric::Ed),
        "edd" | "ed2" | "ed^2" => Ok(Metric::Edd),
        other => Err(ParseError(format!(
            "unknown metric `{other}` (expected cycles|energy|ed|edd)"
        ))),
    }
}

impl Objective {
    /// Parses a comma-separated axis list. Each axis is a metric name or
    /// a weighted blend `0.5*cycles+0.5*energy`.
    ///
    /// # Errors
    ///
    /// Rejects empty input, unknown metrics, non-positive or non-finite
    /// weights, repeated metrics within an axis, and identical axes.
    pub fn parse(s: &str) -> Result<Self, ParseError> {
        let mut axes = Vec::new();
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                return Err(ParseError("empty objective axis".to_string()));
            }
            axes.push(Self::parse_axis(part)?);
        }
        Self::from_axes(axes)
    }

    fn parse_axis(s: &str) -> Result<ObjectiveAxis, ParseError> {
        let mut terms = Vec::new();
        for term in s.split('+') {
            let term = term.trim();
            let (weight, metric) = match term.split_once('*') {
                Some((w, m)) => {
                    let weight: f64 = w
                        .trim()
                        .parse()
                        .map_err(|_| ParseError(format!("bad weight `{w}` in `{s}`")))?;
                    (weight, parse_metric(m)?)
                }
                None => (1.0, parse_metric(term)?),
            };
            if !weight.is_finite() || weight <= 0.0 {
                return Err(ParseError(format!(
                    "weight {weight} in `{s}` must be finite and positive"
                )));
            }
            if terms.iter().any(|t: &ObjectiveTerm| t.metric == metric) {
                return Err(ParseError(format!(
                    "metric `{}` repeated within axis `{s}`",
                    metric_name(metric)
                )));
            }
            terms.push(ObjectiveTerm { weight, metric });
        }
        Ok(ObjectiveAxis { terms })
    }

    /// Builds an objective from axes, validating the set.
    ///
    /// # Errors
    ///
    /// Rejects empty axis lists, more than four axes, and duplicate axes.
    pub fn from_axes(axes: Vec<ObjectiveAxis>) -> Result<Self, ParseError> {
        if axes.is_empty() {
            return Err(ParseError("objective needs at least one axis".to_string()));
        }
        if axes.len() > 4 {
            return Err(ParseError(format!(
                "{} axes requested; at most 4 are supported",
                axes.len()
            )));
        }
        for i in 0..axes.len() {
            for j in i + 1..axes.len() {
                if axes[i] == axes[j] {
                    return Err(ParseError(format!(
                        "duplicate objective axis `{}`",
                        axes[i]
                    )));
                }
            }
        }
        Ok(Self { axes })
    }

    /// Number of minimized axes.
    pub fn dim(&self) -> usize {
        self.axes.len()
    }

    /// Evaluates every axis on simulated metrics.
    pub fn eval(&self, m: &Metrics) -> Vec<f64> {
        self.axes.iter().map(|a| a.eval(m)).collect()
    }

    /// Evaluates every axis on per-metric predictions in [`Metric::ALL`]
    /// order.
    pub fn eval_predicted(&self, by_metric: &[f64; 4]) -> Vec<f64> {
        self.axes
            .iter()
            .map(|a| a.eval_predicted(by_metric))
            .collect()
    }

    /// The distinct metrics any axis reads, in [`Metric::ALL`] order —
    /// the set of predictors an explorer run needs.
    pub fn metrics(&self) -> Vec<Metric> {
        Metric::ALL
            .into_iter()
            .filter(|m| self.axes.iter().any(|a| a.metrics().any(|x| x == *m)))
            .collect()
    }

    /// A filesystem-safe slug naming the objective (for output files).
    pub fn slug(&self) -> String {
        self.axes
            .iter()
            .map(|a| {
                a.terms
                    .iter()
                    .map(|t| {
                        if t.weight == 1.0 {
                            metric_name(t.metric).to_string()
                        } else {
                            format!("{}{}", t.weight, metric_name(t.metric)).replace('.', "p")
                        }
                    })
                    .collect::<Vec<_>>()
                    .join("+")
            })
            .collect::<Vec<_>>()
            .join("-")
    }
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, a) in self.axes.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

impl ToJson for Objective {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl FromJson for Objective {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Self::parse(v.as_str()?).map_err(|e| JsonError::msg(e.0))
    }
}

/// Looks up a parameter by its display name, case-insensitively, with
/// spaces and underscores interchangeable (`"rf read"` ≡ `"RF_read"`).
pub fn parse_param(s: &str) -> Result<Param, ParseError> {
    let want = s.trim().to_ascii_lowercase().replace('_', " ");
    Param::ALL
        .into_iter()
        .find(|p| p.def().name.to_ascii_lowercase() == want)
        .ok_or_else(|| {
            ParseError(format!(
                "unknown parameter `{}` (expected one of {})",
                s.trim(),
                Param::ALL
                    .into_iter()
                    .map(|p| p.def().name)
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        })
}

/// An inclusive bound on one parameter's actual value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Constraint {
    /// The bounded parameter.
    pub param: Param,
    /// Inclusive lower bound on the value, if any.
    pub min: Option<u64>,
    /// Inclusive upper bound on the value, if any.
    pub max: Option<u64>,
}

impl Constraint {
    /// Whether `cfg` satisfies this bound.
    pub fn allows(&self, cfg: &Config) -> bool {
        let v = cfg.param(self.param);
        self.min.is_none_or(|lo| v >= lo) && self.max.is_none_or(|hi| v <= hi)
    }
}

/// A conjunction of per-parameter bounds; the empty set allows everything.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Constraints {
    /// One entry per bounded parameter, in [`Param::ALL`] order.
    pub items: Vec<Constraint>,
}

impl Constraints {
    /// The unconstrained set.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether `cfg` satisfies every bound.
    pub fn allows(&self, cfg: &Config) -> bool {
        self.items.iter().all(|c| c.allows(cfg))
    }

    /// Parses a comma-separated bound list: `rob<=96`, `l2>=1024`,
    /// `width=4` (an equality pins both bounds). The empty string parses
    /// to the unconstrained set.
    ///
    /// # Errors
    ///
    /// Rejects unknown parameters, malformed bounds, values no legal
    /// configuration can satisfy (`min > max`), and repeated parameters.
    pub fn parse(s: &str) -> Result<Self, ParseError> {
        let mut by_param: Vec<Constraint> = Vec::new();
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (name, op, value) = if let Some((n, v)) = part.split_once("<=") {
                (n, "<=", v)
            } else if let Some((n, v)) = part.split_once(">=") {
                (n, ">=", v)
            } else if let Some((n, v)) = part.split_once('=') {
                (n, "=", v)
            } else {
                return Err(ParseError(format!(
                    "bad constraint `{part}` (expected name<=v, name>=v or name=v)"
                )));
            };
            let param = parse_param(name)?;
            let value: u64 = value
                .trim()
                .parse()
                .map_err(|_| ParseError(format!("bad value in constraint `{part}`")))?;
            let entry = match by_param.iter_mut().find(|c| c.param == param) {
                Some(e) => e,
                None => {
                    by_param.push(Constraint {
                        param,
                        min: None,
                        max: None,
                    });
                    by_param.last_mut().unwrap()
                }
            };
            match op {
                "<=" => entry.max = Some(entry.max.map_or(value, |m| m.min(value))),
                ">=" => entry.min = Some(entry.min.map_or(value, |m| m.max(value))),
                _ => {
                    entry.min = Some(value);
                    entry.max = Some(value);
                }
            }
        }
        let mut items = by_param;
        items.sort_by_key(|c| c.param as usize);
        for c in &items {
            if let (Some(lo), Some(hi)) = (c.min, c.max) {
                if lo > hi {
                    return Err(ParseError(format!(
                        "constraint on {} is empty: min {lo} > max {hi}",
                        c.param.def().name
                    )));
                }
            }
            let vals = c.param.def().values;
            if !vals
                .iter()
                .any(|&v| c.min.is_none_or(|lo| v >= lo) && c.max.is_none_or(|hi| v <= hi))
            {
                return Err(ParseError(format!(
                    "no {} value satisfies the bound (choices: {:?})",
                    c.param.def().name,
                    vals
                )));
            }
        }
        Ok(Self { items })
    }

    /// Whether any bound is active.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl fmt::Display for Constraints {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.items.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            let name = c.param.def().name.to_ascii_lowercase().replace(' ', "_");
            match (c.min, c.max) {
                (Some(lo), Some(hi)) if lo == hi => write!(f, "{name}={lo}")?,
                (lo, hi) => {
                    if let Some(lo) = lo {
                        write!(f, "{name}>={lo}")?;
                    }
                    if let Some(hi) = hi {
                        if lo.is_some() {
                            f.write_str(",")?;
                        }
                        write!(f, "{name}<={hi}")?;
                    }
                }
            }
        }
        Ok(())
    }
}

impl ToJson for Constraints {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl FromJson for Constraints {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Self::parse(v.as_str()?).map_err(|e| JsonError::msg(e.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_axis_lists_and_blends() {
        let o = Objective::parse("cycles,energy").unwrap();
        assert_eq!(o.dim(), 2);
        let o = Objective::parse("0.5*cycles+0.5*energy").unwrap();
        assert_eq!(o.dim(), 1);
        assert_eq!(o.axes[0].terms.len(), 2);
        assert_eq!(
            Objective::parse("ed2").unwrap(),
            Objective::parse("edd").unwrap()
        );
    }

    #[test]
    fn objective_round_trips_as_json_string() {
        for s in ["cycles", "cycles,energy", "0.5*cycles+0.5*energy,edd"] {
            let o = Objective::parse(s).unwrap();
            let j = dse_util::json::to_string(&o);
            let back: Objective = dse_util::json::from_str(&j).unwrap();
            assert_eq!(back, o, "via {j}");
        }
    }

    #[test]
    fn rejects_malformed_objectives() {
        for bad in [
            "",
            "cycles,,energy",
            "watts",
            "-1*cycles",
            "0*cycles",
            "cycles+cycles",
            "cycles,cycles",
            "cycles,energy,ed,edd,cycles",
        ] {
            assert!(Objective::parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn objective_eval_blends_metrics() {
        let m = Metrics {
            cycles: 100.0,
            energy: 10.0,
            ed: 1000.0,
            edd: 100_000.0,
        };
        let o = Objective::parse("0.5*cycles+2*energy").unwrap();
        assert_eq!(o.eval(&m), vec![70.0]);
        let o = Objective::parse("cycles,energy").unwrap();
        assert_eq!(o.eval(&m), vec![100.0, 10.0]);
    }

    #[test]
    fn constraints_parse_and_filter() {
        let c = Constraints::parse("rob<=96, width>=4").unwrap();
        let mut cfg = Config::baseline();
        cfg.rob = 96;
        cfg.width = 4;
        assert!(c.allows(&cfg));
        cfg.rob = 128;
        assert!(!c.allows(&cfg));
        assert!(Constraints::parse("").unwrap().is_empty());
    }

    #[test]
    fn constraint_names_accept_spaces_and_underscores() {
        assert!(Constraints::parse("rf_read<=8").is_ok());
        assert!(Constraints::parse("RF read<=8").is_ok());
        assert!(Constraints::parse("l2>=1024").is_ok());
    }

    #[test]
    fn rejects_unsatisfiable_constraints() {
        assert!(Constraints::parse("width>=9").is_err());
        assert!(Constraints::parse("rob>=96,rob<=64").is_err());
        assert!(Constraints::parse("turbo<=1").is_err());
    }

    #[test]
    fn constraints_round_trip_as_json() {
        let c = Constraints::parse("width=4,rob<=96,l2>=1024").unwrap();
        let j = dse_util::json::to_string(&c);
        let back: Constraints = dse_util::json::from_str(&j).unwrap();
        assert_eq!(back, c, "via {j}");
    }
}
