//! # dse-explore — Pareto-frontier design-space exploration
//!
//! The paper's pipeline *predicts* metrics for sampled configurations;
//! this crate *searches*: given a trained predictor (cheap oracle) and
//! the cycle-accurate simulator (expensive oracle), it runs a batched
//! acquisition loop over the 13-dimensional design space and returns the
//! ground-truth Pareto frontier of a user objective — "best configs
//! under my constraints" rather than "metric at this config".
//!
//! The moving parts:
//!
//! * [`Objective`] — one to four minimized axes, each a weighted blend of
//!   cycles / energy / ED / ED² (`"cycles,energy"`,
//!   `"0.5*cycles+0.5*energy"`).
//! * [`Constraints`] — per-parameter bounds (`"rob<=96,width>=4"`)
//!   intersected with the design space's legality filter.
//! * [`Archive`] — the nondominated set, capacity-bounded by normalized
//!   hypervolume-contribution pruning, canonically ordered.
//! * [`Explorer`] — the loop: score candidates with the predictor, pick
//!   by acquisition key, ground-truth the picks through the batched
//!   [`SimOracle`], archive only simulated results. Every pick the
//!   predictor gets wrong costs one simulation, never correctness.
//! * [`Frontier`] — the serializable result, bit-identical across
//!   `ARCHDSE_THREADS` and `ARCHDSE_BATCH` for a fixed seed.
//!
//! Cost accounting is explicit: [`Frontier::predictor_calls`] and
//! [`Frontier::sim_calls`] report how much each oracle was consulted, so
//! "found the front with 25% of the exhaustive budget" is a measured
//! claim, not an impression (see `tests/explore_frontier.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explorer;
pub mod frontier;
pub mod objective;
pub mod pareto;

pub use explorer::{
    Command, ExploreBudget, ExploreError, Explorer, GroundTruth, MetricPredictor, RoundStatus,
    SimOracle,
};
pub use frontier::{Frontier, FrontierPoint, RoundStats, FRONTIER_VERSION};
pub use objective::{
    parse_metric, parse_param, Constraint, Constraints, Objective, ObjectiveAxis, ObjectiveTerm,
    ParseError,
};
pub use pareto::{dominates, hypervolume, normalize, pareto_indices, Archive, Insert};

#[cfg(test)]
pub(crate) mod test_support {
    use dse_rng::Xoshiro256;
    use dse_space::{sample_legal, Config};

    /// `n` distinct legal configurations from a fixed seed.
    pub fn distinct_configs(n: usize) -> Vec<Config> {
        sample_legal(&mut Xoshiro256::seed_from(0xC0FF), n)
    }
}
