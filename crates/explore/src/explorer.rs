//! The acquisition loop: predictor-guided search, simulator ground truth.
//!
//! Each round the explorer (1) generates candidate configurations —
//! one-step neighbours of the current archive plus fresh global samples,
//! or the remainder of a finite pool; (2) scores every candidate with the
//! cheap predictor; (3) ranks them by an acquisition key (fewest archive
//! members dominating the prediction, then largest predicted hypervolume
//! gain, then best scalarized value, then candidate order) with the first
//! picks reserved for the per-axis predicted minima so frontier extremes
//! are captured early; (4) simulates the top-K picks through the batched
//! [`SweepEngine`] and offers the **ground-truth** objective vectors to
//! the nondominated archive. Predictions never enter the archive — they
//! only decide what to simulate, so a bad model costs sims, not
//! correctness ("refit-free re-rank").
//!
//! Determinism: candidate order is construction order (archive canonical
//! order, then RNG draw order), all scoring fans out through the
//! order-preserving [`par_map`], every sort key ends in a candidate
//! index, and the simulator is bit-identical across `ARCHDSE_BATCH` — so
//! one seed yields one frontier, byte-for-byte, for any
//! `ARCHDSE_THREADS` × `ARCHDSE_BATCH` setting.

use crate::frontier::{Frontier, RoundStats, FRONTIER_VERSION};
use crate::objective::{Constraints, Objective, ParseError};
use crate::pareto::{hypervolume, Archive, Insert, NORMALIZED_REFERENCE};
use dse_rng::Xoshiro256;
use dse_sim::{batch_width, CheckError, Metric, Metrics, SimOptions, SweepEngine};
use dse_space::{neighbors, sample_raw, Config, ConstantParams, PARAM_COUNT};
use dse_util::json::{FromJson, Json, JsonError, ToJson};
use dse_util::par::par_map;
use dse_workload::Trace;
use std::collections::HashSet;
use std::fmt;

/// The cheap oracle: per-metric point predictions.
///
/// Implementations must be deterministic — the same `(config, metric)`
/// must return the same bits on every call (the trained models are).
pub trait MetricPredictor: Sync {
    /// Predicted value of `metric` at `cfg`.
    fn predict(&self, cfg: &Config, metric: Metric) -> f64;

    /// Predicted values of `metric` at every config in `cfgs`, written
    /// to `out[..cfgs.len()]` in input order.
    ///
    /// Implementations backed by a batched forward pass override this;
    /// results must stay bit-identical to per-config
    /// [`MetricPredictor::predict`] — the explorer's determinism pin
    /// (frontier JSON byte-identity across thread counts) depends on it.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than `cfgs`.
    fn predict_batch(&self, cfgs: &[Config], metric: Metric, out: &mut [f64]) {
        assert!(out.len() >= cfgs.len(), "output buffer too short");
        for (o, cfg) in out.iter_mut().zip(cfgs) {
            *o = self.predict(cfg, metric);
        }
    }
}

/// The expensive oracle: ground-truth simulation of a batch.
pub trait GroundTruth: Sync {
    /// Simulates every configuration, returning metrics in input order.
    ///
    /// # Errors
    ///
    /// Propagates simulator invariant violations.
    fn simulate(&self, cfgs: &[Config]) -> Result<Vec<Metrics>, ExploreError>;
}

/// Failure of an explorer run.
#[derive(Debug, Clone)]
pub enum ExploreError {
    /// Invalid objective, constraints, or budget.
    Invalid(String),
    /// A simulator sanitizer violation (with the offending config).
    Check(Config, CheckError),
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::Invalid(m) => write!(f, "invalid explore request: {m}"),
            ExploreError::Check(cfg, e) => {
                write!(f, "simulation failed on config {cfg}: {e}")
            }
        }
    }
}

impl std::error::Error for ExploreError {}

impl From<ParseError> for ExploreError {
    fn from(e: ParseError) -> Self {
        ExploreError::Invalid(e.0)
    }
}

/// [`GroundTruth`] over the batched lockstep sweep engine: one shared
/// trace pass per `ARCHDSE_BATCH` lanes, ranges fanned through
/// [`par_map`] (`ARCHDSE_THREADS`), results in input order and
/// bit-identical for every width × thread setting.
pub struct SimOracle {
    trace: Trace,
    cons: ConstantParams,
    options: SimOptions,
}

impl SimOracle {
    /// An oracle simulating `trace` under `options`.
    pub fn new(trace: Trace, options: SimOptions) -> Self {
        Self {
            trace,
            cons: ConstantParams::standard(),
            options,
        }
    }

    /// The trace being simulated.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }
}

impl GroundTruth for SimOracle {
    fn simulate(&self, cfgs: &[Config]) -> Result<Vec<Metrics>, ExploreError> {
        if cfgs.is_empty() {
            return Ok(Vec::new());
        }
        let width = batch_width();
        let engine = SweepEngine::new(cfgs, &self.cons, &self.trace, self.options, width);
        let jobs: Vec<(usize, usize)> = (0..cfgs.len())
            .step_by(width)
            .map(|s| (s, (s + width).min(cfgs.len())))
            .collect();
        let rows = par_map(&jobs, |&(s, e)| engine.run_range(s..e));
        let mut out = Vec::with_capacity(cfgs.len());
        for (row, &(s, _)) in rows.into_iter().zip(jobs.iter()) {
            for (lane, r) in row.into_iter().enumerate() {
                match r {
                    Ok(rec) => out.push(dse_sim::record_metrics(&rec.result)),
                    Err(e) => return Err(ExploreError::Check(cfgs[s + lane], e)),
                }
            }
        }
        Ok(out)
    }
}

/// How much work an explorer run may spend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreBudget {
    /// Acquisition rounds.
    pub rounds: usize,
    /// Candidates scored by the predictor per round (open-space mode;
    /// in pool mode every unsimulated pool member is scored).
    pub candidates_per_round: usize,
    /// Configurations simulated (ground truth) per round.
    pub sims_per_round: usize,
    /// Archive capacity (hypervolume-contribution pruning beyond it).
    pub archive_cap: usize,
    /// Seed for candidate sampling.
    pub seed: u64,
}

impl Default for ExploreBudget {
    fn default() -> Self {
        Self {
            rounds: 8,
            candidates_per_round: 256,
            sims_per_round: 16,
            archive_cap: 64,
            seed: 0xE8,
        }
    }
}

impl ExploreBudget {
    /// A minimal budget for tests and smoke runs.
    pub fn tiny() -> Self {
        Self {
            rounds: 3,
            candidates_per_round: 48,
            sims_per_round: 6,
            archive_cap: 16,
            seed: 0xE8,
        }
    }

    /// Total ground-truth simulations the budget allows.
    pub fn max_sims(&self) -> usize {
        self.rounds * self.sims_per_round
    }

    /// Checks every field is usable.
    ///
    /// # Errors
    ///
    /// Rejects zero rounds/candidates/sims/capacity and budgets over
    /// 10,000 total sims (a frontier job is interactive, not a sweep).
    pub fn validate(&self) -> Result<(), ParseError> {
        if self.rounds == 0
            || self.candidates_per_round == 0
            || self.sims_per_round == 0
            || self.archive_cap == 0
        {
            return Err(ParseError("budget fields must all be positive".to_string()));
        }
        if self.max_sims() > 10_000 {
            return Err(ParseError(format!(
                "budget of {} sims exceeds the 10,000-sim job cap",
                self.max_sims()
            )));
        }
        Ok(())
    }
}

impl ToJson for ExploreBudget {
    fn to_json(&self) -> Json {
        Json::obj([
            ("rounds", self.rounds.to_json()),
            ("candidates_per_round", self.candidates_per_round.to_json()),
            ("sims_per_round", self.sims_per_round.to_json()),
            ("archive_cap", self.archive_cap.to_json()),
            ("seed", self.seed.to_json()),
        ])
    }
}

impl FromJson for ExploreBudget {
    /// Missing fields take their [`Default`] values, so a request body
    /// may specify only what it overrides. The result is validated.
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let d = Self::default();
        let get_usize = |key: &str, dflt: usize| -> Result<usize, JsonError> {
            match v.field(key) {
                Ok(x) => usize::from_json(x),
                Err(_) => Ok(dflt),
            }
        };
        let b = Self {
            rounds: get_usize("rounds", d.rounds)?,
            candidates_per_round: get_usize("candidates_per_round", d.candidates_per_round)?,
            sims_per_round: get_usize("sims_per_round", d.sims_per_round)?,
            archive_cap: get_usize("archive_cap", d.archive_cap)?,
            seed: match v.field("seed") {
                Ok(x) => u64::from_json(x)?,
                Err(_) => d.seed,
            },
        };
        b.validate().map_err(|e| JsonError::msg(e.0))?;
        Ok(b)
    }
}

/// Round-by-round progress handed to the [`Explorer::run_with`] callback.
pub struct RoundStatus<'a> {
    /// Rounds completed so far (1-based count; equals the last round
    /// index + 1).
    pub rounds_done: usize,
    /// Total rounds in the budget.
    pub rounds_total: usize,
    /// Snapshot of the frontier after this round (valid partial result).
    pub frontier: &'a Frontier,
}

/// Callback verdict: keep going or stop after this round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Proceed to the next round.
    Continue,
    /// Stop; the returned frontier is marked `cancelled`.
    Cancel,
}

/// Candidates scored per batched-forward chunk. Fixed (never derived
/// from the thread count) so chunking — and therefore every floating-
/// point result — is identical across `ARCHDSE_THREADS` settings.
const SCORE_CHUNK: usize = 64;

/// A configured explorer run (see the module docs for the loop).
pub struct Explorer<'a> {
    /// The cheap oracle guiding acquisition.
    pub predictor: &'a dyn MetricPredictor,
    /// The expensive oracle ground-truthing the picks.
    pub oracle: &'a dyn GroundTruth,
    /// Program name recorded in the frontier (both oracles must be
    /// evaluated on this program's workload).
    pub program: String,
    /// The minimized objective.
    pub objective: Objective,
    /// Search-space bounds (on top of design-space legality).
    pub constraints: Constraints,
    /// Work budget.
    pub budget: ExploreBudget,
    /// Optional finite candidate pool: when set, the explorer only ever
    /// considers these configurations (used to compare against an
    /// exhaustively simulated grid). `None` searches the open 13-D space.
    pub pool: Option<Vec<Config>>,
}

impl Explorer<'_> {
    /// Runs the full budget.
    ///
    /// # Errors
    ///
    /// Propagates invalid inputs and simulator violations.
    pub fn run(&self) -> Result<Frontier, ExploreError> {
        self.run_with(|_| Command::Continue)
    }

    /// Runs the loop, invoking `on_round` after every round with a
    /// frontier snapshot; the callback can cancel the run.
    ///
    /// # Errors
    ///
    /// Propagates invalid inputs and simulator violations.
    pub fn run_with(
        &self,
        mut on_round: impl FnMut(&RoundStatus<'_>) -> Command,
    ) -> Result<Frontier, ExploreError> {
        self.budget.validate()?;
        let dim = self.objective.dim();
        let metrics_needed = self.objective.metrics();
        let _span = dse_obs::span!(
            "explore.run",
            rounds = self.budget.rounds,
            sims = self.budget.max_sims()
        );

        let mut rng = Xoshiro256::seed_from(self.budget.seed);
        let mut archive = Archive::new(dim, self.budget.archive_cap);
        let mut simulated: HashSet<[usize; PARAM_COUNT]> = HashSet::new();
        let mut rounds: Vec<RoundStats> = Vec::new();
        let mut predictor_calls = 0u64;
        let mut sim_calls = 0u64;
        let mut cancelled = false;

        for round in 0..self.budget.rounds {
            let _round_span = dse_obs::span!("explore.round", round = round);
            let candidates = self.candidates(&archive, &simulated, &mut rng);
            if candidates.is_empty() {
                break; // pool exhausted (or constraints left nothing)
            }

            // Score the candidate pool through the batched forward in
            // fixed-size chunks: chunk boundaries depend only on the
            // candidate count (never the thread count) and `par_map` is
            // order-preserving, so the scored list is aligned with
            // `candidates` and byte-identical across ARCHDSE_THREADS.
            let needed = &metrics_needed;
            let predictor = self.predictor;
            let chunks: Vec<(usize, usize)> = (0..candidates.len())
                .step_by(SCORE_CHUNK)
                .map(|s| (s, (s + SCORE_CHUNK).min(candidates.len())))
                .collect();
            let scored_chunks: Vec<Vec<Vec<f64>>> = par_map(&chunks, |&(s, e)| {
                let cfgs = &candidates[s..e];
                let mut cols: [Vec<f64>; 4] = Default::default();
                for &m in needed {
                    let col = &mut cols[m as usize];
                    col.resize(cfgs.len(), 0.0);
                    predictor.predict_batch(cfgs, m, col);
                }
                (0..cfgs.len())
                    .map(|r| {
                        let mut by_metric = [0.0f64; 4];
                        for &m in needed {
                            by_metric[m as usize] = cols[m as usize][r];
                        }
                        self.objective.eval_predicted(&by_metric)
                    })
                    .collect()
            });
            let scored: Vec<Vec<f64>> = scored_chunks.into_iter().flatten().collect();
            predictor_calls += (candidates.len() * metrics_needed.len()) as u64;
            dse_obs::counter("explore_candidates_scored").add(candidates.len() as u64);

            let picks = acquire(&candidates, &scored, &archive, self.budget.sims_per_round);
            let metrics = self.oracle.simulate(&picks)?;
            sim_calls += picks.len() as u64;
            dse_obs::counter("explore_sims").add(picks.len() as u64);

            let mut added = 0usize;
            for (cfg, m) in picks.iter().zip(metrics.iter()) {
                simulated.insert(cfg.to_indices());
                if archive.insert(*cfg, self.objective.eval(m), round) == Insert::Added {
                    added += 1;
                }
            }

            let hv = archive.normalized_hypervolume();
            dse_obs::gauge("explore_hypervolume").set(hv);
            rounds.push(RoundStats {
                round,
                scored: candidates.len(),
                simulated: picks.len(),
                added,
                archive: archive.len(),
                hypervolume: hv,
            });

            let snapshot =
                self.assemble(&archive, rounds.clone(), predictor_calls, sim_calls, false);
            let status = RoundStatus {
                rounds_done: round + 1,
                rounds_total: self.budget.rounds,
                frontier: &snapshot,
            };
            if on_round(&status) == Command::Cancel {
                cancelled = true;
                break;
            }
        }

        Ok(self.assemble(&archive, rounds, predictor_calls, sim_calls, cancelled))
    }

    fn assemble(
        &self,
        archive: &Archive,
        rounds: Vec<RoundStats>,
        predictor_calls: u64,
        sim_calls: u64,
        cancelled: bool,
    ) -> Frontier {
        Frontier {
            version: FRONTIER_VERSION,
            program: self.program.clone(),
            objective: self.objective.clone(),
            constraints: self.constraints.clone(),
            budget: self.budget,
            points: archive.entries().to_vec(),
            rounds,
            predictor_calls,
            sim_calls,
            cancelled,
        }
    }

    /// Candidate generation for one round, in deterministic order:
    /// pool mode returns every unsimulated pool member; open mode takes
    /// one-step neighbours of the archive (exploitation) and fills the
    /// rest of the quota with fresh constrained global samples
    /// (exploration).
    fn candidates(
        &self,
        archive: &Archive,
        simulated: &HashSet<[usize; PARAM_COUNT]>,
        rng: &mut Xoshiro256,
    ) -> Vec<Config> {
        let mut out: Vec<Config> = Vec::new();
        let mut seen: HashSet<[usize; PARAM_COUNT]> = HashSet::new();
        let mut push = |cfg: Config, out: &mut Vec<Config>| {
            if self.constraints.allows(&cfg)
                && !simulated.contains(&cfg.to_indices())
                && seen.insert(cfg.to_indices())
            {
                out.push(cfg);
            }
        };
        if let Some(pool) = &self.pool {
            for cfg in pool {
                push(*cfg, &mut out);
            }
            return out;
        }
        let quota = self.budget.candidates_per_round;
        for entry in archive.entries() {
            if out.len() >= quota / 2 {
                break;
            }
            for n in neighbors(&entry.config) {
                push(n, &mut out);
            }
        }
        // Rejection-sample the rest. The attempt cap only matters under
        // pathologically tight constraints; a short round is preferable
        // to a stuck one.
        let mut attempts = 0usize;
        let max_attempts = 10_000 + 200 * quota;
        while out.len() < quota && attempts < max_attempts {
            attempts += 1;
            let cfg = sample_raw(rng);
            if cfg.is_legal() {
                push(cfg, &mut out);
            }
        }
        out
    }
}

/// Ranks candidates and returns the top `k` to simulate.
///
/// The first picks are the per-axis predicted minima (frontier extremes);
/// the rest follow the acquisition key: fewest archive members dominating
/// the prediction, largest predicted normalized hypervolume gain, best
/// scalarized (sum of normalized axes) value, candidate order.
fn acquire(candidates: &[Config], scored: &[Vec<f64>], archive: &Archive, k: usize) -> Vec<Config> {
    debug_assert_eq!(candidates.len(), scored.len());
    let n = candidates.len();
    if n == 0 {
        return Vec::new();
    }
    let dim = scored[0].len();

    // One shared normalization frame over the archive and all predictions,
    // so candidate gains are comparable.
    let mut lo = vec![f64::INFINITY; dim];
    let mut hi = vec![f64::NEG_INFINITY; dim];
    let archive_pts: Vec<&[f64]> = archive
        .entries()
        .iter()
        .map(|e| e.objectives.as_slice())
        .collect();
    for p in archive_pts
        .iter()
        .copied()
        .chain(scored.iter().map(Vec::as_slice))
    {
        for (a, &v) in p.iter().enumerate() {
            if v < lo[a] {
                lo[a] = v;
            }
            if v > hi[a] {
                hi[a] = v;
            }
        }
    }
    let norm = |p: &[f64]| -> Vec<f64> {
        p.iter()
            .enumerate()
            .map(|(a, &v)| {
                let span = hi[a] - lo[a];
                if span > 0.0 {
                    (v - lo[a]) / span
                } else {
                    0.0
                }
            })
            .collect()
    };
    let reference = vec![NORMALIZED_REFERENCE; dim];
    let archive_normed: Vec<Vec<f64>> = archive_pts.iter().map(|p| norm(p)).collect();
    let hv_base = hypervolume(&archive_normed, &reference);

    struct Key {
        dominated: usize,
        gain: f64,
        scalar: f64,
        idx: usize,
    }
    let keys: Vec<Key> = scored
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let sn = norm(s);
            let mut with = archive_normed.clone();
            with.push(sn.clone());
            Key {
                dominated: archive.dominating(s),
                gain: hypervolume(&with, &reference) - hv_base,
                scalar: sn.iter().sum(),
                idx: i,
            }
        })
        .collect();

    let mut picks: Vec<usize> = Vec::with_capacity(k);
    // Frontier extremes first: per-axis predicted argmin.
    for a in 0..dim {
        if picks.len() >= k {
            break;
        }
        let mut best = 0usize;
        for i in 1..n {
            if scored[i][a].total_cmp(&scored[best][a]) == std::cmp::Ordering::Less {
                best = i;
            }
        }
        if !picks.contains(&best) {
            picks.push(best);
        }
    }
    let mut rest: Vec<usize> = (0..n).filter(|i| !picks.contains(i)).collect();
    rest.sort_by(|&a, &b| {
        keys[a]
            .dominated
            .cmp(&keys[b].dominated)
            .then_with(|| keys[b].gain.total_cmp(&keys[a].gain))
            .then_with(|| keys[a].scalar.total_cmp(&keys[b].scalar))
            .then_with(|| keys[a].idx.cmp(&keys[b].idx))
    });
    picks.extend(rest.into_iter().take(k.saturating_sub(picks.len())));
    picks.into_iter().map(|i| candidates[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::distinct_configs;

    /// A predictor that reads a synthetic smooth function of the config —
    /// enough structure for acquisition to beat random picking.
    struct Toy;
    impl MetricPredictor for Toy {
        fn predict(&self, cfg: &Config, metric: Metric) -> f64 {
            toy_metrics(cfg).get(metric)
        }
    }

    /// A ground truth identical to the toy predictor (perfect model).
    struct ToyTruth;
    impl GroundTruth for ToyTruth {
        fn simulate(&self, cfgs: &[Config]) -> Result<Vec<Metrics>, ExploreError> {
            Ok(cfgs.iter().map(toy_metrics).collect())
        }
    }

    fn toy_metrics(cfg: &Config) -> Metrics {
        // Cycles depend on the core structures, energy mostly on the
        // memory hierarchy — the axes conflict but are not a single
        // 1-D curve, so the pool has a proper (strict-subset) front.
        let f = cfg.to_features();
        let core: f64 = f[..7].iter().sum::<f64>() / 7.0;
        let mem: f64 = f[7..].iter().sum::<f64>() / 6.0;
        let cycles = 1000.0 * (1.5 - core);
        let energy = 100.0 * (0.5 + 0.3 * core + mem);
        Metrics {
            cycles,
            energy,
            ed: cycles * energy,
            edd: cycles * cycles * energy,
        }
    }

    #[test]
    fn explorer_finds_the_pool_front() {
        let pool = distinct_configs(64);
        let objective = Objective::parse("cycles,energy").unwrap();
        // Exhaustive truth over the pool.
        let truth: Vec<Vec<f64>> = pool
            .iter()
            .map(|c| objective.eval(&toy_metrics(c)))
            .collect();
        let true_front: HashSet<[usize; PARAM_COUNT]> = crate::pareto::pareto_indices(&truth)
            .into_iter()
            .map(|i| pool[i].to_indices())
            .collect();
        assert!(
            true_front.len() < pool.len() / 2,
            "toy front degenerate: {} of {}",
            true_front.len(),
            pool.len()
        );
        let ex = Explorer {
            predictor: &Toy,
            oracle: &ToyTruth,
            program: "toy".to_string(),
            objective,
            constraints: Constraints::none(),
            budget: ExploreBudget {
                rounds: 4,
                candidates_per_round: 64,
                sims_per_round: 8,
                archive_cap: 64,
                seed: 7,
            },
            pool: Some(pool),
        };
        let f = ex.run().unwrap();
        // With a perfect predictor the front must be fully recovered
        // within half the exhaustive budget (32 sims over 64 points).
        let got: HashSet<[usize; PARAM_COUNT]> =
            f.points.iter().map(|p| p.config.to_indices()).collect();
        let hit = true_front.intersection(&got).count();
        assert_eq!(hit, true_front.len(), "missed part of the true front");
        assert!(f.sim_calls <= 32);
    }

    #[test]
    fn cancel_stops_after_one_round() {
        let ex = Explorer {
            predictor: &Toy,
            oracle: &ToyTruth,
            program: "toy".to_string(),
            objective: Objective::parse("cycles,energy").unwrap(),
            constraints: Constraints::none(),
            budget: ExploreBudget::tiny(),
            pool: Some(distinct_configs(32)),
        };
        let f = ex.run_with(|_| Command::Cancel).unwrap();
        assert!(f.cancelled);
        assert_eq!(f.rounds.len(), 1);
        assert!(!f.points.is_empty());
    }

    #[test]
    fn constraints_limit_the_search() {
        let pool = distinct_configs(64);
        let constraints = Constraints::parse("width<=4").unwrap();
        let ex = Explorer {
            predictor: &Toy,
            oracle: &ToyTruth,
            program: "toy".to_string(),
            objective: Objective::parse("cycles").unwrap(),
            constraints: constraints.clone(),
            budget: ExploreBudget::tiny(),
            pool: Some(pool),
        };
        let f = ex.run().unwrap();
        assert!(f.points.iter().all(|p| constraints.allows(&p.config)));
        // Scalar objective: the frontier is a single point.
        assert_eq!(f.points.len(), 1);
    }

    #[test]
    fn budget_validation_rejects_zero_and_huge() {
        let mut b = ExploreBudget::default();
        b.rounds = 0;
        assert!(b.validate().is_err());
        let b = ExploreBudget {
            rounds: 1000,
            sims_per_round: 100,
            ..ExploreBudget::default()
        };
        assert!(b.validate().is_err());
    }
}
