//! Pareto dominance, exact hypervolume, and the nondominated archive.
//!
//! All objectives are **minimized**. Every routine here is deterministic:
//! floating-point comparisons go through [`f64::total_cmp`], every sort is
//! total, and ties are broken by configuration indices, so the archive's
//! canonical order — and therefore the serialized frontier — is
//! bit-identical across thread counts and batch widths.

use crate::frontier::FrontierPoint;
use dse_space::Config;

/// Whether `a` Pareto-dominates `b` under minimization: `a` is no worse
/// on every axis and strictly better on at least one.
///
/// Two identical vectors do **not** dominate each other (no strict
/// improvement), so duplicates coexist on a front.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    assert_eq!(a.len(), b.len(), "objective vectors must share a length");
    let mut strict = false;
    for (&x, &y) in a.iter().zip(b.iter()) {
        if x > y {
            return false;
        }
        if x < y {
            strict = true;
        }
    }
    strict
}

/// Indices of the nondominated points of `points`, in input order.
///
/// Duplicate vectors are all kept (neither dominates the other).
pub fn pareto_indices(points: &[Vec<f64>]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| {
            !points
                .iter()
                .enumerate()
                .any(|(j, p)| j != i && dominates(p, &points[i]))
        })
        .collect()
}

/// Exact hypervolume dominated by `points` with respect to `reference`,
/// under minimization: the Lebesgue measure of the union of boxes
/// `[pᵢ, reference]`.
///
/// Points with any coordinate at or beyond the reference contribute
/// nothing and are ignored. Computed by recursive slicing on the last
/// objective — exponential in the worst case but exact and fast for the
/// archive sizes used here (≤ a few hundred points, ≤ 4 objectives).
///
/// # Panics
///
/// Panics if any point's dimension differs from the reference's.
pub fn hypervolume(points: &[Vec<f64>], reference: &[f64]) -> f64 {
    let d = reference.len();
    assert!(d >= 1, "reference must have at least one objective");
    for p in points {
        assert_eq!(p.len(), d, "point dimension must match the reference");
    }
    let clipped: Vec<&[f64]> = points
        .iter()
        .filter(|p| p.iter().zip(reference.iter()).all(|(&x, &r)| x < r))
        .map(|p| p.as_slice())
        .collect();
    hv_rec(&clipped, reference)
}

fn hv_rec(points: &[&[f64]], reference: &[f64]) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    let d = reference.len();
    if d == 1 {
        let best = points
            .iter()
            .map(|p| p[0])
            .fold(f64::INFINITY, |a, b| if b < a { b } else { a });
        return (reference[0] - best).max(0.0);
    }
    // Slice along the last objective: between consecutive distinct values
    // the attained (d-1)-front is constant, so each slab's volume is its
    // thickness times the recursive hypervolume of the points already
    // "active" at its lower edge.
    let mut zs: Vec<f64> = points.iter().map(|p| p[d - 1]).collect();
    zs.sort_by(f64::total_cmp);
    zs.dedup();
    let mut volume = 0.0;
    for (k, &z) in zs.iter().enumerate() {
        let upper = if k + 1 < zs.len() {
            zs[k + 1]
        } else {
            reference[d - 1]
        };
        let thickness = upper - z;
        if thickness <= 0.0 {
            continue;
        }
        let slab: Vec<&[f64]> = points
            .iter()
            .filter(|p| p[d - 1] <= z)
            .map(|p| &p[..d - 1])
            .collect();
        volume += thickness * hv_rec(&slab, &reference[..d - 1]);
    }
    volume
}

/// Reference-point coordinate used for normalized hypervolume: points are
/// scaled to `[0, 1]` per axis, the reference sits at 1.1 on every axis so
/// boundary points keep a nonzero contribution.
pub const NORMALIZED_REFERENCE: f64 = 1.1;

/// Normalizes each point to `[0, 1]` per axis over the set's own bounds.
/// A degenerate axis (all values equal) maps to 0.0.
pub fn normalize(points: &[Vec<f64>]) -> Vec<Vec<f64>> {
    if points.is_empty() {
        return Vec::new();
    }
    let d = points[0].len();
    let mut lo = vec![f64::INFINITY; d];
    let mut hi = vec![f64::NEG_INFINITY; d];
    for p in points {
        for (a, &v) in p.iter().enumerate() {
            if v < lo[a] {
                lo[a] = v;
            }
            if v > hi[a] {
                hi[a] = v;
            }
        }
    }
    points
        .iter()
        .map(|p| {
            p.iter()
                .enumerate()
                .map(|(a, &v)| {
                    let span = hi[a] - lo[a];
                    if span > 0.0 {
                        (v - lo[a]) / span
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect()
}

/// Outcome of an [`Archive::insert`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Insert {
    /// The point joined the archive (possibly evicting dominated members).
    Added,
    /// An existing member dominates the point; archive unchanged.
    Dominated,
    /// The exact configuration is already archived; archive unchanged.
    Duplicate,
    /// A non-finite objective value; archive unchanged.
    Rejected,
}

/// A bounded nondominated archive: the running Pareto front of every
/// ground-truth point the explorer has accepted.
///
/// Invariants, maintained by construction:
/// * no member dominates another;
/// * no two members share a configuration;
/// * at most `cap` members — overflow is resolved by evicting the member
///   with the smallest normalized hypervolume contribution (ties evict
///   the canonically last member);
/// * members are kept in canonical order (objectives lexicographically by
///   [`f64::total_cmp`], then configuration indices), so iteration order
///   is deterministic.
#[derive(Debug, Clone)]
pub struct Archive {
    dim: usize,
    cap: usize,
    entries: Vec<FrontierPoint>,
}

impl Archive {
    /// An empty archive for `dim` objectives holding at most `cap` points.
    ///
    /// # Panics
    ///
    /// Panics if `dim` or `cap` is zero.
    pub fn new(dim: usize, cap: usize) -> Self {
        assert!(dim >= 1, "need at least one objective");
        assert!(cap >= 1, "archive capacity must be positive");
        Self {
            dim,
            cap,
            entries: Vec::new(),
        }
    }

    /// Number of archived points.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the archive is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The archived points in canonical order.
    pub fn entries(&self) -> &[FrontierPoint] {
        &self.entries
    }

    /// Number of archived members that dominate `objectives`.
    pub fn dominating(&self, objectives: &[f64]) -> usize {
        self.entries
            .iter()
            .filter(|e| dominates(&e.objectives, objectives))
            .count()
    }

    /// Offers a ground-truth point to the archive.
    ///
    /// # Panics
    ///
    /// Panics if `objectives` has the wrong dimension.
    pub fn insert(&mut self, config: Config, objectives: Vec<f64>, round: usize) -> Insert {
        assert_eq!(objectives.len(), self.dim, "objective dimension mismatch");
        if objectives.iter().any(|v| !v.is_finite()) {
            return Insert::Rejected;
        }
        let indices = config.to_indices();
        if self
            .entries
            .iter()
            .any(|e| e.config.to_indices() == indices)
        {
            return Insert::Duplicate;
        }
        if self
            .entries
            .iter()
            .any(|e| dominates(&e.objectives, &objectives))
        {
            return Insert::Dominated;
        }
        self.entries
            .retain(|e| !dominates(&objectives, &e.objectives));
        self.entries.push(FrontierPoint {
            config,
            objectives,
            round,
        });
        self.canonicalize();
        self.prune();
        Insert::Added
    }

    fn canonicalize(&mut self) {
        self.entries.sort_by(|a, b| {
            for (x, y) in a.objectives.iter().zip(b.objectives.iter()) {
                match x.total_cmp(y) {
                    std::cmp::Ordering::Equal => continue,
                    o => return o,
                }
            }
            a.config.to_indices().cmp(&b.config.to_indices())
        });
    }

    fn prune(&mut self) {
        while self.entries.len() > self.cap {
            let contrib = self.contributions();
            // Per-axis minima are the frontier's extremes; losing one
            // shrinks the attainable range irrecoverably, so they are
            // protected (the canonically first minimum per axis).
            let mut protected = vec![false; self.entries.len()];
            for a in 0..self.dim {
                let mut best = 0usize;
                for (i, e) in self.entries.iter().enumerate().skip(1) {
                    if e.objectives[a].total_cmp(&self.entries[best].objectives[a])
                        == std::cmp::Ordering::Less
                    {
                        best = i;
                    }
                }
                protected[best] = true;
            }
            // Evict the smallest unprotected contributor; among ties the
            // canonically last one goes, so pruning is order-deterministic.
            // (If the cap is below the axis count everything is protected;
            // fall back to evicting among all.)
            let mut victim: Option<usize> = None;
            for (i, c) in contrib.iter().enumerate() {
                if protected[i] {
                    continue;
                }
                match victim {
                    Some(v) if c.total_cmp(&contrib[v]) == std::cmp::Ordering::Greater => {}
                    _ => victim = Some(i),
                }
            }
            let victim = victim.unwrap_or_else(|| {
                let mut v = 0;
                for (i, c) in contrib.iter().enumerate() {
                    if c.total_cmp(&contrib[v]) != std::cmp::Ordering::Greater {
                        v = i;
                    }
                }
                v
            });
            self.entries.remove(victim);
        }
    }

    /// Normalized hypervolume contribution of each member: total
    /// normalized hypervolume minus the hypervolume without that member.
    /// Duplicated objective vectors contribute zero each.
    pub fn contributions(&self) -> Vec<f64> {
        let points: Vec<Vec<f64>> = self.entries.iter().map(|e| e.objectives.clone()).collect();
        let normed = normalize(&points);
        let reference = vec![NORMALIZED_REFERENCE; self.dim];
        let total = hypervolume(&normed, &reference);
        (0..normed.len())
            .map(|i| {
                let rest: Vec<Vec<f64>> = normed
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, p)| p.clone())
                    .collect();
                total - hypervolume(&rest, &reference)
            })
            .collect()
    }

    /// Normalized hypervolume of the whole archive (bounds from the
    /// archive itself, reference at [`NORMALIZED_REFERENCE`] per axis).
    ///
    /// The normalization frame moves as the archive grows, so this is a
    /// *progress signal* for one run's round-over-round trajectory, not a
    /// quantity comparable across runs.
    pub fn normalized_hypervolume(&self) -> f64 {
        let points: Vec<Vec<f64>> = self.entries.iter().map(|e| e.objectives.clone()).collect();
        let normed = normalize(&points);
        hypervolume(&normed, &vec![NORMALIZED_REFERENCE; self.dim])
    }

    /// Consumes the archive into its canonical point list.
    pub fn into_points(self) -> Vec<FrontierPoint> {
        self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_is_strict_somewhere() {
        assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(dominates(&[1.0, 2.0], &[2.0, 2.0]));
        assert!(!dominates(&[1.0, 2.0], &[1.0, 2.0]));
        assert!(!dominates(&[1.0, 3.0], &[2.0, 2.0]));
    }

    #[test]
    fn hypervolume_2d_hand_case() {
        // Points (1,3), (2,2), (3,1) against reference (4,4). By
        // inclusion-exclusion over the three boxes: 3+4+3-2-1-2+1 = 6.
        let pts = vec![vec![1.0, 3.0], vec![2.0, 2.0], vec![3.0, 1.0]];
        let hv = hypervolume(&pts, &[4.0, 4.0]);
        assert!((hv - 6.0).abs() < 1e-12, "hv = {hv}");
    }

    #[test]
    fn hypervolume_ignores_points_beyond_reference() {
        let pts = vec![vec![1.0, 1.0], vec![5.0, 0.0]];
        let hv = hypervolume(&pts, &[2.0, 2.0]);
        assert!((hv - 1.0).abs() < 1e-12, "hv = {hv}");
    }

    #[test]
    fn archive_caps_by_contribution() {
        let mut a = Archive::new(2, 3);
        let mut cfgs = crate::test_support::distinct_configs(5);
        // A staircase front of 5 points; cap 3 must keep the extremes
        // (largest contributors) and drop interior points.
        let front = [[0.0, 4.0], [1.0, 3.0], [2.0, 2.0], [3.0, 1.0], [4.0, 0.0]];
        for (cfg, obj) in cfgs.drain(..).zip(front.iter()) {
            a.insert(cfg, obj.to_vec(), 0);
        }
        assert_eq!(a.len(), 3);
        let objs: Vec<&[f64]> = a
            .entries()
            .iter()
            .map(|e| e.objectives.as_slice())
            .collect();
        assert!(objs.contains(&&[0.0, 4.0][..]), "lost an extreme: {objs:?}");
        assert!(objs.contains(&&[4.0, 0.0][..]), "lost an extreme: {objs:?}");
    }
}
