//! The explorer's result type: a serializable Pareto frontier.
//!
//! A [`Frontier`] is the full record of one explorer run — the
//! ground-truth nondominated points in canonical order, per-round
//! statistics, and the honest cost ledger (predictor calls vs simulator
//! calls). Serialization is via the workspace JSON layer, whose `f64`
//! formatting is shortest-round-trip bit-exact, so a frontier serialized
//! under any `ARCHDSE_THREADS` / `ARCHDSE_BATCH` setting is byte-identical
//! (pinned by `tests/explore_determinism.rs`).

use crate::objective::{Constraints, Objective};
use crate::ExploreBudget;
use dse_space::Config;
use dse_util::json::{FromJson, Json, JsonError, ToJson};

/// Serialization format version (bump on incompatible change).
pub const FRONTIER_VERSION: u32 = 1;

/// One ground-truth point on (or formerly on) the frontier.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierPoint {
    /// The configuration.
    pub config: Config,
    /// Simulated objective values, one per objective axis.
    pub objectives: Vec<f64>,
    /// Acquisition round that simulated this point (0-based).
    pub round: usize,
}

impl ToJson for FrontierPoint {
    fn to_json(&self) -> Json {
        Json::obj([
            ("config", self.config.to_json()),
            ("objectives", self.objectives.to_json()),
            ("round", self.round.to_json()),
        ])
    }
}

impl FromJson for FrontierPoint {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            config: Config::from_json(v.field("config")?)?,
            objectives: Vec::from_json(v.field("objectives")?)?,
            round: usize::from_json(v.field("round")?)?,
        })
    }
}

/// Per-round accounting, in round order.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundStats {
    /// Round index (0-based).
    pub round: usize,
    /// Candidates scored by the predictor this round.
    pub scored: usize,
    /// Configurations simulated (ground truth) this round.
    pub simulated: usize,
    /// Simulated points the archive accepted this round.
    pub added: usize,
    /// Archive size after the round.
    pub archive: usize,
    /// Normalized archive hypervolume after the round (progress signal;
    /// the normalization frame is the archive's own bounds, so compare
    /// within a run, not across runs).
    pub hypervolume: f64,
}

impl ToJson for RoundStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("round", self.round.to_json()),
            ("scored", self.scored.to_json()),
            ("simulated", self.simulated.to_json()),
            ("added", self.added.to_json()),
            ("archive", self.archive.to_json()),
            ("hypervolume", self.hypervolume.to_json()),
        ])
    }
}

impl FromJson for RoundStats {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            round: usize::from_json(v.field("round")?)?,
            scored: usize::from_json(v.field("scored")?)?,
            simulated: usize::from_json(v.field("simulated")?)?,
            added: usize::from_json(v.field("added")?)?,
            archive: usize::from_json(v.field("archive")?)?,
            hypervolume: f64::from_json(v.field("hypervolume")?)?,
        })
    }
}

/// The result of one explorer run.
#[derive(Debug, Clone, PartialEq)]
pub struct Frontier {
    /// Format version ([`FRONTIER_VERSION`]).
    pub version: u32,
    /// Program the predictor and simulator were evaluated on.
    pub program: String,
    /// The minimized objective.
    pub objective: Objective,
    /// The active constraints (empty string if none).
    pub constraints: Constraints,
    /// The budget the run was launched with.
    pub budget: ExploreBudget,
    /// Ground-truth nondominated points, in the archive's canonical
    /// order (objectives lexicographic, then configuration indices).
    pub points: Vec<FrontierPoint>,
    /// Per-round statistics, in round order.
    pub rounds: Vec<RoundStats>,
    /// Total cheap-oracle (predictor) evaluations.
    pub predictor_calls: u64,
    /// Total expensive-oracle (simulator) runs. The whole point of the
    /// explorer is that this stays a small fraction of the space.
    pub sim_calls: u64,
    /// Whether the run was cancelled before exhausting its budget (the
    /// points are still a valid partial frontier).
    pub cancelled: bool,
}

impl Frontier {
    /// A fixed-width text table of the frontier, one row per point:
    /// objective values then the configuration.
    pub fn table(&self) -> String {
        let mut out = String::new();
        let headers: Vec<String> = self.objective.axes.iter().map(|a| a.to_string()).collect();
        out.push_str("round");
        for h in &headers {
            out.push_str(&format!("  {h:>14}"));
        }
        out.push_str("  config\n");
        for p in &self.points {
            out.push_str(&format!("{:>5}", p.round));
            for v in &p.objectives {
                out.push_str(&format!("  {v:>14.1}"));
            }
            out.push_str(&format!("  {}\n", p.config));
        }
        out
    }
}

impl ToJson for Frontier {
    fn to_json(&self) -> Json {
        Json::obj([
            ("version", self.version.to_json()),
            ("program", self.program.to_json()),
            ("objective", self.objective.to_json()),
            ("constraints", self.constraints.to_json()),
            ("budget", self.budget.to_json()),
            ("points", self.points.to_json()),
            ("rounds", self.rounds.to_json()),
            ("predictor_calls", self.predictor_calls.to_json()),
            ("sim_calls", self.sim_calls.to_json()),
            ("cancelled", self.cancelled.to_json()),
        ])
    }
}

impl FromJson for Frontier {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let version = u32::from_json(v.field("version")?)?;
        if version != FRONTIER_VERSION {
            return Err(JsonError::msg(format!(
                "unsupported frontier version {version} (expected {FRONTIER_VERSION})"
            )));
        }
        let f = Self {
            version,
            program: String::from_json(v.field("program")?)?,
            objective: Objective::from_json(v.field("objective")?)?,
            constraints: Constraints::from_json(v.field("constraints")?)?,
            budget: crate::ExploreBudget::from_json(v.field("budget")?)?,
            points: Vec::from_json(v.field("points")?)?,
            rounds: Vec::from_json(v.field("rounds")?)?,
            predictor_calls: u64::from_json(v.field("predictor_calls")?)?,
            sim_calls: u64::from_json(v.field("sim_calls")?)?,
            cancelled: bool::from_json(v.field("cancelled")?)?,
        };
        let dim = f.objective.dim();
        for p in &f.points {
            if p.objectives.len() != dim {
                return Err(JsonError::msg(format!(
                    "frontier point has {} objective values for a {dim}-axis objective",
                    p.objectives.len()
                )));
            }
        }
        Ok(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExploreBudget;

    fn sample() -> Frontier {
        Frontier {
            version: FRONTIER_VERSION,
            program: "gzip".to_string(),
            objective: Objective::parse("cycles,energy").unwrap(),
            constraints: Constraints::parse("rob<=96").unwrap(),
            budget: ExploreBudget::tiny(),
            points: vec![FrontierPoint {
                config: Config::baseline(),
                objectives: vec![12345.0, 67.25],
                round: 1,
            }],
            rounds: vec![RoundStats {
                round: 0,
                scored: 64,
                simulated: 8,
                added: 3,
                archive: 3,
                hypervolume: 0.75,
            }],
            predictor_calls: 64,
            sim_calls: 8,
            cancelled: false,
        }
    }

    #[test]
    fn frontier_round_trips_through_json() {
        let f = sample();
        let j = dse_util::json::to_string(&f);
        let back: Frontier = dse_util::json::from_str(&j).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn rejects_wrong_version_and_dimension() {
        let f = sample();
        let j = dse_util::json::to_string(&f);
        let bumped = j.replace("\"version\":1", "\"version\":9");
        assert!(dse_util::json::from_str::<Frontier>(&bumped).is_err());
        let chopped = j.replace("[12345,67.25]", "[12345]");
        assert!(dse_util::json::from_str::<Frontier>(&chopped).is_err());
    }

    #[test]
    fn table_lists_every_point() {
        let f = sample();
        let t = f.table();
        assert!(t.contains("cycles"));
        assert_eq!(t.lines().count(), 1 + f.points.len());
    }
}
