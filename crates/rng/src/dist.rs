//! Probability distributions layered over [`Xoshiro256`][crate::Xoshiro256].
//!
//! The synthetic workload generator uses these to shape instruction mixes,
//! dependency distances and memory address streams.

use crate::Xoshiro256;

/// Samples a standard normal deviate via the Box–Muller transform.
///
/// # Examples
///
/// ```
/// use dse_rng::{Xoshiro256, dist};
/// let mut rng = Xoshiro256::seed_from(1);
/// let z = dist::normal(&mut rng, 0.0, 1.0);
/// assert!(z.is_finite());
/// ```
pub fn normal(rng: &mut Xoshiro256, mean: f64, std_dev: f64) -> f64 {
    // Box–Muller; u1 is kept away from 0 so ln() is finite.
    let u1 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    let u1 = u1.max(f64::MIN_POSITIVE);
    let u2 = rng.next_f64();
    let r = (-2.0 * u1.ln()).sqrt();
    mean + std_dev * r * (std::f64::consts::TAU * u2).cos()
}

/// Samples a geometric distribution: number of failures before the first
/// success with success probability `p` (support `0, 1, 2, ...`).
///
/// # Panics
///
/// Panics if `p` is not in `(0, 1]`.
pub fn geometric(rng: &mut Xoshiro256, p: f64) -> u64 {
    assert!(p > 0.0 && p <= 1.0, "geometric p must be in (0, 1]");
    if p >= 1.0 {
        return 0;
    }
    let u = rng.next_f64().max(f64::MIN_POSITIVE);
    (u.ln() / (1.0 - p).ln()).floor() as u64
}

/// Samples an exponential deviate with the given rate parameter.
///
/// # Panics
///
/// Panics if `rate` is not strictly positive.
pub fn exponential(rng: &mut Xoshiro256, rate: f64) -> f64 {
    assert!(rate > 0.0, "exponential rate must be positive");
    let u = rng.next_f64().max(f64::MIN_POSITIVE);
    -u.ln() / rate
}

/// A discrete distribution over `0..weights.len()` sampled by cumulative
/// weight (linear scan; the tables used in this workspace are tiny).
///
/// # Examples
///
/// ```
/// use dse_rng::{Xoshiro256, dist::Categorical};
/// let cat = Categorical::new(&[1.0, 3.0]).unwrap();
/// let mut rng = Xoshiro256::seed_from(2);
/// let idx = cat.sample(&mut rng);
/// assert!(idx < 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Categorical {
    cumulative: Vec<f64>,
}

/// Error returned when a [`Categorical`] cannot be constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CategoricalError {
    /// The weight list was empty.
    Empty,
    /// A weight was negative or not finite.
    InvalidWeight,
    /// All weights were zero.
    ZeroTotal,
}

impl std::fmt::Display for CategoricalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Empty => write!(f, "weight list was empty"),
            Self::InvalidWeight => write!(f, "weight was negative or not finite"),
            Self::ZeroTotal => write!(f, "all weights were zero"),
        }
    }
}

impl std::error::Error for CategoricalError {}

impl Categorical {
    /// Builds a distribution from non-negative weights (not necessarily
    /// normalised).
    ///
    /// # Errors
    ///
    /// Returns an error if `weights` is empty, contains a negative or
    /// non-finite value, or sums to zero.
    pub fn new(weights: &[f64]) -> Result<Self, CategoricalError> {
        if weights.is_empty() {
            return Err(CategoricalError::Empty);
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(CategoricalError::InvalidWeight);
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(CategoricalError::ZeroTotal);
        }
        let mut acc = 0.0;
        let cumulative = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        Ok(Self { cumulative })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the distribution has zero categories (never true for a
    /// successfully constructed value).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draws a category index.
    pub fn sample(&self, rng: &mut Xoshiro256) -> usize {
        let u = rng.next_f64();
        // Last bucket always catches u ~ 1.0 regardless of rounding.
        self.cumulative
            .iter()
            .position(|&c| u < c)
            .unwrap_or(self.cumulative.len() - 1)
    }
}

/// A Zipf-like distribution over ranks `0..n` with exponent `s`,
/// sampled by inverse transform over a precomputed CDF.
///
/// Used to model skewed reuse of memory regions (hot working sets).
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cat: Categorical,
}

impl Zipf {
    /// Builds a Zipf distribution over `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative or non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s.is_finite() && s >= 0.0, "Zipf exponent must be >= 0");
        let weights: Vec<f64> = (1..=n).map(|k| (k as f64).powf(-s)).collect();
        Self {
            cat: Categorical::new(&weights).expect("zipf weights are valid"),
        }
    }

    /// Draws a rank in `0..n` (rank 0 is the most probable).
    pub fn sample(&self, rng: &mut Xoshiro256) -> usize {
        self.cat.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Xoshiro256 {
        Xoshiro256::seed_from(0xDEAD_BEEF)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut r, 2.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var - 9.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn geometric_mean_matches() {
        let mut r = rng();
        let p = 0.25;
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| geometric(&mut r, p) as f64).sum::<f64>() / n as f64;
        // E[failures before success] = (1-p)/p = 3.
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn geometric_p_one_is_zero() {
        let mut r = rng();
        assert_eq!(geometric(&mut r, 1.0), 0);
    }

    #[test]
    #[should_panic(expected = "geometric p")]
    fn geometric_invalid_p_panics() {
        geometric(&mut rng(), 0.0);
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng();
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut r, 2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn categorical_frequencies() {
        let cat = Categorical::new(&[1.0, 2.0, 7.0]).unwrap();
        let mut r = rng();
        let mut counts = [0usize; 3];
        let n = 100_000;
        for _ in 0..n {
            counts[cat.sample(&mut r)] += 1;
        }
        let f: Vec<f64> = counts.iter().map(|&c| c as f64 / n as f64).collect();
        assert!((f[0] - 0.1).abs() < 0.01);
        assert!((f[1] - 0.2).abs() < 0.01);
        assert!((f[2] - 0.7).abs() < 0.01);
    }

    #[test]
    fn categorical_rejects_bad_input() {
        assert_eq!(Categorical::new(&[]), Err(CategoricalError::Empty));
        assert_eq!(
            Categorical::new(&[1.0, -0.5]),
            Err(CategoricalError::InvalidWeight)
        );
        assert_eq!(
            Categorical::new(&[0.0, 0.0]),
            Err(CategoricalError::ZeroTotal)
        );
        assert_eq!(
            Categorical::new(&[f64::NAN]),
            Err(CategoricalError::InvalidWeight)
        );
    }

    #[test]
    fn zipf_rank_zero_most_frequent() {
        let z = Zipf::new(16, 1.0);
        let mut r = rng();
        let mut counts = [0usize; 16];
        for _ in 0..50_000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[5]);
        assert!(counts[0] > counts[15]);
    }

    #[test]
    fn zipf_exponent_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        let mut r = rng();
        let mut counts = [0usize; 4];
        let n = 80_000;
        for _ in 0..n {
            counts[z.sample(&mut r)] += 1;
        }
        for &c in &counts {
            let f = c as f64 / n as f64;
            assert!((f - 0.25).abs() < 0.01, "freq {f}");
        }
    }
}
