//! Deterministic pseudo-random number generation for the archdse workspace.
//!
//! Every stochastic component of the reproduction — synthetic trace
//! generation, design-space sampling, neural-network initialisation,
//! experiment repetition — draws from the generators in this crate so that
//! every experiment is bit-reproducible from an explicit seed, independent of
//! any external RNG crate's API or algorithm changes.
//!
//! The core generator is [`Xoshiro256`] (xoshiro256++), seeded through
//! [`SplitMix64`] as recommended by the algorithm's authors. Derived
//! distributions live in [`dist`].
//!
//! # Examples
//!
//! ```
//! use dse_rng::Xoshiro256;
//!
//! let mut rng = Xoshiro256::seed_from(42);
//! let x = rng.next_f64();          // uniform in [0, 1)
//! let k = rng.next_range(10);      // uniform in 0..10
//! assert!((0.0..1.0).contains(&x));
//! assert!(k < 10);
//! ```

#![warn(missing_docs)]

pub mod dist;

/// SplitMix64 generator, used to expand a single `u64` seed into the
/// 256-bit state of [`Xoshiro256`] and to derive independent child seeds.
///
/// # Examples
///
/// ```
/// use dse_rng::SplitMix64;
/// let mut sm = SplitMix64::new(7);
/// let a = sm.next_u64();
/// let b = sm.next_u64();
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a new generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ pseudo-random generator.
///
/// Fast, high-quality, 256-bit state; period 2^256 − 1. This is the only
/// generator used for experiment-visible randomness in the workspace.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator whose 256-bit state is expanded from `seed`
    /// via [`SplitMix64`].
    ///
    /// # Examples
    ///
    /// ```
    /// use dse_rng::Xoshiro256;
    /// let a = Xoshiro256::seed_from(1).next_u64();
    /// let b = Xoshiro256::seed_from(1).next_u64();
    /// assert_eq!(a, b); // deterministic
    /// ```
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        // The all-zero state is the single invalid state; SplitMix64 cannot
        // produce four consecutive zeros from any seed, but guard anyway.
        if s == [0, 0, 0, 0] {
            Self { s: [1, 2, 3, 4] }
        } else {
            Self { s }
        }
    }

    /// Derives an independent child generator; `stream` selects the child.
    ///
    /// Children with different `stream` values are statistically independent
    /// of each other and of `self` (each is re-seeded through SplitMix64
    /// from a combined word). The parent is not advanced.
    pub fn child(&self, stream: u64) -> Self {
        let mix = self.s[0]
            ^ self.s[1].rotate_left(17)
            ^ self.s[2].rotate_left(31)
            ^ self.s[3].rotate_left(47)
            ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        Self::seed_from(mix)
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns the next 32-bit output (upper half of a 64-bit draw).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `0..bound` using Lemire's unbiased method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_range bound must be positive");
        // Lemire's multiply-then-reject method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let threshold = bound.wrapping_neg() % bound;
            while l < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_index(&mut self, bound: usize) -> usize {
        self.next_range(bound as u64) as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `0..n` (uniformly, without
    /// replacement) in random order.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} items from {n}");
        // Floyd's algorithm keeps this O(k) for k << n.
        let mut chosen = std::collections::HashSet::with_capacity(k);
        let mut out = Vec::with_capacity(k);
        for j in (n - k)..n {
            let t = self.next_index(j + 1);
            let pick = if chosen.contains(&t) { j } else { t };
            chosen.insert(pick);
            out.push(pick);
        }
        self.shuffle(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference output for seed 1234567 from the public-domain
        // splitmix64.c reference implementation.
        let mut sm = SplitMix64::new(0);
        let first = sm.next_u64();
        assert_eq!(first, 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn xoshiro_is_deterministic() {
        let mut a = Xoshiro256::seed_from(99);
        let mut b = Xoshiro256::seed_from(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256::seed_from(1);
        let mut b = Xoshiro256::seed_from(2);
        let av: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn children_are_independent_streams() {
        let root = Xoshiro256::seed_from(7);
        let mut c0 = root.child(0);
        let mut c1 = root.child(1);
        assert_ne!(c0.next_u64(), c1.next_u64());
        // Parent unchanged by deriving children.
        let mut p1 = root.clone();
        let mut p2 = root.clone();
        assert_eq!(p1.next_u64(), p2.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Xoshiro256::seed_from(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut rng = Xoshiro256::seed_from(4);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn next_range_is_in_bounds_and_covers() {
        let mut rng = Xoshiro256::seed_from(5);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.next_range(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_range_zero_panics() {
        Xoshiro256::seed_from(0).next_range(0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256::seed_from(6);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut rng = Xoshiro256::seed_from(8);
        for _ in 0..100 {
            let s = rng.sample_indices(100, 32);
            assert_eq!(s.len(), 32);
            let set: std::collections::HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), 32);
            assert!(s.iter().all(|&i| i < 100));
        }
    }

    #[test]
    fn sample_indices_full_is_permutation() {
        let mut rng = Xoshiro256::seed_from(9);
        let mut s = rng.sample_indices(20, 20);
        s.sort_unstable();
        assert_eq!(s, (0..20).collect::<Vec<usize>>());
    }

    #[test]
    fn next_bool_respects_probability() {
        let mut rng = Xoshiro256::seed_from(10);
        let hits = (0..100_000).filter(|_| rng.next_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }
}
