//! Raw instruction-trace importer.
//!
//! # The trace format (v1)
//!
//! A compact line-based text format that external tools (Pin/DynamoRIO
//! tools, simulator dumps, hand-written microbenchmarks) can emit
//! without a serialisation library. The first non-blank line is the
//! header:
//!
//! ```text
//! #archdse-trace v1 name=<name> [seed=<u64>]
//! ```
//!
//! then one instruction per line, in program order:
//!
//! | line              | meaning                          |
//! |-------------------|----------------------------------|
//! | `A <pc>`          | integer ALU op                   |
//! | `M <pc>`          | integer multiply                 |
//! | `D <pc>`          | integer divide                   |
//! | `F <pc>`          | floating-point ALU op            |
//! | `G <pc>`          | floating-point multiply          |
//! | `H <pc>`          | floating-point divide            |
//! | `L <pc> <addr>`   | load                             |
//! | `S <pc> <addr>`   | store                            |
//! | `B <pc> T\|N`     | branch, taken / not-taken        |
//!
//! `<pc>` and `<addr>` are hexadecimal (optional `0x` prefix). Lines
//! starting with `#` after the header, and blank lines, are comments.
//!
//! # Fitting
//!
//! [`profile_from_trace`] distils the trace into a [`Profile`]
//! deterministically — same bytes, same profile:
//!
//! * **mix** — per-kind dynamic counts, expressed as percentages;
//! * **block size** — instructions per branch, clamped to `[2, 64]`;
//! * **code footprint** — unique PCs × 4 bytes;
//! * **branch classes** — per static branch, from its taken rate `r`:
//!   biased when `r ≥ 0.95` or `r ≤ 0.05` (bias = weighted mean of
//!   `max(r, 1−r)`), loop when `0.5 ≤ r < 0.95` (trip ≈ `1/(1−r)`),
//!   random otherwise; weighted by dynamic frequency. `br_pattern`
//!   stays 0 — patterns are not observable from taken bits alone;
//! * **data footprint** — unique 64-byte lines;
//! * **locality** — `w_stream` from the fraction of accesses within
//!   256 bytes *forward* of the previous access; the hot set is the
//!   smallest count-sorted line prefix covering 80 % of accesses,
//!   giving `hot_frac` and the hot/random weight split; `zipf_s` rises
//!   with the gap between coverage and footprint share (first-order
//!   skew estimate);
//! * **dependencies** — `dep_p`/`dep_decay` keep template defaults:
//!   v1 trace lines carry no register operands, so dependency shape is
//!   unobservable. Documented limitation, not silent behaviour.
//!
//! Input is streamed against [`MAX_TRACE_BYTES`]: an oversized or
//! unbounded source is rejected *at the cap*, never buffered whole.

use std::collections::BTreeMap;
use std::io::BufRead;

use dse_workload::{intern_name, Profile, Suite};

use crate::format::normalize_profile;
use crate::IngestError;

/// Required prefix of the trace header line.
pub const TRACE_MAGIC: &str = "#archdse-trace v1";

/// Hard cap on trace input size (64 MiB). Streaming rejection: the
/// reader is abandoned as soon as the cap is crossed.
pub const MAX_TRACE_BYTES: u64 = 64 << 20;

/// Cache-line granularity used for footprint and locality fitting.
const LINE_BYTES: u64 = 64;

/// Aggregated statistics of one parsed trace.
#[derive(Debug, Default)]
struct TraceStats {
    name: String,
    seed: Option<u64>,
    /// Dynamic counts: int alu/mul/div, fp alu/mul/div, load, store.
    kinds: [u64; 8],
    branches: u64,
    total: u64,
    unique_pcs: std::collections::HashSet<u64>,
    /// Per static-branch PC: (taken, total).
    branch_pcs: BTreeMap<u64, (u64, u64)>,
    /// Per 64-byte line: access count.
    lines: BTreeMap<u64, u64>,
    mem_accesses: u64,
    /// Accesses within (0, 256] bytes forward of the previous access.
    sequential: u64,
    prev_addr: Option<u64>,
}

fn parse_hex(tok: &str, what: &str, line_no: u64) -> Result<u64, IngestError> {
    let digits = tok.strip_prefix("0x").unwrap_or(tok);
    u64::from_str_radix(digits, 16).map_err(|_| {
        IngestError::Parse(format!(
            "trace line {line_no}: bad {what} `{tok}` (expected hex)"
        ))
    })
}

fn parse_header(line: &str, line_no: u64) -> Result<(String, Option<u64>), IngestError> {
    let rest = line.strip_prefix(TRACE_MAGIC).ok_or_else(|| {
        IngestError::Parse(format!(
            "trace line {line_no}: expected header `{TRACE_MAGIC} name=<name>`, found `{}`",
            line.trim_end()
        ))
    })?;
    let mut name = None;
    let mut seed = None;
    for tok in rest.split_ascii_whitespace() {
        if let Some(v) = tok.strip_prefix("name=") {
            name = Some(v.to_string());
        } else if let Some(v) = tok.strip_prefix("seed=") {
            seed = Some(v.parse::<u64>().map_err(|_| {
                IngestError::Parse(format!(
                    "trace line {line_no}: bad seed `{v}` (expected decimal u64)"
                ))
            })?);
        } else {
            return Err(IngestError::Parse(format!(
                "trace line {line_no}: unknown header token `{tok}`"
            )));
        }
    }
    let name = name.ok_or_else(|| {
        IngestError::Parse(format!("trace line {line_no}: header is missing name="))
    })?;
    if !valid_workload_name(&name) {
        return Err(IngestError::Parse(format!(
            "trace line {line_no}: name `{name}` must be 1-64 chars of [A-Za-z0-9._-] starting alphanumeric"
        )));
    }
    Ok((name, seed))
}

/// Name discipline shared by the trace header and the workload store:
/// names travel through CLI arguments, URLs and bare file names.
pub fn valid_workload_name(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    name.len() <= 64
        && first.is_ascii_alphanumeric()
        && chars.all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
}

impl TraceStats {
    fn record_mem(&mut self, addr: u64) {
        self.mem_accesses += 1;
        *self.lines.entry(addr / LINE_BYTES).or_insert(0) += 1;
        if let Some(prev) = self.prev_addr {
            if addr > prev && addr - prev <= 256 {
                self.sequential += 1;
            }
        }
        self.prev_addr = Some(addr);
    }

    fn record_line(&mut self, line: &str, line_no: u64) -> Result<(), IngestError> {
        let mut toks = line.split_ascii_whitespace();
        let op = toks.next().expect("caller skips blank lines");
        let pc_tok = toks.next().ok_or_else(|| {
            IngestError::Parse(format!("trace line {line_no}: missing pc after `{op}`"))
        })?;
        let pc = parse_hex(pc_tok, "pc", line_no)?;
        self.unique_pcs.insert(pc);
        self.total += 1;
        let kind_index = match op {
            "A" => Some(0),
            "M" => Some(1),
            "D" => Some(2),
            "F" => Some(3),
            "G" => Some(4),
            "H" => Some(5),
            "L" => Some(6),
            "S" => Some(7),
            "B" => None,
            other => {
                return Err(IngestError::Parse(format!(
                    "trace line {line_no}: unknown opcode `{other}`"
                )))
            }
        };
        match kind_index {
            Some(i @ (6 | 7)) => {
                self.kinds[i] += 1;
                let addr_tok = toks.next().ok_or_else(|| {
                    IngestError::Parse(format!(
                        "trace line {line_no}: missing address after `{op} {pc_tok}`"
                    ))
                })?;
                self.record_mem(parse_hex(addr_tok, "address", line_no)?);
            }
            Some(i) => self.kinds[i] += 1,
            None => {
                self.branches += 1;
                let outcome = toks.next().ok_or_else(|| {
                    IngestError::Parse(format!(
                        "trace line {line_no}: missing T|N after `B {pc_tok}`"
                    ))
                })?;
                let taken = match outcome {
                    "T" => 1,
                    "N" => 0,
                    other => {
                        return Err(IngestError::Parse(format!(
                            "trace line {line_no}: bad branch outcome `{other}` (expected T or N)"
                        )))
                    }
                };
                let e = self.branch_pcs.entry(pc).or_insert((0, 0));
                e.0 += taken;
                e.1 += 1;
            }
        }
        if let Some(extra) = toks.next() {
            return Err(IngestError::Parse(format!(
                "trace line {line_no}: trailing token `{extra}`"
            )));
        }
        Ok(())
    }
}

/// Parses and fits a trace from any buffered reader, enforcing
/// [`MAX_TRACE_BYTES`].
///
/// # Errors
///
/// [`IngestError::TooLarge`] past the cap, [`IngestError::Parse`] for
/// malformed lines (with line numbers), [`IngestError::Invalid`] for
/// structurally empty or unusable traces.
pub fn profile_from_trace<R: BufRead>(reader: R) -> Result<Profile, IngestError> {
    profile_from_trace_capped(reader, MAX_TRACE_BYTES)
}

/// Like [`profile_from_trace`] with an explicit byte cap (tests use a
/// small cap to prove streaming rejection without 64 MiB fixtures).
pub fn profile_from_trace_capped<R: BufRead>(reader: R, cap: u64) -> Result<Profile, IngestError> {
    // `take(cap + 1)` bounds memory even for a single enormous line:
    // if we ever consume more than `cap` bytes, the input is oversized.
    let mut limited = reader.take(cap + 1);
    let mut consumed: u64 = 0;
    let mut line_no: u64 = 0;
    let mut buf = String::new();
    let mut header: Option<(String, Option<u64>)> = None;
    let mut stats = TraceStats::default();
    loop {
        buf.clear();
        let n = limited
            .read_line(&mut buf)
            .map_err(|e| IngestError::Io(format!("reading trace: {e}")))? as u64;
        if n == 0 {
            break;
        }
        consumed += n;
        if consumed > cap {
            return Err(IngestError::TooLarge {
                bytes: consumed,
                limit: cap,
            });
        }
        line_no += 1;
        let line = buf.trim_end_matches(['\n', '\r']);
        if line.trim().is_empty() {
            continue;
        }
        if header.is_none() {
            header = Some(parse_header(line, line_no)?);
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        stats.record_line(line, line_no)?;
    }
    let (name, seed) = header.ok_or_else(|| {
        IngestError::Parse(format!("trace has no header line (`{TRACE_MAGIC} ...`)"))
    })?;
    stats.name = name;
    stats.seed = seed;
    fit_profile(stats)
}

/// Convenience wrapper over an in-memory trace.
pub fn profile_from_trace_str(text: &str) -> Result<Profile, IngestError> {
    profile_from_trace(text.as_bytes())
}

/// FNV-1a over the name: a stable fallback seed when the header omits
/// one, kept in the JSON-safe ≤ 2^53 range.
fn name_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h >> 11
}

fn fit_profile(stats: TraceStats) -> Result<Profile, IngestError> {
    if stats.total + stats.branches == 0 {
        return Err(IngestError::Invalid(
            "trace contains no instructions".to_string(),
        ));
    }
    let non_branch: u64 = stats.kinds.iter().sum();
    if non_branch == 0 {
        return Err(IngestError::Invalid(
            "trace contains only branches; the instruction mix would be empty".to_string(),
        ));
    }
    let pct = |c: u64| 100.0 * c as f64 / non_branch as f64;
    let [ia, im, id, fa, fm, fd, ld, st] = stats.kinds.map(pct);

    let block_size = if stats.branches == 0 {
        64.0
    } else {
        (stats.total as f64 / stats.branches as f64).clamp(2.0, 64.0)
    };
    let code_kb = ((stats.unique_pcs.len() as u64 * 4).div_ceil(1024).max(1)).min(4096) as u32;

    // Branch classes from per-PC taken rates, weighted dynamically.
    let mut w_biased = 0u64;
    let mut w_loop = 0u64;
    let mut w_random = 0u64;
    let mut bias_sum = 0.0;
    let mut trip_sum = 0.0;
    for (&_pc, &(taken, total)) in &stats.branch_pcs {
        let r = taken as f64 / total as f64;
        if !(0.05..=0.95).contains(&r) {
            w_biased += total;
            bias_sum += r.max(1.0 - r) * total as f64;
        } else if r >= 0.5 {
            w_loop += total;
            trip_sum += (1.0 / (1.0 - r)).clamp(1.0, 1000.0) * total as f64;
        } else {
            w_random += total;
        }
    }
    let bt = stats.branches;
    let (br_biased, br_loop, br_random) = if bt == 0 {
        (0.6, 0.25, 0.15)
    } else {
        (
            w_biased as f64 / bt as f64,
            w_loop as f64 / bt as f64,
            w_random as f64 / bt as f64,
        )
    };
    let bias_p = if w_biased > 0 {
        (bias_sum / w_biased as f64).clamp(0.5, 1.0)
    } else {
        0.97
    };
    let loop_mean = if w_loop > 0 {
        (trip_sum / w_loop as f64).max(1.0)
    } else {
        12.0
    };

    // Memory locality from the 64-byte line histogram.
    let template = Profile::template("fit", Suite::External, 0);
    let (data_kb, hot_frac, zipf_s, w_hot, w_stream, w_rand);
    if stats.mem_accesses == 0 {
        data_kb = 1;
        hot_frac = 1.0;
        zipf_s = 0.0;
        w_hot = 1.0;
        w_stream = 0.0;
        w_rand = 0.0;
    } else {
        let unique_lines = stats.lines.len() as u64;
        data_kb = ((unique_lines * LINE_BYTES).div_ceil(1024).max(1)).min(u32::MAX as u64) as u32;
        // Hot set: smallest count-sorted prefix covering 80 % of
        // accesses; ties broken by line address for determinism.
        let mut by_count: Vec<(u64, u64)> = stats.lines.iter().map(|(&l, &c)| (l, c)).collect();
        by_count.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let target = (stats.mem_accesses as f64 * 0.8).ceil() as u64;
        let mut covered = 0u64;
        let mut hot_lines = 0u64;
        for &(_, c) in &by_count {
            covered += c;
            hot_lines += 1;
            if covered >= target {
                break;
            }
        }
        let coverage = covered as f64 / stats.mem_accesses as f64;
        hot_frac = (hot_lines as f64 / unique_lines as f64).clamp(1e-6, 1.0);
        // Uniform access ⇒ coverage ≈ footprint share ⇒ no skew; the
        // wider the gap, the more Zipf-like the distribution.
        zipf_s = (2.0 * (coverage - hot_frac).max(0.0)).clamp(0.0, 2.5);
        let seq = stats.sequential as f64 / stats.mem_accesses as f64;
        w_stream = seq;
        w_hot = coverage * (1.0 - seq);
        w_rand = (1.0 - coverage) * (1.0 - seq);
    }

    let seed = stats.seed.unwrap_or_else(|| name_seed(&stats.name));
    let mut p = Profile {
        name: intern_name(&stats.name),
        suite: Suite::External,
        seed,
        w_int_alu: ia,
        w_int_mul: im,
        w_int_div: id,
        w_fp_alu: fa,
        w_fp_mul: fm,
        w_fp_div: fd,
        w_load: ld,
        w_store: st,
        block_size,
        code_kb,
        br_biased,
        br_loop,
        br_pattern: 0.0,
        br_random,
        bias_p,
        loop_mean,
        // Not observable from v1 trace lines (no register operands);
        // documented template defaults.
        dep_p: template.dep_p,
        dep_decay: template.dep_decay,
        data_kb,
        hot_frac,
        zipf_s,
        w_hot,
        w_stream,
        w_rand,
        chase_frac: 0.0,
    };
    normalize_profile(&mut p);
    p.validate()
        .map_err(|e| IngestError::Invalid(e.to_string()))?;
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header(name: &str) -> String {
        format!("#archdse-trace v1 name={name} seed=99\n")
    }

    /// A small but representative trace: a 4-instruction loop body
    /// (load, two ALU ops, loop branch) iterated with a streaming
    /// pointer, plus a biased exit branch.
    fn looping_trace() -> String {
        let mut t = header("loopy");
        t.push_str("# comment line\n\n");
        for i in 0..100u64 {
            t.push_str(&format!("L 400 {:x}\n", 0x1000 + i * 8));
            t.push_str("A 404\n");
            t.push_str("A 408\n");
            // Loop back-edge: taken 9 of 10 times.
            let outcome = if i % 10 == 9 { "N" } else { "T" };
            t.push_str(&format!("B 40c {outcome}\n"));
            // Strongly biased guard.
            t.push_str(&format!("S 410 {:x}\n", 0x1000 + i * 8 + 4));
            t.push_str(&format!("B 414 {}\n", if i == 50 { "T" } else { "N" }));
        }
        t
    }

    #[test]
    fn fits_mix_blocks_and_branch_classes_from_a_loop() {
        let p = profile_from_trace_str(&looping_trace()).unwrap();
        assert_eq!(p.name, "loopy");
        assert_eq!(p.seed, 99);
        assert_eq!(p.suite, Suite::External);
        // 100 loads, 200 alu, 100 stores → 25 / 50 / 25 percent.
        assert!((p.w_load - 25.0).abs() < 1e-9, "{}", p.w_load);
        assert!((p.w_int_alu - 50.0).abs() < 1e-9);
        assert!((p.w_store - 25.0).abs() < 1e-9);
        assert_eq!(p.w_fp_alu, 0.0);
        // 600 instructions, 200 branches → block size 3.
        assert!((p.block_size - 3.0).abs() < 1e-9, "{}", p.block_size);
        // One loop branch (rate 0.9), one biased branch (rate 0.01);
        // equal dynamic weight.
        assert!((p.br_loop - 0.5).abs() < 1e-9, "{}", p.br_loop);
        assert!((p.br_biased - 0.5).abs() < 1e-9, "{}", p.br_biased);
        assert_eq!(p.br_pattern, 0.0);
        assert!((p.loop_mean - 10.0).abs() < 1e-6, "{}", p.loop_mean);
        assert!(p.bias_p > 0.98);
        // Streaming loads dominate the access pattern.
        assert!(p.w_stream > 0.3, "{}", p.w_stream);
    }

    #[test]
    fn fitting_is_deterministic() {
        let t = looping_trace();
        assert_eq!(
            profile_from_trace_str(&t).unwrap(),
            profile_from_trace_str(&t).unwrap()
        );
    }

    #[test]
    fn zero_instruction_trace_is_rejected() {
        let err = profile_from_trace_str(&header("empty")).unwrap_err();
        assert!(matches!(err, IngestError::Invalid(_)), "{err}");
        assert!(err.to_string().contains("no instructions"));
    }

    #[test]
    fn missing_header_is_rejected() {
        let err = profile_from_trace_str("A 400\n").unwrap_err();
        assert!(err.to_string().contains("expected header"), "{err}");
        let err = profile_from_trace_str("").unwrap_err();
        assert!(err.to_string().contains("no header"), "{err}");
    }

    #[test]
    fn branch_only_trace_is_rejected() {
        let t = format!("{}B 400 T\nB 400 N\n", header("br"));
        let err = profile_from_trace_str(&t).unwrap_err();
        assert!(err.to_string().contains("only branches"), "{err}");
    }

    #[test]
    fn malformed_lines_carry_line_numbers() {
        let t = format!("{}A 400\nX 404\n", header("bad"));
        let err = profile_from_trace_str(&t).unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
        assert!(err.to_string().contains("unknown opcode `X`"), "{err}");

        let t = format!("{}L zz 100\n", header("bad2"));
        let err = profile_from_trace_str(&t).unwrap_err();
        assert!(err.to_string().contains("bad pc `zz`"), "{err}");

        let t = format!("{}B 400 T extra\n", header("bad3"));
        let err = profile_from_trace_str(&t).unwrap_err();
        assert!(err.to_string().contains("trailing token `extra`"), "{err}");
    }

    #[test]
    fn oversized_input_is_rejected_at_the_cap_without_buffering() {
        // An endless reader: rejection must come from the cap, not OOM.
        let endless = std::io::BufReader::new(std::io::repeat(b'A'));
        let err = profile_from_trace_capped(endless, 4096).unwrap_err();
        assert!(
            matches!(err, IngestError::TooLarge { limit: 4096, .. }),
            "{err}"
        );
    }

    #[test]
    fn unknown_header_token_is_rejected() {
        let err = profile_from_trace_str("#archdse-trace v1 name=x evil=1\nA 400\n").unwrap_err();
        assert!(err.to_string().contains("unknown header token"), "{err}");
    }

    #[test]
    fn invalid_names_are_rejected() {
        for bad in ["../evil", "a/b", "", "-lead", &"x".repeat(65)] {
            let t = format!("#archdse-trace v1 name={bad}\nA 400\n");
            assert!(
                profile_from_trace_str(&t).is_err(),
                "name `{bad}` should be rejected"
            );
        }
    }

    #[test]
    fn fitted_profiles_pass_validation_and_round_trip() {
        let p = profile_from_trace_str(&looping_trace()).unwrap();
        p.validate().unwrap();
        let text = crate::format::export_profile(&p);
        assert_eq!(crate::format::import_profile(&text).unwrap(), p);
        assert_eq!(
            crate::format::export_profile(&crate::format::import_profile(&text).unwrap()),
            text
        );
    }
}
