//! Workload ingestion: bringing *external* programs into the DSE loop.
//!
//! Every other crate in this workspace consumes the 45 built-in profiles
//! from `dse-workload`. This crate opens the pipeline to workloads the
//! repository has never seen, through four doors:
//!
//! * [`format`] — a versioned JSON **interchange format** for statistical
//!   profiles, with strict validation (unknown fields rejected with key
//!   paths and byte offsets) and a deterministic ε-repair normalization
//!   pass, so `export → import → export` is byte-identical.
//! * [`import`] — a compact line-based **raw instruction-trace format**
//!   plus a deterministic fitter that distils a trace into a profile
//!   (mix, branch classes, footprints, locality), so real measurements
//!   can be replayed through the 10 M-instruction protocol.
//! * [`synth`] — a seeded **profile-synthesis fuzzer** spanning the full
//!   legal envelope of [`dse_workload::Profile::validate`], used as an
//!   adversarial "suite" in cross-suite generalization studies.
//! * [`store`] — a directory-backed **workload store** mirroring the
//!   model registry's manifest/hot-reload/path-safety discipline, so
//!   imported suites survive restarts and serve over HTTP.
//!
//! The crate depends only on `dse-util`, `dse-rng` and `dse-workload`;
//! simulation and serving layers sit above it.

#![warn(missing_docs)]

pub mod format;
pub mod import;
pub mod store;
pub mod synth;

pub use format::{export_profile, import_profile, normalize_profile, FORMAT_VERSION};
pub use import::{profile_from_trace, profile_from_trace_str, MAX_TRACE_BYTES};
pub use store::WorkloadStore;
pub use synth::{synth_profile, synth_profiles};

/// Error type shared by all ingestion surfaces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// Filesystem failure (message includes the path).
    Io(String),
    /// Malformed input: JSON syntax, unknown/missing fields, bad trace
    /// lines. The message carries key paths, byte offsets or line
    /// numbers where available.
    Parse(String),
    /// Structurally well-formed input whose values fail
    /// [`dse_workload::Profile::validate`] even after ε-repair.
    Invalid(String),
    /// A workload with this name already exists (in the store or among
    /// the built-in benchmarks).
    Duplicate(String),
    /// Input exceeds the hard size cap; rejected without buffering the
    /// remainder.
    TooLarge {
        /// Bytes seen before giving up (at least `limit + 1`).
        bytes: u64,
        /// The cap that was exceeded.
        limit: u64,
    },
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Io(m) => write!(f, "io error: {m}"),
            IngestError::Parse(m) => write!(f, "parse error: {m}"),
            IngestError::Invalid(m) => write!(f, "invalid workload: {m}"),
            IngestError::Duplicate(name) => {
                write!(f, "duplicate workload name `{name}`")
            }
            IngestError::TooLarge { bytes, limit } => write!(
                f,
                "input too large: {bytes}+ bytes exceeds the {limit}-byte cap"
            ),
        }
    }
}

impl std::error::Error for IngestError {}

impl IngestError {
    /// Wraps an I/O error with the path it occurred on.
    pub(crate) fn io(path: &std::path::Path, e: std::io::Error) -> Self {
        IngestError::Io(format!("{}: {e}", path.display()))
    }
}
