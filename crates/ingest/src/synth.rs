//! Seeded profile-synthesis fuzzer.
//!
//! Generates randomized-but-valid [`Profile`]s spanning the *entire*
//! legal envelope of [`Profile::validate`] — far wider than the 45
//! hand-tuned benchmarks, which cluster in realistic corners. The
//! synthetic population stresses the predictor where training data is
//! thin: extreme instruction mixes, near-degenerate branch populations,
//! pathological footprints, heavy pointer chasing.
//!
//! Generation is a pure function of `(seed, index)`: profile `i` draws
//! from `Xoshiro256::seed_from(seed).child(i)`, so suites are stable
//! under reordering, subsetting and re-runs — a pinned-seed golden test
//! guards against silent drift.

use dse_rng::Xoshiro256;
use dse_workload::{intern_name, Profile, Suite};

use crate::format::normalize_profile;

/// Draws one synthetic profile, named `synth-<seed>-<index>`, in suite
/// [`Suite::Synthetic`]. Always valid; deterministic per `(seed, index)`.
pub fn synth_profile(seed: u64, index: u64) -> Profile {
    let mut rng = Xoshiro256::seed_from(seed).child(index);
    let mut uni = |lo: f64, hi: f64| lo + rng.next_f64() * (hi - lo);

    // Instruction mix: integer ALU always present (keeps the sum
    // positive); FP units flip between negligible and heavy so both
    // int- and fp-dominated programs appear.
    let w_int_alu = uni(5.0, 60.0);
    let w_int_mul = uni(0.0, 6.0);
    let w_int_div = uni(0.0, 1.5);
    let fp_heavy = uni(0.0, 1.0) < 0.5;
    let fp_scale = if fp_heavy { 1.0 } else { 0.05 };
    let w_fp_alu = uni(0.0, 30.0) * fp_scale;
    let w_fp_mul = uni(0.0, 12.0) * fp_scale;
    let w_fp_div = uni(0.0, 2.0) * fp_scale;
    let w_load = uni(4.0, 36.0);
    let w_store = uni(1.0, 20.0);

    // Control flow. Squaring biases toward small blocks (branchy code),
    // where the predictor parameters matter most.
    let r = uni(0.0, 1.0);
    let block_size = 2.0 + 62.0 * r * r;
    let code_kb = (4u32 << (uni(0.0, 1.0) * 9.0) as u32).min(2048);

    // Branch-class fractions: a normalized exponential draw scaled so
    // the four classes sum to at most 1 (the remainder is treated as
    // random by the generator).
    let mut exp4 = [0.0f64; 4];
    for e in &mut exp4 {
        *e = (-((1.0 - uni(0.0, 1.0)).ln())).max(1e-9);
    }
    let esum: f64 = exp4.iter().sum();
    let coverage = uni(0.85, 1.0);
    let [br_biased, br_loop, br_pattern, br_random] = exp4.map(|e| coverage * e / esum);

    let bias_p = uni(0.80, 0.995);
    let loop_mean = uni(2.0, 200.0);
    let dep_p = uni(0.20, 0.95);
    let dep_decay = uni(0.02, 0.60);

    // Data side: footprint log-uniform over 16 KB .. ~32 MB with jitter,
    // locality from a fresh exponential triple.
    let data_kb = ((16u64 << (uni(0.0, 1.0) * 11.0) as u64) as f64 * uni(1.0, 1.9)) as u32;
    let hot_frac = uni(0.02, 0.60);
    let zipf_s = uni(0.0, 2.5);
    let mut exp3 = [0.0f64; 3];
    for e in &mut exp3 {
        *e = (-((1.0 - uni(0.0, 1.0)).ln())).max(1e-9);
    }
    let msum: f64 = exp3.iter().sum();
    let [w_hot, w_stream, w_rand] = exp3.map(|e| e / msum);
    let chase_frac = uni(0.0, 0.40);

    let profile_seed = rng.next_u64() >> 11; // ≤ 2^53, JSON-safe
    let mut p = Profile {
        name: intern_name(&format!("synth-{seed}-{index}")),
        suite: Suite::Synthetic,
        seed: profile_seed,
        w_int_alu,
        w_int_mul,
        w_int_div,
        w_fp_alu,
        w_fp_mul,
        w_fp_div,
        w_load,
        w_store,
        block_size,
        code_kb,
        br_biased,
        br_loop,
        br_pattern,
        br_random,
        bias_p,
        loop_mean,
        dep_p,
        dep_decay,
        data_kb,
        hot_frac,
        zipf_s,
        w_hot,
        w_stream,
        w_rand,
        chase_frac,
    };
    normalize_profile(&mut p);
    p.validate()
        .expect("fuzzer envelope must stay inside Profile::validate");
    p
}

/// Draws `count` synthetic profiles for `seed` (indices `0..count`).
pub fn synth_profiles(seed: u64, count: usize) -> Vec<Profile> {
    (0..count as u64).map(|i| synth_profile(seed, i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{export_profile, import_profile};
    use std::collections::HashSet;

    #[test]
    fn every_profile_in_a_large_population_validates() {
        for p in synth_profiles(0xF422, 200) {
            p.validate().unwrap();
        }
    }

    #[test]
    fn generation_is_deterministic_and_index_stable() {
        let all = synth_profiles(42, 16);
        let again = synth_profiles(42, 16);
        assert_eq!(all, again);
        // Index-stable: profile 7 of a 16-suite equals a direct draw.
        assert_eq!(all[7], synth_profile(42, 7));
    }

    #[test]
    fn names_are_unique_and_suite_is_synthetic() {
        let all = synth_profiles(9, 50);
        let names: HashSet<_> = all.iter().map(|p| p.name).collect();
        assert_eq!(names.len(), all.len());
        assert!(all.iter().all(|p| p.suite == Suite::Synthetic));
    }

    #[test]
    fn different_seeds_diverge() {
        assert_ne!(synth_profile(1, 0).w_int_alu, synth_profile(2, 0).w_int_alu);
    }

    #[test]
    fn synthetic_profiles_round_trip_through_the_interchange_format() {
        for p in synth_profiles(7, 20) {
            let text = export_profile(&p);
            assert_eq!(import_profile(&text).unwrap(), p, "{}", p.name);
            assert_eq!(export_profile(&import_profile(&text).unwrap()), text);
        }
    }

    #[test]
    fn pinned_seed_golden_profile() {
        // Guards the generator against silent drift: any change to the
        // draw order or ranges breaks stored experiment provenance.
        let p = synth_profile(7, 0);
        assert_eq!(p.name, "synth-7-0");
        let golden = export_profile(&p);
        let reparsed = import_profile(&golden).unwrap();
        assert_eq!(reparsed, p);
        // Pin a handful of scalar draws exactly.
        insta_like(&golden);
    }

    /// Compares against the pinned export; regenerate by running the
    /// test and copying the printed document when a deliberate format
    /// or generator change lands.
    fn insta_like(golden: &str) {
        let pinned = crate::synth::tests::PINNED_SYNTH_7_0;
        assert_eq!(golden, pinned, "golden synth profile drifted:\n{golden}");
    }

    pub(crate) const PINNED_SYNTH_7_0: &str = concat!(
        r#"{"version":1,"kind":"profile","profile":{"name":"synth-7-0","suite":"Synthetic","seed":4073559870827915,"w_int_alu":12.986506623539228,"w_int_mul":1.3171152175293628,"w_int_div":1.48682008307382,"w_fp_alu":0.5521652492335722,"w_fp_mul":0.35949477947133157,"w_fp_div":0.033690118183714826,"w_load":7.335283689580603,"w_store":8.834071473813346,"block_size":25.05609056490537,"code_kb":512,"br_biased":0.2944883377718887,"br_loop":0.2531765575787789,"br_pattern":0.06968435967230098,"br_random":0.3114179203026151,"bias_p":0.8888062091933429,"loop_mean":115.68841665754617,"dep_p":0.6992291193790565,"dep_decay":0.15822271743649802,"data_kb":54,"hot_frac":0.4954977523689471,"zipf_s":1.324777052903277,"w_hot":0.8360467230555536,"w_stream":0.01800657956150867,"w_rand":0.14594669738293767,"chase_frac":0.012691328435640248}}"#,
        "\n"
    );
}
