//! Directory-backed workload store.
//!
//! Mirrors the model registry's discipline (`dse-serve::registry`):
//! a manifest names the member files, file names must be *bare* (path
//! separators and `..` rejected — the manifest cannot reach outside its
//! directory), loading builds a complete fresh state before swapping,
//! and a failed [`WorkloadStore::reload`] keeps the previous state
//! intact. Member files are interchange documents
//! ([`crate::format::export_profile`]), so a store directory is just a
//! folder of importable profiles plus `manifest.json`:
//!
//! ```json
//! {"version":1,"workloads":["workload-foo.json","workload-bar.json"]}
//! ```
//!
//! Names are globally unique: an [`WorkloadStore::add`] that collides
//! with a stored workload *or* one of the 45 built-in benchmarks is
//! rejected — imported programs extend the benchmark namespace, they
//! never shadow it.

use std::path::{Path, PathBuf};
use std::sync::RwLock;

use dse_util::json::{self, Json, ToJson};
use dse_workload::Profile;

use crate::format::{export_profile, import_profile};
use crate::import::valid_workload_name;
use crate::IngestError;

/// Store layout version accepted and written by this build.
pub const STORE_VERSION: u64 = 1;

/// Manifest file name inside a store directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// A hot-reloadable collection of imported workload profiles.
#[derive(Debug)]
pub struct WorkloadStore {
    dir: PathBuf,
    inner: RwLock<Vec<Profile>>,
}

impl WorkloadStore {
    /// Opens a store directory, creating it (with an empty manifest) if
    /// it does not exist yet.
    ///
    /// # Errors
    ///
    /// I/O failures, a malformed manifest, or any member file that
    /// fails strict import.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, IngestError> {
        let dir = dir.into();
        if !dir.join(MANIFEST_FILE).exists() {
            std::fs::create_dir_all(&dir).map_err(|e| IngestError::io(&dir, e))?;
            write_manifest(&dir, &[])?;
        }
        let profiles = load_dir(&dir)?;
        Ok(WorkloadStore {
            dir,
            inner: RwLock::new(profiles),
        })
    }

    /// The directory this store persists to.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Re-reads the directory. On success the new state replaces the
    /// old atomically (under the write lock) and the workload count is
    /// returned; on failure the previous state is kept.
    ///
    /// # Errors
    ///
    /// Same conditions as [`WorkloadStore::open`]; the store still
    /// serves the pre-reload state afterwards.
    pub fn reload(&self) -> Result<usize, IngestError> {
        let fresh = load_dir(&self.dir)?;
        let n = fresh.len();
        *self.inner.write().unwrap() = fresh;
        Ok(n)
    }

    /// Snapshot of all stored profiles, in manifest order.
    pub fn profiles(&self) -> Vec<Profile> {
        self.inner.read().unwrap().clone()
    }

    /// Looks up a stored profile by exact name.
    pub fn find(&self, name: &str) -> Option<Profile> {
        self.inner
            .read()
            .unwrap()
            .iter()
            .find(|p| p.name == name)
            .cloned()
    }

    /// Number of stored workloads.
    pub fn len(&self) -> usize {
        self.inner.read().unwrap().len()
    }

    /// Whether the store holds no workloads.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Persists a new workload: writes `workload-<slug>.json`, rewrites
    /// the manifest, and publishes the profile to readers.
    ///
    /// # Errors
    ///
    /// [`IngestError::Duplicate`] when the name (or its file slug)
    /// collides with a stored workload or a built-in benchmark;
    /// [`IngestError::Invalid`] for invalid names or profiles;
    /// [`IngestError::Io`] on write failure.
    pub fn add(&self, profile: &Profile) -> Result<(), IngestError> {
        if !valid_workload_name(profile.name) {
            return Err(IngestError::Invalid(format!(
                "workload name `{}` must be 1-64 chars of [A-Za-z0-9._-] starting alphanumeric",
                profile.name
            )));
        }
        profile
            .validate()
            .map_err(|e| IngestError::Invalid(e.to_string()))?;
        if dse_workload::suites::all_benchmarks()
            .iter()
            .any(|b| b.name == profile.name)
        {
            return Err(IngestError::Duplicate(profile.name.to_string()));
        }
        let file = file_name(profile.name);
        let mut inner = self.inner.write().unwrap();
        if inner
            .iter()
            .any(|p| p.name == profile.name || file_name(p.name) == file)
        {
            return Err(IngestError::Duplicate(profile.name.to_string()));
        }
        let path = self.dir.join(&file);
        std::fs::write(&path, export_profile(profile)).map_err(|e| IngestError::io(&path, e))?;
        // Manifest last: a crash between the two writes leaves an
        // orphan profile file, never a manifest naming a missing one.
        let files: Vec<String> = inner
            .iter()
            .map(|p| file_name(p.name))
            .chain(std::iter::once(file))
            .collect();
        write_manifest(&self.dir, &files)?;
        inner.push(profile.clone());
        Ok(())
    }
}

/// Bare file name a workload persists under. The name charset
/// ([`valid_workload_name`]) is already file-safe; lowercasing folds
/// names that would collide on case-insensitive filesystems.
fn file_name(name: &str) -> String {
    format!("workload-{}.json", name.to_ascii_lowercase())
}

fn write_manifest(dir: &Path, files: &[String]) -> Result<(), IngestError> {
    let manifest = Json::obj([
        ("version", STORE_VERSION.to_json()),
        (
            "workloads",
            Json::Arr(files.iter().map(|f| Json::Str(f.clone())).collect()),
        ),
    ]);
    let path = dir.join(MANIFEST_FILE);
    let mut text = String::new();
    manifest.write(&mut text);
    text.push('\n');
    std::fs::write(&path, text).map_err(|e| IngestError::io(&path, e))
}

fn load_dir(dir: &Path) -> Result<Vec<Profile>, IngestError> {
    let manifest_path = dir.join(MANIFEST_FILE);
    let text =
        std::fs::read_to_string(&manifest_path).map_err(|e| IngestError::io(&manifest_path, e))?;
    let v = Json::parse(&text)
        .map_err(|e| IngestError::Parse(format!("{}: {e}", manifest_path.display())))?;
    let version = v
        .get::<u64>("version")
        .map_err(|e| IngestError::Parse(format!("{}: {e}", manifest_path.display())))?;
    if version != STORE_VERSION {
        return Err(IngestError::Parse(format!(
            "{}: unsupported store version {version} (this build reads {STORE_VERSION})",
            manifest_path.display()
        )));
    }
    let files: Vec<String> = json::from_str::<ManifestFiles>(&text)
        .map_err(|e| IngestError::Parse(format!("{}: {e}", manifest_path.display())))?
        .0;
    let mut profiles = Vec::with_capacity(files.len());
    for file in &files {
        if file.contains(['/', '\\']) || file.contains("..") {
            return Err(IngestError::Parse(format!(
                "manifest file name {file:?} must be a bare file name"
            )));
        }
        let path = dir.join(file);
        let text = std::fs::read_to_string(&path).map_err(|e| IngestError::io(&path, e))?;
        let profile = import_profile(&text)
            .map_err(|e| IngestError::Parse(format!("{}: {e}", path.display())))?;
        if profiles.iter().any(|p: &Profile| p.name == profile.name)
            || dse_workload::suites::all_benchmarks()
                .iter()
                .any(|b| b.name == profile.name)
        {
            return Err(IngestError::Duplicate(profile.name.to_string()));
        }
        profiles.push(profile);
    }
    Ok(profiles)
}

/// Manifest `workloads` field, via `FromJson` so errors carry paths.
struct ManifestFiles(Vec<String>);

impl json::FromJson for ManifestFiles {
    fn from_json(v: &Json) -> Result<Self, json::JsonError> {
        Ok(ManifestFiles(v.get("workloads")?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dse_workload::Suite;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dse-ingest-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn demo(name: &'static str) -> Profile {
        Profile::template(name, Suite::External, 7)
    }

    #[test]
    fn open_creates_an_empty_store_and_add_persists() {
        let dir = temp_dir("add");
        let store = WorkloadStore::open(&dir).unwrap();
        assert!(store.is_empty());
        store.add(&demo("ext-a")).unwrap();
        store.add(&demo("ext-b")).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.find("ext-a").unwrap().name, "ext-a");
        // A second store over the same directory sees the same state.
        let reopened = WorkloadStore::open(&dir).unwrap();
        assert_eq!(
            reopened
                .profiles()
                .iter()
                .map(|p| p.name)
                .collect::<Vec<_>>(),
            ["ext-a", "ext-b"]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_names_are_rejected_including_builtins() {
        let dir = temp_dir("dup");
        let store = WorkloadStore::open(&dir).unwrap();
        store.add(&demo("ext-a")).unwrap();
        assert!(matches!(
            store.add(&demo("ext-a")),
            Err(IngestError::Duplicate(_))
        ));
        // Case-folded file collision counts as a duplicate too.
        assert!(matches!(
            store.add(&demo("EXT-A")),
            Err(IngestError::Duplicate(_))
        ));
        // Built-in benchmark names cannot be shadowed.
        assert!(matches!(
            store.add(&demo("gzip")),
            Err(IngestError::Duplicate(_))
        ));
        assert_eq!(store.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_path_traversal_is_rejected() {
        let dir = temp_dir("traverse");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join(MANIFEST_FILE),
            r#"{"version":1,"workloads":["../evil.json"]}"#,
        )
        .unwrap();
        let err = WorkloadStore::open(&dir).unwrap_err();
        assert!(err.to_string().contains("bare file name"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reload_keeps_previous_state_on_error() {
        let dir = temp_dir("reload");
        let store = WorkloadStore::open(&dir).unwrap();
        store.add(&demo("ext-a")).unwrap();
        std::fs::write(dir.join(MANIFEST_FILE), "{not json").unwrap();
        assert!(store.reload().is_err());
        assert_eq!(store.len(), 1, "old state must survive a bad reload");
        // Repairing the manifest lets reload pick up external edits.
        write_manifest(&dir, &["workload-ext-a.json".to_string()]).unwrap();
        assert_eq!(store.reload().unwrap(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_store_version_is_rejected() {
        let dir = temp_dir("ver");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(MANIFEST_FILE), r#"{"version":2,"workloads":[]}"#).unwrap();
        let err = WorkloadStore::open(&dir).unwrap_err();
        assert!(
            err.to_string().contains("unsupported store version 2"),
            "{err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_profiles_and_names_are_rejected_on_add() {
        let dir = temp_dir("invalid");
        let store = WorkloadStore::open(&dir).unwrap();
        let mut bad = demo("bad-frac");
        bad.hot_frac = 0.0;
        assert!(matches!(store.add(&bad), Err(IngestError::Invalid(_))));
        let weird = demo("has space"); // interned, but name invalid
        assert!(matches!(store.add(&weird), Err(IngestError::Invalid(_))));
        assert!(store.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn synth_and_fitted_profiles_persist_through_the_store() {
        let dir = temp_dir("synth");
        let store = WorkloadStore::open(&dir).unwrap();
        for p in crate::synth::synth_profiles(3, 4) {
            store.add(&p).unwrap();
        }
        let reopened = WorkloadStore::open(&dir).unwrap();
        assert_eq!(reopened.profiles(), store.profiles());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
